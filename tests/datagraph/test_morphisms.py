"""Tests for data graph homomorphisms and isomorphisms."""

from __future__ import annotations


from repro.datagraph import (
    NULL,
    DataGraph,
    GraphBuilder,
    apply_homomorphism,
    find_homomorphism,
    find_isomorphism,
    is_homomorphism,
    is_isomorphism,
    is_null_homomorphism,
)


def _triangle(values=(1, 2, 3)) -> DataGraph:
    g = DataGraph()
    for index, value in enumerate(values):
        g.add_node(f"t{index}", value)
    g.add_edge("t0", "e", "t1")
    g.add_edge("t1", "e", "t2")
    g.add_edge("t2", "e", "t0")
    return g


class TestPlainHomomorphism:
    def test_identity_is_homomorphism(self, toy_graph):
        identity = {node_id: node_id for node_id in toy_graph.node_ids}
        assert is_homomorphism(identity, toy_graph, toy_graph)

    def test_value_must_be_preserved(self):
        source = GraphBuilder().node("a", 1).build()
        target = GraphBuilder().node("b", 2).build()
        assert not is_homomorphism({"a": "b"}, source, target)

    def test_edges_must_be_preserved(self):
        source = GraphBuilder().node("a", 1).node("b", 2).edge("a", "r", "b").build()
        target = GraphBuilder().node("x", 1).node("y", 2).build()
        assert not is_homomorphism({"a": "x", "b": "y"}, source, target)

    def test_missing_assignment_rejected(self, toy_graph):
        assert not is_homomorphism({}, toy_graph, toy_graph)

    def test_image_outside_target_rejected(self):
        source = GraphBuilder().node("a", 1).build()
        target = GraphBuilder().node("b", 1).build()
        assert not is_homomorphism({"a": "ghost"}, source, target)

    def test_collapse_homomorphism(self):
        # A 6-cycle with alternating values maps onto a 2-cycle.
        source = DataGraph()
        for i in range(6):
            source.add_node(i, i % 2)
        for i in range(6):
            source.add_edge(i, "e", (i + 1) % 6)
        target = DataGraph()
        target.add_node("even", 0)
        target.add_node("odd", 1)
        target.add_edge("even", "e", "odd")
        target.add_edge("odd", "e", "even")
        mapping = {i: ("even" if i % 2 == 0 else "odd") for i in range(6)}
        assert is_homomorphism(mapping, source, target)


class TestNullHomomorphism:
    def test_null_maps_anywhere(self):
        source = GraphBuilder().node("a", NULL).node("b", 1).edge("a", "r", "b").build()
        target = GraphBuilder().node("x", 42).node("y", 1).edge("x", "r", "y").build()
        assert is_null_homomorphism({"a": "x", "b": "y"}, source, target)
        assert not is_homomorphism({"a": "x", "b": "y"}, source, target)

    def test_non_null_values_still_preserved(self):
        source = GraphBuilder().node("a", 5).build()
        target = GraphBuilder().node("x", 6).build()
        assert not is_null_homomorphism({"a": "x"}, source, target)


class TestFindHomomorphism:
    def test_finds_identity(self, toy_graph):
        h = find_homomorphism(toy_graph, toy_graph)
        assert h is not None
        assert is_null_homomorphism(h, toy_graph, toy_graph)

    def test_respects_fixed_part(self, toy_graph):
        h = find_homomorphism(toy_graph, toy_graph, fixed={"alice": "alice"})
        assert h is not None
        assert h["alice"] == "alice"

    def test_fixed_part_can_make_it_impossible(self):
        source = GraphBuilder().node("a", 1).node("b", 2).edge("a", "r", "b").build()
        target = GraphBuilder().node("x", 1).node("y", 2).node("z", 2).edge("x", "r", "y").build()
        assert find_homomorphism(source, target, fixed={"b": "z"}) is None
        h = find_homomorphism(source, target, fixed={"b": "y"})
        assert h == {"a": "x", "b": "y"}

    def test_fixed_part_invalid_ids(self, toy_graph):
        assert find_homomorphism(toy_graph, toy_graph, fixed={"ghost": "alice"}) is None

    def test_no_homomorphism_when_values_missing(self):
        source = GraphBuilder().node("a", "unique").build()
        target = GraphBuilder().node("x", "other").build()
        assert find_homomorphism(source, target) is None

    def test_strict_mode_requires_exact_values(self):
        source = GraphBuilder().node("a", NULL).build()
        target = GraphBuilder().node("x", 1).build()
        assert find_homomorphism(source, target, allow_null_relaxation=True) is not None
        assert find_homomorphism(source, target, allow_null_relaxation=False) is None

    def test_triangle_into_triangle(self):
        source = _triangle()
        target = _triangle()
        h = find_homomorphism(source, target, allow_null_relaxation=False)
        assert h is not None
        assert is_homomorphism(h, source, target)

    def test_path_into_cycle(self):
        # A null-valued 4-path maps into a 2-cycle.
        source = DataGraph()
        for i in range(5):
            source.add_node(i)
        for i in range(4):
            source.add_edge(i, "e", i + 1)
        target = DataGraph()
        target.add_node("p", 1)
        target.add_node("q", 2)
        target.add_edge("p", "e", "q")
        target.add_edge("q", "e", "p")
        h = find_homomorphism(source, target)
        assert h is not None
        assert is_null_homomorphism(h, source, target)

    def test_cycle_into_path_impossible(self):
        source = DataGraph()
        for i in range(3):
            source.add_node(i)
        for i in range(3):
            source.add_edge(i, "e", (i + 1) % 3)
        target = DataGraph()
        for i in range(4):
            target.add_node(f"p{i}", i)
        for i in range(3):
            target.add_edge(f"p{i}", "e", f"p{i+1}")
        assert find_homomorphism(source, target) is None

    def test_apply_homomorphism(self):
        source = GraphBuilder().node("a", 1).node("b", 2).edge("a", "r", "b").build()
        target = GraphBuilder().node("x", 1).node("y", 2).node("z", 9).edge("x", "r", "y").edge(
            "y", "r", "z"
        ).build()
        h = {"a": "x", "b": "y"}
        image = apply_homomorphism(h, source, target)
        assert image.num_nodes == 2
        assert image.has_edge("x", "r", "y")
        assert not image.has_node("z")


class TestIsomorphism:
    def test_isomorphic_up_to_renaming(self):
        left = _triangle()
        right = left.rename_nodes({"t0": "u0", "t1": "u1", "t2": "u2"})
        mapping = find_isomorphism(left, right)
        assert mapping is not None
        assert is_isomorphism(mapping, left, right)

    def test_non_isomorphic_different_sizes(self):
        left = _triangle()
        right = GraphBuilder().node("x", 1).build()
        assert find_isomorphism(left, right) is None

    def test_non_isomorphic_same_size_different_values(self):
        left = _triangle((1, 2, 3))
        right = _triangle((1, 2, 4))
        assert find_isomorphism(left, right) is None

    def test_non_isomorphic_same_values_different_structure(self):
        left = _triangle((1, 1, 1))
        right = DataGraph()
        for i in range(3):
            right.add_node(i, 1)
        right.add_edge(0, "e", 1)
        right.add_edge(1, "e", 2)
        right.add_edge(2, "e", 1)
        assert find_isomorphism(left, right) is None

    def test_is_isomorphism_rejects_non_bijection(self):
        left = _triangle((1, 1, 1))
        assert not is_isomorphism({"t0": "t0", "t1": "t0", "t2": "t2"}, left, left)

    def test_is_isomorphism_rejects_partial(self):
        left = _triangle()
        assert not is_isomorphism({"t0": "t0"}, left, left)
