"""Tests for graph (de)serialisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import (
    NULL,
    DataGraph,
    GraphBuilder,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)
from repro.exceptions import SerializationError


class TestDictRoundTrip:
    def test_round_trip(self, toy_graph):
        payload = graph_to_dict(toy_graph)
        rebuilt = graph_from_dict(payload)
        assert rebuilt == toy_graph
        assert rebuilt.name == toy_graph.name

    def test_null_values_round_trip(self):
        g = GraphBuilder().node("a", NULL).node("b", 3).edge("a", "r", "b").build()
        rebuilt = graph_from_dict(graph_to_dict(g))
        assert rebuilt.node("a").is_null
        assert rebuilt.value_of("b") == 3

    def test_alphabet_preserved(self):
        g = DataGraph(alphabet={"unused"})
        g.add_node("a", 1)
        rebuilt = graph_from_dict(graph_to_dict(g))
        assert "unused" in rebuilt.alphabet

    def test_strict_rejects_tuple_ids(self):
        g = DataGraph()
        g.add_node(("compound", 1), 2)
        with pytest.raises(SerializationError):
            graph_to_dict(g)
        payload = graph_to_dict(g, strict=False)
        assert isinstance(payload["nodes"][0]["id"], str)

    def test_strict_rejects_non_scalar_values(self):
        g = DataGraph()
        g.add_node("a", ("tuple", "value"))
        with pytest.raises(SerializationError):
            graph_to_dict(g)
        assert graph_to_dict(g, strict=False)["nodes"][0]["value"] == repr(("tuple", "value"))

    def test_missing_keys_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"nodes": []})
        with pytest.raises(SerializationError):
            graph_from_dict({"nodes": [{"value": 3}], "edges": []})
        with pytest.raises(SerializationError):
            graph_from_dict({"nodes": [], "edges": [{"source": "a", "label": "r"}]})


class TestJsonRoundTrip:
    def test_round_trip(self, toy_graph):
        text = graph_to_json(toy_graph)
        rebuilt = graph_from_json(text)
        assert rebuilt == toy_graph

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            graph_from_json("{not json")

    def test_non_object_json(self):
        with pytest.raises(SerializationError):
            graph_from_json("[1, 2, 3]")


@st.composite
def serializable_graph(draw):
    size = draw(st.integers(min_value=1, max_value=6))
    g = DataGraph(name="prop")
    for i in range(size):
        value = draw(st.one_of(st.none(), st.integers(-5, 5), st.text(max_size=4)))
        g.add_node(f"n{i}", NULL if value is None else value)
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        s = draw(st.integers(0, size - 1))
        t = draw(st.integers(0, size - 1))
        label = draw(st.sampled_from(["a", "b"]))
        g.add_edge(f"n{s}", label, f"n{t}")
    return g


class TestSerializationProperties:
    @given(serializable_graph())
    @settings(max_examples=50)
    def test_dict_round_trip_is_identity(self, graph):
        assert graph_from_dict(graph_to_dict(graph)) == graph

    @given(serializable_graph())
    @settings(max_examples=30)
    def test_json_round_trip_is_identity(self, graph):
        assert graph_from_json(graph_to_json(graph)) == graph
