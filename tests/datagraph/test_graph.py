"""Tests for the DataGraph structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import NULL, DataGraph, Node
from repro.exceptions import DuplicateNodeError, InvalidEdgeError, UnknownNodeError


class TestNodeManagement:
    def test_add_and_get_node(self):
        g = DataGraph()
        node = g.add_node("n1", 42)
        assert node == Node("n1", 42)
        assert g.node("n1") is node or g.node("n1") == node
        assert g.has_node("n1")
        assert not g.has_node("n2")

    def test_readding_identical_node_is_noop(self):
        g = DataGraph()
        g.add_node("n1", 42)
        g.add_node("n1", 42)
        assert g.num_nodes == 1

    def test_duplicate_id_different_value_rejected(self):
        g = DataGraph()
        g.add_node("n1", 42)
        with pytest.raises(DuplicateNodeError):
            g.add_node("n1", 43)

    def test_null_node_readd(self):
        g = DataGraph()
        g.add_node("n1")
        g.add_node("n1", NULL)
        assert g.num_nodes == 1
        assert g.node("n1").is_null

    def test_unknown_node_raises(self):
        g = DataGraph()
        with pytest.raises(UnknownNodeError):
            g.node("missing")
        assert g.get_node("missing") is None

    def test_value_of_and_set_value(self):
        g = DataGraph()
        g.add_node("n1", "old")
        assert g.value_of("n1") == "old"
        g.set_value("n1", "new")
        assert g.value_of("n1") == "new"

    def test_remove_node_removes_incident_edges(self):
        g = DataGraph()
        g.add_node("a", 1)
        g.add_node("b", 2)
        g.add_node("c", 3)
        g.add_edge("a", "r", "b")
        g.add_edge("b", "r", "c")
        g.add_edge("c", "r", "a")
        g.remove_node("b")
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge("c", "r", "a")

    def test_remove_unknown_node_raises(self):
        g = DataGraph()
        with pytest.raises(UnknownNodeError):
            g.remove_node("ghost")

    def test_null_nodes_listing(self):
        g = DataGraph()
        g.add_node("a", 1)
        g.add_node("b")
        assert [n.id for n in g.null_nodes()] == ["b"]

    def test_data_values(self):
        g = DataGraph()
        g.add_node("a", 1)
        g.add_node("b", 1)
        g.add_node("c", 2)
        assert g.data_values() == {1, 2}


class TestEdgeManagement:
    def test_add_edge_requires_existing_nodes(self):
        g = DataGraph()
        g.add_node("a", 1)
        with pytest.raises(UnknownNodeError):
            g.add_edge("a", "r", "missing")

    def test_edge_label_must_be_string(self):
        g = DataGraph()
        g.add_node("a", 1)
        g.add_node("b", 2)
        with pytest.raises(InvalidEdgeError):
            g.add_edge("a", 7, "b")
        with pytest.raises(InvalidEdgeError):
            g.add_edge("a", "", "b")

    def test_duplicate_edge_not_counted_twice(self):
        g = DataGraph()
        g.add_node("a", 1)
        g.add_node("b", 2)
        g.add_edge("a", "r", "b")
        g.add_edge("a", "r", "b")
        assert g.num_edges == 1

    def test_edge_relation(self, toy_graph):
        knows = toy_graph.edge_relation("knows")
        assert (toy_graph.node("alice"), toy_graph.node("bob")) in knows
        assert len(knows) == 4

    def test_successors_and_predecessors(self, toy_graph):
        succ = list(toy_graph.successors("alice"))
        assert ("knows", toy_graph.node("bob")) in succ
        assert ("worksAt", toy_graph.node("uni")) in succ
        pred = list(toy_graph.predecessors("alice", "knows"))
        assert pred == [("knows", toy_graph.node("dave"))]

    def test_successors_unknown_node(self, toy_graph):
        with pytest.raises(UnknownNodeError):
            list(toy_graph.successors("ghost"))

    def test_degrees(self, toy_graph):
        assert toy_graph.out_degree("alice") == 2
        assert toy_graph.in_degree("uni") == 2

    def test_remove_edge(self, toy_graph):
        toy_graph.remove_edge("alice", "knows", "bob")
        assert not toy_graph.has_edge("alice", "knows", "bob")
        # removing again is a no-op
        toy_graph.remove_edge("alice", "knows", "bob")

    def test_add_path(self):
        g = DataGraph()
        for i in range(4):
            g.add_node(i, i)
        g.add_path([0, 1, 2, 3], ["a", "b", "a"])
        assert g.has_edge(0, "a", 1)
        assert g.has_edge(1, "b", 2)
        assert g.has_edge(2, "a", 3)

    def test_add_path_length_mismatch(self):
        g = DataGraph()
        g.add_node(0, 0)
        with pytest.raises(InvalidEdgeError):
            g.add_path([0], ["a"])


class TestGraphOperations:
    def test_alphabet_includes_declared_and_used(self):
        g = DataGraph(alphabet={"x"})
        g.add_node("a", 1)
        g.add_node("b", 2)
        g.add_edge("a", "y", "b")
        assert g.alphabet == frozenset({"x", "y"})

    def test_declare_labels_validation(self):
        g = DataGraph()
        with pytest.raises(InvalidEdgeError):
            g.declare_labels([""])

    def test_copy_is_independent(self, toy_graph):
        clone = toy_graph.copy()
        assert clone == toy_graph
        clone.add_node("eve", "Berlin")
        assert not toy_graph.has_node("eve")

    def test_subgraph(self, toy_graph):
        sub = toy_graph.subgraph(["alice", "bob", "uni"])
        assert sub.num_nodes == 3
        assert sub.has_edge("alice", "knows", "bob")
        assert sub.has_edge("alice", "worksAt", "uni")
        assert not sub.has_edge("bob", "knows", "carol")

    def test_union(self):
        g1 = DataGraph()
        g1.add_node("a", 1)
        g1.add_node("b", 2)
        g1.add_edge("a", "r", "b")
        g2 = DataGraph()
        g2.add_node("b", 2)
        g2.add_node("c", 3)
        g2.add_edge("b", "s", "c")
        merged = g1.union(g2)
        assert merged.num_nodes == 3
        assert merged.has_edge("a", "r", "b")
        assert merged.has_edge("b", "s", "c")

    def test_union_conflicting_values(self):
        g1 = DataGraph()
        g1.add_node("a", 1)
        g2 = DataGraph()
        g2.add_node("a", 2)
        with pytest.raises(DuplicateNodeError):
            g1.union(g2)

    def test_rename_nodes(self, toy_graph):
        renamed = toy_graph.rename_nodes({"alice": "alice2"})
        assert renamed.has_node("alice2")
        assert not renamed.has_node("alice")
        assert renamed.has_edge("alice2", "knows", "bob")
        assert renamed.value_of("alice2") == "Edinburgh"

    def test_rename_nodes_must_be_injective(self, toy_graph):
        with pytest.raises(DuplicateNodeError):
            toy_graph.rename_nodes({"alice": "bob"})

    def test_map_values(self, toy_graph):
        upper = toy_graph.map_values(lambda node: str(node.value).upper())
        assert upper.value_of("alice") == "EDINBURGH"
        assert upper.num_edges == toy_graph.num_edges

    def test_contains_graph(self, toy_graph):
        sub = toy_graph.subgraph(["alice", "bob"])
        assert toy_graph.contains_graph(sub)
        assert not sub.contains_graph(toy_graph)

    def test_contains_graph_value_mismatch(self, toy_graph):
        other = toy_graph.copy()
        other.set_value("alice", "Glasgow")
        assert not toy_graph.contains_graph(other)

    def test_equality_and_edge_set(self, toy_graph):
        clone = toy_graph.copy()
        assert clone == toy_graph
        clone.remove_edge("alice", "knows", "bob")
        assert clone != toy_graph
        assert ("alice", "knows", "bob") in toy_graph.edge_set()

    def test_equality_other_type(self, toy_graph):
        assert toy_graph != 42

    def test_len_contains_iter(self, toy_graph):
        assert len(toy_graph) == 5
        assert "alice" in toy_graph
        assert {node.id for node in toy_graph} == {"alice", "bob", "carol", "dave", "uni"}

    def test_repr_and_pretty(self, toy_graph):
        assert "5 nodes" in repr(toy_graph)
        assert "alice" in toy_graph.pretty()

    def test_size(self, toy_graph):
        assert toy_graph.size() == toy_graph.num_nodes + toy_graph.num_edges


class TestReachability:
    def test_reachable_from_includes_self(self, toy_graph):
        assert "alice" in toy_graph.reachable_from("alice")

    def test_reachable_follows_cycle(self, toy_graph):
        reachable = toy_graph.reachable_from("alice", labels={"knows"})
        assert reachable == {"alice", "bob", "carol", "dave"}

    def test_reachable_respects_labels(self, toy_graph):
        reachable = toy_graph.reachable_from("alice", labels={"worksAt"})
        assert reachable == {"alice", "uni"}

    def test_reachability_pairs(self, chain_graph_10):
        pairs = chain_graph_10.reachability_pairs()
        ids = {(source.id, target.id) for source, target in pairs}
        assert ("c0", "c10") in ids
        assert ("c10", "c0") not in ids
        # chain of 11 nodes: 11 * 12 / 2 = 66 ordered reachable pairs
        assert len(pairs) == 66


@st.composite
def random_graph_strategy(draw):
    """Random small graphs for property tests."""
    size = draw(st.integers(min_value=1, max_value=6))
    labels = draw(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3, unique=True))
    g = DataGraph(alphabet=labels)
    for i in range(size):
        g.add_node(i, draw(st.integers(min_value=0, max_value=3)))
    num_edges = draw(st.integers(min_value=0, max_value=size * size))
    for _ in range(num_edges):
        source = draw(st.integers(min_value=0, max_value=size - 1))
        target = draw(st.integers(min_value=0, max_value=size - 1))
        label = draw(st.sampled_from(labels))
        g.add_edge(source, label, target)
    return g


class TestGraphProperties:
    @given(random_graph_strategy())
    @settings(max_examples=50)
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @given(random_graph_strategy())
    @settings(max_examples=50)
    def test_subgraph_of_all_nodes_is_graph(self, graph):
        assert graph.subgraph(graph.node_ids) == graph

    @given(random_graph_strategy())
    @settings(max_examples=50)
    def test_edge_count_matches_edge_set(self, graph):
        assert graph.num_edges == len(graph.edge_set()) == len(graph.edges)

    @given(random_graph_strategy())
    @settings(max_examples=50)
    def test_reachability_is_transitive(self, graph):
        for node in graph.node_ids:
            reachable = graph.reachable_from(node)
            for other in reachable:
                assert graph.reachable_from(other) <= reachable
