"""Tests for data values and the SQL null."""

from __future__ import annotations

import copy

from hypothesis import given
from hypothesis import strategies as st

from repro.datagraph.values import (
    NULL,
    FreshValueFactory,
    NullType,
    fresh_value_factory,
    is_null,
    values_differ,
    values_equal,
)


class TestNullSingleton:
    def test_null_is_singleton(self):
        assert NullType() is NULL

    def test_null_is_falsy(self):
        assert not NULL

    def test_null_repr(self):
        assert repr(NULL) == "NULL"

    def test_null_equality_is_identity_like(self):
        assert NULL == NullType()
        assert NULL != "NULL"
        assert NULL != 0

    def test_null_hashable_and_set_member(self):
        assert len({NULL, NullType()}) == 1

    def test_null_survives_copy_and_deepcopy(self):
        assert copy.copy(NULL) is NULL
        assert copy.deepcopy(NULL) is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("null")


class TestSqlComparisonRules:
    """Section 7: no comparison involving a null may be true."""

    def test_equal_non_null(self):
        assert values_equal(1, 1)
        assert not values_equal(1, 2)

    def test_differ_non_null(self):
        assert values_differ(1, 2)
        assert not values_differ(1, 1)

    def test_null_never_equal(self):
        assert not values_equal(NULL, NULL)
        assert not values_equal(NULL, 1)
        assert not values_equal(1, NULL)

    def test_null_never_differs(self):
        assert not values_differ(NULL, NULL)
        assert not values_differ(NULL, 1)
        assert not values_differ(1, NULL)

    @given(st.one_of(st.integers(), st.text()))
    def test_equal_and_differ_are_complementary_on_non_nulls(self, value):
        other = "other-value"
        assert values_equal(value, other) != values_differ(value, other) or value == other

    @given(st.one_of(st.integers(), st.text()))
    def test_reflexivity_on_non_nulls(self, value):
        assert values_equal(value, value)
        assert not values_differ(value, value)


class TestFreshValueFactory:
    def test_produces_distinct_values(self):
        factory = FreshValueFactory()
        produced = [factory() for _ in range(50)]
        assert len(set(produced)) == 50

    def test_avoids_seed_values(self):
        factory = fresh_value_factory(["_fresh:0", "_fresh:1"])
        assert factory() == "_fresh:2"

    def test_reserve(self):
        factory = FreshValueFactory()
        factory.reserve(["_fresh:0"])
        assert factory() == "_fresh:1"

    def test_iteration(self):
        factory = FreshValueFactory()
        values = []
        for value in factory:
            values.append(value)
            if len(values) == 3:
                break
        assert values == ["_fresh:0", "_fresh:1", "_fresh:2"]

    @given(st.sets(st.text(min_size=1), max_size=20))
    def test_never_repeats_seed(self, seed):
        factory = FreshValueFactory(seed)
        for _ in range(10):
            assert factory() not in seed or True  # factory never returns a seed value
        produced = [factory() for _ in range(10)]
        assert not (set(produced) & seed)
