"""Tests for the graph builder and synthetic generators."""

from __future__ import annotations

import random

import pytest

from repro.datagraph import GraphBuilder, chain_graph, cycle_graph, graph_from_edges
from repro.datagraph import generators
from repro.exceptions import PathError, WorkloadError


class TestGraphBuilder:
    def test_chaining(self):
        g = (
            GraphBuilder(name="b")
            .node("a", 1)
            .nodes([("b", 2), ("c", 3)])
            .edge("a", "r", "b")
            .edges([("b", "r", "c"), ("c", "s", "a")])
            .build()
        )
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.name == "b"

    def test_edge_creates_missing_endpoints_with_null(self):
        g = GraphBuilder().edge("x", "r", "y").build()
        assert g.node("x").is_null
        assert g.node("y").is_null

    def test_path_with_values(self):
        g = GraphBuilder().path(["p", "q", "r"], ["a", "b"], values=[1, 2, 3]).build()
        assert g.value_of("q") == 2
        assert g.has_edge("p", "a", "q")

    def test_path_length_mismatch(self):
        with pytest.raises(PathError):
            GraphBuilder().path(["p", "q"], ["a", "b"])
        with pytest.raises(PathError):
            GraphBuilder().path(["p", "q"], ["a"], values=[1])

    def test_declare_labels(self):
        g = GraphBuilder().declare_labels(["x", "y"]).build()
        assert g.alphabet == frozenset({"x", "y"})

    def test_graph_from_edges(self):
        g = graph_from_edges([("a", "r", "b")], values={"a": 1, "c": 3})
        assert g.value_of("a") == 1
        assert g.node("b").is_null
        assert g.has_node("c")

    def test_chain_and_cycle_helpers(self):
        chain = chain_graph(3)
        assert chain.num_nodes == 4
        assert chain.num_edges == 3
        cyc = cycle_graph(3)
        assert cyc.num_edges == 3
        assert cyc.has_edge("v2", "a", "v0")
        with pytest.raises(PathError):
            cycle_graph(0)


class TestGenerators:
    def test_chain_generator(self):
        g = generators.chain(5, labels=("a", "b"))
        assert g.num_nodes == 6
        assert g.num_edges == 5
        assert g.has_edge("n0", "a", "n1")
        assert g.has_edge("n1", "b", "n2")

    def test_chain_with_domain(self):
        g = generators.chain(20, domain_size=2, rng=1)
        assert len(g.data_values()) <= 2

    def test_cycle_generator(self):
        g = generators.cycle(4)
        assert g.num_edges == 4
        with pytest.raises(WorkloadError):
            generators.cycle(0)

    def test_complete_graph(self):
        g = generators.complete_graph(3)
        assert g.num_edges == 6
        g_loops = generators.complete_graph(3, include_loops=True)
        assert g_loops.num_edges == 9

    def test_grid(self):
        g = generators.grid(2, 3)
        assert g.num_nodes == 6
        assert g.has_edge((0, 0), "right", (0, 1))
        assert g.has_edge((0, 0), "down", (1, 0))

    def test_random_tree(self):
        g = generators.random_tree(10, rng=3)
        assert g.num_nodes == 10
        assert g.num_edges == 9
        with pytest.raises(WorkloadError):
            generators.random_tree(0)

    def test_non_repeating_tree(self):
        g = generators.random_tree(5, labels=("a", "b", "c", "d", "e"), rng=3, non_repeating=True)
        for node in g.node_ids:
            labels = [label for label, _ in g.successors(node)]
            assert len(labels) == len(set(labels))

    def test_non_repeating_tree_single_label_is_chain(self):
        g = generators.random_tree(10, labels=("a",), rng=3, non_repeating=True)
        # With a single label the only non-repeating tree is a chain:
        # every node has at most one outgoing edge.
        assert all(g.out_degree(node) <= 1 for node in g.node_ids)
        assert g.num_edges == 9

    def test_random_graph(self):
        g = generators.random_graph(10, 30, rng=7)
        assert g.num_nodes == 10
        assert g.num_edges <= 30
        with pytest.raises(WorkloadError):
            generators.random_graph(0, 1)

    def test_random_graph_determinism(self):
        g1 = generators.random_graph(8, 20, rng=42)
        g2 = generators.random_graph(8, 20, rng=42)
        assert g1 == g2

    def test_random_graph_no_self_loops(self):
        g = generators.random_graph(5, 40, rng=2, allow_self_loops=False)
        for source, _, target in g.edges:
            assert source.id != target.id

    def test_preferential_attachment(self):
        g = generators.preferential_attachment(20, rng=5)
        assert g.num_nodes == 20
        assert g.num_edges >= 19 - 1
        with pytest.raises(WorkloadError):
            generators.preferential_attachment(1)

    def test_layered_dag(self):
        g = generators.layered_dag(3, 4, rng=9, density=1.0)
        assert g.num_nodes == 12
        assert g.num_edges == 2 * 4 * 4
        with pytest.raises(WorkloadError):
            generators.layered_dag(0, 1)

    def test_random_data_values_domain(self):
        values = generators.random_data_values(100, 3, rng=1)
        assert len(set(values)) <= 3
        with pytest.raises(WorkloadError):
            generators.random_data_values(5, 0)

    def test_rng_accepts_random_instance(self):
        rng = random.Random(0)
        g = generators.chain(3, rng=rng, domain_size=5)
        assert g.num_nodes == 4

    def test_community_graph_shape(self):
        g = generators.community_graph(3, 4, intra_edges_per_node=2, bridges_per_community=1, rng=5)
        assert g.num_nodes == 12
        assert g.alphabet == {"knows", "bridge"}
        # intra edges stay within a community; bridges go to the next one
        for source, label, target in g.edges:
            source_community = str(source.id).split("n")[0]
            target_community = str(target.id).split("n")[0]
            if label == "bridge":
                assert source_community != target_community
            else:
                assert source_community == target_community
        bridges = sum(1 for _, label, _ in g.edges if label == "bridge")
        assert bridges == 3

    def test_community_graph_determinism_and_validation(self):
        assert generators.community_graph(2, 3, rng=9) == generators.community_graph(2, 3, rng=9)
        single = generators.community_graph(1, 4, rng=1)
        assert all(label != "bridge" for _, label, _ in single.edges)
        with pytest.raises(WorkloadError):
            generators.community_graph(0, 4)
