"""Tests for property graphs and their encoding as data graphs."""

from __future__ import annotations

import pytest

from repro.datagraph import PropertyGraph, property_graph_to_data_graph
from repro.exceptions import GraphError, UnknownNodeError


def _social_pg() -> PropertyGraph:
    pg = PropertyGraph(name="social")
    pg.add_node("alice", labels=("Person",), properties={"name": "Alice", "age": 34})
    pg.add_node("bob", labels=("Person",), properties={"name": "Bob"})
    pg.add_node("acme", labels=("Company",), properties={"name": "ACME"})
    pg.add_edge("alice", "KNOWS", "bob", properties={"since": 2010})
    pg.add_edge("alice", "WORKS_AT", "acme")
    return pg


class TestPropertyGraph:
    def test_nodes_and_edges(self):
        pg = _social_pg()
        assert len(pg.nodes) == 3
        assert len(pg.edges) == 2
        assert pg.node("alice").properties["age"] == 34

    def test_duplicate_node_rejected(self):
        pg = PropertyGraph()
        pg.add_node("a")
        with pytest.raises(GraphError):
            pg.add_node("a")

    def test_edge_requires_existing_nodes(self):
        pg = PropertyGraph()
        pg.add_node("a")
        with pytest.raises(UnknownNodeError):
            pg.add_edge("a", "R", "missing")
        with pytest.raises(UnknownNodeError):
            pg.add_edge("missing", "R", "a")

    def test_unknown_node_lookup(self):
        pg = PropertyGraph()
        with pytest.raises(UnknownNodeError):
            pg.node("ghost")


class TestDataGraphEncoding:
    def test_primary_property_becomes_value(self):
        dg = _social_pg().to_data_graph(primary_property="name")
        assert dg.value_of("alice") == "Alice"
        assert dg.value_of("acme") == "ACME"

    def test_missing_primary_property_is_null(self):
        pg = PropertyGraph()
        pg.add_node("x", properties={"age": 1})
        dg = pg.to_data_graph(primary_property="name")
        assert dg.node("x").is_null

    def test_secondary_properties_become_nodes(self):
        dg = _social_pg().to_data_graph()
        prop_node = ("alice", "prop", "age")
        assert dg.has_node(prop_node)
        assert dg.value_of(prop_node) == 34
        assert dg.has_edge("alice", "prop:age", prop_node)

    def test_labels_become_nodes(self):
        dg = _social_pg().to_data_graph()
        label_node = ("alice", "label", "Person")
        assert dg.has_node(label_node)
        assert dg.value_of(label_node) == "Person"

    def test_edge_without_properties_is_plain_edge(self):
        dg = _social_pg().to_data_graph()
        assert dg.has_edge("alice", "WORKS_AT", "acme")

    def test_edge_with_properties_gets_intermediate_node(self):
        dg = _social_pg().to_data_graph()
        edge_node = ("edge", 0)
        assert dg.has_node(edge_node)
        assert dg.node(edge_node).is_null
        assert dg.has_edge("alice", "KNOWS", edge_node)
        assert dg.has_edge(edge_node, "KNOWS:out", "bob")
        prop_node = ("edge", 0, "prop", "since")
        assert dg.value_of(prop_node) == 2010
        assert dg.has_edge(edge_node, "prop:since", prop_node)

    def test_function_and_method_agree(self):
        pg = _social_pg()
        assert property_graph_to_data_graph(pg) == pg.to_data_graph()

    def test_every_property_value_is_reachable(self):
        """The conversion must not lose any data value from the property graph."""
        pg = _social_pg()
        dg = pg.to_data_graph()
        dg_values = dg.data_values()
        for node in pg.nodes:
            for value in node.properties.values():
                assert value in dg_values
        for edge in pg.edges:
            for value in edge.properties.values():
                assert value in dg_values
