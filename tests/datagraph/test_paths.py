"""Tests for paths and data paths."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import DataPath, Node, Path, enumerate_paths, path_from_ids
from repro.exceptions import PathError


def _nodes(*pairs):
    return tuple(Node(node_id, value) for node_id, value in pairs)


class TestPath:
    def test_single_node_path(self):
        path = Path(_nodes(("a", 1)), ())
        assert len(path) == 0
        assert path.source == path.target == Node("a", 1)

    def test_invalid_lengths(self):
        with pytest.raises(PathError):
            Path((), ())
        with pytest.raises(PathError):
            Path(_nodes(("a", 1), ("b", 2)), ())

    def test_label_and_data_path(self):
        path = Path(_nodes(("a", 1), ("b", 2), ("c", 1)), ("x", "y"))
        assert path.label == "xy"
        assert path.label_word == ("x", "y")
        assert path.data_path() == DataPath((1, 2, 1), ("x", "y"))

    def test_concat(self):
        p1 = Path(_nodes(("a", 1), ("b", 2)), ("x",))
        p2 = Path(_nodes(("b", 2), ("c", 3)), ("y",))
        joined = p1.concat(p2)
        assert joined.nodes == _nodes(("a", 1), ("b", 2), ("c", 3))
        assert joined.labels == ("x", "y")

    def test_concat_mismatch(self):
        p1 = Path(_nodes(("a", 1), ("b", 2)), ("x",))
        p2 = Path(_nodes(("c", 3), ("d", 4)), ("y",))
        with pytest.raises(PathError):
            p1.concat(p2)

    def test_steps(self):
        path = Path(_nodes(("a", 1), ("b", 2), ("c", 3)), ("x", "y"))
        steps = list(path.steps())
        assert steps[0] == (Node("a", 1), "x", Node("b", 2))
        assert steps[1] == (Node("b", 2), "y", Node("c", 3))

    def test_is_valid_in(self, toy_graph):
        path = Path(
            (toy_graph.node("alice"), toy_graph.node("bob"), toy_graph.node("carol")),
            ("knows", "knows"),
        )
        assert path.is_valid_in(toy_graph)
        bad = Path((toy_graph.node("alice"), toy_graph.node("carol")), ("knows",))
        assert not bad.is_valid_in(toy_graph)

    def test_str(self):
        path = Path(_nodes(("a", 1), ("b", 2)), ("x",))
        assert "-[x]->" in str(path)


class TestDataPath:
    def test_single(self):
        dp = DataPath.single(7)
        assert dp.first_value == dp.last_value == 7
        assert len(dp) == 0

    def test_from_sequence(self):
        dp = DataPath.from_sequence([1, "a", 2, "b", 3])
        assert dp.values == (1, 2, 3)
        assert dp.labels == ("a", "b")

    def test_from_sequence_invalid(self):
        with pytest.raises(PathError):
            DataPath.from_sequence([1, "a"])
        with pytest.raises(PathError):
            DataPath.from_sequence([1, 2, 3])

    def test_invalid_shape(self):
        with pytest.raises(PathError):
            DataPath((), ())
        with pytest.raises(PathError):
            DataPath((1, 2), ())

    def test_concat_shares_value(self):
        left = DataPath((1, 2), ("a",))
        right = DataPath((2, 3), ("b",))
        assert left.concat(right) == DataPath((1, 2, 3), ("a", "b"))

    def test_concat_mismatch(self):
        left = DataPath((1, 2), ("a",))
        right = DataPath((5, 3), ("b",))
        with pytest.raises(PathError):
            left.concat(right)

    def test_slice(self):
        dp = DataPath((1, 2, 3, 4), ("a", "b", "c"))
        assert dp.slice(1, 3) == DataPath((2, 3, 4), ("b", "c"))
        assert dp.slice(2, 2) == DataPath.single(3)
        with pytest.raises(PathError):
            dp.slice(2, 5)

    def test_splits(self):
        dp = DataPath((1, 2, 3), ("a", "b"))
        splits = list(dp.splits())
        assert len(splits) == 3
        for left, right in splits:
            assert left.concat(right) == dp

    def test_items_and_str(self):
        dp = DataPath((1, 2), ("a",))
        assert dp.items() == (1, "a", 2)
        assert str(dp) == "1 a 2"

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_splits_always_recompose(self, values):
        labels = tuple("a" for _ in range(len(values) - 1))
        dp = DataPath(tuple(values), labels)
        for left, right in dp.splits():
            assert left.concat(right) == dp


class TestGraphPathHelpers:
    def test_path_from_ids(self, toy_graph):
        path = path_from_ids(toy_graph, ["alice", "bob", "carol"], ["knows", "knows"])
        assert path.source.id == "alice"
        assert path.target.id == "carol"

    def test_path_from_ids_invalid_edge(self, toy_graph):
        with pytest.raises(PathError):
            path_from_ids(toy_graph, ["alice", "carol"], ["knows"])

    def test_enumerate_paths_bounded(self, toy_graph):
        paths = list(enumerate_paths(toy_graph, "alice", max_length=2))
        # length 0 path always included
        assert any(len(p) == 0 for p in paths)
        labels = {p.label_word for p in paths}
        assert ("knows", "knows") in labels
        assert all(len(p) <= 2 for p in paths)

    def test_enumerate_paths_with_target(self, toy_graph):
        paths = list(enumerate_paths(toy_graph, "alice", max_length=3, target="dave"))
        assert paths
        assert all(p.target.id == "dave" for p in paths)

    def test_enumerate_paths_with_labels(self, toy_graph):
        paths = list(enumerate_paths(toy_graph, "alice", max_length=3, labels={"worksAt"}))
        assert {p.target.id for p in paths} == {"alice", "uni"}

    def test_enumerate_paths_chain_count(self, chain_graph_10):
        paths = list(enumerate_paths(chain_graph_10, "c0", max_length=10))
        # exactly one path of each length 0..10
        assert len(paths) == 11
