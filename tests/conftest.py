"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.datagraph import DataGraph, GraphBuilder


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for tests needing randomness."""
    return random.Random(20170514)  # PODS 2017 start date


@pytest.fixture
def toy_graph() -> DataGraph:
    """A small social-network-like data graph used by many tests.

    Four people, a ``knows`` relation and a ``worksAt`` relation; two of
    the people share a data value (the city they live in).
    """
    return (
        GraphBuilder(name="toy")
        .node("alice", "Edinburgh")
        .node("bob", "Edinburgh")
        .node("carol", "Paris")
        .node("dave", "Chicago")
        .node("uni", "UoE")
        .edge("alice", "knows", "bob")
        .edge("bob", "knows", "carol")
        .edge("carol", "knows", "dave")
        .edge("dave", "knows", "alice")
        .edge("alice", "worksAt", "uni")
        .edge("bob", "worksAt", "uni")
        .build()
    )


@pytest.fixture
def chain_graph_10() -> DataGraph:
    """A 10-edge chain with all-distinct data values."""
    builder = GraphBuilder(name="chain10")
    for i in range(11):
        builder.node(f"c{i}", f"value{i}")
    for i in range(10):
        builder.edge(f"c{i}", "a", f"c{i + 1}")
    return builder.build()
