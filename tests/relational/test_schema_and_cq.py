"""Tests for relational schemas, instances and conjunctive queries."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.relational import (
    AtomPattern,
    ConjunctiveQuery,
    Instance,
    MarkedNull,
    RelationSchema,
    Schema,
    Variable,
    evaluate_cq,
    fresh_null_factory,
)


@pytest.fixture
def people_instance() -> Instance:
    schema = Schema([RelationSchema("knows", 2), RelationSchema("lives", 2)])
    instance = Instance(schema)
    instance.add_fact("knows", ("alice", "bob"))
    instance.add_fact("knows", ("bob", "carol"))
    instance.add_fact("lives", ("alice", "edinburgh"))
    instance.add_fact("lives", ("carol", "edinburgh"))
    return instance


class TestSchema:
    def test_relation_validation(self):
        with pytest.raises(ReproError):
            RelationSchema("", 2)
        with pytest.raises(ReproError):
            RelationSchema("R", -1)

    def test_consistent_redeclaration(self):
        schema = Schema([RelationSchema("R", 2)])
        schema.add(RelationSchema("R", 2))
        with pytest.raises(ReproError):
            schema.add(RelationSchema("R", 3))

    def test_arity_lookup(self):
        schema = Schema([RelationSchema("R", 2)])
        assert schema.arity("R") == 2
        assert schema.has_relation("R")
        assert "R" in schema
        with pytest.raises(ReproError):
            schema.arity("S")

    def test_union(self):
        left = Schema([RelationSchema("R", 2)])
        right = Schema([RelationSchema("S", 1)])
        merged = left.union(right)
        assert set(merged.relation_names()) == {"R", "S"}

    def test_repr(self):
        assert "R/2" in repr(Schema([RelationSchema("R", 2)]))


class TestInstance:
    def test_add_and_query_facts(self, people_instance):
        assert people_instance.has_fact("knows", ("alice", "bob"))
        assert not people_instance.has_fact("knows", ("bob", "alice"))
        assert people_instance.size() == 4

    def test_add_fact_validation(self, people_instance):
        with pytest.raises(ReproError):
            people_instance.add_fact("unknown", ("a",))
        with pytest.raises(ReproError):
            people_instance.add_fact("knows", ("a", "b", "c"))

    def test_duplicate_fact_not_added(self, people_instance):
        assert not people_instance.add_fact("knows", ("alice", "bob"))
        assert people_instance.size() == 4

    def test_active_domain_and_nulls(self, people_instance):
        null = MarkedNull(0)
        people_instance.add_fact("lives", ("bob", null))
        assert null in people_instance.active_domain()
        assert people_instance.nulls() == frozenset({null})

    def test_copy_and_equality(self, people_instance):
        clone = people_instance.copy()
        assert clone == people_instance
        clone.add_fact("knows", ("carol", "alice"))
        assert clone != people_instance
        assert people_instance != 7

    def test_substitute(self, people_instance):
        null = MarkedNull(3)
        people_instance.add_fact("lives", ("bob", null))
        replaced = people_instance.substitute({null: "paris"})
        assert replaced.has_fact("lives", ("bob", "paris"))
        assert not replaced.nulls()

    def test_all_facts_sorted(self, people_instance):
        facts = list(people_instance.all_facts())
        assert ("knows", ("alice", "bob")) in facts
        assert len(facts) == 4

    def test_facts_unknown_relation(self, people_instance):
        with pytest.raises(ReproError):
            people_instance.facts("nope")


class TestMarkedNulls:
    def test_equality_is_by_label(self):
        assert MarkedNull(1) == MarkedNull(1)
        assert MarkedNull(1) != MarkedNull(2)
        assert MarkedNull(1) != "constant"

    def test_factory(self):
        make = fresh_null_factory(5)
        assert make() == MarkedNull(5)
        assert make() == MarkedNull(6)

    def test_repr(self):
        assert "5" in repr(MarkedNull(5))


class TestConjunctiveQueries:
    def test_validation(self):
        x = Variable("x")
        with pytest.raises(ReproError):
            ConjunctiveQuery(head=(x,), atoms=())
        with pytest.raises(ReproError):
            ConjunctiveQuery(head=(x,), atoms=(AtomPattern("knows", (Variable("y"), Variable("z"))),))

    def test_single_atom(self, people_instance):
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery(head=(x, y), atoms=(AtomPattern("knows", (x, y)),))
        assert evaluate_cq(people_instance, query) == frozenset(
            {("alice", "bob"), ("bob", "carol")}
        )

    def test_join(self, people_instance):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = ConjunctiveQuery(
            head=(x, z),
            atoms=(AtomPattern("knows", (x, y)), AtomPattern("lives", (y, z))),
        )
        assert evaluate_cq(people_instance, query) == frozenset({("bob", "edinburgh")})

    def test_constant_in_atom(self, people_instance):
        x = Variable("x")
        query = ConjunctiveQuery(
            head=(x,), atoms=(AtomPattern("lives", (x, "edinburgh")),)
        )
        assert evaluate_cq(people_instance, query) == frozenset({("alice",), ("carol",)})

    def test_existential_variables(self, people_instance):
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery(head=(x,), atoms=(AtomPattern("knows", (x, y)),))
        assert query.existential_variables() == frozenset({y})
        assert query.arity == 1

    def test_no_answers(self, people_instance):
        x = Variable("x")
        query = ConjunctiveQuery(head=(x,), atoms=(AtomPattern("lives", (x, "mars")),))
        assert evaluate_cq(people_instance, query) == frozenset()

    def test_repeated_variable_forces_equality(self, people_instance):
        x = Variable("x")
        query = ConjunctiveQuery(head=(x,), atoms=(AtomPattern("knows", (x, x)),))
        assert evaluate_cq(people_instance, query) == frozenset()
        people_instance.add_fact("knows", ("dave", "dave"))
        assert evaluate_cq(people_instance, query) == frozenset({("dave",)})
