"""Tests for tgds, egds and the standard chase."""

from __future__ import annotations

import pytest

from repro.exceptions import ChaseFailure, ReproError
from repro.relational import (
    EGD,
    TGD,
    AtomPattern,
    Instance,
    RelationSchema,
    Schema,
    Variable,
    chase,
    solution_satisfies,
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def _schema(*relations):
    return Schema([RelationSchema(name, arity) for name, arity in relations])


class TestDependencyValidation:
    def test_tgd_needs_body_and_head(self):
        atom = AtomPattern("R", (X, Y))
        with pytest.raises(ReproError):
            TGD(body=(), head=(atom,))
        with pytest.raises(ReproError):
            TGD(body=(atom,), head=())

    def test_tgd_variable_sets(self):
        tgd = TGD(body=(AtomPattern("S", (X, Y)),), head=(AtomPattern("T", (X, Z)),))
        assert tgd.body_variables() == frozenset({X, Y})
        assert tgd.head_variables() == frozenset({X, Z})
        assert tgd.existential_variables() == frozenset({Z})
        assert "→" in str(tgd)

    def test_egd_validation(self):
        with pytest.raises(ReproError):
            EGD(body=(), left=X, right=Y)
        with pytest.raises(ReproError):
            EGD(body=(AtomPattern("R", (X,)),), left=X, right=Y)
        egd = EGD(body=(AtomPattern("N", (X, Y)), AtomPattern("N", (X, Z))), left=Y, right=Z)
        assert "=" in str(egd)


class TestChase:
    def test_fkmp_example(self):
        """The paper's Section 7 illustration: S(x,y) → ∃z T(x,z) ∧ T(z,y)."""
        schema = _schema(("S", 2), ("T", 2))
        source = Instance(schema)
        source.add_fact("S", ("a", "b"))
        source.add_fact("S", ("c", "d"))
        tgd = TGD(
            body=(AtomPattern("S", (X, Y)),),
            head=(AtomPattern("T", (X, Z)), AtomPattern("T", (Z, Y))),
        )
        result = chase(source, tgds=[tgd])
        t_facts = result.facts("T")
        assert len(t_facts) == 4
        nulls = result.nulls()
        assert len(nulls) == 2  # one invented null per S-fact
        # each null connects the right constants
        for null in nulls:
            sources = {fact[0] for fact in t_facts if fact[1] == null}
            targets = {fact[1] for fact in t_facts if fact[0] == null}
            assert sources in ({"a"}, {"c"})
            assert targets in ({"b"}, {"d"})

    def test_chase_is_idempotent_when_head_satisfied(self):
        schema = _schema(("S", 2), ("T", 2))
        source = Instance(schema)
        source.add_fact("S", ("a", "b"))
        source.add_fact("T", ("a", "b"))
        tgd = TGD(body=(AtomPattern("S", (X, Y)),), head=(AtomPattern("T", (X, Y)),))
        result = chase(source, tgds=[tgd])
        assert result.facts("T") == frozenset({("a", "b")})
        assert not result.nulls()

    def test_copy_tgd(self):
        schema = _schema(("E", 2), ("F", 2))
        source = Instance(schema)
        source.add_fact("E", (1, 2))
        source.add_fact("E", (2, 3))
        tgd = TGD(body=(AtomPattern("E", (X, Y)),), head=(AtomPattern("F", (X, Y)),))
        result = chase(source, tgds=[tgd])
        assert result.facts("F") == frozenset({(1, 2), (2, 3)})

    def test_target_tgd_round(self):
        # E(x,y) → F(x,y), then F(x,y) → G(y,x): two rounds needed.
        schema = _schema(("E", 2), ("F", 2), ("G", 2))
        source = Instance(schema)
        source.add_fact("E", ("p", "q"))
        tgds = [
            TGD(body=(AtomPattern("E", (X, Y)),), head=(AtomPattern("F", (X, Y)),)),
            TGD(body=(AtomPattern("F", (X, Y)),), head=(AtomPattern("G", (Y, X)),)),
        ]
        result = chase(source, tgds=tgds)
        assert result.facts("G") == frozenset({("q", "p")})

    def test_egd_merges_nulls(self):
        schema = _schema(("S", 2), ("N", 2))
        source = Instance(schema)
        source.add_fact("S", ("id1", "v1"))
        tgds = [
            TGD(body=(AtomPattern("S", (X, Y)),), head=(AtomPattern("N", (X, Z)),)),
            TGD(body=(AtomPattern("S", (X, Y)),), head=(AtomPattern("N", (X, Y)),)),
        ]
        key = EGD(body=(AtomPattern("N", (X, Y)), AtomPattern("N", (X, Z))), left=Y, right=Z)
        result = chase(source, tgds=tgds, egds=[key])
        assert result.facts("N") == frozenset({("id1", "v1")})
        assert not result.nulls()

    def test_egd_failure_on_distinct_constants(self):
        schema = _schema(("N", 2),)
        source = Instance(schema)
        source.add_fact("N", ("id1", "v1"))
        source.add_fact("N", ("id1", "v2"))
        key = EGD(body=(AtomPattern("N", (X, Y)), AtomPattern("N", (X, Z))), left=Y, right=Z)
        with pytest.raises(ChaseFailure):
            chase(source, tgds=[], egds=[key])

    def test_non_terminating_chase_hits_budget(self):
        # R(x,y) → ∃z R(y,z) generates an infinite chain of nulls.
        schema = _schema(("R", 2),)
        source = Instance(schema)
        source.add_fact("R", ("a", "b"))
        tgd = TGD(body=(AtomPattern("R", (X, Y)),), head=(AtomPattern("R", (Y, Z)),))
        with pytest.raises(ReproError):
            chase(source, tgds=[tgd], max_rounds=5)


class TestSolutionSatisfies:
    def test_satisfying_pair(self):
        schema = _schema(("S", 2), ("T", 2))
        source = Instance(schema)
        source.add_fact("S", ("a", "b"))
        target = Instance(schema)
        target.add_fact("T", ("a", "b"))
        tgd = TGD(body=(AtomPattern("S", (X, Y)),), head=(AtomPattern("T", (X, Y)),))
        assert solution_satisfies(source, target, [tgd])

    def test_violating_pair(self):
        schema = _schema(("S", 2), ("T", 2))
        source = Instance(schema)
        source.add_fact("S", ("a", "b"))
        target = Instance(schema)
        tgd = TGD(body=(AtomPattern("S", (X, Y)),), head=(AtomPattern("T", (X, Y)),))
        assert not solution_satisfies(source, target, [tgd])

    def test_egd_checked(self):
        schema = _schema(("N", 2),)
        source = Instance(schema)
        target = Instance(schema)
        target.add_fact("N", ("id", "v1"))
        target.add_fact("N", ("id", "v2"))
        key = EGD(body=(AtomPattern("N", (X, Y)), AtomPattern("N", (X, Z))), left=Y, right=Z)
        assert not solution_satisfies(source, target, [], [key])

    def test_chase_result_is_a_solution(self):
        schema = _schema(("S", 2), ("T", 2))
        source = Instance(schema)
        source.add_fact("S", ("a", "b"))
        source.add_fact("S", ("b", "c"))
        tgd = TGD(
            body=(AtomPattern("S", (X, Y)),),
            head=(AtomPattern("T", (X, Z)), AtomPattern("T", (Z, Y))),
        )
        result = chase(source, tgds=[tgd])
        assert solution_satisfies(source, result, [tgd])


class TestGraphRelationalView:
    """Round-trips between data graphs and their D_G relational encoding."""

    def test_encode_decode_round_trip(self, toy_graph):
        from repro.datagraph.relational_view import decode_graph, encode_graph

        instance = encode_graph(toy_graph)
        assert instance.has_fact("N", ("alice", "Edinburgh"))
        assert instance.has_fact("E_knows", ("alice", "bob"))
        assert decode_graph(instance, name=toy_graph.name) == toy_graph

    def test_null_values_round_trip(self):
        from repro.datagraph import GraphBuilder, NULL
        from repro.datagraph.relational_view import decode_graph, encode_graph

        graph = GraphBuilder().node("x", NULL).node("y", 1).edge("x", "a", "y").build()
        decoded = decode_graph(encode_graph(graph))
        assert decoded.node("x").is_null
        assert decoded.value_of("y") == 1

    def test_decode_rejects_key_violation(self):
        from repro.datagraph.relational_view import decode_graph, graph_schema
        from repro.exceptions import SerializationError

        instance = Instance(graph_schema(["a"]))
        instance.add_fact("N", ("id1", "v1"))
        instance.add_fact("N", ("id1", "v2"))
        with pytest.raises(SerializationError):
            decode_graph(instance)

    def test_decode_rejects_dangling_edge(self):
        from repro.datagraph.relational_view import decode_graph, graph_schema
        from repro.exceptions import SerializationError

        instance = Instance(graph_schema(["a"]))
        instance.add_fact("N", ("id1", "v1"))
        instance.add_fact("E_a", ("id1", "ghost"))
        with pytest.raises(SerializationError):
            decode_graph(instance)
