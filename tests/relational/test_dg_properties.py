"""Property tests: the ``D_G`` encoding of :mod:`repro.datagraph.relational_view`.

For random graphs, ``encode_graph`` must produce exactly the facts
Section 6 prescribes — one ``N`` tuple and one ``NodeId`` / ``Data``
predicate fact per node, one ``E_a`` tuple per ``a``-edge, nothing else
— and ``decode_graph`` must invert it, including after batched live
mutations (the journal path the SQL backend's store refresh rides on).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import generators
from repro.datagraph.relational_view import (
    DATA_PREDICATE,
    NODE_ID_PREDICATE,
    NODE_RELATION,
    edge_relation_name,
    encode_graph,
    graph_schema,
    round_trip,
)
from repro.datagraph.relational_view import _encode_value


def random_graph_from(seed, size):
    return generators.random_graph(
        num_nodes=size,
        num_edges=size * 2,
        labels=("a", "b"),
        rng=seed,
        domain_size=max(2, size // 3),
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=40),
)
def test_encoding_facts_are_complete_and_exact(seed, size):
    graph = random_graph_from(seed, size)
    instance = encode_graph(graph)

    assert instance.facts(NODE_RELATION) == frozenset(
        (node.id, _encode_value(node.value)) for node in graph.nodes
    )
    assert instance.facts(NODE_ID_PREDICATE) == frozenset(
        (node_id,) for node_id in graph.node_ids
    )
    assert instance.facts(DATA_PREDICATE) == frozenset(
        (_encode_value(node.value),) for node in graph.nodes
    )
    for label in graph.alphabet:
        assert instance.facts(edge_relation_name(label)) == frozenset(
            (source.id, target.id)
            for source, edge_label, target in graph.edges
            if edge_label == label
        )
    # Nothing beyond the D_G relations of the graph's own alphabet.
    assert set(instance.schema.relation_names()) == set(
        graph_schema(graph.alphabet).relation_names()
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=40),
)
def test_round_trip_restores_the_graph(seed, size):
    graph = random_graph_from(seed, size)
    _instance, decoded = round_trip(graph)
    assert decoded == graph


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=2, max_value=30),
)
def test_round_trip_after_batched_mutations(seed, size):
    graph = random_graph_from(seed, size)
    ids = graph.node_ids
    with graph.batch():
        fresh = graph.add_node(f"dg-{seed}", seed % 7)
        graph.add_edge(ids[0], "a", fresh.id)
        graph.add_edge(fresh.id, "b", ids[seed % len(ids)])
        graph.set_value(ids[seed % len(ids)], "patched")
        graph.remove_node(ids[(seed + 1) % len(ids)])

    instance, decoded = round_trip(graph)
    assert decoded == graph
    # The encoding tracked the mutations: the fresh node and its edges
    # are facts, the removed node and its incident edges are not.
    assert (fresh.id,) in instance.facts(NODE_ID_PREDICATE)
    removed = ids[(seed + 1) % len(ids)]
    assert (removed,) not in instance.facts(NODE_ID_PREDICATE)
    for label in graph.alphabet:
        for source, target in instance.facts(edge_relation_name(label)):
            assert removed not in (source, target)
