"""Tests for PCP instances and the bounded solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReductionError
from repro.reductions import (
    SOLVABLE_EXAMPLES,
    UNSOLVABLE_EXAMPLES,
    PCPInstance,
    solve_pcp_bounded,
    verify_pcp_solution,
)


class TestPCPInstance:
    def test_validation(self):
        with pytest.raises(ReductionError):
            PCPInstance(())
        with pytest.raises(ReductionError):
            PCPInstance((("", "a"),))
        with pytest.raises(ReductionError):
            PCPInstance((("a", "c"),))

    def test_accessors(self):
        instance = PCPInstance((("a", "ab"), ("bb", "b")))
        assert instance.size == 2
        assert instance.top(1) == "a"
        assert instance.bottom(2) == "b"
        assert instance.words([1, 2]) == ("abb", "abb")
        assert "a/ab" in str(instance)

    def test_verify_solution(self):
        instance = PCPInstance((("a", "ab"), ("bb", "b")))
        assert verify_pcp_solution(instance, [1, 2])
        assert not verify_pcp_solution(instance, [])
        assert not verify_pcp_solution(instance, [1])
        assert not verify_pcp_solution(instance, [3])
        assert not verify_pcp_solution(instance, [2, 1])


class TestBoundedSolver:
    @pytest.mark.parametrize("name,instance", sorted(SOLVABLE_EXAMPLES.items()))
    def test_solvable_examples_are_solved(self, name, instance):
        solution = solve_pcp_bounded(instance, max_length=6)
        assert solution is not None, name
        assert verify_pcp_solution(instance, solution)

    @pytest.mark.parametrize("name,instance", sorted(UNSOLVABLE_EXAMPLES.items()))
    def test_unsolvable_examples_are_not_solved(self, name, instance):
        assert solve_pcp_bounded(instance, max_length=6) is None, name

    def test_shortest_solution_found(self):
        instance = SOLVABLE_EXAMPLES["identity"]
        assert solve_pcp_bounded(instance, max_length=3) == (1,)

    def test_two_tile_solution(self):
        instance = SOLVABLE_EXAMPLES["two-tiles"]
        solution = solve_pcp_bounded(instance, max_length=4)
        assert solution == (1, 2)

    def test_classic_wikipedia_instance(self):
        instance = SOLVABLE_EXAMPLES["classic"]
        solution = solve_pcp_bounded(instance, max_length=5)
        assert solution is not None
        assert verify_pcp_solution(instance, solution)
        assert len(solution) == 4

    def test_budget_guard(self):
        # an instance whose overhang keeps growing exercises the state guard
        instance = PCPInstance((("ab", "a"), ("ba", "b"), ("aa", "a"), ("bb", "b")))
        with pytest.raises(ReductionError):
            solve_pcp_bounded(instance, max_length=60, max_states=50)

    def test_bound_respected(self):
        # the classic instance needs 4 tiles; with max_length 2 nothing is found
        instance = SOLVABLE_EXAMPLES["classic"]
        assert solve_pcp_bounded(instance, max_length=2) is None

    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="ab", min_size=1, max_size=3),
                st.text(alphabet="ab", min_size=1, max_size=3),
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_solver_output_is_always_a_real_solution(self, tiles):
        instance = PCPInstance(tuple(tiles))
        try:
            solution = solve_pcp_bounded(instance, max_length=5, max_states=20_000)
        except ReductionError:
            return  # state budget exceeded: nothing to check
        if solution is not None:
            assert verify_pcp_solution(instance, solution)
