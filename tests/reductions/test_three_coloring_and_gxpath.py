"""Tests for the Proposition 3 and Theorem 6 gadgets."""

from __future__ import annotations

import pytest

from repro.core import certain_answers_naive, is_solution
from repro.datapaths import count_inequality_tests
from repro.exceptions import ReductionError
from repro.gxpath import has_non_repeating_property, node_holds, tree_root
from repro.reductions import (
    SOLVABLE_EXAMPLES,
    UndirectedGraph,
    complete_graph_k4,
    gadget_certain_by_coloring_adversary,
    is_three_colorable,
    odd_cycle,
    pcp_tree_encoding,
    petersen_fragment,
    solution_extension,
    solve_pcp_bounded,
    structure_error_formula,
    theorem6_mapping,
    three_coloring_gadget,
    triangle,
)


class TestThreeColoringInputs:
    def test_graph_validation(self):
        with pytest.raises(ReductionError):
            UndirectedGraph("ab", [("a", "a")])
        with pytest.raises(ReductionError):
            UndirectedGraph("ab", [("a", "c")])
        with pytest.raises(ReductionError):
            odd_cycle(4)

    def test_brute_force_colorability(self):
        assert is_three_colorable(triangle())
        assert is_three_colorable(odd_cycle(5))
        assert not is_three_colorable(complete_graph_k4())
        assert not is_three_colorable(petersen_fragment())


class TestThreeColoringGadget:
    def test_gadget_shape(self):
        source, mapping, query, (start, finish) = three_coloring_gadget(triangle())
        assert mapping.is_lav()
        assert mapping.is_relational()
        assert count_inequality_tests(query.expression) == 3
        assert source.has_node(start) and source.has_node(finish)

    def test_colored_target_is_solution(self):
        graph = triangle()
        source, mapping, query, _ = three_coloring_gadget(graph)
        from repro.reductions.three_coloring import _materialise_coloring

        colouring = {"x": "colour:red", "y": "colour:green", "z": "colour:blue"}
        target = _materialise_coloring(source, graph, colouring)
        assert is_solution(mapping, source, target)

    @pytest.mark.parametrize(
        "builder,expected_colorable",
        [(triangle, True), (odd_cycle, True), (complete_graph_k4, False), (petersen_fragment, False)],
    )
    def test_certainty_matches_colorability(self, builder, expected_colorable):
        graph = builder()
        assert is_three_colorable(graph) is expected_colorable
        certain = gadget_certain_by_coloring_adversary(graph)
        # (start, finish) is certain iff the graph is NOT 3-colourable
        assert certain is (not expected_colorable)

    def test_generic_algorithm_agrees_on_triangle(self):
        """The library's exact certain-answer algorithm agrees with the gadget shortcut."""
        graph = triangle()
        source, mapping, query, (start, finish) = three_coloring_gadget(graph)
        answers = certain_answers_naive(mapping, source, query, budget=50_000)
        pair = (source.node(start), source.node(finish))
        assert (pair in answers) is (not is_three_colorable(graph))
        assert (pair in answers) is gadget_certain_by_coloring_adversary(graph)


class TestTheorem6Gadget:
    @pytest.fixture(scope="class")
    def instance(self):
        return SOLVABLE_EXAMPLES["two-tiles"]

    def test_tree_encoding_preconditions(self, instance):
        tree = pcp_tree_encoding(instance)
        assert tree_root(tree) == "start"
        assert has_non_repeating_property(tree)
        values = [node.value for node in tree.nodes]
        assert len(values) == len(set(values))

    def test_tile_subtrees(self, instance):
        tree = pcp_tree_encoding(instance)
        # each tile root hangs off the t-path and has left/right chains
        assert tree.has_edge("start", "t", "I1")
        assert tree.has_edge("I1", "t", "I2")
        assert any(label == "left" for label, _ in tree.successors("I1"))
        assert any(label == "right" for label, _ in tree.successors("I1"))
        # the left chain of tile 1 spells u_1
        letters = []
        current = "I1"
        while True:
            nexts = dict((label, node) for label, node in tree.successors(current))
            if "left" not in nexts:
                break
            current = nexts["left"].id
            letter_edges = [label for label, _ in tree.successors(current) if label in {"a", "b"}]
            letters.extend(letter_edges)
        assert "".join(letters) == instance.top(1)

    def test_copy_mapping_class(self):
        mapping = theorem6_mapping()
        assert mapping.is_lav() and mapping.is_gav() and mapping.is_relational()

    def test_solution_extension_contains_source(self, instance):
        solution = solve_pcp_bounded(instance, max_length=4)
        tree = pcp_tree_encoding(instance)
        extended = solution_extension(instance, solution)
        assert extended.contains_graph(tree)
        # the extension is a solution of the copy mapping for the tree
        assert is_solution(theorem6_mapping(), tree, extended)

    def test_extension_rejects_non_solutions(self, instance):
        with pytest.raises(ReductionError):
            solution_extension(instance, [1, 1, 1])

    def test_error_formula_behaviour(self, instance):
        solution = solve_pcp_bounded(instance, max_length=4)
        tree = pcp_tree_encoding(instance)
        extension = solution_extension(instance, solution)
        phi = structure_error_formula()
        # the bare source tree has no solution section: error detected at the root
        assert node_holds(tree, phi, "start")
        # the well-formed extension falsifies every checked error pattern
        assert not node_holds(extension, phi, "start")

    def test_error_formula_detects_out_of_sync_sections(self, instance):
        solution = solve_pcp_bounded(instance, max_length=4)
        extension = solution_extension(instance, solution)
        # desynchronise: change the first verification id value
        extension.set_value("verify:0:id0", "corrupted")
        phi = structure_error_formula()
        assert node_holds(extension, phi, "start")

    def test_error_formula_detects_missing_verification(self, instance):
        solution = solve_pcp_bounded(instance, max_length=4)
        extension = solution_extension(instance, solution)
        # remove the verification branch entirely
        to_remove = [node.id for node in extension.nodes if str(node.id).startswith("verify:")]
        for node_id in to_remove:
            extension.remove_node(node_id)
        phi = structure_error_formula()
        assert node_holds(extension, phi, "start")
