"""Tests for the Theorem 1 gadget (PCP → certain answering of equality RPQs)."""

from __future__ import annotations

import pytest

from repro.core import is_solution
from repro.exceptions import ReductionError
from repro.query import evaluate_data_rpq, evaluate_rpq, rpq
from repro.reductions import (
    SOLVABLE_EXAMPLES,
    THEOREM1_ALPHABET,
    decode_witness,
    pcp_source_graph,
    repetition_error_query,
    solution_witness_graph,
    solve_pcp_bounded,
    structural_error_query,
    theorem1_mapping,
)


@pytest.fixture(scope="module")
def instance():
    return SOLVABLE_EXAMPLES["two-tiles"]


@pytest.fixture(scope="module")
def solution(instance):
    found = solve_pcp_bounded(instance, max_length=4)
    assert found is not None
    return found


class TestSourceGraph:
    def test_path_structure(self, instance):
        source = pcp_source_graph(instance)
        assert source.has_node("start")
        assert source.has_node("end")
        # the source is a single path: every node has out-degree ≤ 1
        assert all(source.out_degree(node.id) <= 1 for node in source.nodes)
        # start -i-> input
        assert source.has_edge("start", "i", "input")
        # end is reached by the # edge
        assert any(label == "#" for label, _ in source.predecessors("end"))

    def test_all_values_distinct(self, instance):
        source = pcp_source_graph(instance)
        values = [node.value for node in source.nodes]
        assert len(values) == len(set(values))

    def test_tile_sections_present(self, instance):
        source = pcp_source_graph(instance)
        for r in range(1, instance.size + 1):
            assert source.has_node(f"tile{r}:start")
            assert source.has_node(f"tile{r}:sep")
        # letters of the first tile appear as edge labels along the path
        labels = {label for _, label, _ in source.edges}
        assert "a" in labels or "b" in labels

    def test_encodes_tile_words(self, instance):
        source = pcp_source_graph(instance)
        # walking from tile r start: the labels until 'sep' spell u_r
        for r in range(1, instance.size + 1):
            current = f"tile{r}:start"
            word = []
            while True:
                label, node = next(iter(source.successors(current)))
                if label == "sep":
                    break
                word.append(label)
                current = node.id
            assert "".join(word) == instance.top(r)


class TestMappingClass:
    def test_minimal_theorem1_class(self):
        mapping = theorem1_mapping()
        assert mapping.is_lav()
        assert mapping.is_lav_gav_relational_reachability()
        assert not mapping.is_relational()  # the reachability rule is not a word
        assert mapping.is_relational_reachability()

    def test_copy_rules_and_reachability_rule(self):
        mapping = theorem1_mapping()
        reach_rules = [rule for rule in mapping if rule.name == "reach-#"]
        assert len(reach_rules) == 1
        assert reach_rules[0].is_reachability_rule(THEOREM1_ALPHABET)
        assert len(mapping) == 7


class TestWitnessGraph:
    def test_witness_is_a_solution(self, instance, solution):
        source = pcp_source_graph(instance)
        witness = solution_witness_graph(instance, solution)
        assert is_solution(theorem1_mapping(), source, witness)

    def test_copy_of_source_alone_is_not_a_solution(self, instance):
        """Without a replacement for the # edge the reachability rule fails."""
        source = pcp_source_graph(instance)
        broken = source.copy()
        anchor = next(
            node.id for node in source.nodes for label, succ in source.successors(node.id) if label == "#"
        )
        broken.remove_edge(anchor, "#", "end")
        assert not is_solution(theorem1_mapping(), source, broken)

    def test_round_trip_decoding(self, instance, solution):
        witness = solution_witness_graph(instance, solution)
        assert decode_witness(witness) == tuple(solution)

    def test_invalid_solution_rejected(self, instance):
        with pytest.raises(ReductionError):
            solution_witness_graph(instance, [2, 2, 2])

    def test_decode_rejects_source_graph(self, instance):
        with pytest.raises(ReductionError):
            decode_witness(pcp_source_graph(instance))

    def test_verification_section_spells_common_word(self, instance, solution):
        witness = solution_witness_graph(instance, solution)
        # follow the verification chain and read off the letters
        current = "verify:start"
        letters = []
        while True:
            successors = list(witness.successors(current))
            if not successors:
                break
            label, node = successors[0]
            if label in {"a", "b"}:
                letters.append(label)
            if label == "#":
                break
            current = node.id
        top, bottom = instance.words(solution)
        assert "".join(letters) == top == bottom


class TestErrorQueries:
    def test_structural_error_absent_on_witness(self, instance, solution):
        witness = solution_witness_graph(instance, solution)
        start, end = witness.node("start"), witness.node("end")
        assert (start, end) not in evaluate_data_rpq(witness, structural_error_query())

    def test_structural_error_detected_on_malformed_witness(self, instance, solution):
        witness = solution_witness_graph(instance, solution)
        # malform it: make the s edge jump directly to the verification section
        witness.add_edge("sol:start", "v", "verify:start")
        answers = evaluate_data_rpq(witness, structural_error_query())
        assert any(left.id == "solution-anchor" for left, _ in answers)

    def test_repetition_error_absent_on_witness(self, instance, solution):
        witness = solution_witness_graph(instance, solution)
        answers = evaluate_data_rpq(witness, repetition_error_query())
        # no pair whose witness path lies after the v separator repeats a value
        assert not any(left.id.startswith("sol:") and left.id.endswith(":close") for left, _ in answers)

    def test_repetition_error_detected_when_values_repeat(self, instance, solution):
        witness = solution_witness_graph(instance, solution)
        # duplicate a data value inside the verification section
        verify_nodes = [node for node in witness.nodes if str(node.id).startswith("verify:") and node.id != "verify:start"]
        assert len(verify_nodes) >= 2
        witness.set_value(verify_nodes[0].id, "dup")
        witness.set_value(verify_nodes[-1].id, "dup")
        answers = evaluate_data_rpq(witness, repetition_error_query())
        assert answers  # the repetition is now detectable


class TestReductionCorrespondence:
    """PCP solvable ⇔ a well-formed witness solution exists (bounded check)."""

    @pytest.mark.parametrize("name", sorted(SOLVABLE_EXAMPLES))
    def test_solvable_instances_admit_witnesses(self, name):
        instance = SOLVABLE_EXAMPLES[name]
        solution = solve_pcp_bounded(instance, max_length=6)
        assert solution is not None
        witness = solution_witness_graph(instance, solution)
        assert is_solution(theorem1_mapping(), pcp_source_graph(instance), witness)

    def test_reachability_certain_answer_start_end(self, instance):
        """(start, end) is always a certain answer of plain reachability."""

        source = pcp_source_graph(instance)
        sigma = "|".join(label for label in THEOREM1_ALPHABET)
        # the reachability rule forces end to stay reachable from the anchor
        witness = solution_witness_graph(instance, solve_pcp_bounded(instance, max_length=4))
        answers = evaluate_rpq(witness, rpq(f"({sigma})*"))
        assert (witness.node("start"), witness.node("end")) in answers
