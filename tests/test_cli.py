"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import GraphBuilder, graph_to_json
from repro.cli import main
from repro.datagraph import graph_from_json


@pytest.fixture
def graph_file(tmp_path):
    graph = (
        GraphBuilder(name="cli-src")
        .node("a", "v1")
        .node("b", "v1")
        .node("c", "v2")
        .edge("a", "r", "b")
        .edge("b", "r", "c")
        .build()
    )
    path = tmp_path / "graph.json"
    path.write_text(graph_to_json(graph), encoding="utf-8")
    return path


@pytest.fixture
def mapping_file(tmp_path):
    path = tmp_path / "mapping.json"
    path.write_text(json.dumps({"name": "cli-map", "rules": [["r", "t.t"]]}), encoding="utf-8")
    return path


class TestInfoAndEvaluate:
    def test_info(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        output = capsys.readouterr().out
        assert "3 nodes" in output and "alphabet" in output

    def test_evaluate_rpq(self, graph_file, capsys):
        assert main(["evaluate", str(graph_file), "--rpq", "r.r"]) == 0
        output = capsys.readouterr().out
        assert "a (v1)  ->  c (v2)" in output
        assert "1 answer(s)" in output

    def test_evaluate_ree(self, graph_file, capsys):
        assert main(["evaluate", str(graph_file), "--ree", "(r)="]) == 0
        output = capsys.readouterr().out
        assert "a (v1)  ->  b (v1)" in output

    def test_evaluate_rem(self, graph_file, capsys):
        assert main(["evaluate", str(graph_file), "--rem", "!x.(r[x!=])+"]) == 0
        output = capsys.readouterr().out
        assert "answer(s)" in output

    def test_missing_file(self, capsys):
        assert main(["info", "no-such-file.json"]) == 1

    def test_evaluate_crpq(self, graph_file, capsys):
        assert main([
            "evaluate", str(graph_file), "--crpq", "x, z :- (x, r, y), (y, r, z)",
        ]) == 0
        output = capsys.readouterr().out
        assert "a (v1)  ->  c (v2)" in output
        assert "1 answer(s)" in output

    def test_evaluate_crpq_json(self, graph_file, capsys):
        assert main([
            "evaluate", str(graph_file), "--crpq", ":- (x, r.r, y)", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "crpq" and payload["count"] == 1

    def test_explain_prints_the_join_plan_instead_of_answers(self, graph_file, capsys):
        assert main([
            "evaluate", str(graph_file), "--crpq", "x, z :- (x, r+, y), (y, r, z)",
            "--explain",
        ]) == 0
        output = capsys.readouterr().out
        assert "join order:" in output
        assert "HashJoin" in output and "SeededScan" in output
        assert "answer(s)" not in output

    def test_explain_other_dialects(self, graph_file, capsys):
        assert main(["evaluate", str(graph_file), "--rpq", "r.r", "--explain"]) == 0
        assert "NFA" in capsys.readouterr().out

    def test_explain_rejects_json(self, graph_file, capsys):
        assert main([
            "evaluate", str(graph_file), "--crpq", ":- (x, r, y)", "--explain", "--json",
        ]) == 1
        assert "drop --json" in capsys.readouterr().err

    def test_crpq_parse_error_is_reported(self, graph_file, capsys):
        assert main(["evaluate", str(graph_file), "--crpq", "x, z (x, r, y)"]) == 1
        assert "error" in capsys.readouterr().err

    def test_certain_has_no_crpq_flag(self, graph_file, mapping_file, capsys):
        with pytest.raises(SystemExit):
            main(["certain", str(graph_file), str(mapping_file), "--crpq", ":- (x, t, y)"])

    @pytest.mark.parametrize("policy", ["sequential", "thread", "process", "intra-query"])
    def test_evaluate_policies_agree(self, graph_file, capsys, policy):
        """Every --policy returns the sequential answers (possibly reordered pools)."""
        assert main(["evaluate", str(graph_file), "--rpq", "r.r"]) == 0
        expected = capsys.readouterr().out
        assert main([
            "evaluate", str(graph_file), "--rpq", "r.r", "--policy", policy, "--workers", "2",
        ]) == 0
        assert capsys.readouterr().out == expected

    def test_evaluate_rejects_bad_workers(self, graph_file, capsys):
        assert main([
            "evaluate", str(graph_file), "--rpq", "r", "--policy", "intra-query",
            "--workers", "0",
        ]) == 1
        error = capsys.readouterr().err
        assert "--workers must be positive" in error and "error" in error

    @pytest.mark.parametrize("mode", ["blocks", "sharded"])
    def test_intra_query_modes_agree(self, graph_file, capsys, mode):
        """--intra-query selects the driver (and implies the policy) for
        every dialect, sequential answers either way."""
        for flag, text in (("--rpq", "r.r"), ("--rem", "!x.(r[x!=])+"), ("--gxpath-path", "r*")):
            assert main(["evaluate", str(graph_file), flag, text]) == 0
            expected = capsys.readouterr().out
            assert main([
                "evaluate", str(graph_file), flag, text,
                "--intra-query", mode, "--num-shards", "2",
            ]) == 0
            assert capsys.readouterr().out == expected

    def test_intra_query_threshold_is_threaded_through(self, graph_file, capsys):
        # A threshold above the graph size keeps evaluation sequential but
        # must still be accepted and produce the same answers.
        assert main(["evaluate", str(graph_file), "--rpq", "r.r"]) == 0
        expected = capsys.readouterr().out
        assert main([
            "evaluate", str(graph_file), "--rpq", "r.r", "--policy", "intra-query",
            "--intra-query-threshold", "100",
        ]) == 0
        assert capsys.readouterr().out == expected

    def test_intra_query_flags_require_the_intra_query_policy(self, graph_file, capsys):
        assert main([
            "evaluate", str(graph_file), "--rpq", "r", "--policy", "thread",
            "--num-shards", "2",
        ]) == 1
        assert "--num-shards" in capsys.readouterr().err

    def test_rejects_bad_shard_counts(self, graph_file, capsys):
        assert main([
            "evaluate", str(graph_file), "--rpq", "r", "--intra-query", "sharded",
            "--num-shards", "0",
        ]) == 1
        assert "--num-shards must be positive" in capsys.readouterr().err


class TestCertainAndExchange:
    def test_certain_answers(self, graph_file, mapping_file, capsys):
        assert main(["certain", str(graph_file), str(mapping_file), "--rpq", "t.t"]) == 0
        output = capsys.readouterr().out
        assert "a (v1)  ->  b (v1)" in output
        assert "2 answer(s)" in output

    def test_certain_answers_with_method(self, graph_file, mapping_file, capsys):
        assert main(
            ["certain", str(graph_file), str(mapping_file), "--ree", "(t.t)=", "--method", "naive"]
        ) == 0
        output = capsys.readouterr().out
        assert "a (v1)  ->  b (v1)" in output

    def test_exchange_to_file(self, graph_file, mapping_file, tmp_path, capsys):
        target_path = tmp_path / "target.json"
        assert main(
            ["exchange", str(graph_file), str(mapping_file), "--policy", "nulls", "-o", str(target_path)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        target = graph_from_json(target_path.read_text(encoding="utf-8"))
        assert len(target.null_nodes()) == 2

    def test_exchange_to_stdout(self, graph_file, mapping_file, capsys):
        assert main(["exchange", str(graph_file), str(mapping_file), "--policy", "fresh"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"]

    def test_bad_mapping_payload(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rules": "nope"}), encoding="utf-8")
        assert main(["certain", str(graph_file), str(bad), "--rpq", "t"]) == 1
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_runs_a_small_experiment(self, capsys):
        assert main(["experiment", "e8"]) == 0
        output = capsys.readouterr().out
        assert "E8" in output and "agree" in output

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err
