"""Tests for data RPQ evaluation on data graphs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import NULL, DataGraph, GraphBuilder, enumerate_paths, generators
from repro.datapaths import parse_ree, parse_rem, ree_matches, rem_matches
from repro.exceptions import EvaluationError
from repro.query import data_path_query, data_rpq_holds, equality_rpq, evaluate_data_rpq, memory_rpq


def _ids(pairs):
    return {(source.id, target.id) for source, target in pairs}


@pytest.fixture
def value_graph() -> DataGraph:
    """A small graph with repeated data values for equality tests.

    n0(1) -a-> n1(2) -a-> n2(1) -b-> n3(3) -a-> n4(2)
    plus a shortcut n1 -b-> n4 and a loop n2 -a-> n0.
    """
    return (
        GraphBuilder(name="values")
        .node("n0", 1)
        .node("n1", 2)
        .node("n2", 1)
        .node("n3", 3)
        .node("n4", 2)
        .edge("n0", "a", "n1")
        .edge("n1", "a", "n2")
        .edge("n2", "b", "n3")
        .edge("n3", "a", "n4")
        .edge("n1", "b", "n4")
        .edge("n2", "a", "n0")
        .build()
    )


class TestDataRPQWrappers:
    def test_equality_rpq(self):
        query = equality_rpq("(a.b)=")
        assert query.is_equality_rpq()
        assert not query.is_memory_rpq()
        assert query.is_data_path_query()
        assert query.fixed_length() == 2
        assert query.arity == 2
        assert str(query)

    def test_memory_rpq(self):
        query = memory_rpq("!x.(a[x!=])+")
        assert query.is_memory_rpq()
        assert query.uses_inequality()
        assert query.fixed_length() is None
        assert query.labels() == frozenset({"a"})

    def test_data_path_query_validation(self):
        assert data_path_query("(a.b)!=").is_data_path_query()
        with pytest.raises(ValueError):
            data_path_query("a|b")

    def test_unknown_engine_rejected(self, value_graph):
        with pytest.raises(EvaluationError):
            evaluate_data_rpq(value_graph, equality_rpq("a"), engine="bogus")

    def test_algebraic_engine_rejects_rem(self, value_graph):
        with pytest.raises(EvaluationError):
            evaluate_data_rpq(value_graph, memory_rpq("a"), engine="algebraic")


class TestEqualityRPQEvaluation:
    def test_plain_letter(self, value_graph):
        answers = _ids(evaluate_data_rpq(value_graph, equality_rpq("a")))
        assert ("n0", "n1") in answers
        assert ("n2", "n3") not in answers

    def test_equal_endpoints(self, value_graph):
        # (a.a)= : 2-step a-paths returning to the same data value.
        answers = _ids(evaluate_data_rpq(value_graph, equality_rpq("(a.a)=")))
        assert ("n0", "n2") in answers  # values 1 ... 1
        assert ("n2", "n1") not in answers

    def test_not_equal_endpoints(self, value_graph):
        answers = _ids(evaluate_data_rpq(value_graph, equality_rpq("(a.b)!=")))
        assert ("n0", "n4") in answers  # 1 vs 2
        assert ("n1", "n3") in answers  # 2 vs 3

    def test_repeated_value_reachability(self, value_graph):
        # Σ* (Σ+)= Σ* : pairs connected by a path on which some value repeats.
        query = equality_rpq("(a|b)* . ((a|b)+)= . (a|b)*")
        answers = _ids(evaluate_data_rpq(value_graph, query))
        assert ("n0", "n3") in answers  # via n0(1) a n1 a n2(1) b n3
        assert ("n3", "n4") not in answers

    def test_star_includes_identity(self, value_graph):
        answers = _ids(evaluate_data_rpq(value_graph, equality_rpq("a*")))
        for node in value_graph.node_ids:
            assert (node, node) in answers

    def test_null_semantics(self):
        g = (
            GraphBuilder()
            .node("x", NULL)
            .node("y", NULL)
            .node("z", 5)
            .edge("x", "a", "y")
            .edge("y", "a", "z")
            .build()
        )
        query = equality_rpq("(a)=")
        plain = _ids(evaluate_data_rpq(g, query))
        assert ("x", "y") in plain  # NULL == NULL at the Python level
        with_nulls = _ids(evaluate_data_rpq(g, query, null_semantics=True))
        assert with_nulls == set()
        neq = equality_rpq("(a)!=")
        assert ("y", "z") not in _ids(evaluate_data_rpq(g, neq, null_semantics=True))


class TestMemoryRPQEvaluation:
    def test_all_values_differ_from_first(self, value_graph):
        query = memory_rpq("!x.(a[x!=])+")
        answers = _ids(evaluate_data_rpq(value_graph, query))
        assert ("n0", "n1") in answers  # 1 -> 2
        assert ("n0", "n2") not in answers  # 1 a 2 a 1 repeats the first value

    def test_memory_rpq_with_equality(self, value_graph):
        query = memory_rpq("!x.(a.a)[x=]")
        answers = _ids(evaluate_data_rpq(value_graph, query))
        # n0(1) -a-> n1(2) -a-> n2(1): first and last values coincide.
        assert ("n0", "n2") in answers
        # n1(2) -a-> n2(1) -a-> n0(1): values 2 vs 1 differ, so excluded.
        assert ("n1", "n0") not in answers

    def test_engines_agree_on_ree_queries(self, value_graph):
        for text in ("a", "(a.a)=", "(a.b)!=", "(a|b)* . ((a|b)+)= . (a|b)*", "a*"):
            query = equality_rpq(text)
            algebraic = _ids(evaluate_data_rpq(value_graph, query, engine="algebraic"))
            automaton = _ids(evaluate_data_rpq(value_graph, query, engine="automaton"))
            assert algebraic == automaton, text

    def test_holds_helper(self, value_graph):
        assert data_rpq_holds(value_graph, equality_rpq("(a.a)="), "n0", "n2")
        assert not data_rpq_holds(value_graph, equality_rpq("(a.a)!="), "n0", "n2")


class TestAgainstPathEnumeration:
    """Both engines must agree with brute-force path enumeration on small graphs."""

    QUERIES_REE = ["a", "(a.a)=", "(a.b)!=", "(a|b)* . ((a|b)+)= . (a|b)*"]
    QUERIES_REM = ["!x.(a[x!=])+", "!x.((a|b)+[x=])"]

    @pytest.mark.parametrize("text", QUERIES_REE)
    @given(seed=st.integers(min_value=1, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_ree_queries(self, text, seed):
        graph = generators.random_graph(5, 8, labels=("a", "b"), rng=seed, domain_size=3)
        expression = parse_ree(text)
        expected = set()
        for source in graph.node_ids:
            for path in enumerate_paths(graph, source, max_length=4):
                if ree_matches(expression, path.data_path()):
                    expected.add((source, path.target.id))
        answers = _ids(evaluate_data_rpq(graph, equality_rpq(text)))
        # enumeration is truncated at length 4, so expected ⊆ answers;
        # and any answer over a short path must be enumerated: check both ways
        assert expected <= answers
        short_answers = {
            (source, target)
            for source, target in answers
            if any(
                ree_matches(expression, path.data_path())
                for path in enumerate_paths(graph, source, max_length=4, target=target)
            )
        }
        assert short_answers <= answers

    @pytest.mark.parametrize("text", QUERIES_REM)
    @given(seed=st.integers(min_value=1, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_rem_queries(self, text, seed):
        graph = generators.random_graph(5, 7, labels=("a", "b"), rng=seed, domain_size=3)
        expression = parse_rem(text)
        expected = set()
        for source in graph.node_ids:
            for path in enumerate_paths(graph, source, max_length=4):
                if rem_matches(expression, path.data_path()):
                    expected.add((source, path.target.id))
        answers = _ids(evaluate_data_rpq(graph, memory_rpq(text)))
        assert expected <= answers
