"""Tests for RPQ objects and their evaluation on data graphs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import GraphBuilder
from repro.datagraph import generators
from repro.query import (
    RPQ,
    atomic_rpq,
    evaluate_rpq,
    evaluate_rpq_from,
    evaluate_word,
    reachability_rpq,
    rpq,
    rpq_holds,
    witness_path_labels,
    word_rpq,
)


def _ids(pairs):
    return {(source.id, target.id) for source, target in pairs}


class TestRPQClassification:
    def test_atomic(self):
        query = atomic_rpq("knows")
        assert query.is_atomic()
        assert query.as_letter() == "knows"
        assert query.is_word()
        assert query.arity == 2

    def test_word(self):
        query = word_rpq(["a", "b"])
        assert not query.is_atomic()
        assert query.as_letter() is None
        assert query.as_word() == ("a", "b")
        assert query.is_finite()

    def test_reachability(self):
        query = reachability_rpq(["a", "b"])
        assert query.is_reachability(["a", "b"])
        assert not query.is_word()
        assert query.finite_language() is None

    def test_from_text(self):
        query = rpq("(a|b)*.c")
        assert query.letters() == frozenset({"a", "b", "c"})
        assert not query.is_reachability()
        assert str(query)


class TestEvaluation:
    def test_atomic_is_edge_relation(self, toy_graph):
        answers = _ids(evaluate_rpq(toy_graph, atomic_rpq("worksAt")))
        assert answers == {("alice", "uni"), ("bob", "uni")}

    def test_word_query(self, toy_graph):
        answers = _ids(evaluate_rpq(toy_graph, word_rpq(["knows", "worksAt"])))
        assert answers == {("dave", "uni"), ("alice", "uni")}

    def test_star_query_includes_empty_path(self, toy_graph):
        answers = _ids(evaluate_rpq(toy_graph, rpq("knows*")))
        assert ("alice", "alice") in answers
        assert ("alice", "dave") in answers
        assert ("uni", "uni") in answers
        assert ("alice", "uni") not in answers

    def test_reachability_query(self, toy_graph):
        answers = _ids(evaluate_rpq(toy_graph, reachability_rpq(["knows", "worksAt"])))
        assert ("alice", "uni") in answers
        assert ("uni", "alice") not in answers

    def test_union_and_plus(self, toy_graph):
        answers = _ids(evaluate_rpq(toy_graph, rpq("knows.knows | worksAt")))
        assert ("alice", "carol") in answers
        assert ("alice", "uni") in answers
        assert ("alice", "bob") not in answers

    def test_evaluate_from_source(self, toy_graph):
        nodes = {node.id for node in evaluate_rpq_from(toy_graph, rpq("knows+"), "alice")}
        assert nodes == {"bob", "carol", "dave", "alice"}

    def test_rpq_holds(self, toy_graph):
        assert rpq_holds(toy_graph, rpq("knows.knows"), "alice", "carol")
        assert not rpq_holds(toy_graph, rpq("knows"), "alice", "carol")

    def test_empty_graph_portions(self):
        g = GraphBuilder().node("isolated", 1).build()
        assert _ids(evaluate_rpq(g, rpq("a"))) == set()
        assert _ids(evaluate_rpq(g, rpq("a*"))) == {("isolated", "isolated")}

    def test_chain_word_lengths(self, chain_graph_10):
        answers = _ids(evaluate_rpq(chain_graph_10, word_rpq(["a"] * 10)))
        assert answers == {("c0", "c10")}
        assert _ids(evaluate_rpq(chain_graph_10, word_rpq(["a"] * 11))) == set()


class TestEvaluateWordFastPath:
    def test_agrees_with_automaton_on_words(self, toy_graph):
        for labels in (["knows"], ["knows", "knows"], ["knows", "worksAt"], ["worksAt", "knows"]):
            direct = _ids(evaluate_word(toy_graph, labels))
            automaton = _ids(evaluate_rpq(toy_graph, word_rpq(labels)))
            assert direct == automaton

    def test_empty_word(self, toy_graph):
        answers = _ids(evaluate_word(toy_graph, []))
        assert answers == {(node, node) for node in toy_graph.node_ids}

    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs(self, word_length, seed):
        graph = generators.random_graph(6, 12, labels=("a", "b"), rng=seed)
        labels = ["a" if i % 2 == 0 else "b" for i in range(word_length)]
        assert _ids(evaluate_word(graph, labels)) == _ids(evaluate_rpq(graph, word_rpq(labels)))


class TestWitnessPaths:
    def test_witness_for_reachable_pair(self, toy_graph):
        labels = witness_path_labels(toy_graph, rpq("knows+"), "alice", "dave")
        assert labels == ("knows", "knows", "knows")

    def test_witness_for_empty_path(self, toy_graph):
        assert witness_path_labels(toy_graph, rpq("knows*"), "alice", "alice") == ()

    def test_no_witness(self, toy_graph):
        assert witness_path_labels(toy_graph, rpq("worksAt"), "carol", "uni") is None

    def test_witness_is_accepted_by_query(self, toy_graph):
        from repro.regular import matches

        labels = witness_path_labels(toy_graph, rpq("knows.knows|knows.worksAt"), "dave", "uni")
        assert labels is not None
        assert matches("knows.knows|knows.worksAt", labels)


class TestEvaluationOnRandomGraphs:
    """Cross-check the product construction against path enumeration."""

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_against_bounded_enumeration(self, seed):
        from repro.datagraph import enumerate_paths
        from repro.regular import matches

        graph = generators.random_graph(5, 8, labels=("a", "b"), rng=seed)
        expression = "a.(a|b)*.b"
        answers = _ids(evaluate_rpq(graph, rpq(expression)))
        # Every enumerated short witness must be reported by the evaluator.
        for source in graph.node_ids:
            for path in enumerate_paths(graph, source, max_length=4):
                if matches(expression, path.label_word):
                    assert (source, path.target.id) in answers
