"""Tests for conjunctive RPQs and homomorphism-preservation checks."""

from __future__ import annotations

import pytest

from repro.datagraph import NULL, GraphBuilder
from repro.exceptions import EvaluationError
from repro.query import (
    Atom,
    ConjunctiveRPQ,
    equality_rpq,
    evaluate_crpq,
    evaluate_data_rpq,
    evaluate_rpq,
    is_preserved_on,
    rpq,
    violates_homomorphism_preservation,
)


class TestConjunctiveRPQ:
    def test_validation(self):
        with pytest.raises(EvaluationError):
            ConjunctiveRPQ(head=("x",), atoms=())
        with pytest.raises(EvaluationError):
            ConjunctiveRPQ(head=("z",), atoms=(Atom("x", rpq("a"), "y"),))

    def test_variables_and_arity(self):
        query = ConjunctiveRPQ(head=("x", "y"), atoms=(Atom("x", rpq("a"), "y"),))
        assert query.variables() == frozenset({"x", "y"})
        assert query.arity == 2
        assert not query.is_boolean()

    def test_self_loop_atom_only_matches_loops(self, toy_graph):
        """Regression: ``Atom(x, e, x)`` used to admit pairs with
        ``source != target`` (the target assignment silently overwrote
        the source)."""
        from repro.query import evaluate_crpq_naive

        toy_graph.add_edge("carol", "knows", "carol")
        query = ConjunctiveRPQ(head=("x",), atoms=(Atom("x", rpq("knows"), "x"),))
        naive = {row[0].id for row in evaluate_crpq_naive(toy_graph, query)}
        assert naive == {"carol"}
        planned = {row[0].id for row in evaluate_crpq(toy_graph, query)}
        assert planned == {"carol"}

    def test_self_loop_atom_with_bound_variable(self, toy_graph):
        from repro.query import evaluate_crpq_naive

        toy_graph.add_edge("bob", "knows", "bob")
        query = ConjunctiveRPQ(
            head=("x", "y"),
            atoms=(
                Atom("x", rpq("knows"), "y"),
                Atom("y", rpq("knows"), "y"),
            ),
        )
        expected = {("alice", "bob"), ("bob", "bob")}
        assert {(a.id, b.id) for a, b in evaluate_crpq_naive(toy_graph, query)} == expected
        assert {(a.id, b.id) for a, b in evaluate_crpq(toy_graph, query)} == expected

    def test_two_atom_join(self, toy_graph):
        # people who know someone working at the same institution as alice
        query = ConjunctiveRPQ(
            head=("x", "z"),
            atoms=(
                Atom("x", rpq("knows"), "y"),
                Atom("y", rpq("worksAt"), "z"),
            ),
        )
        answers = {(a.id, b.id) for a, b in evaluate_crpq(toy_graph, query)}
        assert ("alice", "uni") in answers
        assert ("dave", "uni") in answers
        assert ("bob", "uni") not in answers

    def test_cycle_pattern(self, toy_graph):
        query = ConjunctiveRPQ(
            head=("x",),
            atoms=(
                Atom("x", rpq("knows"), "y"),
                Atom("y", rpq("knows.knows.knows"), "x"),
            ),
        )
        answers = {tpl[0].id for tpl in evaluate_crpq(toy_graph, query)}
        assert answers == {"alice", "bob", "carol", "dave"}

    def test_boolean_query(self, toy_graph):
        yes = ConjunctiveRPQ(head=(), atoms=(Atom("x", rpq("worksAt"), "y"),))
        assert evaluate_crpq(toy_graph, yes) == frozenset({()})
        no = ConjunctiveRPQ(head=(), atoms=(Atom("x", rpq("worksAt.worksAt"), "y"),))
        assert evaluate_crpq(toy_graph, no) == frozenset()

    def test_data_rpq_atoms(self):
        g = (
            GraphBuilder()
            .node("p1", "london")
            .node("p2", "london")
            .node("p3", "paris")
            .edge("p1", "knows", "p2")
            .edge("p2", "knows", "p3")
            .build()
        )
        query = ConjunctiveRPQ(
            head=("x", "y"),
            atoms=(Atom("x", equality_rpq("(knows)="), "y"),),
        )
        answers = {(a.id, b.id) for a, b in evaluate_crpq(g, query)}
        assert answers == {("p1", "p2")}

    def test_unsatisfiable_join(self, toy_graph):
        query = ConjunctiveRPQ(
            head=("x",),
            atoms=(
                Atom("x", rpq("worksAt"), "y"),
                Atom("y", rpq("knows"), "x"),
            ),
        )
        assert evaluate_crpq(toy_graph, query) == frozenset()


class TestHomomorphismPreservation:
    def _rpq_evaluator(self, text):
        return lambda graph: evaluate_rpq(graph, rpq(text))

    def _ree_evaluator(self, text, null_semantics=True):
        return lambda graph: evaluate_data_rpq(
            graph, equality_rpq(text), null_semantics=null_semantics
        )

    def test_rpq_preserved_under_collapse(self):
        source = GraphBuilder().node("a", NULL).node("b", NULL).node("c", NULL).edge(
            "a", "r", "b"
        ).edge("b", "r", "c").build()
        target = GraphBuilder().node("x", 1).edge("x", "r", "x").build()
        mapping = {"a": "x", "b": "x", "c": "x"}
        assert is_preserved_on(self._rpq_evaluator("r.r"), source, target, mapping)

    def test_data_rpq_preserved_proposition_6(self):
        """Proposition 6 instance: null values may be refined by the homomorphism."""
        source = (
            GraphBuilder()
            .node("u", 7)
            .node("n", NULL)
            .node("v", 7)
            .edge("u", "a", "n")
            .edge("n", "a", "v")
            .build()
        )
        target = (
            GraphBuilder()
            .node("u2", 7)
            .node("m", 3)
            .node("v2", 7)
            .edge("u2", "a", "m")
            .edge("m", "a", "v2")
            .build()
        )
        mapping = {"u": "u2", "n": "m", "v": "v2"}
        evaluator = self._ree_evaluator("(a.a)=")
        assert is_preserved_on(evaluator, source, target, mapping)

    def test_invalid_homomorphism_rejected(self, toy_graph):
        with pytest.raises(EvaluationError):
            violates_homomorphism_preservation(
                self._rpq_evaluator("knows"), toy_graph, toy_graph, {"alice": "bob"}
            )

    def test_negation_style_query_not_preserved(self):
        """A query that is NOT closed under homomorphisms is caught by the check.

        We use "no outgoing r-edge from the target", expressed directly as a
        Python evaluator; collapsing onto a loop breaks it.
        """
        source = GraphBuilder().node("a", 1).node("b", 1).edge("a", "r", "b").build()
        target = GraphBuilder().node("x", 1).edge("x", "r", "x").build()
        mapping = {"a": "x", "b": "x"}

        def sink_pairs(graph):
            return frozenset(
                (s, t)
                for s, _, t in []
            ) | frozenset(
                (graph.node(u), graph.node(v))
                for u in graph.node_ids
                for v in graph.node_ids
                if graph.has_edge(u, "r", v) and graph.out_degree(v) == 0
            )

        counterexample = violates_homomorphism_preservation(sink_pairs, source, target, mapping)
        assert counterexample is not None
        assert counterexample[0].id == "a"

    def test_strict_mode_requires_value_preservation(self):
        source = GraphBuilder().node("a", NULL).build()
        target = GraphBuilder().node("x", 3).build()
        with pytest.raises(EvaluationError):
            violates_homomorphism_preservation(
                self._rpq_evaluator("r"), source, target, {"a": "x"}, null_aware=False
            )
        # but it is fine as a null-aware homomorphism
        assert is_preserved_on(self._rpq_evaluator("r"), source, target, {"a": "x"}, null_aware=True)
