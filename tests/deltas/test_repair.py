"""Delta-driven repair of cached answers: repaired ≡ fresh, always.

The contract under test is acceptance-level: after an insert-only batch
on a warm session, the served answer must be bit-identical to a fresh
evaluation — whether the session repaired the cached relation or fell
back to a recompute.  The maintenance counters then distinguish the two
paths, so each test pins *which* path produced the (always-correct)
answer.
"""

from __future__ import annotations

import pytest

from repro.api import ExecutionPolicy, GraphSession, Query
from repro.datagraph import DataGraph
from repro.engine.partition import GraphPartition
from repro.exceptions import EvaluationError

CHAINS = 10
CHAIN_LENGTH = 12

DIALECT_QUERIES = {
    "rpq": Query.parse("(a|b)+"),
    "ree": Query.parse("((a|b)+)=", dialect="ree"),
    "rem": Query.parse("!x.((a|b)[x!=])+", dialect="rem"),
    "crpq": Query.parse("x, y :- (x, a, z), (z, b, y)", dialect="crpq"),
    "gxpath-node": Query.parse("<a.b>", dialect="gxpath-node"),
    "gxpath-path": Query.parse("a.b", dialect="gxpath-path"),
}

#: Kinds whose full relation the session can repair in place; the rest
#: must recompute (their semantics are not per-source monotone).
REPAIRING = {"rpq", "ree", "rem"}


def chain_graph() -> DataGraph:
    """Disjoint a/b-alternating chains: closures stay chain-local, so a
    small batch touches a small backward closure."""
    graph = DataGraph(name="repair-chains")
    for c in range(CHAINS):
        for i in range(CHAIN_LENGTH):
            graph.add_node(f"k{c}n{i}", i % 3)
        for i in range(CHAIN_LENGTH - 1):
            graph.add_edge(f"k{c}n{i}", "ab"[i % 2], f"k{c}n{i+1}")
    return graph


def fresh_rows(graph: DataGraph, query: Query, null_semantics: bool = False):
    policy = ExecutionPolicy(cache_results=False)
    return GraphSession(graph, policy=policy).run(query, null_semantics).rows()


def shortcut_batch(graph: DataGraph) -> None:
    """A small insert-only batch: one new node and two shortcut edges
    inside chain 0."""
    with graph.batch() as batch:
        batch.add_node("fresh", 1)
        batch.add_edge("k0n3", "a", "fresh")
        batch.add_edge("fresh", "b", "k0n8")


class TestRepairedEqualsFresh:
    @pytest.mark.parametrize("dialect", sorted(DIALECT_QUERIES))
    def test_every_dialect_serves_the_fresh_answer_after_a_batch(self, dialect):
        graph = chain_graph()
        query = DIALECT_QUERIES[dialect]
        session = GraphSession(graph)
        session.run(query).rows()  # warm: populate the result cache
        shortcut_batch(graph)
        served = session.run(query).rows()
        assert served == fresh_rows(graph, query)
        stats = session.maintenance_stats()
        if dialect in REPAIRING:
            assert stats["repairs"] == 1 and stats["recomputes"] == 0
        else:
            assert stats["repairs"] == 0 and stats["recomputes"] == 1

    def test_null_semantics_repairs_independently(self):
        graph = chain_graph()
        query = DIALECT_QUERIES["ree"]
        session = GraphSession(graph)
        session.run(query, null_semantics=True).rows()
        shortcut_batch(graph)
        served = session.run(query, null_semantics=True).rows()
        assert served == fresh_rows(graph, query, null_semantics=True)
        assert session.maintenance_stats()["repairs"] == 1

    def test_removal_batch_falls_back_to_recompute(self):
        graph = chain_graph()
        query = DIALECT_QUERIES["rpq"]
        session = GraphSession(graph)
        session.run(query).rows()
        with graph.batch() as batch:
            batch.remove_edge("k0n5", "b", "k0n6")
        served = session.run(query).rows()
        assert served == fresh_rows(graph, query)
        stats = session.maintenance_stats()
        assert stats["repairs"] == 0 and stats["recomputes"] == 1

    def test_value_change_batch_falls_back_to_recompute(self):
        graph = chain_graph()
        query = DIALECT_QUERIES["rem"]
        session = GraphSession(graph)
        session.run(query).rows()
        with graph.batch() as batch:
            batch.set_value("k0n4", 99)
        served = session.run(query).rows()
        assert served == fresh_rows(graph, query)
        assert session.maintenance_stats()["recomputes"] == 1

    def test_single_op_mutation_breaks_the_lineage(self):
        graph = chain_graph()
        query = DIALECT_QUERIES["rpq"]
        session = GraphSession(graph)
        session.run(query).rows()
        graph.add_edge("k0n0", "a", "k0n2")  # bypasses the batch journal
        served = session.run(query).rows()
        assert served == fresh_rows(graph, query)
        stats = session.maintenance_stats()
        assert stats["repairs"] == 0 and stats["recomputes"] == 1

    def test_wide_delta_exceeds_the_seed_fraction_and_recomputes(self):
        graph = chain_graph()
        query = DIALECT_QUERIES["rpq"]
        session = GraphSession(graph)
        session.run(query).rows()
        # Touch the tail of every chain: the backward closure is the
        # whole graph, so seeding it would cost a full recompute anyway.
        with graph.batch() as batch:
            for c in range(CHAINS):
                batch.add_edge(f"k{c}n0", "a", f"k{c}n{CHAIN_LENGTH - 1}")
        served = session.run(query).rows()
        assert served == fresh_rows(graph, query)
        stats = session.maintenance_stats()
        assert stats["repairs"] == 0 and stats["recomputes"] == 1

    def test_policy_can_disable_repair(self):
        graph = chain_graph()
        query = DIALECT_QUERIES["rpq"]
        session = GraphSession(graph, policy=ExecutionPolicy(delta_repair=False))
        session.run(query).rows()
        shortcut_batch(graph)
        served = session.run(query).rows()
        assert served == fresh_rows(graph, query)
        stats = session.maintenance_stats()
        assert stats["repairs"] == 0 and stats["recomputes"] == 0
        assert stats["lineage"] == []

    def test_consecutive_batches_repair_across_the_composed_delta(self):
        graph = chain_graph()
        query = DIALECT_QUERIES["rpq"]
        session = GraphSession(graph)
        base = graph.version
        session.run(query).rows()
        with graph.batch() as batch:
            batch.add_edge("k1n0", "a", "k1n5")
        with graph.batch() as batch:
            batch.add_edge("k1n5", "b", "k1n9")
        served = session.run(query).rows()
        assert served == fresh_rows(graph, query)
        stats = session.maintenance_stats()
        assert stats["repairs"] == 1
        lineage = stats["lineage"][-1]
        assert lineage["base_version"] == base
        assert lineage["new_version"] == graph.version
        assert lineage["delta_size"] == 2

    def test_run_many_repairs_warm_plans(self):
        graph = chain_graph()
        queries = [DIALECT_QUERIES["rpq"], DIALECT_QUERIES["ree"]]
        session = GraphSession(graph)
        session.run_many(queries)  # eager: warms both entries
        shortcut_batch(graph)
        results = session.run_many(queries)
        for query, result in zip(queries, results):
            assert result.rows() == fresh_rows(graph, query)
        stats = session.maintenance_stats()
        assert stats["repairs"] == 2 and stats["recomputes"] == 0

    def test_lineage_records_plan_and_digest(self):
        graph = chain_graph()
        query = DIALECT_QUERIES["rpq"]
        session = GraphSession(graph)
        session.run(query).rows()
        shortcut_batch(graph)
        delta = graph.journal.deltas()[-1]
        session.run(query).rows()
        (entry,) = session.maintenance_stats()["lineage"]
        assert entry["plan"].startswith("rpq:")
        assert entry["delta_digest"] == delta.digest
        assert entry["delta_size"] == delta.size


class TestPartitionPatching:
    def _partition_edges(self, partition: GraphPartition):
        edges = set()
        for shard in partition.shards:
            for table in (shard._succ, shard._cut):
                for label, by_source in table.items():
                    for source, targets in by_source.items():
                        for target in targets:
                            edges.add((source, label, target))
        return edges

    def test_patched_partition_matches_a_rebuild(self):
        graph = chain_graph()
        partition = GraphPartition.build(graph.label_index(), num_shards=3)
        with graph.batch() as batch:
            batch.add_node("px", 2)
            batch.add_edge("px", "a", "k2n0")
            batch.add_edge("k2n11", "b", "px")
            batch.remove_edge("k2n0", "a", "k2n1")
        partition.apply_delta(batch.delta)
        assert partition.version == graph.version
        assert set(partition.assignment) == set(graph.node_ids)
        shard_nodes = [node for shard in partition.shards for node in shard.nodes]
        assert sorted(shard_nodes, key=repr) == sorted(graph.node_ids, key=repr)
        assert self._partition_edges(partition) == {
            (source.id, label, target.id) for source, label, target in graph.edges
        }

    def test_every_process_computes_the_same_assignment(self):
        # Round-robin placement is deterministic in the delta's node
        # order — the property that lets pool parent and forked workers
        # patch their own copies without exchanging assignments.
        graph = chain_graph()
        one = GraphPartition.build(graph.label_index(), num_shards=4)
        two = GraphPartition.build(graph.label_index(), num_shards=4)
        with graph.batch() as batch:
            for i in range(5):
                batch.add_node(f"rr{i}", i)
        one.apply_delta(batch.delta)
        two.apply_delta(batch.delta)
        assert one.assignment == two.assignment

    def test_node_removal_refuses_to_patch(self):
        graph = chain_graph()
        partition = GraphPartition.build(graph.label_index(), num_shards=3)
        with graph.batch() as batch:
            batch.remove_node("k0n11")
        with pytest.raises(EvaluationError, match="node removals"):
            partition.apply_delta(batch.delta)


class TestPlanRetention:
    """Delta-aware CRPQ plan-cache invalidation: a delta only evicts the
    plans of queries that scan one of its touched labels."""

    QA = Query.parse("x, y :- (x, a.a, z), (z, a*, y)", dialect="crpq")
    QB = Query.parse("x, y :- (x, b, z), (z, b*, y)", dialect="crpq")

    def test_disjoint_delta_retains_plan(self):
        graph = chain_graph()
        session = GraphSession(graph)
        plan_a = session._crpq_plan(self.QA)
        plan_b = session._crpq_plan(self.QB)
        anchor = next(iter(graph.node_ids))
        with graph.batch() as batch:
            batch.add_edge(anchor, "b", anchor)
        # The b-delta retains QA's plan and replans QB.
        assert session._crpq_plan(self.QA) is plan_a
        assert session._crpq_plan(self.QB) is not plan_b
        assert session.maintenance_stats()["plans_retained"] == 1

    def test_node_only_delta_retains_every_plan(self):
        graph = chain_graph()
        session = GraphSession(graph)
        plan_a = session._crpq_plan(self.QA)
        with graph.batch() as batch:
            batch.add_node("retention-node", 1)
        assert session._crpq_plan(self.QA) is plan_a
        assert session.maintenance_stats()["plans_retained"] == 1

    def test_broken_journal_chain_replans(self):
        graph = chain_graph()
        session = GraphSession(graph)
        plan_a = session._crpq_plan(self.QA)
        graph.add_node("gap-node", 1)  # single-op mutation: no journal entry
        assert session._crpq_plan(self.QA) is not plan_a
        assert session.maintenance_stats()["plans_retained"] == 0

    def test_retained_plan_answers_match_fresh(self):
        graph = chain_graph()
        session = GraphSession(graph)
        before = session.run(self.QA).rows()
        assert before == GraphSession(graph).run(self.QA).rows()
        anchor = next(iter(graph.node_ids))
        with graph.batch() as batch:
            batch.add_edge(anchor, "b", anchor)
        after = session.run(self.QA).rows()
        assert session.maintenance_stats()["plans_retained"] >= 1
        assert after == GraphSession(graph).run(self.QA).rows()

    def test_clear_cache_forgets_retention_lineage(self):
        graph = chain_graph()
        session = GraphSession(graph)
        session._crpq_plan(self.QA)
        session.clear_cache()
        with graph.batch() as batch:
            batch.add_node("post-clear", 1)
        session._crpq_plan(self.QA)
        assert session.maintenance_stats()["plans_retained"] == 0
