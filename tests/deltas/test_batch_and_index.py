"""Batch mutation semantics and incremental LabelIndex maintenance.

The property test is the subsystem's executable spec: for random graphs
and random insert-only batches, the index patched in place by the commit
must be indistinguishable from an index rebuilt from scratch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import DataGraph
from repro.datagraph.index import LabelIndex
from repro.exceptions import GraphError

LABELS = ("a", "b", "c")


def chain_graph(communities: int = 3, size: int = 8) -> DataGraph:
    graph = DataGraph()
    for c in range(communities):
        for i in range(size):
            graph.add_node(f"c{c}n{i}", i % 4)
        for i in range(size - 1):
            graph.add_edge(f"c{c}n{i}", LABELS[i % len(LABELS)], f"c{c}n{i+1}")
    return graph


def assert_index_equivalent(patched: LabelIndex, rebuilt: LabelIndex) -> None:
    assert patched.version == rebuilt.version
    assert tuple(patched.nodes) == tuple(rebuilt.nodes)
    assert patched.position == rebuilt.position
    assert patched.values == rebuilt.values
    assert patched.labels >= rebuilt.labels  # patching may retain emptied labels
    # Adjacency rows are semantically sets (evaluation converts them to
    # node-position bitmasks), so compare them order-insensitively.
    def rows(mapping):
        return {key: frozenset(row) for key, row in mapping.items()}

    for label in rebuilt.labels:
        assert rows(patched.successors(label)) == rows(rebuilt.successors(label)), label
        assert rows(patched.predecessors(label)) == rows(rebuilt.predecessors(label)), label


class TestBatchSemantics:
    def test_batch_bumps_version_once_and_journals_the_delta(self):
        graph = chain_graph()
        base = graph.version
        with graph.batch() as batch:
            batch.add_node("new-1", 1)
            batch.add_node("new-2", 2)
            batch.add_edge("new-1", "a", "new-2")
        assert graph.version == base + 1
        delta = batch.delta
        assert delta.base_version == base and delta.new_version == base + 1
        assert len(delta.added_nodes) == 2 and len(delta.added_edges) == 1
        assert graph.journal.composed(base, base + 1) == delta

    def test_empty_batch_does_not_bump(self):
        graph = chain_graph()
        base = graph.version
        with graph.batch() as batch:
            pass
        assert graph.version == base
        assert batch.delta.is_empty
        assert len(graph.journal) == 0

    def test_single_op_mutators_keep_per_op_bumps_and_skip_the_journal(self):
        graph = chain_graph()
        base = graph.version
        graph.add_node("solo", 1)
        graph.add_edge("solo", "a", "c0n0")
        assert graph.version == base + 2
        assert graph.journal.composed(base, base + 2) is None

    def test_rollback_restores_everything(self):
        graph = chain_graph()
        base = graph.version
        nodes_before = {node.id: node.value for node in graph.nodes}
        edges_before = set(graph.edge_set())
        with pytest.raises(RuntimeError, match="boom"):
            with graph.batch() as batch:
                batch.add_node("doomed", 9)
                batch.add_edge("doomed", "a", "c0n0")
                batch.remove_edge("c0n0", "a", "c0n1")
                batch.remove_node("c1n0")
                batch.set_value("c2n0", 99)
                raise RuntimeError("boom")
        assert graph.version == base
        assert {node.id: node.value for node in graph.nodes} == nodes_before
        assert set(graph.edge_set()) == edges_before
        assert batch.delta is None

    def test_batches_do_not_nest_and_do_not_rerun(self):
        graph = chain_graph()
        with graph.batch() as batch:
            with pytest.raises(GraphError, match="nest"):
                with graph.batch():
                    pass
        with pytest.raises(GraphError, match="re-entered"):
            with batch:
                pass

    def test_mid_batch_reads_see_the_pre_batch_index_snapshot(self):
        graph = chain_graph()
        snapshot = graph.label_index()
        with graph.batch() as batch:
            batch.add_node("mid", 1)
            batch.add_edge("mid", "a", "c0n0")
            inside = graph.label_index()
            assert inside.version == snapshot.version
            assert "mid" not in inside.position
        after = graph.label_index()
        assert "mid" in after.position

    def test_apply_replays_a_delta_onto_an_equal_graph(self):
        graph = chain_graph()
        twin = chain_graph()
        with graph.batch() as batch:
            batch.add_node("x", 5)
            batch.add_edge("x", "b", "c0n3")
            batch.remove_edge("c0n0", "a", "c0n1")
        applied = twin.apply(batch.delta)
        assert applied == batch.delta
        assert twin.version == graph.version  # lands on the declared new_version
        assert set(twin.edge_set()) == set(graph.edge_set())

    def test_apply_rejects_a_mismatched_base_version(self):
        graph = chain_graph()
        twin = chain_graph()
        twin.add_node("drift", 1)  # version moved past the delta's base
        with graph.batch() as batch:
            batch.add_node("x", 5)
        with pytest.raises(GraphError, match="version"):
            twin.apply(batch.delta)


class TestPatchedIndex:
    def test_patched_equals_rebuilt_for_inserts(self):
        graph = chain_graph()
        graph.label_index()  # cache the pre-batch index so commit patches it
        with graph.batch() as batch:
            batch.add_node("p1", 3)
            batch.add_edge("p1", "a", "c0n0")
            batch.add_edge("c1n7", "c", "p1")
            batch.add_edge("c2n0", "b", "c2n5")
        patched = graph.label_index()
        assert_index_equivalent(patched, LabelIndex(graph))

    def test_patched_equals_rebuilt_for_edge_removals(self):
        graph = chain_graph()
        graph.label_index()
        with graph.batch() as batch:
            batch.remove_edge("c0n0", "a", "c0n1")
            batch.add_edge("c0n0", "b", "c0n2")
        assert_index_equivalent(graph.label_index(), LabelIndex(graph))

    def test_node_removal_falls_back_to_rebuild(self):
        graph = chain_graph()
        base_index = graph.label_index()
        with graph.batch() as batch:
            batch.remove_node("c0n0")
        delta = batch.delta
        assert LabelIndex.patched(base_index, delta) is None  # dense ordering
        assert_index_equivalent(graph.label_index(), LabelIndex(graph))

    @given(
        edges=st.lists(
            st.tuples(
                st.integers(0, 23), st.sampled_from(LABELS), st.integers(0, 23)
            ),
            min_size=1,
            max_size=12,
        ),
        new_nodes=st.lists(st.integers(24, 30), max_size=4, unique=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_patched_index_equals_rebuilt(self, edges, new_nodes):
        graph = chain_graph()
        graph.label_index()
        names = sorted(graph.node_ids)
        with graph.batch() as batch:
            for node in new_nodes:
                batch.add_node(f"extra{node}", node)
            pool = names + [f"extra{n}" for n in new_nodes]
            for source, label, target in edges:
                batch.add_edge(pool[source % len(pool)], label, pool[target % len(pool)])
        assert_index_equivalent(graph.label_index(), LabelIndex(graph))


class TestNewNodeWithEdgesInOneBatch:
    """Regression: one batch that adds a node AND edges touching it must
    leave position/values/adjacency identical to a fresh rebuild —
    including edges between two nodes born in the same batch and edges
    on a label the base index has never seen."""

    def test_patched_matches_rebuild(self):
        graph = chain_graph()
        graph.label_index()  # cache so the commit takes the patch path
        with graph.batch() as batch:
            batch.add_node("fresh-1", 7)
            batch.add_node("fresh-2", 8)
            batch.add_edge("c0n0", "a", "fresh-1")      # old -> new
            batch.add_edge("fresh-1", "b", "c1n3")      # new -> old
            batch.add_edge("fresh-1", "c", "fresh-2")   # new -> new
            batch.add_edge("fresh-2", "zz", "fresh-2")  # new label, self-loop
        patched = graph.label_index()
        rebuilt = LabelIndex(graph)
        assert_index_equivalent(patched, rebuilt)
        # The new nodes sit at the end of the dense ordering with their
        # batch values, so every in-flight bitmask stays decodable.
        assert patched.position["fresh-1"] == len(rebuilt.nodes) - 2
        assert patched.position["fresh-2"] == len(rebuilt.nodes) - 1
        assert patched.values["fresh-1"] == 7 and patched.values["fresh-2"] == 8

    def test_compact_index_over_patched_base_matches_fresh(self):
        from repro.datagraph.compact import CompactLabelIndex

        graph = chain_graph()
        graph.label_index()
        with graph.batch() as batch:
            batch.add_node("fresh-1", 7)
            batch.add_edge("c0n0", "a", "fresh-1")
            batch.add_edge("fresh-1", "b", "c0n0")
        via_patched = graph.compact_index()
        via_rebuild = CompactLabelIndex.from_label_index(LabelIndex(graph))
        assert via_patched.nodes == via_rebuild.nodes
        assert via_patched.values == via_rebuild.values
        assert via_patched.edge_labels() == via_rebuild.edge_labels()
        for label in via_patched.edge_labels():
            for node_id in via_patched.nodes:
                assert set(via_patched.targets(label, node_id)) == set(
                    via_rebuild.targets(label, node_id)
                ), (label, node_id)
                assert set(via_patched.sources(label, node_id)) == set(
                    via_rebuild.sources(label, node_id)
                ), (label, node_id)
