"""GraphDelta value semantics, net-change normalisation and the journal."""

from __future__ import annotations

import pytest

from repro.api import wire
from repro.deltas import DeltaJournal, GraphDelta
from repro.deltas.delta import _NetChanges
from repro.exceptions import GraphError


class TestGraphDelta:
    def test_empty_and_insert_only_flags(self):
        empty = GraphDelta()
        assert empty.is_empty and empty.insert_only and empty.size == 0
        inserts = GraphDelta(added_nodes=(("n", 1),), added_edges=(("n", "a", "n"),))
        assert not inserts.is_empty and inserts.insert_only and inserts.size == 2
        removal = GraphDelta(removed_edges=(("n", "a", "m"),))
        assert not removal.insert_only
        retag = GraphDelta(value_changes=(("n", 1, 2),))
        assert not retag.insert_only  # value changes can break data-query answers

    def test_touched_nodes_and_labels(self):
        delta = GraphDelta(
            added_nodes=(("x", 1),),
            added_edges=(("x", "a", "y"), ("y", "b", "z")),
            removed_edges=(("p", "c", "q"),),
        )
        assert delta.touched_nodes == frozenset({"x", "y", "z", "p", "q"})
        assert delta.touched_labels == frozenset({"a", "b", "c"})

    def test_digest_is_content_addressed_not_lineage_addressed(self):
        one = GraphDelta(added_edges=(("x", "a", "y"),), base_version=1, new_version=2)
        two = GraphDelta(added_edges=(("x", "a", "y"),), base_version=7, new_version=8)
        other = GraphDelta(added_edges=(("x", "b", "y"),), base_version=1, new_version=2)
        assert one.digest == two.digest  # versions excluded from content
        assert one.digest != other.digest
        assert one == two  # version fields compare=False

    def test_summary_counts(self):
        delta = GraphDelta(
            added_nodes=(("x", 1),),
            removed_nodes=(("y", 2),),
            added_edges=(("x", "a", "x"),),
            value_changes=(("z", 1, 2),),
            added_labels=("a",),
        )
        assert delta.summary() == {
            "nodes_added": 1,
            "nodes_removed": 1,
            "edges_added": 1,
            "edges_removed": 0,
            "values_changed": 1,
            "labels_added": 1,
        }

    def test_compose_nets_out_cancelling_changes(self):
        first = GraphDelta(
            added_nodes=(("x", 1),), added_edges=(("x", "a", "x"),),
            base_version=1, new_version=2,
        )
        second = GraphDelta(
            removed_edges=(("x", "a", "x"),), removed_nodes=(("x", 1),),
            base_version=2, new_version=3,
        )
        net = GraphDelta.compose([first, second], base_version=1, new_version=3)
        assert net.is_empty
        assert net.base_version == 1 and net.new_version == 3

    def test_wire_round_trip(self):
        from repro.datagraph import NULL

        delta = GraphDelta(
            added_nodes=(("x", 1), (("pg", 2), NULL)),
            removed_nodes=(("y", "v"),),
            added_edges=(("x", "a", ("pg", 2)),),
            removed_edges=(("y", "b", "x"),),
            value_changes=(("z", 1, 2),),
            added_labels=("a",),
            base_version=4,
            new_version=5,
        )
        document = wire.encode_delta(delta)
        decoded = wire.decode_delta(document)
        assert decoded == delta
        assert decoded.base_version == 4 and decoded.new_version == 5
        assert decoded.digest == delta.digest

    def test_wire_rejects_malformed_documents(self):
        from repro.exceptions import SerializationError

        with pytest.raises(SerializationError, match="malformed delta"):
            wire.decode_delta({"format": "not-a-delta"})
        with pytest.raises(SerializationError):
            wire.decode_delta({"format": wire.DELTA_FORMAT, "added_nodes": "nope"})


class TestNetChanges:
    def test_add_then_remove_edge_cancels(self):
        net = _NetChanges()
        net.record(("edge+", "x", "a", "y"))
        net.record(("edge-", "x", "a", "y"))
        assert net.to_delta(1, 2).added_edges == ()

    def test_remove_then_readd_node_with_same_value_cancels(self):
        net = _NetChanges()
        net.record(("node-", "x", 7))
        net.record(("node+", "x", 7))
        delta = net.to_delta(1, 2)
        assert delta.removed_nodes == () and delta.added_nodes == ()

    def test_value_changes_fold(self):
        net = _NetChanges()
        net.record(("value", "x", 1, 2))
        net.record(("value", "x", 2, 3))
        assert net.to_delta(1, 2).value_changes == (("x", 1, 3),)

    def test_node_added_then_removed_in_batch_nets_out(self):
        net = _NetChanges()
        net.record(("node+", "x", 1))
        net.record(("edge+", "x", "a", "x"))
        net.record(("edge-", "x", "a", "x"))
        net.record(("node-", "x", 1))
        assert net.to_delta(1, 2).is_empty


class TestDeltaJournal:
    def _delta(self, base, new):
        return GraphDelta(
            added_edges=((f"n{base}", "a", f"n{new}"),), base_version=base, new_version=new
        )

    def test_path_and_composed_over_contiguous_lineage(self):
        journal = DeltaJournal()
        for base in (1, 2, 3):
            journal.record(self._delta(base, base + 1))
        path = journal.path(1, 4)
        assert [d.base_version for d in path] == [1, 2, 3]
        net = journal.composed(1, 4)
        assert net.base_version == 1 and net.new_version == 4
        assert len(net.added_edges) == 3

    def test_gap_in_lineage_returns_none(self):
        journal = DeltaJournal()
        journal.record(self._delta(1, 2))
        journal.record(self._delta(3, 4))  # version 2 -> 3 happened off-journal
        assert journal.path(1, 4) is None
        assert journal.composed(1, 4) is None
        assert journal.composed(3, 4) is not None

    def test_same_version_is_the_empty_path(self):
        journal = DeltaJournal()
        assert journal.path(5, 5) == ()
        assert journal.composed(5, 5).is_empty

    def test_bound_evicts_oldest_deltas(self):
        journal = DeltaJournal(maxlen=2)
        for base in (1, 2, 3):
            journal.record(self._delta(base, base + 1))
        assert len(journal) == 2
        assert journal.composed(1, 4) is None  # delta 1->2 evicted
        assert journal.composed(2, 4) is not None

    def test_unversioned_and_empty_deltas_are_not_journaled(self):
        journal = DeltaJournal()
        journal.record(GraphDelta(added_edges=(("x", "a", "y"),)))  # no lineage
        journal.record(GraphDelta(base_version=1, new_version=2))  # empty
        assert len(journal) == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(GraphError, match="journal bound"):
            DeltaJournal(maxlen=0)
