"""Property tests: the SQL backend against the dict/compact engines and naive specs.

For random graphs and queries across all five dialects, a session forced
onto ``backend="sql"`` must return byte-identical answers to the dict
and compact sessions and to the naive seed evaluators — including the
dialects the SQL backend does not lower (data RPQs degrade to the dict
path, which is itself part of the contract), seeded point queries
(``targets`` / ``holds``), and queries posed after the graph mutated and
the ``D_G`` database was refreshed incrementally.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExecutionPolicy, GraphSession, Query
from repro.datagraph import generators
from repro.gxpath.ast import Axis, AxisStar, NodeExists, PathConcat, PathUnion
from repro.gxpath.evaluation import evaluate_node, evaluate_path
from repro.query import evaluate_crpq_naive, evaluate_rpq_naive
from repro.sqlbackend import store_for

BACKENDS = ("sql", "compact", "dict")

RPQ_POOL = [
    "a",
    "b.a",
    "(a|b)*",
    "a.(a|b)*.b",
    "(a|b)*.a.(a|b)*",
    "(a.b)+",
    "a*|b*",
    "(a|b).(a|b).(a|b)",
    # Factored-plan shapes: concatenations of letter-set steps and
    # closures, compiled via pivot selection instead of the product CTE.
    "a*.b",
    "b+.a",
    "a.b*.a+",
]

#: One query per dialect; the data dialects (ree / rem) are exactly the
#: ones the SQL backend must *decline* into the dict path unchanged.
DIALECT_POOL = [
    ("rpq", "a.(a|b)*"),
    ("ree", "((a|b)+)="),
    ("rem", "!x.((a|b)[x=])+"),
    ("crpq", "x, z :- (x, a+, y), (y, (a|b)*, z)"),
    ("gxpath-path", "a*.b"),
]

CRPQ_POOL = [
    "x, y :- (x, a+, y)",
    "x, z :- (x, a.b, y), (y, (a|b)*, z)",
    "x :- (x, a, y), (y, b, x)",
    ":- (x, (a|b)+, y)",
    "x, y :- (x, a*, z), (z, ree:(a)=, y)",
    "x, y :- (x, a, x), (y, b*, y)",
]


def random_graph_from(seed, size):
    return generators.random_graph(
        num_nodes=size,
        num_edges=size * 2,
        labels=("a", "b"),
        rng=seed,
        domain_size=max(2, size // 3),
    )


def sessions_for(graph):
    return {
        backend: GraphSession(graph, policy=ExecutionPolicy(backend=backend))
        for backend in BACKENDS
    }


# ----------------------------------------------------------------------
# Full relations, all five dialects
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=40),
    query_index=st.integers(min_value=0, max_value=len(RPQ_POOL) - 1),
)
def test_rpq_sql_matches_backends_and_naive(seed, size, query_index):
    graph = random_graph_from(seed, size)
    query = Query.parse(RPQ_POOL[query_index])
    naive = evaluate_rpq_naive(graph, query.plan)
    for backend, session in sessions_for(graph).items():
        assert session.run(query).pairs() == naive, backend


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=20),
    null_semantics=st.booleans(),
)
def test_all_dialects_agree_across_backends(seed, size, null_semantics):
    graph = random_graph_from(seed, size)
    for dialect, text in DIALECT_POOL:
        query = Query.parse(text, dialect=dialect)
        answers = {
            backend: session.run(query, null_semantics=null_semantics).rows()
            for backend, session in sessions_for(graph).items()
        }
        assert answers["sql"] == answers["dict"] == answers["compact"], (dialect, text)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=24),
    query_index=st.integers(min_value=0, max_value=len(CRPQ_POOL) - 1),
)
def test_crpq_sql_matches_backends_and_naive(seed, size, query_index):
    graph = random_graph_from(seed, size)
    query = Query.parse(CRPQ_POOL[query_index], dialect="crpq")
    answers = {
        backend: session.run(query).rows()
        for backend, session in sessions_for(graph).items()
    }
    assert answers["sql"] == answers["dict"] == answers["compact"]
    naive = evaluate_crpq_naive(graph, query.plan)
    assert answers["sql"] == naive


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=24),
    inverse=st.booleans(),
)
def test_gxpath_axis_star_sql_matches_dict(seed, size, inverse):
    graph = random_graph_from(seed, size)
    expressions = [
        AxisStar("a", inverse),
        PathConcat(AxisStar("a", inverse), Axis("b", False)),
        PathUnion(AxisStar("a", inverse), AxisStar("b", not inverse)),
    ]
    for expression in expressions:
        expected = evaluate_path(graph, expression, backend="dict")
        assert evaluate_path(graph, expression, backend="sql") == expected
    condition = NodeExists(AxisStar("b", inverse))
    assert evaluate_node(graph, condition, backend="sql") == evaluate_node(
        graph, condition, backend="dict"
    )


# ----------------------------------------------------------------------
# Seeded point queries
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=30),
    query_index=st.integers(min_value=0, max_value=len(RPQ_POOL) - 1),
)
def test_point_queries_sql_matches_dict(seed, size, query_index):
    graph = random_graph_from(seed, size)
    query = Query.parse(RPQ_POOL[query_index])
    sessions = sessions_for(graph)
    node_ids = graph.node_ids[:6]
    for source in node_ids:
        expected = sessions["dict"].targets(query, source)
        assert sessions["sql"].targets(query, source) == expected, source
        for target in node_ids:
            verdict = sessions["dict"].holds(query, source, target)
            assert sessions["sql"].holds(query, source, target) == verdict


# ----------------------------------------------------------------------
# Post-delta refreshed databases
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=2, max_value=30),
    query_index=st.integers(min_value=0, max_value=len(RPQ_POOL) - 1),
)
def test_answers_after_incremental_refresh(seed, size, query_index):
    graph = random_graph_from(seed, size)
    query = Query.parse(RPQ_POOL[query_index])
    sql_session = GraphSession(graph, policy=ExecutionPolicy(backend="sql"))
    sql_session.run(query)  # builds the D_G database at this version
    store = store_for(graph)
    builds_before = store.full_rebuilds

    ids = graph.node_ids
    with graph.batch():
        fresh = graph.add_node(f"sql-delta-{seed}", size % 3)
        graph.add_edge(ids[0], "a", fresh.id)
        graph.add_edge(fresh.id, "b", ids[seed % len(ids)])
        graph.set_value(ids[seed % len(ids)], "patched")
        if size > 2:
            victim = ids[1]
            for source, target in list(graph.label_index().pairs("a")):
                if source == victim or target == victim:
                    graph.remove_edge(source, "a", target)

    naive = evaluate_rpq_naive(graph, query.plan)
    assert sql_session.run(query).pairs() == naive
    store = store_for(graph)
    assert store.full_rebuilds == builds_before  # refreshed, not rebuilt
    assert store.incremental_refreshes >= 1


@pytest.mark.parametrize("dialect,text", DIALECT_POOL, ids=[d for d, _ in DIALECT_POOL])
def test_all_dialects_agree_after_mutations(dialect, text):
    graph = random_graph_from(7, 18)
    query = Query.parse(text, dialect=dialect)
    sessions = sessions_for(graph)
    before = {b: s.run(query).rows() for b, s in sessions.items()}
    assert before["sql"] == before["dict"] == before["compact"]
    ids = graph.node_ids
    with graph.batch():
        node = graph.add_node("delta-node", 2)
        graph.add_edge(ids[0], "a", node.id)
        graph.add_edge(node.id, "b", ids[-1])
        graph.remove_node(ids[len(ids) // 2])
    after = {b: s.run(query).rows() for b, s in sessions.items()}
    assert after["sql"] == after["dict"] == after["compact"]
