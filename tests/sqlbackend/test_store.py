"""Unit tests for the ``D_G`` store: ingest, refresh, tombstones, caches.

The refresh contract is pinned directly: after any sequence of journaled
mutations the store's decoded facts must equal the live graph's, with
the ``incremental_refreshes`` / ``full_rebuilds`` counters proving which
path ran.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import GraphBuilder, generators
from repro.engine.engine import default_engine
from repro.exceptions import EvaluationError
from repro.sqlbackend import (
    SqlStore,
    clear_sql_caches,
    duckdb_available,
    evaluate_rpq_pairs,
    sql_cache_stats,
    store_for,
)
from repro.sqlbackend.backend import _STORES
from repro.sqlbackend.compile import (
    PLUS,
    STAR,
    STEP,
    concat_parts,
    factored_rpq_sql,
    pick_pivot,
)


def small_graph():
    return (
        GraphBuilder()
        .node("u", 1).node("v", 2).node("w", 1)
        .edge("u", "a", "v").edge("v", "a", "w").edge("w", "b", "u")
        .build()
    )


def assert_matches_graph(store, graph):
    from repro.sqlbackend.schema import _encode_value

    nodes, edges = store.facts()
    assert nodes == {node.id: _encode_value(node.value) for node in graph.nodes}
    assert edges == {
        (source.id, label, target.id) for source, label, target in graph.edges
    }


class TestIngest:
    def test_facts_match_graph(self):
        graph = small_graph()
        store = SqlStore(graph)
        assert store.full_rebuilds == 1
        assert store.num_rows == 3
        assert_matches_graph(store, graph)
        store.close()

    def test_unknown_dialect_rejected(self):
        with pytest.raises(EvaluationError, match="dialect"):
            SqlStore(small_graph(), dialect="postgres")

    def test_auto_dialect_resolves(self):
        store = SqlStore(small_graph(), dialect="auto")
        expected = "duckdb" if duckdb_available() else "sqlite"
        assert store.dialect == expected
        store.close()

    def test_refresh_same_version_is_a_no_op(self):
        graph = small_graph()
        store = SqlStore(graph)
        assert store.refresh(graph) is False
        assert store.full_rebuilds == 1
        assert store.incremental_refreshes == 0
        store.close()


class TestRefresh:
    def test_batched_mutations_refresh_incrementally(self):
        graph = small_graph()
        store = SqlStore(graph)
        with graph.batch():
            graph.add_node("x", 9)
            graph.add_edge("w", "a", "x")
            graph.set_value("u", 7)
            graph.remove_edge("u", "a", "v")
        assert store.refresh(graph) is True
        assert store.incremental_refreshes == 1
        assert store.full_rebuilds == 1
        assert_matches_graph(store, graph)
        store.close()

    def test_node_removal_drops_incident_edges(self):
        graph = small_graph()
        store = SqlStore(graph)
        with graph.batch():
            graph.remove_node("v")
        store.refresh(graph)
        assert store.incremental_refreshes == 1
        assert_matches_graph(store, graph)
        assert store.node_int("v") is None
        store.close()

    def test_tombstoned_ints_never_recycle(self):
        graph = small_graph()
        store = SqlStore(graph)
        old_int = store.node_int("v")
        with graph.batch():
            graph.remove_node("v")
        store.refresh(graph)
        with graph.batch():
            graph.add_node("v", 5)
        store.refresh(graph)
        assert store.incremental_refreshes == 2
        new_int = store.node_int("v")
        assert new_int is not None and new_int != old_int
        assert store.node_id(new_int) == "v"
        assert_matches_graph(store, graph)
        store.close()

    def test_journal_gap_forces_full_rebuild(self):
        graph = small_graph()
        store = SqlStore(graph)
        # Single-op mutations are not journaled as a contiguous delta
        # chain, so the store must fall back to a re-ingest — and still
        # end bit-identical to the graph.
        graph.add_node("gap", 3)
        graph.add_edge("u", "b", "gap")
        store.refresh(graph)
        assert store.full_rebuilds == 2
        assert_matches_graph(store, graph)
        store.close()

    def test_ints_of_drops_unknown_ids(self):
        graph = small_graph()
        store = SqlStore(graph)
        known = store.ints_of(["u", "nope", "w"])
        assert len(known) == 2
        assert all(isinstance(i, int) for i in known)
        store.close()

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        size=st.integers(min_value=2, max_value=25),
    )
    def test_random_delta_chains_stay_bit_identical(self, seed, size):
        graph = generators.random_graph(
            num_nodes=size, num_edges=size * 2, labels=("a", "b"),
            rng=seed, domain_size=max(2, size // 3),
        )
        store = SqlStore(graph)
        ids = graph.node_ids
        with graph.batch():
            node = graph.add_node(f"delta-{seed}", seed % 5)
            graph.add_edge(ids[0], "a", node.id)
            graph.set_value(ids[seed % len(ids)], "patched")
            graph.remove_node(ids[(seed + 1) % len(ids)])
        store.refresh(graph)
        assert store.incremental_refreshes == 1
        assert_matches_graph(store, graph)
        store.close()


class TestRegistryAndCaches:
    def test_store_for_is_cached_per_graph(self):
        graph = small_graph()
        store = store_for(graph)
        assert store_for(graph) is store
        assert graph in _STORES

    def test_registry_does_not_pin_graphs(self):
        import gc

        graph = small_graph()
        store_for(graph)
        before = len(_STORES)
        del graph
        gc.collect()
        assert len(_STORES) < before or before == 0

    def test_compiled_sql_cache_hits_on_repeat(self):
        clear_sql_caches()
        graph = small_graph()
        engine = default_engine()
        query = "a+.b"
        first = evaluate_rpq_pairs(graph, query, engine=engine)
        stats = sql_cache_stats()
        misses = stats.misses
        second = evaluate_rpq_pairs(graph, query, engine=engine)
        assert first == second
        stats = sql_cache_stats()
        assert stats.hits >= 1
        assert stats.misses == misses  # no re-compile

    def test_seeding_tables_round_trip(self):
        graph = small_graph()
        store = SqlStore(graph)
        with store.lock:
            store.seed("_src_seeds", [0, 2])
            assert store.rows("SELECT node FROM _src_seeds ORDER BY node") == [
                (0,), (2,)
            ]
            store.seed("_src_seeds", [1])
            assert store.rows("SELECT node FROM _src_seeds") == [(1,)]
        store.close()


class TestFactoredCompilation:
    def parse(self, text):
        return default_engine().parse(text)

    def test_concat_parts_recognises_step_and_closure_factors(self):
        assert concat_parts(self.parse("a*.b")) == ((STAR, ("a",)), (STEP, ("b",)))
        assert concat_parts(self.parse("a.(a|b)+")) == (
            (STEP, ("a",)),
            (PLUS, ("a", "b")),
        )
        assert concat_parts(self.parse("(b|a)")) == ((STEP, ("a", "b")),)

    def test_unfactorable_shapes_are_declined(self):
        # Nested structure under an iteration, and unions of
        # concatenations, must fall back to the product CTE.
        assert concat_parts(self.parse("(a.b)*")) is None
        assert concat_parts(self.parse("a.b|b.a")) is None
        assert concat_parts(self.parse("(a.b)+.a")) is None

    def test_pivot_picks_the_cheapest_step_factor(self):
        parts = concat_parts(self.parse("a.b*.c"))
        assert parts == ((STEP, ("a",)), (STAR, ("b",)), (STEP, ("c",)))
        assert pick_pivot(parts, {"a": 500, "b": 100, "c": 3}) == 2
        assert pick_pivot(parts, {"a": 3, "b": 100, "c": 500}) == 0
        # No step factor: evaluation starts from the leftmost closure.
        closures = concat_parts(self.parse("a*.b*"))
        assert pick_pivot(closures, {"a": 9, "b": 1}) == 0

    def test_factored_sql_has_no_product_state_column(self):
        parts = concat_parts(self.parse("a*.b"))
        sql = factored_rpq_sql(parts, pivot=1)
        assert "_trans" not in sql and "state" not in sql
        assert "WITH RECURSIVE" in sql

    def test_factored_path_matches_product_path(self):
        # The same query, seeded (product CTE) and unseeded (factored
        # plan), must agree — the seeded union over all sources is the
        # full relation.
        graph = generators.random_graph(
            num_nodes=20, num_edges=60, labels=("a", "b"), rng=11, domain_size=4
        )
        engine = default_engine()
        for text in ("a*.b", "b+.a", "a.b*"):
            full = evaluate_rpq_pairs(graph, text, engine=engine)
            seeded = frozenset().union(
                *(
                    evaluate_rpq_pairs(graph, text, engine=engine, sources=(nid,))
                    for nid in graph.node_ids
                )
            )
            assert full == seeded, text


@pytest.mark.skipif(not duckdb_available(), reason="duckdb not importable")
class TestDuckdb:
    def test_duckdb_store_matches_sqlite(self):
        graph = small_graph()
        sqlite_store = SqlStore(graph, dialect="sqlite")
        duck_store = SqlStore(graph, dialect="duckdb")
        assert duck_store.dialect == "duckdb"
        assert sqlite_store.facts() == duck_store.facts()
        query = "a*.b"
        assert evaluate_rpq_pairs(graph, query, dialect="duckdb") == evaluate_rpq_pairs(
            graph, query, dialect="sqlite"
        )
        sqlite_store.close()
        duck_store.close()
