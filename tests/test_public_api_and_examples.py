"""Smoke tests for the top-level public API and the runnable examples.

The examples are part of the deliverable; running their ``main()``
functions end to end (with captured output) guards against drift between
the library API and the documentation-level code users copy from.
"""

from __future__ import annotations

import importlib
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_minimal_workflow_through_top_level_api(self):
        source = (
            repro.GraphBuilder()
            .node("a", 1)
            .node("b", 2)
            .edge("a", "r", "b")
            .build()
        )
        mapping = repro.GraphSchemaMapping([("r", "t.t")])
        target = repro.universal_solution(mapping, source)
        assert repro.is_solution(mapping, source, target)
        answers = repro.certain_answers(mapping, source, repro.rpq("t.t"))
        assert {(left.id, right.id) for left, right in answers} == {("a", "b")}

    def test_subpackages_importable(self):
        for module in (
            "repro.datagraph",
            "repro.regular",
            "repro.datapaths",
            "repro.query",
            "repro.gxpath",
            "repro.relational",
            "repro.core",
            "repro.reductions",
            "repro.workloads",
            "repro.experiments",
        ):
            assert importlib.import_module(module) is not None


def _load_example(name: str):
    """Import an example script as a module (examples are not a package)."""
    path = EXAMPLES_DIR / f"{name}.py"
    assert path.exists(), path
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    @pytest.mark.parametrize(
        "name,expected_fragment",
        [
            ("quickstart", "Who certainly knows whom"),
            ("social_network_integration", "Certainly knows (direct)"),
            ("provenance_exchange", "approximation recall"),
            ("property_graph_to_datagraph", "certain contacts"),
        ],
    )
    def test_example_runs_and_prints(self, capsys, name, expected_fragment):
        module = _load_example(name)
        module.main()
        output = capsys.readouterr().out
        assert expected_fragment in output

    def test_reproduce_paper_claims_single_experiment(self, capsys):
        module = _load_example("reproduce_paper_claims")
        exit_code = module.main(["--quick", "--only", "E8"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "E8" in output and "agree" in output

    def test_reproduce_paper_claims_rejects_unknown_experiment(self, capsys):
        module = _load_example("reproduce_paper_claims")
        with pytest.raises(SystemExit):
            module.main(["--only", "E99"])
