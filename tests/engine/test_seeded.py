"""Seeded (semijoin) evaluation: restricted kernels equal filtered relations.

``seeded_product_relation(space, sources, targets)`` must equal the full
``product_relation`` filtered to the given endpoint sets — for every
space kind (NFA product, register product, closure) and through every
driver (sequential, source blocks, sharded scatter/gather), since the
CRPQ planner leans on all of them interchangeably.
"""

from __future__ import annotations

import pytest

from repro.datagraph import generators
from repro.datapaths import parse_rem
from repro.engine import default_engine
from repro.engine.partition import (
    GraphPartition,
    parallel_product_relation,
    sharded_product_relation,
)
from repro.engine.product import product_relation, seeded_product_relation
from repro.engine.spaces import ClosureSpace, NfaProductSpace, RegisterProductSpace


@pytest.fixture(scope="module")
def graph():
    return generators.community_graph(
        3, 10, intra_edges_per_node=2, bridges_per_community=2,
        labels=("a",), bridge_label="b", rng=5, domain_size=3,
    )


def spaces_under_test(graph):
    engine = default_engine()
    index = graph.label_index()
    yield NfaProductSpace(index, engine.compile_rpq("a*.b.a*"))
    yield RegisterProductSpace(index, engine.compile_data_rpq(parse_rem("!x.(a[x=])+")), False)
    yield ClosureSpace(index, "a")


def restrictions(space):
    nodes = space.index.nodes
    full = product_relation(space)
    sources = tuple(nodes[: len(nodes) // 2])
    targets = {v for _, v in full} | set(nodes[-3:])
    return full, sources, targets


class TestSeededEqualsFilteredFull:
    @pytest.mark.parametrize("which", [0, 1, 2], ids=["nfa", "register", "closure"])
    def test_sequential(self, graph, which):
        space = list(spaces_under_test(graph))[which]
        full, sources, targets = restrictions(space)
        expected = {(u, v) for u, v in full if u in set(sources) and v in targets}
        assert seeded_product_relation(space, sources=sources, targets=targets) == expected
        # One-sided restrictions too.
        assert seeded_product_relation(space, sources=sources) == {
            (u, v) for u, v in full if u in set(sources)
        }
        assert seeded_product_relation(space, targets=targets) == {
            (u, v) for u, v in full if v in targets
        }

    @pytest.mark.parametrize("which", [0, 1, 2], ids=["nfa", "register", "closure"])
    def test_source_block_driver(self, graph, which):
        space = list(spaces_under_test(graph))[which]
        full, sources, targets = restrictions(space)
        expected = {(u, v) for u, v in full if u in set(sources) and v in targets}
        got = parallel_product_relation(space, num_blocks=3, sources=sources, targets=targets)
        assert got == expected

    @pytest.mark.parametrize("which", [0, 1, 2], ids=["nfa", "register", "closure"])
    def test_sharded_driver(self, graph, which):
        space = list(spaces_under_test(graph))[which]
        full, sources, targets = restrictions(space)
        expected = {(u, v) for u, v in full if u in set(sources) and v in targets}
        partition = GraphPartition.build(space.index, 3)
        got = sharded_product_relation(
            space, partition=partition, processes=False, sources=sources, targets=targets
        )
        assert got == expected

    def test_empty_restrictions_short_circuit(self, graph):
        space = next(spaces_under_test(graph))
        assert seeded_product_relation(space, sources=()) == set()
        assert seeded_product_relation(space, targets=set()) == set()
        assert parallel_product_relation(space, sources=()) == set()
        assert sharded_product_relation(space, num_shards=2, sources=()) == set()

    def test_unrestricted_seeded_is_the_full_relation(self, graph):
        for space in spaces_under_test(graph):
            assert seeded_product_relation(space) == product_relation(space)


class TestEngineAtomEntryPoint:
    def test_evaluate_atom_ids_filters_and_sorts_sources(self, graph):
        from repro.query import rpq

        engine = default_engine()
        full = engine.evaluate_rpq_ids(graph, rpq("a*.b"))
        some = list(graph.node_ids)[:8]
        expected = frozenset((u, v) for u, v in full if u in set(some))
        # Sources arrive as an unordered set with a foreign id mixed in.
        got = engine.evaluate_atom_ids(graph, rpq("a*.b"), sources=set(some) | {"no-such"})
        assert got == expected
        for mode in ("blocks", "sharded"):
            assert (
                engine.evaluate_atom_ids(graph, rpq("a*.b"), sources=some, mode=mode)
                == expected
            )

    def test_evaluate_atom_ids_data_dialect(self, graph):
        from repro.query import equality_rpq

        engine = default_engine()
        query = equality_rpq("((a|b)+)=")
        full = {(a.id, b.id) for a, b in engine.evaluate_data_rpq(graph, query)}
        some = set(list(graph.node_ids)[10:20])
        got = engine.evaluate_atom_ids(graph, query, targets=some)
        assert got == frozenset((u, v) for u, v in full if v in some)
