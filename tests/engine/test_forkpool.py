"""Direct coverage for the shared fork-pool helper.

:mod:`repro.engine.forkpool` backs every process fan-out in the project
(batch executor, source-block driver, sharded shard rounds), so its edge
cases — worker exceptions, platforms without ``fork``, empty fan-outs —
are pinned here rather than discovered through the drivers.
"""

from __future__ import annotations

import pytest

from repro.datagraph import generators
from repro.engine import default_engine, forkpool, partition
from repro.engine.forkpool import fork_available, run_forked


def _double(payload, index):
    return payload * index


def _explode(payload, index):
    if index == 1:
        raise ValueError(f"worker {index} exploded on purpose")
    return index


needs_fork = pytest.mark.skipif(not fork_available(), reason="platform has no fork")


class TestRunForked:
    @needs_fork
    def test_results_come_back_in_task_order(self):
        assert run_forked(3, _double, 4) == [0, 3, 6, 9]

    @needs_fork
    def test_worker_exception_propagates_to_the_caller(self):
        with pytest.raises(ValueError, match="exploded on purpose"):
            run_forked(None, _explode, 3)

    @needs_fork
    def test_state_is_cleared_even_after_a_worker_failure(self):
        with pytest.raises(ValueError):
            run_forked(None, _explode, 3)
        assert forkpool._STATE is None

    def test_empty_task_list_short_circuits(self):
        # No pool (ProcessPoolExecutor would reject max_workers=0) and no
        # fork needed: an empty fan-out must work on every platform.
        assert run_forked(None, _explode, 0) == []

    @needs_fork
    def test_max_workers_bound_is_honoured(self):
        assert run_forked(2, _double, 5, max_workers=2) == [0, 2, 4, 6, 8]


class TestForkUnavailableFallbacks:
    """Callers must degrade — with identical answers — when fork is absent."""

    def _relation(self):
        graph = generators.random_graph(20, 50, labels=("a", "b"), rng=11)
        index = graph.label_index()
        automaton = default_engine().compile_rpq("a.(a|b)*")
        return index, automaton

    def test_parallel_driver_auto_backend_degrades_to_threads(self, monkeypatch):
        index, automaton = self._relation()
        expected = partition.product.full_relation(index, automaton)
        monkeypatch.setattr(partition, "fork_available", lambda: False)
        monkeypatch.setattr(
            partition, "run_forked", lambda *a, **k: pytest.fail("forked despite no fork")
        )
        assert partition.parallel_full_relation(index, automaton, num_blocks=3) == expected

    def test_sharded_driver_processes_degrade_to_in_process_rounds(self, monkeypatch):
        index, automaton = self._relation()
        expected = partition.product.full_relation(index, automaton)
        monkeypatch.setattr(partition, "fork_available", lambda: False)
        monkeypatch.setattr(
            partition, "run_forked", lambda *a, **k: pytest.fail("forked despite no fork")
        )
        assert (
            partition.sharded_full_relation(index, automaton, num_shards=3, processes=True)
            == expected
        )

    def test_batch_executor_process_backend_degrades_to_threads(self, monkeypatch):
        from repro.api import GraphSession, Query, executors

        graph = generators.random_graph(15, 40, labels=("a", "b"), rng=3)
        expected = GraphSession(graph).run("a.(a|b)*").pairs()
        monkeypatch.setattr(executors, "fork_available", lambda: False)
        monkeypatch.setattr(
            executors, "run_forked", lambda *a, **k: pytest.fail("forked despite no fork")
        )
        pool = executors.ParallelExecutor(max_workers=2, backend="process")
        session = GraphSession(graph)
        results = session.run_many([Query.rpq("a.(a|b)*"), Query.rpq("b*")], executor=pool)
        assert results[0].pairs() == expected
