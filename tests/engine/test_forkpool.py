"""Direct coverage for the shared fork-pool helper.

:mod:`repro.engine.forkpool` backs every process fan-out in the project
(batch executor, source-block driver, sharded shard rounds), so its edge
cases — worker exceptions, platforms without ``fork``, empty fan-outs —
are pinned here rather than discovered through the drivers.
"""

from __future__ import annotations

import pytest

import os

from repro.datagraph import generators
from repro.engine import default_engine, forkpool, partition
from repro.engine.forkpool import ForkPool, fork_available, run_forked
from repro.exceptions import EvaluationError


def _double(payload, index):
    return payload * index


def _explode(payload, index):
    if index == 1:
        raise ValueError(f"worker {index} exploded on purpose")
    return index


#: Per-process accumulator used to prove pooled workers keep state
#: between message rounds (each forked child owns a private copy).
_TALLY = []


def _pool_tally(payload, index, message):
    if message == "explode":
        raise ValueError(f"pool worker {index} exploded on purpose")
    _TALLY.append(message)
    return (os.getpid(), payload + sum(_TALLY))


needs_fork = pytest.mark.skipif(not fork_available(), reason="platform has no fork")


class TestRunForked:
    @needs_fork
    def test_results_come_back_in_task_order(self):
        assert run_forked(3, _double, 4) == [0, 3, 6, 9]

    @needs_fork
    def test_worker_exception_propagates_to_the_caller(self):
        with pytest.raises(ValueError, match="exploded on purpose"):
            run_forked(None, _explode, 3)

    @needs_fork
    def test_state_is_cleared_even_after_a_worker_failure(self):
        with pytest.raises(ValueError):
            run_forked(None, _explode, 3)
        assert forkpool._STATE is None

    def test_empty_task_list_short_circuits(self):
        # No pool (ProcessPoolExecutor would reject max_workers=0) and no
        # fork needed: an empty fan-out must work on every platform.
        assert run_forked(None, _explode, 0) == []

    @needs_fork
    def test_max_workers_bound_is_honoured(self):
        assert run_forked(2, _double, 5, max_workers=2) == [0, 2, 4, 6, 8]


class TestForkPool:
    """The persistent pool: one fork, many message rounds, state kept."""

    @needs_fork
    def test_workers_persist_and_keep_state_across_rounds(self):
        with ForkPool(10, _pool_tally, 2) as pool:
            first = pool.run({0: 1, 1: 2})
            second = pool.run({0: 3, 1: 4})
        # Same worker process answered both rounds...
        assert first[0][0] == second[0][0]
        assert first[1][0] == second[1][0]
        # ...and the second answer includes state from the first round.
        assert first[0][1] == 11 and second[0][1] == 14  # 10+1, then 10+1+3
        assert first[1][1] == 12 and second[1][1] == 16  # 10+2, then 10+2+4
        # The parent's copy of the accumulator is untouched.
        assert _TALLY == []

    @needs_fork
    def test_pids_are_stable_and_distinct_from_the_parent(self):
        with ForkPool(0, _pool_tally, 3) as pool:
            pids = pool.pids()
            assert len(set(pids)) == 3 and os.getpid() not in pids
            replies = pool.broadcast(5)
            assert sorted(pid for pid, _ in replies) == sorted(pids)
            assert pool.pids() == pids

    @needs_fork
    def test_run_addresses_only_the_given_workers(self):
        with ForkPool(0, _pool_tally, 3) as pool:
            replies = pool.run({1: 7})
            assert set(replies) == {1}
            assert replies[1][1] == 7

    @needs_fork
    def test_worker_exception_reraises_and_pool_stays_usable(self):
        with ForkPool(0, _pool_tally, 2) as pool:
            with pytest.raises(ValueError, match="exploded on purpose"):
                pool.run({0: 1, 1: "explode"})
            # The failed round drained both pipes; the pool still answers.
            assert pool.run({1: 2})[1][1] == 2

    @needs_fork
    def test_close_is_idempotent_and_reaps_workers(self):
        pool = ForkPool(0, _pool_tally, 2)
        procs = list(pool._procs)
        pool.close()
        pool.close()
        assert pool.closed and all(not proc.is_alive() for proc in procs)
        with pytest.raises(EvaluationError, match="closed"):
            pool.run({0: 1})

    @needs_fork
    def test_rejects_empty_pools(self):
        with pytest.raises(EvaluationError, match="at least one worker"):
            ForkPool(0, _pool_tally, 0)

    @needs_fork
    def test_fork_state_global_is_cleared_after_the_fork_moment(self):
        with ForkPool(0, _pool_tally, 1):
            assert forkpool._STATE is None


class TestForkUnavailableFallbacks:
    """Callers must degrade — with identical answers — when fork is absent."""

    def _relation(self):
        graph = generators.random_graph(20, 50, labels=("a", "b"), rng=11)
        index = graph.label_index()
        automaton = default_engine().compile_rpq("a.(a|b)*")
        return index, automaton

    def test_parallel_driver_auto_backend_degrades_to_threads(self, monkeypatch):
        index, automaton = self._relation()
        expected = partition.product.full_relation(index, automaton)
        monkeypatch.setattr(partition, "fork_available", lambda: False)
        monkeypatch.setattr(
            partition, "run_forked", lambda *a, **k: pytest.fail("forked despite no fork")
        )
        assert partition.parallel_full_relation(index, automaton, num_blocks=3) == expected

    def test_sharded_driver_processes_degrade_to_in_process_rounds(self, monkeypatch):
        index, automaton = self._relation()
        expected = partition.product.full_relation(index, automaton)
        monkeypatch.setattr(partition, "fork_available", lambda: False)
        monkeypatch.setattr(
            partition, "run_forked", lambda *a, **k: pytest.fail("forked despite no fork")
        )
        assert (
            partition.sharded_full_relation(index, automaton, num_shards=3, processes=True)
            == expected
        )

    def test_batch_executor_process_backend_degrades_to_threads(self, monkeypatch):
        from repro.api import GraphSession, Query, executors

        graph = generators.random_graph(15, 40, labels=("a", "b"), rng=3)
        expected = GraphSession(graph).run("a.(a|b)*").pairs()
        monkeypatch.setattr(executors, "fork_available", lambda: False)
        monkeypatch.setattr(
            executors, "run_forked", lambda *a, **k: pytest.fail("forked despite no fork")
        )
        pool = executors.ParallelExecutor(max_workers=2, backend="process")
        session = GraphSession(graph)
        results = session.run_many([Query.rpq("a.(a|b)*"), Query.rpq("b*")], executor=pool)
        assert results[0].pairs() == expected
