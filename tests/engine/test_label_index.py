"""Tests for the lazily built, mutation-invalidated label index."""

from __future__ import annotations

from repro.datagraph import GraphBuilder, LabelIndex


def build_graph():
    return (
        GraphBuilder(name="index-test")
        .node("p", 1)
        .node("q", 2)
        .node("r", 1)
        .edge("p", "a", "q")
        .edge("q", "b", "r")
        .edge("p", "a", "r")
        .build()
    )


def test_label_index_is_cached_until_mutation():
    graph = build_graph()
    first = graph.label_index()
    assert graph.label_index() is first  # lazy: built once, reused
    graph.add_edge("r", "a", "p")
    second = graph.label_index()
    assert second is not first
    assert second.version == graph.version
    assert ("r", "p") in set(second.pairs("a"))


def test_every_mutation_invalidates_the_index():
    graph = build_graph()

    def current_version():
        graph.label_index()
        return graph.version

    version = current_version()
    graph.add_node("s", 3)
    assert current_version() > version

    version = current_version()
    graph.add_edge("s", "b", "p")
    assert current_version() > version

    version = current_version()
    graph.remove_edge("s", "b", "p")
    assert current_version() > version

    version = current_version()
    graph.set_value("s", 4)
    assert current_version() > version

    version = current_version()
    graph.remove_node("s")
    assert current_version() > version

    version = current_version()
    graph.declare_labels(["c"])
    assert current_version() > version


def test_noop_operations_do_not_invalidate():
    graph = build_graph()
    index = graph.label_index()
    graph.add_node("p", 1)  # re-adding an identical node is a no-op
    graph.add_edge("p", "a", "q")  # duplicate edge
    graph.remove_edge("p", "b", "q")  # absent edge
    graph.declare_labels(["a"])  # label already known
    assert graph.label_index() is index


def test_index_adjacency_matches_graph():
    graph = build_graph()
    index = graph.label_index()
    assert set(index.pairs("a")) == {("p", "q"), ("p", "r")}
    assert set(index.pairs("b")) == {("q", "r")}
    assert index.targets("a", "p") in (("q", "r"), ("r", "q"))
    assert index.targets("a", "q") == ()
    assert index.sources("b", "r") == ("q",)
    assert index.sources("missing-label", "r") == ()
    assert index.values == {"p": 1, "q": 2, "r": 1}
    assert index.labels == {"a", "b"}
    assert index.edge_labels() == {"a", "b"}
    # forward and backward views describe the same edge set
    forward = {(s, label, t) for label in index.labels for s, t in index.pairs(label)}
    backward = {
        (s, label, t)
        for label in index.labels
        for t, sources in index.predecessors(label).items()
        for s in sources
    }
    assert forward == backward == graph.edge_set()


def test_bitmask_round_trip():
    graph = build_graph()
    index = graph.label_index()
    subset = ["p", "r"]
    mask = index.mask_of(subset)
    assert sorted(index.nodes_of(mask)) == sorted(subset)
    assert index.mask_of([]) == 0
    assert list(index.nodes_of(0)) == []


def test_stale_index_is_rebuilt_not_served():
    graph = build_graph()
    index = graph.label_index()
    assert set(index.pairs("a")) == {("p", "q"), ("p", "r")}
    graph.remove_edge("p", "a", "r")
    rebuilt = graph.label_index()
    assert set(rebuilt.pairs("a")) == {("p", "q")}
    # the old snapshot is unchanged (immutable view of the old state)
    assert set(index.pairs("a")) == {("p", "q"), ("p", "r")}


def test_direct_construction_snapshots_current_state():
    graph = build_graph()
    index = LabelIndex(graph)
    assert index.version == graph.version
    assert index.nodes == graph.node_ids
