"""The partitioned evaluation layer: kernels, partitions, drivers.

Acceptance property (ISSUE 3): ``full_relation`` evaluated via
source-block parallel kernels and via the sharded scatter/gather driver
must return results identical to the sequential engine on randomized
graphs — including the partition-boundary edge cases (paths that only
exist across shards, empty shards, single-node shards).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import DataGraph, generators
from repro.engine import (
    GraphPartition,
    NfaProductSpace,
    default_engine,
    parallel_full_relation,
    sharded_full_relation,
    split_blocks,
)
from repro.engine import product
from repro.exceptions import EvaluationError

RPQ_POOL = [
    "a",
    "b.a",
    "(a|b)*",
    "a.(a|b)*.b",
    "(a.b)+",
    "a*|b*",
]

graphs = st.builds(
    lambda size, edges, seed: generators.random_graph(
        size, edges, labels=("a", "b"), rng=seed
    ),
    size=st.integers(min_value=1, max_value=30),
    edges=st.integers(min_value=0, max_value=80),
    seed=st.integers(min_value=0, max_value=10_000),
)


def compile_query(text):
    return default_engine().compile_rpq(text)


# ----------------------------------------------------------------------
# Phase kernels
# ----------------------------------------------------------------------
class TestKernels:
    def test_split_blocks_partitions_the_nodes(self):
        nodes = tuple(f"n{i}" for i in range(11))
        blocks = split_blocks(nodes, 4)
        assert len(blocks) == 4
        assert all(blocks)
        flattened = [node for block in blocks for node in block]
        assert flattened == list(nodes)

    def test_split_blocks_caps_at_node_count(self):
        blocks = split_blocks(("x", "y"), 5)
        assert blocks == [("x",), ("y",)]
        assert split_blocks((), 3) == []

    def test_split_blocks_rejects_nonpositive(self):
        with pytest.raises(EvaluationError):
            split_blocks(("x",), 0)

    def test_source_blocks_union_to_the_full_relation(self):
        graph = generators.random_graph(25, 60, labels=("a", "b"), rng=7)
        index = graph.label_index()
        space = NfaProductSpace(index, compile_query("a.(a|b)*"))
        reachable = product.forward_expand(space, product.initial_configs(space))
        useful = product.backward_prune(space, reachable)
        union = set()
        for block in split_blocks(index.nodes, 4):
            union |= product.source_block_relation(space, useful, block)
        assert union == product.product_relation(space)

    def test_propagate_masks_reports_changed_configs(self):
        graph = generators.chain(3, labels=("a",))
        index = graph.label_index()
        space = NfaProductSpace(index, compile_query("a*"))
        seeds = product.seed_masks(space, sources=("n0",))
        masks, changed = product.propagate_masks(space, seeds)
        assert changed == set(masks)
        # a second propagation from the same seeds is a fixpoint: no change
        _, changed_again = product.propagate_masks(space, seeds, masks=masks)
        assert changed_again == set()


# ----------------------------------------------------------------------
# Partition construction
# ----------------------------------------------------------------------
class TestGraphPartition:
    def test_every_node_lands_in_exactly_one_shard(self):
        graph = generators.random_graph(20, 50, labels=("a", "b"), rng=3)
        index = graph.label_index()
        for strategy in ("contiguous", "hash"):
            partition = GraphPartition.build(index, 4, strategy)
            seen = [node for shard in partition.shards for node in shard.nodes]
            assert sorted(map(str, seen)) == sorted(map(str, index.nodes))
            for shard in partition.shards:
                assert all(partition.owner(node) == shard.shard_id for node in shard.nodes)

    def test_cut_edges_are_exactly_the_cross_shard_edges(self):
        graph = generators.community_graph(3, 5, rng=1)
        index = graph.label_index()
        partition = GraphPartition.build(index, 3)
        crossing = 0
        for label in index.edge_labels():
            for source, target in index.pairs(label):
                if partition.owner(source) != partition.owner(target):
                    crossing += 1
                    assert target in partition.shards[partition.owner(source)].cut_targets(
                        label, source
                    )
                else:
                    assert target in partition.shards[partition.owner(source)].targets(
                        label, source
                    )
        assert partition.cut_edge_count == crossing

    def test_contiguous_partition_recovers_communities(self):
        graph = generators.community_graph(4, 6, bridges_per_community=1, rng=2)
        partition = GraphPartition.build(graph.label_index(), 4)
        for shard in partition.shards:
            communities = {str(node).split("n")[0] for node in shard.nodes}
            assert len(communities) == 1
        # only the thin bridge edges cross the cut
        assert partition.cut_edge_count == 4

    def test_partition_validation(self):
        index = generators.chain(2).label_index()
        with pytest.raises(EvaluationError):
            GraphPartition.build(index, 0)
        with pytest.raises(EvaluationError):
            GraphPartition.build(index, 2, strategy="metis")
        with pytest.raises(EvaluationError):
            GraphPartition(index, {}, 2)  # nodes missing from the assignment
        with pytest.raises(EvaluationError):
            GraphPartition(index, {node: 9 for node in index.nodes}, 2)

    def test_stale_partition_is_rejected(self):
        graph = generators.chain(3)
        partition = GraphPartition.build(graph.label_index(), 2)
        graph.add_node("fresh", 1)
        with pytest.raises(EvaluationError):
            sharded_full_relation(graph.label_index(), compile_query("a"), partition)


# ----------------------------------------------------------------------
# Driver equivalence (acceptance property)
# ----------------------------------------------------------------------
class TestDriverEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        graph=graphs,
        text=st.sampled_from(RPQ_POOL),
        num_shards=st.integers(min_value=1, max_value=6),
        strategy=st.sampled_from(["contiguous", "hash"]),
    )
    def test_sharded_equals_sequential(self, graph, text, num_shards, strategy):
        index = graph.label_index()
        automaton = compile_query(text)
        partition = GraphPartition.build(index, num_shards, strategy)
        assert sharded_full_relation(index, automaton, partition) == product.full_relation(
            index, automaton
        )

    @settings(max_examples=30, deadline=None)
    @given(
        graph=graphs,
        text=st.sampled_from(RPQ_POOL),
        num_blocks=st.integers(min_value=1, max_value=5),
    )
    def test_source_blocks_equal_sequential(self, graph, text, num_blocks):
        index = graph.label_index()
        automaton = compile_query(text)
        parallel = parallel_full_relation(
            index, automaton, num_blocks=num_blocks, backend="thread"
        )
        assert parallel == product.full_relation(index, automaton)

    def test_fork_backend_equals_sequential(self):
        graph = generators.random_graph(50, 120, labels=("a", "b"), rng=13)
        index = graph.label_index()
        automaton = compile_query("(a|b)*.a")
        forked = parallel_full_relation(index, automaton, num_blocks=3, backend="fork")
        assert forked == product.full_relation(index, automaton)

    def test_unknown_backend_rejected(self):
        index = generators.chain(2).label_index()
        with pytest.raises(EvaluationError):
            parallel_full_relation(index, compile_query("a"), backend="gpu")


class TestBoundaryEdgeCases:
    def test_cross_shard_only_paths(self):
        """A chain split into single-node shards: every answer path is
        made purely of cut edges and needs one exchange round per hop."""
        graph = generators.chain(6, labels=("a",))
        index = graph.label_index()
        automaton = compile_query("a*")
        partition = GraphPartition.build(index, len(index.nodes))
        assert all(len(shard.nodes) == 1 for shard in partition.shards)
        assert sharded_full_relation(index, automaton, partition) == product.full_relation(
            index, automaton
        )

    def test_more_shards_than_nodes_leaves_empty_shards(self):
        graph = generators.cycle(3, labels=("a",))
        index = graph.label_index()
        assignment = {node: position for position, node in enumerate(index.nodes)}
        partition = GraphPartition(index, assignment, num_shards=7)
        assert sum(1 for shard in partition.shards if not shard.nodes) == 4
        assert sharded_full_relation(index, compile_query("a+"), partition) == (
            product.full_relation(index, compile_query("a+"))
        )

    def test_single_shard_is_the_sequential_engine(self):
        graph = generators.random_graph(15, 40, labels=("a", "b"), rng=5)
        index = graph.label_index()
        automaton = compile_query("a.(a|b)*.b")
        partition = GraphPartition.build(index, 1)
        assert partition.cut_edge_count == 0
        assert sharded_full_relation(index, automaton, partition) == product.full_relation(
            index, automaton
        )

    def test_empty_graph(self):
        index = DataGraph().label_index()
        automaton = compile_query("a")
        assert sharded_full_relation(index, automaton, num_shards=4) == set()
        assert parallel_full_relation(index, automaton) == set()

    def test_disconnected_shards_keep_local_answers(self):
        """Two components in different shards with no cut edges at all."""
        graph = DataGraph(alphabet={"a"})
        for name in ("u0", "u1", "v0", "v1"):
            graph.add_node(name, name)
        graph.add_edge("u0", "a", "u1")
        graph.add_edge("v0", "a", "v1")
        index = graph.label_index()
        partition = GraphPartition(
            index, {"u0": 0, "u1": 0, "v0": 1, "v1": 1}, num_shards=2
        )
        assert partition.cut_edge_count == 0
        assert sharded_full_relation(index, compile_query("a"), partition) == {
            ("u0", "u1"),
            ("v0", "v1"),
        }

    def test_randomised_assignments_agree(self):
        """Arbitrary (adversarial) shard assignments, not just the built-ins."""
        rng = random.Random(23)
        for _ in range(10):
            graph = generators.random_graph(
                rng.randrange(2, 25), rng.randrange(0, 60), labels=("a", "b"),
                rng=rng.randrange(10_000),
            )
            index = graph.label_index()
            num_shards = rng.randrange(1, 6)
            assignment = {node: rng.randrange(num_shards) for node in index.nodes}
            partition = GraphPartition(index, assignment, num_shards)
            for text in ("(a|b)*", "a.(a|b)*.b"):
                automaton = compile_query(text)
                assert sharded_full_relation(index, automaton, partition) == (
                    product.full_relation(index, automaton)
                )
