"""Regression tests for the engine's compiled-automaton caches.

The seed evaluators recompiled the NFA on every call to ``evaluate_rpq``
/ ``rpq_holds`` / ``evaluate_rpq_from``.  These tests pin the fix: all
public entry points share one compiled automaton per query, keyed on the
structural AST, behind an LRU bound.
"""

from __future__ import annotations

import pytest

from repro.datagraph import GraphBuilder
from repro.engine import CompiledAutomaton, EvaluationEngine, LRUCache, default_engine
from repro.query import (
    equality_rpq,
    evaluate_rpq,
    evaluate_rpq_from,
    rpq,
    rpq_holds,
    witness_path_labels,
)
from repro.regular import parse_regex


@pytest.fixture
def small_graph():
    return (
        GraphBuilder(name="cache-test")
        .node("u", 1)
        .node("v", 1)
        .node("w", 2)
        .edge("u", "a", "v")
        .edge("v", "b", "w")
        .edge("w", "a", "u")
        .build()
    )


def test_second_evaluation_hits_the_automaton_cache(small_graph):
    engine = EvaluationEngine()
    engine.evaluate_rpq(small_graph, "a.b")
    stats = engine.stats()["automata"]
    assert (stats.misses, stats.hits) == (1, 0)
    engine.evaluate_rpq(small_graph, "a.b")
    stats = engine.stats()["automata"]
    assert (stats.misses, stats.hits) == (1, 1)


def test_all_entry_points_share_one_compiled_automaton(small_graph):
    engine = EvaluationEngine()
    query = rpq("a.b")
    engine.evaluate_rpq(small_graph, query)
    engine.rpq_holds(small_graph, query, "u", "w")
    engine.evaluate_rpq_from(small_graph, query, "u")
    engine.witness_path_labels(small_graph, query, "u", "w")
    engine.evaluate_many(small_graph, [query, query])
    stats = engine.stats()["automata"]
    assert stats.misses == 1
    assert stats.hits >= 5


def test_equivalent_query_spellings_share_one_entry(small_graph):
    engine = EvaluationEngine()
    expression = parse_regex("a.b")
    engine.evaluate_rpq(small_graph, "a.b")  # textual
    engine.evaluate_rpq(small_graph, expression)  # regex AST
    engine.evaluate_rpq(small_graph, rpq("a.b"))  # RPQ wrapper
    stats = engine.stats()["automata"]
    assert stats.misses == 1
    assert stats.hits == 2


def test_public_module_functions_reuse_the_default_engine_cache(small_graph):
    """The seed recompiled per call; the public API must not (regression)."""
    before = default_engine().stats()["automata"]
    evaluate_rpq(small_graph, "a.b.a")
    rpq_holds(small_graph, "a.b.a", "u", "u")
    evaluate_rpq_from(small_graph, "a.b.a", "u")
    witness_path_labels(small_graph, "a.b.a", "u", "u")
    after = default_engine().stats()["automata"]
    assert after.misses - before.misses <= 1
    assert after.hits - before.hits >= 3


def test_register_automaton_compilation_is_cached(small_graph):
    engine = EvaluationEngine()
    query = equality_rpq("(a.b)=")
    engine.evaluate_data_rpq(small_graph, query, engine="automaton")
    engine.evaluate_data_rpq(small_graph, query, engine="automaton")
    stats = engine.stats()["register_automata"]
    assert (stats.misses, stats.hits) == (1, 1)


def test_lru_bound_evicts_least_recently_used(small_graph):
    engine = EvaluationEngine(automaton_cache_size=2)
    engine.evaluate_rpq(small_graph, "a")
    engine.evaluate_rpq(small_graph, "b")
    engine.evaluate_rpq(small_graph, "a.b")  # evicts "a"
    stats = engine.stats()["automata"]
    assert stats.size == 2
    assert stats.evictions == 1
    engine.evaluate_rpq(small_graph, "a")  # recompilation, not a hit
    assert engine.stats()["automata"].misses == 4


def test_lru_cache_primitive():
    cache: LRUCache[int] = LRUCache(maxsize=2)
    builds = []

    def builder(value):
        def build():
            builds.append(value)
            return value

        return build

    assert cache.get_or_build("x", builder(1)) == 1
    assert cache.get_or_build("x", builder(99)) == 1  # hit, no rebuild
    assert cache.get_or_build("y", builder(2)) == 2
    assert cache.get_or_build("z", builder(3)) == 3  # evicts "x"
    assert cache.get_or_build("x", builder(4)) == 4  # rebuilt after eviction
    assert builds == [1, 2, 3, 4]
    stats = cache.stats()
    assert stats.hits == 1 and stats.misses == 4 and stats.evictions == 2
    assert 0.0 < stats.hit_rate < 1.0
    with pytest.raises(ValueError):
        LRUCache(maxsize=0)


def test_compiled_automaton_tables_match_nfa_language():
    from repro.regular import thompson

    expression = parse_regex("a.(a|b)*.b")
    nfa = thompson(expression)
    compiled = CompiledAutomaton(nfa)
    for word in [(), ("a",), ("a", "b"), ("a", "a", "b"), ("b",), ("a", "b", "a")]:
        assert compiled.accepts_word(word) == nfa.accepts(word), word
    assert compiled.symbols == {"a", "b"}
    assert not compiled.accepts_empty_word


def test_evaluate_rpq_ids_returns_frozen_id_pairs(small_graph):
    engine = EvaluationEngine()
    id_pairs = engine.evaluate_rpq_ids(small_graph, "a.b")
    assert isinstance(id_pairs, frozenset)
    assert id_pairs == {("u", "w")}
    node_pairs = {
        (source.id, target.id) for source, target in engine.evaluate_rpq(small_graph, "a.b")
    }
    assert id_pairs == node_pairs


def test_holds_many_rejects_unknown_node_ids_like_rpq_holds(small_graph):
    from repro.exceptions import UnknownNodeError

    engine = EvaluationEngine()
    with pytest.raises(UnknownNodeError):
        engine.rpq_holds(small_graph, "a", "typo", "v")
    with pytest.raises(UnknownNodeError):
        engine.holds_many(small_graph, "a", [("typo", "v")])
    with pytest.raises(UnknownNodeError):
        engine.holds_many(small_graph, "a", [("u", "typo")])


def test_evaluate_many_stays_correct_across_cache_eviction(small_graph):
    # More distinct queries than the cache holds: mid-batch evictions must
    # not cross answers between queries (regression for id-reuse memoing).
    engine = EvaluationEngine(automaton_cache_size=2)
    queries = ["a", "b", "a.b", "b.a", "a", "b"]
    answers = engine.evaluate_many(small_graph, queries)
    for query, answer in zip(queries, answers):
        assert answer == engine.evaluate_rpq(small_graph, query), query


def test_clear_caches_resets_entries_but_keeps_counters(small_graph):
    engine = EvaluationEngine()
    engine.evaluate_rpq(small_graph, "a.b")
    engine.clear_caches()
    stats = engine.stats()["automata"]
    assert stats.size == 0
    assert stats.misses == 1
    engine.evaluate_rpq(small_graph, "a.b")
    assert engine.stats()["automata"].misses == 2
