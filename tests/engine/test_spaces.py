"""The ProductSpace protocol: every dialect through one kernel stack.

Acceptance property (ISSUE 4): the generic phase kernels and both
partition drivers must agree with the dialect's executable spec for
every space — the NFA product (plain RPQs), the register product
(REE/REM data RPQs, including valuations crossing shard boundaries) and
the closure space (GXPath ``a*``, including closures over cut edges).
"""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import DataGraph, generators
from repro.datapaths import compile_rem, parse_ree, parse_rem, ree_to_rem
from repro.engine import (
    ClosureSpace,
    GraphPartition,
    NfaProductSpace,
    RegisterProductSpace,
    default_engine,
    parallel_product_relation,
    sharded_product_relation,
)
from repro.engine import product
from repro.engine.data import (
    register_automaton_relation,
    register_automaton_relation_per_source,
)

REM_POOL = [
    "!x.((a|b)[x!=])+",
    "!x.(a|b)+[x=]",
    "(a|b)*",
    "!x.(a.(b[x=]|a))+",
]

REE_POOL = [
    "(a|b)* . ((a|b)+)= . (a|b)*",
    "((a|b)+)!=",
]

graphs = st.builds(
    lambda size, edges, seed: generators.random_graph(
        size, edges, labels=("a", "b"), rng=seed, domain_size=3
    ),
    size=st.integers(min_value=1, max_value=18),
    edges=st.integers(min_value=0, max_value=50),
    seed=st.integers(min_value=0, max_value=10_000),
)


def rem_space(index, text, null_semantics=False):
    return RegisterProductSpace(index, compile_rem(parse_rem(text)), null_semantics)


def naive_closure(index, label, inverse=False):
    """Per-start BFS closure — the executable spec `_axis_star` used to be."""
    adjacency = index.predecessors(label) if inverse else index.successors(label)
    pairs = set()
    for start in index.nodes:
        seen = {start}
        queue = deque((start,))
        while queue:
            current = queue.popleft()
            pairs.add((start, current))
            for neighbour in adjacency.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
    return pairs


# ----------------------------------------------------------------------
# The register product space vs the per-source spec
# ----------------------------------------------------------------------
class TestRegisterProductSpace:
    @settings(max_examples=25, deadline=None)
    @given(graph=graphs, text=st.sampled_from(REM_POOL), nulls=st.booleans())
    def test_mask_kernel_equals_per_source_search(self, graph, text, nulls):
        index = graph.label_index()
        automaton = compile_rem(parse_rem(text))
        assert register_automaton_relation(
            index, automaton, nulls
        ) == register_automaton_relation_per_source(index, automaton, nulls)

    @settings(max_examples=15, deadline=None)
    @given(graph=graphs, text=st.sampled_from(REE_POOL))
    def test_translated_ree_agrees_too(self, graph, text):
        index = graph.label_index()
        automaton = compile_rem(ree_to_rem(parse_ree(text)))
        assert register_automaton_relation(
            index, automaton
        ) == register_automaton_relation_per_source(index, automaton)

    @settings(max_examples=15, deadline=None)
    @given(
        graph=graphs,
        text=st.sampled_from(REM_POOL),
        num_shards=st.integers(min_value=1, max_value=5),
        strategy=st.sampled_from(["contiguous", "hash"]),
    )
    def test_sharded_driver_agrees_on_the_register_space(
        self, graph, text, num_shards, strategy
    ):
        index = graph.label_index()
        space = rem_space(index, text)
        partition = GraphPartition.build(index, num_shards, strategy)
        expected = set(register_automaton_relation_per_source(index, space.automaton))
        assert sharded_product_relation(space, partition=partition) == expected

    @settings(max_examples=10, deadline=None)
    @given(
        graph=graphs,
        text=st.sampled_from(REM_POOL),
        num_blocks=st.integers(min_value=1, max_value=4),
    )
    def test_block_driver_agrees_on_the_register_space(self, graph, text, num_blocks):
        index = graph.label_index()
        space = rem_space(index, text)
        expected = set(register_automaton_relation_per_source(index, space.automaton))
        assert (
            parallel_product_relation(space, num_blocks=num_blocks, backend="thread")
            == expected
        )

    def test_valuations_cross_shard_boundaries(self):
        """A chain split into single-node shards: the bound register value
        must travel with the frontier messages through every cut edge."""
        graph = DataGraph(alphabet={"a"})
        values = [1, 2, 1, 3, 1, 2]
        for position, value in enumerate(values):
            graph.add_node(f"n{position}", value)
        for position in range(len(values) - 1):
            graph.add_edge(f"n{position}", "a", f"n{position + 1}")
        index = graph.label_index()
        space = rem_space(index, "!x.(a[x!=])+")
        partition = GraphPartition.build(index, len(index.nodes))
        assert all(len(shard.nodes) == 1 for shard in partition.shards)
        expected = set(
            register_automaton_relation_per_source(index, space.automaton)
        )
        # sanity: the expected relation really does depend on the register
        assert ("n0", "n1") in expected and ("n0", "n2") not in expected
        assert sharded_product_relation(space, partition=partition) == expected

    def test_forked_shard_rounds_agree_with_in_process(self):
        graph = generators.community_graph(3, 8, rng=5, domain_size=3)
        index = graph.label_index()
        space = rem_space(index, "!x.((knows|bridge)[x!=])+")
        partition = GraphPartition.build(index, 3)
        in_process = sharded_product_relation(space, partition=partition, processes=False)
        forked = sharded_product_relation(space, partition=partition, processes=True)
        assert forked == in_process


# ----------------------------------------------------------------------
# The closure space vs the per-start BFS spec
# ----------------------------------------------------------------------
class TestClosureSpace:
    @settings(max_examples=25, deadline=None)
    @given(graph=graphs, label=st.sampled_from(["a", "b"]))
    def test_closure_equals_per_start_bfs(self, graph, label):
        index = graph.label_index()
        space = ClosureSpace(index, label)
        assert product.product_relation(space) == naive_closure(index, label)

    @settings(max_examples=15, deadline=None)
    @given(
        graph=graphs,
        label=st.sampled_from(["a", "b"]),
        num_shards=st.integers(min_value=1, max_value=5),
    )
    def test_sharded_closure_agrees(self, graph, label, num_shards):
        index = graph.label_index()
        space = ClosureSpace(index, label)
        assert sharded_product_relation(space, num_shards=num_shards) == naive_closure(
            index, label
        )

    def test_closure_over_cut_edges_only(self):
        """A pure chain with one node per shard: every closure step is a
        cut edge, so the whole relation is built by frontier exchange."""
        graph = generators.chain(7, labels=("a",))
        index = graph.label_index()
        space = ClosureSpace(index, "a")
        partition = GraphPartition.build(index, len(index.nodes))
        assert partition.cut_edge_count == 7  # chain(7) has 8 nodes, 7 edges
        assert sharded_product_relation(space, partition=partition) == naive_closure(
            index, "a"
        )

    def test_inverse_closure_is_the_transpose(self):
        graph = generators.random_graph(12, 30, labels=("a",), rng=9)
        index = graph.label_index()
        forward = product.product_relation(ClosureSpace(index, "a"))
        assert {(v, u) for u, v in forward} == naive_closure(index, "a", inverse=True)


# ----------------------------------------------------------------------
# The NFA space through the generic composition
# ----------------------------------------------------------------------
class TestNfaSpaceGenericComposition:
    @settings(max_examples=20, deadline=None)
    @given(graph=graphs, text=st.sampled_from(["a", "(a|b)*", "a.(a|b)*.b"]))
    def test_product_relation_matches_full_relation(self, graph, text):
        index = graph.label_index()
        automaton = default_engine().compile_rpq(text)
        space = NfaProductSpace(index, automaton)
        assert product.product_relation(space) == product.full_relation(index, automaton)

    def test_empty_graph_is_empty_for_every_space(self):
        index = DataGraph(alphabet={"a"}).label_index()
        automaton = default_engine().compile_rpq("a")
        rem = compile_rem(parse_rem("!x.(a[x!=])+"))
        for space in (
            NfaProductSpace(index, automaton),
            RegisterProductSpace(index, rem),
            ClosureSpace(index, "a"),
        ):
            assert product.product_relation(space) == set()
            assert sharded_product_relation(space, num_shards=3) == set()
            assert parallel_product_relation(space, backend="thread") == set()

    def test_rejects_unknown_backend_before_running(self):
        index = generators.chain(2).label_index()
        space = ClosureSpace(index, "a")
        with pytest.raises(Exception):
            parallel_product_relation(space, backend="gpu")
