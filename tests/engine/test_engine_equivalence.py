"""Property tests: the indexed/batched engine against the naive evaluators.

For random graphs (drawn via :mod:`repro.workloads.random_workloads` and
:mod:`repro.datagraph.generators`) and random queries, the engine must
return byte-identical answer sets to the seed implementations for RPQs,
data RPQs and GXPath.  The naive evaluators are the executable
specification — any divergence is an engine bug.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import generators
from repro.engine import EvaluationEngine, default_engine
from repro.gxpath.ast import (
    Axis,
    AxisStar,
    NodeExists,
    PathConcat,
    PathEpsilon,
    PathEqual,
    PathNotEqual,
    PathUnion,
)
from repro.gxpath.evaluation import evaluate_path
from repro.query import (
    evaluate_data_rpq,
    evaluate_data_rpq_naive,
    evaluate_rpq,
    evaluate_rpq_naive,
    rpq,
)
from repro.workloads.random_workloads import random_equality_query, workload_sweep

RPQ_POOL = [
    "a",
    "b.a",
    "(a|b)*",
    "a.(a|b)*.b",
    "(a|b)*.a.(a|b)*",
    "(a.b)+",
    "a*|b*",
    "(a|b).(a|b).(a|b)",
]


def random_graph_from(seed: int, size: int):
    return generators.random_graph(
        num_nodes=size,
        num_edges=size * 2,
        labels=("a", "b"),
        rng=seed,
        domain_size=max(2, size // 3),
    )


# ----------------------------------------------------------------------
# RPQ: engine vs seed per-source BFS
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=40),
    query_index=st.integers(min_value=0, max_value=len(RPQ_POOL) - 1),
)
def test_rpq_engine_matches_naive(seed, size, query_index):
    graph = random_graph_from(seed, size)
    query = rpq(RPQ_POOL[query_index])
    assert evaluate_rpq(graph, query) == evaluate_rpq_naive(graph, query)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=30),
)
def test_rpq_batched_and_point_entry_points_agree(seed, size):
    graph = random_graph_from(seed, size)
    engine = EvaluationEngine()
    queries = [RPQ_POOL[seed % len(RPQ_POOL)], RPQ_POOL[(seed + 3) % len(RPQ_POOL)]]
    batched = engine.evaluate_many(graph, queries)
    for query, answer in zip(queries, batched):
        assert answer == evaluate_rpq_naive(graph, query)
        pairs = [(source.id, target.id) for source, target in answer]
        verdicts = engine.holds_many(graph, query, pairs)
        assert all(verdicts.values())
        # spot-check some non-answers too
        node_ids = graph.node_ids
        non_answers = [
            (node_ids[i], node_ids[j])
            for i in range(len(node_ids))
            for j in range(len(node_ids))
            if (graph.node(node_ids[i]), graph.node(node_ids[j])) not in answer
        ][:10]
        negative = engine.holds_many(graph, query, non_answers)
        assert not any(negative.values())


# ----------------------------------------------------------------------
# Data RPQ: algebraic and register engines vs seed product BFS
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=16),
    shape=st.sampled_from(["equal", "unequal", "repeat", "plain"]),
    null_semantics=st.booleans(),
)
def test_data_rpq_engines_match_naive(seed, size, shape, null_semantics):
    graph = generators.random_graph(
        num_nodes=size,
        num_edges=size * 2,
        labels=("a", "b"),
        rng=seed,
        domain_size=max(2, size // 2),
    )
    query = random_equality_query(("a", "b"), length=2, test=shape, rng=seed)
    naive = evaluate_data_rpq_naive(graph, query, null_semantics=null_semantics)
    algebraic = evaluate_data_rpq(graph, query, null_semantics, engine="algebraic")
    automaton = evaluate_data_rpq(graph, query, null_semantics, engine="automaton")
    assert algebraic == naive
    assert automaton == naive


def test_data_rpq_equivalence_on_workload_sweep():
    for workload in workload_sweep(sizes=(6, 10, 14), query_test="repeat"):
        graph = workload.source
        # the sweep query is over the target alphabet; ask it over the
        # source alphabet instead so it actually touches edges
        query = random_equality_query(
            tuple(sorted(workload.mapping.source_alphabet)), test="repeat", rng=workload.parameters["nodes"]
        )
        naive = evaluate_data_rpq_naive(graph, query)
        assert evaluate_data_rpq(graph, query, engine="algebraic") == naive
        assert evaluate_data_rpq(graph, query, engine="automaton") == naive


# ----------------------------------------------------------------------
# GXPath: indexed evaluator vs a direct seed-style reference
# ----------------------------------------------------------------------
def reference_path(graph, expression, null_semantics=False):
    """Seed-style GXPath path semantics, written directly on the graph API."""
    if isinstance(expression, PathEpsilon):
        return frozenset((node_id, node_id) for node_id in graph.node_ids)
    if isinstance(expression, Axis):
        pairs = {
            (source.id, target.id)
            for source, target in graph.edge_relation(expression.label)
        }
        return frozenset((t, s) for s, t in pairs) if expression.inverse else frozenset(pairs)
    if isinstance(expression, AxisStar):
        result = set()
        for start in graph.node_ids:
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                result.add((start, current))
                steps = (
                    graph.predecessors(current, expression.label)
                    if expression.inverse
                    else graph.successors(current, expression.label)
                )
                for _, neighbour in steps:
                    if neighbour.id not in seen:
                        seen.add(neighbour.id)
                        stack.append(neighbour.id)
        return frozenset(result)
    if isinstance(expression, PathConcat):
        left = reference_path(graph, expression.left, null_semantics)
        right = reference_path(graph, expression.right, null_semantics)
        return frozenset(
            (s, t2) for s, t1 in left for t1b, t2 in right if t1 == t1b
        )
    if isinstance(expression, PathUnion):
        return reference_path(graph, expression.left, null_semantics) | reference_path(
            graph, expression.right, null_semantics
        )
    if isinstance(expression, (PathEqual, PathNotEqual)):
        from repro.datagraph import values_differ, values_equal

        inner = reference_path(graph, expression.inner, null_semantics)
        want_equal = isinstance(expression, PathEqual)
        kept = set()
        for s, t in inner:
            first, last = graph.value_of(s), graph.value_of(t)
            if null_semantics:
                ok = values_equal(first, last) if want_equal else values_differ(first, last)
            else:
                ok = (first == last) if want_equal else (first != last)
            if ok:
                kept.add((s, t))
        return frozenset(kept)
    raise AssertionError(f"unexpected expression {expression!r}")


def random_gxpath(rng: random.Random, depth: int = 3):
    if depth == 0 or rng.random() < 0.3:
        choice = rng.random()
        if choice < 0.15:
            return PathEpsilon()
        label = rng.choice(["a", "b"])
        inverse = rng.random() < 0.4
        if choice < 0.6:
            return Axis(label, inverse)
        return AxisStar(label, inverse)
    combinator = rng.choice(["concat", "union", "equal", "notequal"])
    if combinator == "concat":
        return PathConcat(random_gxpath(rng, depth - 1), random_gxpath(rng, depth - 1))
    if combinator == "union":
        return PathUnion(random_gxpath(rng, depth - 1), random_gxpath(rng, depth - 1))
    if combinator == "equal":
        return PathEqual(random_gxpath(rng, depth - 1))
    return PathNotEqual(random_gxpath(rng, depth - 1))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=20),
    null_semantics=st.booleans(),
)
def test_gxpath_engine_matches_reference(seed, size, null_semantics):
    graph = random_graph_from(seed, size)
    rng = random.Random(seed)
    expression = random_gxpath(rng)
    expected = reference_path(graph, expression, null_semantics)
    actual = frozenset(
        (source.id, target.id)
        for source, target in evaluate_path(graph, expression, null_semantics)
    )
    assert actual == expected


def test_gxpath_node_exists_uses_indexed_paths(toy_graph):
    from repro.gxpath.evaluation import evaluate_node

    expression = NodeExists(PathConcat(Axis("knows"), Axis("worksAt")))
    nodes = {node.id for node in evaluate_node(toy_graph, expression)}
    assert nodes == {"alice", "dave"}


# ----------------------------------------------------------------------
# Mutation safety: results must track graph changes (no stale caches)
# ----------------------------------------------------------------------
def test_engine_results_follow_graph_mutations(toy_graph):
    engine = default_engine()
    before = engine.evaluate_rpq(toy_graph, "knows.knows")
    toy_graph.add_edge("dave", "knows", "bob")
    after = engine.evaluate_rpq(toy_graph, "knows.knows")
    assert before != after
    assert after == evaluate_rpq_naive(toy_graph, "knows.knows")


@pytest.mark.parametrize("query", RPQ_POOL)
def test_rpq_pool_on_fixed_graph(query):
    graph = random_graph_from(424242, 25)
    assert evaluate_rpq(graph, query) == evaluate_rpq_naive(graph, query)
