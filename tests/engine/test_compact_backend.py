"""Property suite: the compact CSR backend against the dict kernels.

For random graphs and pools of queries in every dialect, evaluation over
the :class:`~repro.datagraph.compact.CompactLabelIndex` must return
byte-identical answers to the dict-backed kernels — and, where a naive
executable specification exists, to that as well.  Seeded (semijoin)
evaluation, the sharded int-id driver loop, empty graphs and
one-node-per-shard partitions are covered explicitly: the compact
backend is an *optimisation*, so any divergence anywhere is a bug.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExecutionPolicy, GraphSession, Query
from repro.datagraph import GraphBuilder, generators
from repro.datagraph.compact import CompactLabelIndex, owner_column
from repro.engine import compact as compact_kernels
from repro.engine import default_engine
from repro.engine.partition import GraphPartition, sharded_product_relation
from repro.engine.spaces import NfaProductSpace
from repro.query import evaluate_crpq_naive, evaluate_data_rpq_naive, evaluate_rpq_naive, rpq

RPQ_POOL = [
    "a",
    "b.a",
    "(a|b)*",
    "a.(a|b)*.b",
    "(a.b)+",
    "a*|b*",
]

DATA_POOL = [  # (text, dialect)
    ("((a|b))=", "ree"),
    ("((a|b)+)=", "ree"),
    ("!x.(a[x=])+", "rem"),
    ("!x.((a|b)[x!=])+", "rem"),
    ("!x. a[x!=] . b[x=]", "rem"),
]

CRPQ_POOL = [
    "x, y :- (x, a, z), (z, b, y)",
    "x, y :- (x, a.(a|b)*, z), (z, b, y)",
    "x :- (x, (a|b)+, x)",
]

GXPATH_PATH_POOL = ["a.b", "a*", "a*.b", "(a*)=", "(a.b)!="]
GXPATH_NODE_POOL = ["<a.b>", "<a*>", "<b*.a>"]


def random_graph_from(seed: int, size: int):
    return generators.random_graph(
        num_nodes=size,
        num_edges=size * 2,
        labels=("a", "b"),
        rng=seed,
        domain_size=max(2, size // 3),
    )


def sessions(graph):
    return (
        GraphSession(graph, policy=ExecutionPolicy(backend="compact")),
        GraphSession(graph, policy=ExecutionPolicy(backend="dict")),
    )


# ----------------------------------------------------------------------
# All dialects: compact session == dict session (== naive spec)
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=40),
    query_index=st.integers(min_value=0, max_value=len(RPQ_POOL) - 1),
)
def test_rpq_compact_matches_dict_and_naive(seed, size, query_index):
    graph = random_graph_from(seed, size)
    text = RPQ_POOL[query_index]
    compact_session, dict_session = sessions(graph)
    compact_pairs = compact_session.run(text).pairs()
    assert compact_pairs == dict_session.run(text).pairs()
    assert compact_pairs == evaluate_rpq_naive(graph, rpq(text))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=30),
    query_index=st.integers(min_value=0, max_value=len(DATA_POOL) - 1),
    null_semantics=st.booleans(),
)
def test_data_rpq_compact_matches_dict_and_naive(seed, size, query_index, null_semantics):
    graph = random_graph_from(seed, size)
    text, dialect = DATA_POOL[query_index]
    query = Query.parse(text, dialect=dialect)
    compact_session, dict_session = sessions(graph)
    compact_pairs = compact_session.run(query, null_semantics=null_semantics).pairs()
    assert compact_pairs == dict_session.run(query, null_semantics=null_semantics).pairs()
    assert compact_pairs == evaluate_data_rpq_naive(graph, query.plan, null_semantics)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=20),
    query_index=st.integers(min_value=0, max_value=len(CRPQ_POOL) - 1),
)
def test_crpq_compact_matches_dict_and_naive(seed, size, query_index):
    graph = random_graph_from(seed, size)
    query = Query.parse(CRPQ_POOL[query_index], dialect="crpq")
    compact_session, dict_session = sessions(graph)
    compact_rows = compact_session.run(query).rows()
    assert compact_rows == dict_session.run(query).rows()
    assert compact_rows == evaluate_crpq_naive(graph, query.plan)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=30),
    path_index=st.integers(min_value=0, max_value=len(GXPATH_PATH_POOL) - 1),
    node_index=st.integers(min_value=0, max_value=len(GXPATH_NODE_POOL) - 1),
)
def test_gxpath_compact_matches_dict(seed, size, path_index, node_index):
    graph = random_graph_from(seed, size)
    compact_session, dict_session = sessions(graph)
    path_query = Query.parse(GXPATH_PATH_POOL[path_index], dialect="gxpath-path")
    assert compact_session.run(path_query).pairs() == dict_session.run(path_query).pairs()
    node_query = Query.parse(GXPATH_NODE_POOL[node_index], dialect="gxpath-node")
    assert compact_session.run(node_query).nodes() == dict_session.run(node_query).nodes()


# ----------------------------------------------------------------------
# Seeded (semijoin) evaluation
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=2, max_value=40),
    query_index=st.integers(min_value=0, max_value=len(RPQ_POOL) - 1),
    data=st.data(),
)
def test_seeded_scans_agree(seed, size, query_index, data):
    graph = random_graph_from(seed, size)
    engine = default_engine()
    query = rpq(RPQ_POOL[query_index])
    ids = list(graph.node_ids)
    sources = set(data.draw(st.lists(st.sampled_from(ids), max_size=5)))
    targets = set(data.draw(st.lists(st.sampled_from(ids), max_size=5)))
    for bound_sources in (None, sources):
        for bound_targets in (None, targets):
            compact_pairs = engine.evaluate_atom_ids(
                graph, query, sources=bound_sources, targets=bound_targets, backend="compact"
            )
            dict_pairs = engine.evaluate_atom_ids(
                graph, query, sources=bound_sources, targets=bound_targets, backend="dict"
            )
            assert compact_pairs == dict_pairs, (bound_sources, bound_targets)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=40),
    query_index=st.integers(min_value=0, max_value=len(RPQ_POOL) - 1),
)
def test_point_reachability_agrees(seed, size, query_index):
    graph = random_graph_from(seed, size)
    engine = default_engine()
    query = rpq(RPQ_POOL[query_index])
    source = next(iter(graph.node_ids))
    compact_targets = engine.evaluate_rpq_from(graph, query, source, backend="compact")
    assert compact_targets == engine.evaluate_rpq_from(graph, query, source, backend="dict")


# ----------------------------------------------------------------------
# Sharded int-id driver loop (in-process twin of the worker-pool path)
# ----------------------------------------------------------------------
def compact_sharded_pairs(graph, text: str, partition: GraphPartition):
    """Drive the compact shard kernels round-by-round, as the pool parent does."""
    compact = graph.compact_index()
    automaton = default_engine().compile_rpq(rpq(text))
    owner = owner_column(partition.assignment, compact.nodes)
    S, initial, accepting, plans = compact_kernels.nfa_shard_plans(compact, automaton)
    position = compact.position
    masks = {shard.shard_id: {} for shard in partition.shards}
    pending = {}
    for shard in partition.shards:
        seeds = {}
        for node in shard.nodes:
            i = position[node]
            bit = 1 << i
            for state in initial:
                config = i * S + state
                seeds[config] = seeds.get(config, 0) | bit
        if seeds:
            pending[shard.shard_id] = seeds
    while pending:
        outboxes = {}
        for shard_id, inbox in pending.items():
            shard_outboxes = compact_kernels.compact_shard_round(
                plans, S, owner, shard_id, masks[shard_id], inbox
            )
            for destination, messages in shard_outboxes.items():
                box = outboxes.setdefault(destination, {})
                for config, mask in messages.items():
                    box[config] = box.get(config, 0) | mask
        pending = {sid: box for sid, box in outboxes.items() if box}
    pairs = set()
    for shard_masks in masks.values():
        pairs |= compact_kernels.decode_shard_masks(compact, S, accepting, shard_masks)
    return pairs


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=30),
    num_shards=st.integers(min_value=1, max_value=6),
    query_index=st.integers(min_value=0, max_value=len(RPQ_POOL) - 1),
)
def test_compact_sharded_driver_matches_dict(seed, size, num_shards, query_index):
    graph = random_graph_from(seed, size)
    text = RPQ_POOL[query_index]
    partition = GraphPartition.build(graph.label_index(), num_shards)
    compact_pairs = compact_sharded_pairs(graph, text, partition)
    space = NfaProductSpace(graph.label_index(), default_engine().compile_rpq(rpq(text)))
    dict_pairs = sharded_product_relation(space, partition=partition, processes=False)
    assert compact_pairs == dict_pairs


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=1, max_value=12),
    query_index=st.integers(min_value=0, max_value=len(RPQ_POOL) - 1),
)
def test_single_node_shards(seed, size, query_index):
    """One shard per node: every non-loop edge crosses the cut."""
    graph = random_graph_from(seed, size)
    text = RPQ_POOL[query_index]
    partition = GraphPartition.build(graph.label_index(), graph.num_nodes)
    compact_pairs = compact_sharded_pairs(graph, text, partition)
    engine = default_engine()
    assert compact_pairs == engine.evaluate_atom_ids(graph, rpq(text), backend="dict")


# ----------------------------------------------------------------------
# Degenerate graphs
# ----------------------------------------------------------------------
class TestEmptyGraph:
    def test_every_dialect_on_the_empty_graph(self):
        graph = GraphBuilder(name="empty").build()
        compact_session, dict_session = sessions(graph)
        for text, dialect in [
            ("(a|b)*", "rpq"),
            ("((a|b))=", "ree"),
            ("!x.(a[x=])+", "rem"),
            ("a.b", "gxpath-path"),
            ("<a*>", "gxpath-node"),
        ]:
            query = Query.parse(text, dialect=dialect)
            compact = compact_session.run(query)
            expected = dict_session.run(query)
            if dialect == "gxpath-node":
                assert compact.nodes() == expected.nodes() == frozenset()
            else:
                assert compact.pairs() == expected.pairs() == frozenset()
        crpq = Query.parse("x, y :- (x, a, y)", dialect="crpq")
        assert compact_session.run(crpq).rows() == frozenset()

    def test_empty_compact_index_shape(self):
        graph = GraphBuilder(name="empty").build()
        compact = CompactLabelIndex.from_label_index(graph.label_index())
        assert compact.num_nodes == 0
        assert compact.edge_labels() == frozenset()

    def test_single_node_no_edges(self):
        builder = GraphBuilder(name="lonely")
        builder.node("only", 1)
        graph = builder.build()
        compact_session, dict_session = sessions(graph)
        assert compact_session.run("a*").pairs() == dict_session.run("a*").pairs()
        assert compact_session.run("a").pairs() == frozenset()
