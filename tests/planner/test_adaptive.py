"""Adaptive execution: re-planning, cached relations, distributed joins.

The invariant under test is the one the v2 planner is built on: the
adaptive executor may change join *order* mid-flight, reuse cached
relations as scan inputs and scatter joins across a worker pool, but
answers stay bit-identical to :func:`repro.query.crpq.evaluate_crpq_naive`.
Hypothesis drives random queries through a forced-re-plan executor
(`ADAPTIVE_REPLAN_RATIO` monkeypatched to 1.0 fires a re-plan after
every join) to hit re-planning on every multi-join query, not just the
ones whose estimates happen to be bad.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import generators
from repro.engine import default_engine
from repro.planner import PlanTrace, execute_plan, graph_statistics, plan_crpq
from repro.planner import execute as execute_module
from repro.query.crpq import evaluate_crpq_naive
from repro.workloads import CRPQ_SHAPES, random_crpq

# No DeprecationWarning-as-error mark here: hypothesis pulls in
# mypy_extensions, whose import warns under some interpreter versions.

LABELS = ("a", "b")


def community(seed: int, num_nodes: int = 24):
    return generators.community_graph(
        3,
        num_nodes // 3,
        intra_edges_per_node=2,
        bridges_per_community=2,
        labels=("a",),
        bridge_label="b",
        rng=seed,
        domain_size=3,
    )


def run_both(graph, query, null_semantics=False, **hooks):
    engine = default_engine()
    expected = evaluate_crpq_naive(
        graph, query, null_semantics=null_semantics, engine=engine
    )
    plan = plan_crpq(query, graph.label_index(), graph_statistics(graph))
    actual = execute_plan(
        plan,
        graph,
        engine=engine,
        null_semantics=null_semantics,
        adaptive=True,
        **hooks,
    )
    assert actual == expected, plan.explain()
    return expected


class TestAdaptiveMatchesTheSpec:
    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.sampled_from(CRPQ_SHAPES),
        graph_seed=st.integers(0, 7),
        query_seed=st.integers(0, 500),
        num_atoms=st.integers(2, 4),
        null_semantics=st.booleans(),
    )
    def test_random_queries(self, shape, graph_seed, query_seed, num_atoms, null_semantics):
        graph = community(graph_seed * 7 + 1)
        query = random_crpq(
            LABELS,
            shape=shape,
            num_atoms=num_atoms,
            head_arity=2,
            data_atom_prob=0.3,
            closure_prob=0.25,
            self_loop_prob=0.2,
            rng=query_seed,
        )
        run_both(graph, query, null_semantics=null_semantics)

    @settings(max_examples=25, deadline=None)
    @given(
        shape=st.sampled_from(CRPQ_SHAPES),
        query_seed=st.integers(0, 500),
        num_atoms=st.integers(3, 5),
    )
    def test_forced_mid_join_replans(self, shape, query_seed, num_atoms):
        """Ratio 1.0 makes every join a misestimate: the executor re-plans
        after each step and must still produce the specification answer.

        The module global is swapped by hand — a function-scoped
        ``monkeypatch`` does not reset between hypothesis examples.
        """
        graph = community(3)
        query = random_crpq(
            LABELS,
            shape=shape,
            num_atoms=num_atoms,
            head_arity=2,
            data_atom_prob=0.25,
            closure_prob=0.3,
            self_loop_prob=0.2,
            rng=query_seed,
        )
        trace = PlanTrace()
        previous = execute_module.ADAPTIVE_REPLAN_RATIO
        execute_module.ADAPTIVE_REPLAN_RATIO = 1.0
        try:
            run_both(graph, query, trace=trace)
        finally:
            execute_module.ADAPTIVE_REPLAN_RATIO = previous
        # self_loop_prob can append extra atoms beyond num_atoms
        assert sorted(trace.atom_order) == list(range(len(query.atoms)))

    def test_replan_actually_fires_and_is_traced(self, monkeypatch):
        monkeypatch.setattr(execute_module, "ADAPTIVE_REPLAN_RATIO", 1.0)
        graph = community(5)
        query = random_crpq(
            LABELS, shape="chain", num_atoms=4, head_arity=2, closure_prob=0.4, rng=13
        )
        trace = PlanTrace()
        run_both(graph, query, trace=trace)
        assert trace.replans >= 1
        assert any(replanned for *_, replanned in trace.steps)
        text = trace.describe()
        assert "re-planned remaining joins" in text
        assert "estimated" in text and "observed" in text


class TestRelationCache:
    def test_cached_relation_is_reused_and_answers_match(self):
        graph = community(9)
        query = random_crpq(LABELS, shape="chain", num_atoms=3, head_arity=2, rng=21)
        engine = default_engine()

        served = []

        def cache(atom):
            pairs = engine.evaluate_atom_ids(graph, atom.query)
            served.append(atom)
            return pairs

        trace = PlanTrace()
        run_both(graph, query, relation_cache=cache, trace=trace)
        assert served  # the executor consulted the cache
        assert trace.cache_hits == len(served)

    def test_declining_cache_changes_nothing(self):
        graph = community(10)
        query = random_crpq(LABELS, shape="star", num_atoms=3, head_arity=2, rng=22)
        run_both(graph, query, relation_cache=lambda atom: None)


class TestDistributedJoinHook:
    def test_join_runner_result_is_used(self, monkeypatch):
        monkeypatch.setattr(execute_module, "DISTRIBUTED_JOIN_MIN_ROWS", 0)
        graph = community(11)
        query = random_crpq(LABELS, shape="chain", num_atoms=3, head_arity=2, rng=31)

        calls = []

        def runner(left_rows, right_rows, left_key, right_key, right_only):
            calls.append((len(left_rows), len(right_rows)))
            table = {}
            for row in right_rows:
                table.setdefault(tuple(row[i] for i in right_key), []).append(row)
            return {
                left + tuple(right[i] for i in right_only)
                for left in left_rows
                for right in table.get(tuple(left[i] for i in left_key), ())
            }

        trace = PlanTrace()
        run_both(graph, query, join_runner=runner, trace=trace)
        assert calls
        assert trace.distributed_joins == len(calls)

    def test_busy_runner_falls_back_to_local(self, monkeypatch):
        monkeypatch.setattr(execute_module, "DISTRIBUTED_JOIN_MIN_ROWS", 0)
        graph = community(12)
        query = random_crpq(LABELS, shape="cycle", num_atoms=3, head_arity=2, rng=32)
        trace = PlanTrace()
        run_both(graph, query, join_runner=lambda *a: None, trace=trace)
        assert trace.distributed_joins == 0

    def test_small_joins_are_not_offered(self):
        graph = community(13)
        query = random_crpq(LABELS, shape="chain", num_atoms=2, head_arity=2, rng=33)

        def exploding(*args):  # pragma: no cover - must never run
            raise AssertionError("join below DISTRIBUTED_JOIN_MIN_ROWS was offered")

        run_both(graph, query, join_runner=exploding)
