"""Cost-based routing: choices, overrides, and answer equivalence.

Two invariants: (1) the route picked for a query is the one the policy
and cost model say it should be — overrides beat cost, cost decisions
match the SQL/compact/parallel seams they delegate to; (2) whatever
route fires, answers are bit-identical to the sequential dict-backend
baseline across all five dialects.  The parallel gates are monkeypatched
down so the routes that normally need thousand-node graphs fire on test
graphs.
"""

from __future__ import annotations

import pytest

from repro.api import ExecutionPolicy, GraphSession, Query
from repro.datagraph import generators
from repro.exceptions import EvaluationError
from repro.planner import Route, graph_statistics, route_query
from repro.planner import router as router_module

LABELS = ("a", "b")

#: One representative query per dialect.
DIALECTS = {
    "rpq": Query.parse("a.(a|b)+"),
    "data_rpq": Query.parse("((a|b))=", dialect="ree"),
    "crpq": Query.parse("z(x, y) :- (x, a+, z), (z, (a|b), y)", dialect="crpq"),
    "gxpath_node": Query.parse("<a.b>", dialect="gxpath-node"),
    "gxpath_path": Query.parse("a.a-", dialect="gxpath-path"),
}


@pytest.fixture(scope="module")
def graph():
    return generators.community_graph(
        3, 12, intra_edges_per_node=2, bridges_per_community=2,
        labels=("a",), bridge_label="b", rng=7, domain_size=4,
    )


class TestRouteChoices:
    @pytest.mark.parametrize("name", sorted(DIALECTS))
    def test_default_routes_are_local(self, graph, name):
        route = route_query(DIALECTS[name], graph, ExecutionPolicy.auto())
        assert isinstance(route, Route)
        assert route.mode == "off"
        assert route.strategy in {"sequential", "compact", "sql"}
        assert route.estimate >= 0.0
        assert route.describe().startswith("route: ")

    def test_small_graph_routes_sequential(self, graph):
        route = route_query(Query.parse("a"), graph, ExecutionPolicy.auto())
        assert route.strategy == "sequential"

    def test_large_graph_closure_routes_parallel(self, graph, monkeypatch):
        monkeypatch.setattr(router_module, "ROUTE_PARALLEL_MIN_NODES", 1)
        monkeypatch.setattr(router_module, "ROUTE_PARALLEL_WORK_FACTOR", 0.0)
        route = route_query(DIALECTS["rpq"], graph, ExecutionPolicy.auto())
        assert route.strategy == "blocks"
        assert route.mode == "blocks"

    def test_pool_upgrades_parallel_to_sharded(self, graph, monkeypatch):
        monkeypatch.setattr(router_module, "ROUTE_PARALLEL_MIN_NODES", 1)
        monkeypatch.setattr(router_module, "ROUTE_PARALLEL_WORK_FACTOR", 0.0)
        route = route_query(
            DIALECTS["rpq"], graph, ExecutionPolicy.auto(), pooled=True
        )
        assert route.strategy == "sharded"

    def test_intra_query_policy_overrides_routing(self, graph):
        policy = ExecutionPolicy.preset(
            "local", intra_query="blocks", intra_query_threshold=0
        )
        route = route_query(DIALECTS["crpq"], graph, policy)
        assert route.mode == "blocks"
        assert "override" in route.reason

    def test_intra_query_threshold_still_gates_the_override(self, graph):
        policy = ExecutionPolicy.preset(
            "local", intra_query="blocks", intra_query_threshold=10**6
        )
        route = route_query(DIALECTS["crpq"], graph, policy)
        assert route.mode == "off"

    def test_forced_backend_overrides_routing(self, graph):
        policy = ExecutionPolicy.auto(backend="dict")
        route = route_query(DIALECTS["rpq"], graph, policy)
        assert route.strategy == "dict"
        assert route.backend == "dict"
        assert route.mode == "off"

    def test_manual_routing_restores_knob_behaviour(self, graph, monkeypatch):
        monkeypatch.setattr(router_module, "ROUTE_PARALLEL_MIN_NODES", 1)
        monkeypatch.setattr(router_module, "ROUTE_PARALLEL_WORK_FACTOR", 0.0)
        policy = ExecutionPolicy.preset("local", routing="manual")
        route = route_query(DIALECTS["rpq"], graph, policy)
        assert route.mode == "off"
        assert route.reason == "manual routing policy"

    def test_stats_sharpen_the_estimate(self, graph):
        with_stats = route_query(
            DIALECTS["crpq"], graph, ExecutionPolicy.auto(),
            stats=graph_statistics(graph),
        )
        without = route_query(DIALECTS["crpq"], graph, ExecutionPolicy.auto())
        # Stats only ever sharpen (shrink data-atom / widen closure
        # numbers); both must be valid local routes on this small graph.
        assert with_stats.mode == without.mode == "off"

    def test_unknown_routing_mode_rejected(self):
        with pytest.raises(EvaluationError, match="routing"):
            ExecutionPolicy.preset("local", routing="psychic")


class TestRoutedAnswersMatchDictBackend:
    """Every route the auto-router can pick returns the baseline answer."""

    @pytest.mark.parametrize("name", sorted(DIALECTS))
    def test_auto_matches_manual(self, graph, name):
        query = DIALECTS[name]
        baseline = GraphSession(
            graph, policy=ExecutionPolicy.preset("local", backend="dict", routing="manual")
        ).run(query).rows()
        auto = GraphSession(graph, policy=ExecutionPolicy.auto()).run(query).rows()
        assert auto == baseline

    @pytest.mark.parametrize("name", sorted(DIALECTS))
    def test_forced_parallel_route_matches(self, graph, name, monkeypatch):
        monkeypatch.setattr(router_module, "ROUTE_PARALLEL_MIN_NODES", 1)
        monkeypatch.setattr(router_module, "ROUTE_PARALLEL_WORK_FACTOR", 0.0)
        query = DIALECTS[name]
        baseline = GraphSession(
            graph, policy=ExecutionPolicy.preset("local", backend="dict", routing="manual")
        ).run(query).rows()
        assert GraphSession(graph, policy=ExecutionPolicy.auto()).run(query).rows() == baseline

    @pytest.mark.parametrize("backend", ["compact", "sql"])
    @pytest.mark.parametrize("name", sorted(DIALECTS))
    def test_forced_backends_match(self, graph, name, backend):
        query = DIALECTS[name]
        if backend == "sql":
            pytest.importorskip("duckdb")
        baseline = GraphSession(
            graph, policy=ExecutionPolicy.preset("local", backend="dict", routing="manual")
        ).run(query).rows()
        forced = GraphSession(
            graph, policy=ExecutionPolicy.auto(backend=backend)
        ).run(query).rows()
        assert forced == baseline


class TestExplainShowsTheRoute:
    def test_route_header_and_trace(self, graph):
        session = GraphSession(graph, policy=ExecutionPolicy.auto())
        query = DIALECTS["crpq"]
        before = session.explain(query)
        assert before.startswith("route: ")
        session.run(query).rows()  # results are lazy; force the evaluation
        after = session.explain(query)
        assert "adaptive:" in after  # the recorded PlanTrace rides along
        assert "estimated" in after and "observed" in after

    def test_rpq_explain_keeps_nfa_section(self, graph):
        session = GraphSession(graph)
        text = session.explain(DIALECTS["rpq"])
        assert text.startswith("route: ")
