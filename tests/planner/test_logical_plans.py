"""Structural tests of the CRPQ planner: plan IR, cost ordering, explain."""

from __future__ import annotations

import pytest

from repro.api import ExecutionPolicy, GraphSession, Query
from repro.datagraph import GraphBuilder
from repro.exceptions import ParseError
from repro.planner import (
    AtomScan,
    CrpqPlan,
    Filter,
    HashJoin,
    Project,
    SeededScan,
    atom_estimate,
    plan_crpq,
    regex_estimate,
)
from repro.query import Atom, ConjunctiveRPQ, equality_rpq, parse_crpq, rpq
from repro.regular import parse_regex

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


@pytest.fixture
def skewed_graph():
    """Many ``a`` edges, exactly one ``b`` edge: the planner must anchor on ``b``."""
    builder = GraphBuilder(name="skewed")
    for i in range(12):
        builder.node(f"n{i}", i % 3)
    for i in range(11):
        builder.edge(f"n{i}", "a", f"n{i + 1}")
        if i >= 1:
            builder.edge(f"n{i}", "a", f"n{i - 1}")
    builder.edge("n0", "b", "n5")
    return builder.build()


class TestCostModel:
    def test_letter_estimate_is_edge_count(self, skewed_graph):
        index = skewed_graph.label_index()
        assert regex_estimate(parse_regex("b"), index) == 1.0
        assert regex_estimate(parse_regex("a"), index) == 21.0

    def test_union_sums_and_concat_joins(self, skewed_graph):
        index = skewed_graph.label_index()
        a = regex_estimate(parse_regex("a"), index)
        b = regex_estimate(parse_regex("b"), index)
        assert regex_estimate(parse_regex("a|b"), index) == a + b
        assert regex_estimate(parse_regex("a.b"), index) == pytest.approx(a * b / 12)

    def test_closures_are_capped_by_complete_relation(self, skewed_graph):
        index = skewed_graph.label_index()
        assert regex_estimate(parse_regex("(a|b)*"), index) <= 144.0
        assert regex_estimate(parse_regex("a+"), index) > regex_estimate(
            parse_regex("a"), index
        )

    def test_data_atom_estimate_uses_labels(self, skewed_graph):
        index = skewed_graph.label_index()
        selective = atom_estimate(Atom("x", equality_rpq("(b)="), "y"), index)
        broad = atom_estimate(Atom("x", equality_rpq("((a|b)+)="), "y"), index)
        assert selective < broad

    def test_no_index_means_unit_estimates(self):
        assert atom_estimate(Atom("x", rpq("a+"), "y"), None) == 1.0


class TestPlanShapes:
    def test_cheapest_atom_anchors_the_join_order(self, skewed_graph):
        query = ConjunctiveRPQ(
            head=("x", "z"),
            atoms=(
                Atom("x", rpq("a+"), "y"),
                Atom("y", rpq("b"), "z"),
            ),
        )
        plan = plan_crpq(query, skewed_graph.label_index())
        assert plan.atom_order == (1, 0)
        join = plan.root.child
        assert isinstance(join, HashJoin)
        assert isinstance(join.left, AtomScan) and join.left.index == 1
        # The expensive closure atom is seeded by the bound variable y.
        assert isinstance(join.right, SeededScan)
        assert join.right.seed_targets == "y"
        assert join.keys == ("y",)

    def test_connected_atoms_beat_cheaper_disconnected_ones(self, skewed_graph):
        query = ConjunctiveRPQ(
            head=("x", "u"),
            atoms=(
                Atom("x", rpq("a"), "y"),      # anchor? no: b is cheaper
                Atom("u", rpq("b"), "v"),      # cheapest, disconnected from x/y
                Atom("y", rpq("a.a"), "z"),    # connected to the anchor
            ),
        )
        plan = plan_crpq(query, skewed_graph.label_index())
        # b-atom opens; then nothing is connected to {u, v}, so the
        # cheapest remaining (the single a-atom) joins as a cartesian
        # bridge, and the chain atom follows connected.
        assert plan.atom_order == (1, 0, 2)
        outer = plan.root.child
        assert isinstance(outer, HashJoin) and outer.keys == ("y",)
        inner = outer.left
        assert isinstance(inner, HashJoin) and inner.keys == ()

    def test_self_loop_atoms_scan_through_a_filter(self, skewed_graph):
        query = ConjunctiveRPQ(head=("x",), atoms=(Atom("x", rpq("a"), "x"),))
        plan = plan_crpq(query, skewed_graph.label_index())
        assert isinstance(plan.root, Project)
        loop = plan.root.child
        assert isinstance(loop, Filter)
        assert loop.left == "x" and loop.right == "x′"
        assert loop.columns == ("x",)

    def test_seeded_self_loop_seeds_both_sides(self, skewed_graph):
        query = ConjunctiveRPQ(
            head=("x", "y"),
            atoms=(
                Atom("x", rpq("b"), "y"),
                Atom("y", rpq("a"), "y"),
            ),
        )
        plan = plan_crpq(query, skewed_graph.label_index())
        join = plan.root.child
        scan = join.right.child
        assert isinstance(scan, SeededScan)
        assert scan.seed_sources == "y" and scan.seed_targets == "y"

    def test_both_endpoints_bound_seed_both_sides(self, skewed_graph):
        query = ConjunctiveRPQ(
            head=("x", "y"),
            atoms=(
                Atom("x", rpq("b"), "y"),
                Atom("x", rpq("a+"), "y"),
            ),
        )
        plan = plan_crpq(query, skewed_graph.label_index())
        scan = plan.root.child.right
        assert isinstance(scan, SeededScan)
        assert scan.seed_sources == "x" and scan.seed_targets == "y"
        assert plan.root.child.keys == ("x", "y")

    def test_plans_are_hashable_and_stable(self, skewed_graph):
        query = ConjunctiveRPQ(head=("x",), atoms=(Atom("x", rpq("a"), "y"),))
        index = skewed_graph.label_index()
        first, second = plan_crpq(query, index), plan_crpq(query, index)
        assert first == second and hash(first) == hash(second)
        assert isinstance(first, CrpqPlan)
        assert first.stats_version == index.version


class TestExplain:
    def test_explain_shows_join_order_and_operators(self, skewed_graph):
        query = parse_crpq("x, z :- (x, a+, y), (y, b, z)")
        text = Query.crpq(query).explain(skewed_graph)
        assert "join order: #1 → #0" in text
        assert "AtomScan #1" in text
        assert "SeededScan #0" in text and "targets←y" in text
        assert "HashJoin on (y)" in text
        assert "Project [x, z]" in text

    def test_explain_without_graph_follows_written_order(self):
        query = parse_crpq("x, z :- (x, a+, y), (y, b, z)")
        text = Query.crpq(query).explain()
        assert "join order: #0 → #1" in text

    def test_session_explain_uses_the_cached_plan(self, skewed_graph):
        session = GraphSession(skewed_graph)
        query = Query.parse("x, z :- (x, a+, y), (y, b, z)", dialect="crpq")
        text = session.explain(query)
        assert "join order: #1 → #0" in text
        assert session._crpq_plan(query) is session._crpq_plan(query)
        # A mutation invalidates the cached plan along with the stats.
        stale = session._crpq_plan(query)
        skewed_graph.add_node("fresh", 0)
        assert session._crpq_plan(query) is not stale

    def test_non_crpq_kinds_explain_their_fixed_strategy(self, skewed_graph):
        assert "NFA" in Query.parse("a.b").explain(skewed_graph)
        assert "register" in Query.parse("(a)=", dialect="ree").explain()

    def test_boolean_head_renders(self, skewed_graph):
        text = GraphSession(skewed_graph).explain(
            Query.parse(":- (x, a, y)", dialect="crpq")
        )
        assert "Project [] (boolean)" in text


class TestParseCrpqDialect:
    def test_parse_roundtrip_through_query(self):
        query = Query.parse("x, y :- (x, a.b, z), (z, ree:(a)=, y)", dialect="crpq")
        assert query.arity == 2
        assert len(query.plan.atoms) == 2

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_crpq("x, y (x, a, y)")
        with pytest.raises(ParseError):
            parse_crpq("x :- (x, a)")
        with pytest.raises(ParseError):
            parse_crpq("x :- ")
        with pytest.raises(ParseError):
            parse_crpq("x :- (x y, a, z)")


class TestExecutionPolicyIntegration:
    def test_crpq_results_cached_and_invalidated(self, skewed_graph):
        session = GraphSession(skewed_graph)
        query = Query.parse("x, z :- (x, b, y), (y, a, z)", dialect="crpq")
        before = session.run(query).rows()
        hits_before = session.stats()["results"].hits
        assert session.run(query).rows() == before
        assert session.stats()["results"].hits == hits_before + 1

    def test_intra_query_modes_share_cache_shape(self, skewed_graph):
        query = Query.parse("x, z :- (x, b, y), (y, a+, z)", dialect="crpq")
        sequential = GraphSession(skewed_graph).run(query).rows()
        for mode in ("blocks", "sharded"):
            policy = ExecutionPolicy.preset("local", intra_query=mode, intra_query_threshold=0)
            assert GraphSession(skewed_graph, policy=policy).run(query).rows() == sequential
