"""The v2 statistics catalogue: summaries, caching, delta patching.

GraphStatistics is the planner's only new source of truth, so these
tests pin its numbers to hand-counted graphs and its cache discipline to
the label-index rules: built lazily, never cached while a batch is open,
repaired per touched label when the journal covers the version gap.
"""

from __future__ import annotations

import pytest

from repro.datagraph import DataGraph, GraphBuilder
from repro.planner import GraphStatistics, graph_statistics
from repro.planner.cost import CLOSURE_GROWTH, atom_estimate
from repro.planner.stats import MAX_CLOSURE_GROWTH, MIN_SELECTIVITY
from repro.query import Atom
from repro.query.data_rpq import DataRPQ
from repro.datapaths import parse_ree

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


def small_graph() -> DataGraph:
    return (
        GraphBuilder(name="stats")
        .node("a", 1)
        .node("b", 1)
        .node("c", 2)
        .node("d", 3)
        .edge("a", "r", "b")  # equal endpoint values
        .edge("a", "r", "c")
        .edge("b", "r", "c")
        .edge("c", "s", "d")
        .build()
    )


class TestLabelStats:
    def test_hand_counted_summary(self):
        stats = graph_statistics(small_graph())
        r = stats.label("r")
        assert r.edge_count == 3
        assert r.distinct_sources == 2  # a, b
        assert r.distinct_targets == 2  # b, c
        assert r.max_fanout == 2  # a -> {b, c}
        assert r.eq_edges == 1  # a->b shares value 1
        assert r.fanout == pytest.approx(1.5)
        assert r.eq_fraction == pytest.approx(1 / 3)

    def test_missing_label_is_empty(self):
        stats = graph_statistics(small_graph())
        ghost = stats.label("nolabel")
        assert ghost.edge_count == 0
        assert ghost.fanout == 0.0
        assert ghost.eq_fraction == MIN_SELECTIVITY

    def test_value_match_probability(self):
        stats = graph_statistics(small_graph())
        # values: {1: 2, 2: 1, 3: 1} over 4 nodes -> (4 + 1 + 1) / 16
        assert stats.value_match_probability == pytest.approx(6 / 16)
        assert stats.distinct_values == 3

    def test_eq_selectivity_single_vs_multi_label(self):
        stats = graph_statistics(small_graph())
        assert stats.eq_selectivity(["r"]) == pytest.approx(1 / 3)
        # multi-label paths fall back to the independence model
        assert stats.eq_selectivity(["r", "s"]) == pytest.approx(6 / 16)

    def test_closure_growth_floor_and_cap(self):
        stats = graph_statistics(small_graph())
        # fanout 1.5 -> fanout² = 2.25 < textbook floor of 4.0
        assert stats.closure_growth(["r"], CLOSURE_GROWTH) == CLOSURE_GROWTH
        graph = DataGraph(name="dense")
        hub = graph.add_node("hub", 0).id
        for i in range(20):
            spoke = graph.add_node(f"s{i}", i).id
            graph.add_edge(hub, "fan", spoke)
        dense = graph_statistics(graph)
        # fanout 20 -> 400, capped
        assert dense.closure_growth(["fan"], CLOSURE_GROWTH) == MAX_CLOSURE_GROWTH


class TestCostIntegration:
    def test_equality_atom_shrinks_with_stats(self):
        graph = small_graph()
        index = graph.label_index()
        stats = graph_statistics(graph)
        atom = Atom("x", DataRPQ(parse_ree("(r)=")), "y")
        plain = atom_estimate(atom, index)
        sharpened = atom_estimate(atom, index, stats)
        assert sharpened < plain
        assert sharpened == pytest.approx(plain * (1 / 3))

    def test_inequality_atom_keeps_plain_estimate(self):
        graph = small_graph()
        index = graph.label_index()
        stats = graph_statistics(graph)
        atom = Atom("x", DataRPQ(parse_ree("(r)!=")), "y")
        assert atom_estimate(atom, index, stats) == atom_estimate(atom, index)

    def test_test_free_data_atom_keeps_plain_estimate(self):
        graph = small_graph()
        index = graph.label_index()
        stats = graph_statistics(graph)
        atom = Atom("x", DataRPQ(parse_ree("r.s")), "y")
        assert atom_estimate(atom, index, stats) == atom_estimate(atom, index)


class TestCacheDiscipline:
    def test_cached_until_mutation(self):
        graph = small_graph()
        first = graph_statistics(graph)
        assert graph_statistics(graph) is first
        assert first.version == graph.version

    def test_not_cached_while_batch_open(self):
        graph = small_graph()
        with graph.batch():
            graph.add_edge("d", "r", "a")
            inside = graph_statistics(graph)
            assert graph_statistics(graph) is not inside
        after = graph_statistics(graph)
        assert after.version == graph.version
        assert graph_statistics(graph) is after

    def test_patched_keeps_untouched_labels(self):
        graph = small_graph()
        before = graph_statistics(graph)
        s_entry = before.label("s")
        before.label("r")
        with graph.batch():  # batches journal their delta; the stats patch
            graph.add_edge("b", "r", "d")
        after = graph_statistics(graph)
        assert after is not before
        # untouched label: the exact entry object survives the patch
        assert after._labels.get("s") is s_entry
        # touched label: recomputed with the new edge
        assert after.label("r").edge_count == 4
        # no value changed, so the collapsed histogram survives too
        assert after.value_match_probability == before.value_match_probability

    def test_value_change_invalidates_all_labels(self):
        graph = small_graph()
        before = graph_statistics(graph)
        before.label("r")
        assert before.value_match_probability == pytest.approx(6 / 16)
        with graph.batch():
            graph.set_value("b", 2)
        after = graph_statistics(graph)
        assert after is not before
        # a->b (1 vs 2) stops matching, b->c (2 vs 2) starts: the stale
        # entry would also say 1 eq edge, so pin the whole summary to a
        # from-scratch rebuild instead of the count alone.
        assert after.label("r") == GraphStatistics(graph.label_index()).label("r")
        assert after.value_match_probability == pytest.approx(6 / 16)

    def test_statistics_match_fresh_rebuild_after_deltas(self):
        graph = small_graph()
        graph_statistics(graph).label("r")  # prime the cache
        with graph.batch():
            graph.add_edge("d", "s", "a")
            graph.remove_edge("a", "r", "c")
        patched = graph_statistics(graph)
        fresh = GraphStatistics(graph.label_index())
        for label in ("r", "s"):
            assert patched.label(label) == fresh.label(label)
        assert patched.value_match_probability == pytest.approx(
            fresh.value_match_probability
        )
