"""Property tests: planner output == the naive nested-loop specification.

Random CRPQs are drawn from :func:`repro.workloads.random_crpq` — the
same generator the planner benchmark uses — across every shape the
generator knows (chains, stars with repeated variables, cycles,
disjoint cartesian components), mixing RPQ and data-RPQ atoms, Boolean
heads and self-loop atoms, and evaluated on random community graphs.
The planner (cost-ordered hash joins over seeded kernels) must agree
with :func:`repro.query.crpq.evaluate_crpq_naive` everywhere, and the
``blocks`` / ``sharded`` intra-query session modes must agree with the
sequential plans.
"""

from __future__ import annotations

import pytest

from repro.api import ExecutionPolicy, GraphSession, Query
from repro.datagraph import generators
from repro.engine import default_engine
from repro.planner import execute_plan, plan_crpq
from repro.query.crpq import evaluate_crpq_naive
from repro.workloads import CRPQ_SHAPES, random_crpq

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

LABELS = ("a", "b")


def community(seed: int, num_nodes: int = 24):
    return generators.community_graph(
        3,
        num_nodes // 3,
        intra_edges_per_node=2,
        bridges_per_community=2,
        labels=("a",),
        bridge_label="b",
        rng=seed,
        domain_size=3,
    )


def assert_planner_matches_naive(graph, query, null_semantics=False):
    engine = default_engine()
    expected = evaluate_crpq_naive(graph, query, null_semantics=null_semantics, engine=engine)
    plan = plan_crpq(query, graph.label_index())
    actual = execute_plan(plan, graph, engine=engine, null_semantics=null_semantics)
    assert actual == expected, plan.explain()
    return expected


class TestRandomCrpqsMatchTheSpec:
    @pytest.mark.parametrize("shape", CRPQ_SHAPES)
    @pytest.mark.parametrize("seed", range(6))
    def test_shape_agreement(self, shape, seed):
        graph = community(seed * 7 + 1)
        query = random_crpq(
            LABELS,
            shape=shape,
            num_atoms=3,
            head_arity=2,
            data_atom_prob=0.3,
            closure_prob=0.25,
            self_loop_prob=0.25,
            rng=seed * 101 + 13,
        )
        assert_planner_matches_naive(graph, query)

    @pytest.mark.parametrize("seed", range(4))
    def test_boolean_heads(self, seed):
        graph = community(seed + 3)
        query = random_crpq(
            LABELS,
            shape="chain",
            num_atoms=2,
            head_arity=0,
            data_atom_prob=0.4,
            closure_prob=0.2,
            rng=seed + 50,
        )
        assert query.is_boolean()
        answers = assert_planner_matches_naive(graph, query)
        assert answers in (frozenset(), frozenset({()}))

    @pytest.mark.parametrize("seed", range(4))
    def test_null_semantics_agreement(self, seed):
        graph = community(seed + 11)
        query = random_crpq(
            LABELS,
            shape="chain",
            num_atoms=2,
            data_atom_prob=1.0,
            rng=seed + 77,
        )
        assert_planner_matches_naive(graph, query, null_semantics=True)

    def test_wide_head_with_repeated_variables(self):
        graph = community(29)
        query = random_crpq(
            LABELS, shape="star", num_atoms=4, head_arity=4, closure_prob=0.3, rng=4242
        )
        assert_planner_matches_naive(graph, query)


class TestIntraQueryModesAgree:
    @pytest.mark.parametrize("mode", ["blocks", "sharded"])
    @pytest.mark.parametrize("seed", range(3))
    def test_modes_match_sequential_plans(self, mode, seed):
        graph = community(seed + 5, num_nodes=30)
        query = Query.crpq(
            random_crpq(
                LABELS,
                shape="cycle",
                num_atoms=3,
                data_atom_prob=0.25,
                closure_prob=0.3,
                self_loop_prob=0.2,
                rng=seed + 900,
            )
        )
        sequential = GraphSession(graph).run(query).rows()
        policy = ExecutionPolicy.preset(
            "local", intra_query=mode, intra_query_threshold=0, num_shards=3
        )
        assert GraphSession(graph, policy=policy).run(query).rows() == sequential

    def test_sharded_processes_toggle(self):
        graph = community(41, num_nodes=30)
        query = Query.crpq(
            random_crpq(LABELS, shape="chain", num_atoms=3, closure_prob=0.4, rng=7)
        )
        sequential = GraphSession(graph).run(query).rows()
        for processes in (False, True):
            policy = ExecutionPolicy.preset(
                "server",
                intra_query_threshold=0,
                num_shards=2,
                sharded_processes=processes,
            )
            assert GraphSession(graph, policy=policy).run(query).rows() == sequential


class TestSelfLoopRegression:
    """The historical bug: ``Atom(x, e, x)`` admitted pairs with u != v."""

    def test_naive_spec_only_admits_loops(self, toy_graph):
        from repro.query import Atom, ConjunctiveRPQ, rpq

        toy_graph.add_edge("alice", "knows", "alice")
        query = ConjunctiveRPQ(head=("x",), atoms=(Atom("x", rpq("knows"), "x"),))
        answers = {row[0].id for row in evaluate_crpq_naive(toy_graph, query)}
        assert answers == {"alice"}

    def test_planner_agrees_on_self_loops(self, toy_graph):
        from repro.query import Atom, ConjunctiveRPQ, rpq

        toy_graph.add_edge("bob", "knows", "bob")
        query = ConjunctiveRPQ(
            head=("x", "y"),
            atoms=(
                Atom("x", rpq("knows"), "y"),
                Atom("y", rpq("knows"), "y"),
            ),
        )
        expected = evaluate_crpq_naive(toy_graph, query)
        # bob now loops, so both (alice, bob) and (bob, bob) match —
        # but no pair whose y lacks a knows self-loop.
        assert {(a.id, b.id) for a, b in expected} == {("alice", "bob"), ("bob", "bob")}
        plan = plan_crpq(query, toy_graph.label_index())
        assert execute_plan(plan, toy_graph) == expected
