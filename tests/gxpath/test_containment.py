"""Tests for the bounded GXPath containment counterexample search."""

from __future__ import annotations

from repro.gxpath import bounded_containment_counterexample, node_holds, parse_gxpath_node


class TestBoundedContainment:
    def test_counterexample_found_when_not_contained(self):
        # ⟨a⟩ is not contained in ⟨a.a⟩: a single a-edge suffices as witness.
        phi = parse_gxpath_node("<a>")
        psi = parse_gxpath_node("<a.a>")
        witness = bounded_containment_counterexample(phi, psi, ["a"], max_nodes=2, max_values=1)
        assert witness is not None
        graph, node = witness
        assert node_holds(graph, phi, node)
        assert not node_holds(graph, psi, node)

    def test_no_bounded_counterexample_for_true_containment(self):
        # ⟨a.a⟩ ⊆ ⟨a⟩ holds on every graph, so no counterexample exists.
        phi = parse_gxpath_node("<a.a>")
        psi = parse_gxpath_node("<a>")
        assert bounded_containment_counterexample(phi, psi, ["a"], max_nodes=3, max_values=1) is None

    def test_data_comparison_containment(self):
        # ⟨(a)=⟩ is not contained in ⟨(a)!=⟩, but the witness needs only one value;
        # the converse needs two distinct values, so it is missed at max_values=1.
        equal = parse_gxpath_node("<(a)=>")
        unequal = parse_gxpath_node("<(a)!=>")
        assert bounded_containment_counterexample(equal, unequal, ["a"], 2, max_values=1) is not None
        assert bounded_containment_counterexample(unequal, equal, ["a"], 2, max_values=1) is None
        assert bounded_containment_counterexample(unequal, equal, ["a"], 2, max_values=2) is not None
