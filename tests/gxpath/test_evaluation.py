"""Tests for GXPath-core syntax and Figure 1 semantics."""

from __future__ import annotations

import pytest

from repro.datagraph import NULL, DataGraph, GraphBuilder
from repro.exceptions import ParseError
from repro.gxpath import (
    axis,
    axis_star,
    epsilon,
    evaluate_node,
    evaluate_path,
    exists,
    inverse_axis,
    node_and,
    node_holds,
    node_not,
    node_or,
    node_test,
    parse_gxpath_node,
    parse_gxpath_path,
    path_concat,
    path_equal,
    path_holds,
    path_not_equal,
    path_union,
)


def _ids(pairs):
    return {(source.id, target.id) for source, target in pairs}


def _node_ids(nodes):
    return {node.id for node in nodes}


@pytest.fixture
def gx_graph() -> DataGraph:
    """r(1) -a-> s(2) -a-> t(1), r -b-> u(2), t -b-> u."""
    return (
        GraphBuilder(name="gx")
        .node("r", 1)
        .node("s", 2)
        .node("t", 1)
        .node("u", 2)
        .edge("r", "a", "s")
        .edge("s", "a", "t")
        .edge("r", "b", "u")
        .edge("t", "b", "u")
        .build()
    )


class TestAstConstructors:
    def test_validation(self):
        with pytest.raises(ValueError):
            axis("")
        with pytest.raises(ValueError):
            inverse_axis("")
        with pytest.raises(ValueError):
            axis_star("")
        with pytest.raises(ValueError):
            path_union()
        with pytest.raises(ValueError):
            node_and()
        with pytest.raises(ValueError):
            node_or()

    def test_operators_on_node_expressions(self):
        phi = exists(axis("a"))
        psi = exists(axis("b"))
        assert str(phi & psi)
        assert str(phi | psi)
        assert str(~phi)

    def test_labels(self):
        expression = path_concat(axis("a"), node_test(exists(inverse_axis("b"))))
        assert expression.labels() == frozenset({"a", "b"})
        assert epsilon().labels() == frozenset()


class TestPathSemantics:
    def test_epsilon(self, gx_graph):
        assert _ids(evaluate_path(gx_graph, epsilon())) == {(n, n) for n in gx_graph.node_ids}

    def test_axis_and_inverse(self, gx_graph):
        assert _ids(evaluate_path(gx_graph, axis("a"))) == {("r", "s"), ("s", "t")}
        assert _ids(evaluate_path(gx_graph, inverse_axis("a"))) == {("s", "r"), ("t", "s")}

    def test_axis_star(self, gx_graph):
        answers = _ids(evaluate_path(gx_graph, axis_star("a")))
        assert ("r", "t") in answers
        assert ("r", "r") in answers
        assert ("r", "u") not in answers
        inverse = _ids(evaluate_path(gx_graph, axis_star("a", inverse=True)))
        assert ("t", "r") in inverse

    def test_concat_and_union(self, gx_graph):
        answers = _ids(evaluate_path(gx_graph, path_concat(axis("a"), axis("a"))))
        assert answers == {("r", "t")}
        union = _ids(evaluate_path(gx_graph, path_union(axis("a"), axis("b"))))
        assert ("r", "u") in union and ("r", "s") in union

    def test_data_tests(self, gx_graph):
        equal = _ids(evaluate_path(gx_graph, path_equal(path_concat(axis("a"), axis("a")))))
        assert equal == {("r", "t")}  # values 1 and 1
        not_equal = _ids(evaluate_path(gx_graph, path_not_equal(axis("a"))))
        assert ("r", "s") in not_equal and ("s", "t") in not_equal

    def test_node_test_filter(self, gx_graph):
        # a-step into a node that has an outgoing b-edge
        expression = path_concat(axis("a"), node_test(exists(axis("b"))))
        assert _ids(evaluate_path(gx_graph, expression)) == {("s", "t")}

    def test_path_holds(self, gx_graph):
        assert path_holds(gx_graph, axis_star("a"), "r", "t")
        assert not path_holds(gx_graph, axis("b"), "s", "u")

    def test_null_semantics(self):
        g = GraphBuilder().node("x", NULL).node("y", NULL).edge("x", "a", "y").build()
        assert _ids(evaluate_path(g, path_equal(axis("a")))) == {("x", "y")}
        assert _ids(evaluate_path(g, path_equal(axis("a")), null_semantics=True)) == set()
        assert _ids(evaluate_path(g, path_not_equal(axis("a")), null_semantics=True)) == set()


class TestNodeSemantics:
    def test_exists(self, gx_graph):
        assert _node_ids(evaluate_node(gx_graph, exists(axis("b")))) == {"r", "t"}

    def test_negation(self, gx_graph):
        assert _node_ids(evaluate_node(gx_graph, node_not(exists(axis("b"))))) == {"s", "u"}

    def test_and_or(self, gx_graph):
        both = node_and(exists(axis("a")), exists(axis("b")))
        assert _node_ids(evaluate_node(gx_graph, both)) == {"r"}
        either = node_or(exists(axis("a")), exists(axis("b")))
        assert _node_ids(evaluate_node(gx_graph, either)) == {"r", "s", "t"}

    def test_node_holds(self, gx_graph):
        phi = exists(path_equal(path_concat(axis("a"), axis("a"))))
        assert node_holds(gx_graph, phi, "r")
        assert not node_holds(gx_graph, phi, "s")

    def test_data_comparison_via_inverse(self, gx_graph):
        # nodes having another node with the same data value reachable by going
        # back one a-edge and forward one b-edge
        phi = exists(path_equal(path_concat(inverse_axis("a"), axis("b"))))
        # from s: back to r(1), forward b to u(2): values 2 vs 2 -> s qualifies
        assert _node_ids(evaluate_node(gx_graph, phi)) == {"s"}


class TestParser:
    def test_path_parsing(self, gx_graph):
        assert _ids(evaluate_path(gx_graph, parse_gxpath_path("a.a"))) == {("r", "t")}
        assert _ids(evaluate_path(gx_graph, parse_gxpath_path("a/a"))) == {("r", "t")}
        assert ("t", "s") in _ids(evaluate_path(gx_graph, parse_gxpath_path("a-")))
        assert ("r", "t") in _ids(evaluate_path(gx_graph, parse_gxpath_path("a*")))
        assert ("t", "r") in _ids(evaluate_path(gx_graph, parse_gxpath_path("a-*")))
        assert _ids(evaluate_path(gx_graph, parse_gxpath_path("(a.a)="))) == {("r", "t")}
        assert ("r", "s") in _ids(evaluate_path(gx_graph, parse_gxpath_path("(a)!=")))
        assert ("r", "s") in _ids(evaluate_path(gx_graph, parse_gxpath_path("(a)≠")))

    def test_epsilon_and_filter(self, gx_graph):
        assert _ids(evaluate_path(gx_graph, parse_gxpath_path("eps"))) == {
            (n, n) for n in gx_graph.node_ids
        }
        filtered = parse_gxpath_path("a.[<b>]")
        assert _ids(evaluate_path(gx_graph, filtered)) == {("s", "t")}

    def test_node_parsing(self, gx_graph):
        assert _node_ids(evaluate_node(gx_graph, parse_gxpath_node("<a>"))) == {"r", "s"}
        assert _node_ids(evaluate_node(gx_graph, parse_gxpath_node("~<a>"))) == {"t", "u"}
        assert _node_ids(evaluate_node(gx_graph, parse_gxpath_node("<a> & <b>"))) == {"r"}
        assert _node_ids(evaluate_node(gx_graph, parse_gxpath_node("<a> | <b>"))) == {"r", "s", "t"}
        assert _node_ids(evaluate_node(gx_graph, parse_gxpath_node("<(a.a)=>"))) == {"r"}
        assert _node_ids(evaluate_node(gx_graph, parse_gxpath_node("(<a>) & ~<b>"))) == {"s"}

    def test_star_only_on_axes(self):
        with pytest.raises(ParseError):
            parse_gxpath_path("(a.b)*")

    def test_errors(self):
        for bad in ["", "   ", "(a", "a)", "<a", "[<a>", "a !", "~", "a.b>"]:
            with pytest.raises(ParseError):
                if "<" in bad or "~" in bad:
                    parse_gxpath_node(bad)
                else:
                    parse_gxpath_path(bad)

    def test_unicode_inverse(self, gx_graph):
        assert ("s", "r") in _ids(evaluate_path(gx_graph, parse_gxpath_path("a⁻")))
