"""Tests for the Theorem 7 constructions (φ_G, φ_δ, φ') and bounded satisfiability."""

from __future__ import annotations

import pytest

from repro.datagraph import DataGraph, GraphBuilder
from repro.exceptions import ReductionError
from repro.gxpath import (
    bounded_model_search,
    bounded_satisfiability,
    distinctness_formula,
    has_non_repeating_property,
    node_holds,
    parse_gxpath_node,
    satisfiability_reduction_formula,
    structure_formula,
    tree_root,
)


@pytest.fixture
def small_tree() -> DataGraph:
    """root(0) -a-> left(1), root -b-> right(2), left -c-> leaf(3); all values distinct."""
    return (
        GraphBuilder(name="tree")
        .node("root", 0)
        .node("left", 1)
        .node("right", 2)
        .node("leaf", 3)
        .edge("root", "a", "left")
        .edge("root", "b", "right")
        .edge("left", "c", "leaf")
        .build()
    )


class TestTreeHelpers:
    def test_tree_root(self, small_tree):
        assert tree_root(small_tree) == "root"

    def test_tree_root_rejects_non_trees(self):
        g = GraphBuilder().node("a", 1).node("b", 2).edge("a", "r", "b").edge("b", "r", "a").build()
        with pytest.raises(ReductionError):
            tree_root(g)
        g2 = GraphBuilder().node("a", 1).node("b", 2).build()  # two roots, no edges
        with pytest.raises(ReductionError):
            tree_root(g2)

    def test_tree_root_rejects_unreachable(self):
        g = (
            GraphBuilder()
            .node("a", 1)
            .node("b", 2)
            .node("c", 3)
            .edge("a", "r", "b")
            .edge("c", "s", "b")
            .build()
        )
        # b has two parents; a and c are both roots
        with pytest.raises(ReductionError):
            tree_root(g)

    def test_non_repeating_property(self, small_tree):
        assert has_non_repeating_property(small_tree)
        repeating = (
            GraphBuilder()
            .node("r", 0)
            .node("x", 1)
            .node("y", 2)
            .edge("r", "a", "x")
            .edge("r", "a", "y")
            .build()
        )
        assert not has_non_repeating_property(repeating)


class TestStructureFormula:
    def test_tree_satisfies_its_own_structure_formula(self, small_tree):
        phi = structure_formula(small_tree)
        assert node_holds(small_tree, phi, "root")
        assert not node_holds(small_tree, phi, "right")

    def test_single_node_tree(self):
        g = GraphBuilder().node("only", 5).build()
        phi = structure_formula(g)
        assert node_holds(g, phi, "only")

    def test_missing_branch_falsifies(self, small_tree):
        phi = structure_formula(small_tree)
        pruned = small_tree.copy()
        pruned.remove_node("leaf")
        assert not node_holds(pruned, phi, "root")

    def test_extension_still_satisfies(self, small_tree):
        """φ_G only forces containment of G's structure — supergraphs still satisfy it."""
        phi = structure_formula(small_tree)
        extended = small_tree.copy()
        extended.add_node("extra", 9)
        extended.add_edge("right", "d", "extra")
        assert node_holds(extended, phi, "root")

    def test_requires_non_repeating(self):
        repeating = (
            GraphBuilder()
            .node("r", 0)
            .node("x", 1)
            .node("y", 2)
            .edge("r", "a", "x")
            .edge("r", "a", "y")
            .build()
        )
        with pytest.raises(ReductionError):
            structure_formula(repeating)


class TestDistinctnessFormula:
    def test_distinct_values_satisfy(self, small_tree):
        phi = distinctness_formula(small_tree)
        assert node_holds(small_tree, phi, "root")

    def test_repeated_values_violate(self, small_tree):
        phi = distinctness_formula(small_tree)
        bad = small_tree.copy()
        bad.set_value("right", 1)  # same value as "left"
        assert not node_holds(bad, phi, "root")

    def test_single_node_tree(self):
        g = GraphBuilder().node("only", 5).build()
        phi = distinctness_formula(g)
        assert node_holds(g, phi, "only")


class TestReductionFormula:
    def test_phi_prime_satisfied_when_phi_fails_at_root(self, small_tree):
        # φ = ⟨d⟩ (root has an outgoing d-edge) is false at the root, so
        # φ' = φ_G ∧ φ_δ ∧ ¬φ holds at the root of the tree itself.
        phi = parse_gxpath_node("<d>")
        phi_prime = satisfiability_reduction_formula(small_tree, phi)
        assert node_holds(small_tree, phi_prime, "root")

    def test_phi_prime_unsatisfied_when_phi_forced(self, small_tree):
        # φ = ⟨a⟩ holds at the root of every graph containing the tree, so φ' fails there.
        phi = parse_gxpath_node("<a>")
        phi_prime = satisfiability_reduction_formula(small_tree, phi)
        assert not node_holds(small_tree, phi_prime, "root")


class TestBoundedSatisfiability:
    def test_simple_satisfiable(self):
        phi = parse_gxpath_node("<a>")
        result = bounded_model_search(phi, ["a"], max_nodes=2, max_values=1)
        assert result is not None
        graph, node = result
        assert node_holds(graph, phi, node)

    def test_unsatisfiable_contradiction(self):
        phi = parse_gxpath_node("<a> & ~<a>")
        assert not bounded_satisfiability(phi, ["a"], max_nodes=2, max_values=1)

    def test_requires_distinct_values(self):
        # needs an a-edge between two nodes with different values: no model with 1 value
        phi = parse_gxpath_node("<(a)!=>")
        assert not bounded_satisfiability(phi, ["a"], max_nodes=2, max_values=1)
        assert bounded_satisfiability(phi, ["a"], max_nodes=2, max_values=2)

    def test_model_search_returns_valid_witness(self):
        phi = parse_gxpath_node("<(a.b)=> & ~<(a)=>")
        result = bounded_model_search(phi, ["a", "b"], max_nodes=3, max_values=2)
        assert result is not None
        graph, node = result
        assert node_holds(graph, phi, node)
