"""Tests for the experiment harness utilities."""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentResult, geometric_slowdown, render_table, timed


class TestExperimentResult:
    def test_rows_and_columns(self):
        result = ExperimentResult(experiment="EX", claim="testing")
        result.add_row(size=1, time=0.5)
        result.add_row(size=2, time=1.0)
        assert result.column("size") == [1, 2]
        assert result.column("missing") == [None, None]

    def test_table_rendering(self):
        result = ExperimentResult(experiment="EX", claim="testing")
        result.add_row(size=1, ok=True, value=None)
        result.add_note("just a note")
        table = result.to_table()
        assert "EX: testing" in table
        assert "size" in table and "ok" in table
        assert "yes" in table  # booleans rendered as yes/no
        assert "-" in table  # None rendered as dash
        assert "note: just a note" in table
        assert str(result) == table

    def test_empty_table(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_ragged_rows(self):
        table = render_table([{"a": 1}, {"b": 2.5}])
        assert "a" in table and "b" in table
        assert "2.5" in table


class TestHelpers:
    def test_timed(self):
        value, elapsed = timed(lambda: sum(range(1000)))
        assert value == sum(range(1000))
        assert elapsed >= 0

    def test_geometric_slowdown(self):
        assert geometric_slowdown([1.0, 2.0, 4.0]) == pytest.approx(2.0)
        assert geometric_slowdown([1.0]) is None
        assert geometric_slowdown([0.0, 1.0]) is None
