"""Smoke + claim tests for the experiment modules (small parameters).

Each experiment is run with reduced parameters and its *claim columns*
are asserted — the same invariants EXPERIMENTS.md reports for the full
runs.  This keeps the experiments themselves under test, not just the
library they exercise.
"""

from __future__ import annotations


from repro.experiments import EXPERIMENTS
from repro.experiments import (
    e1_bounded_search,
    e2_three_coloring,
    e3_single_inequality,
    e4_universal_solution,
    e5_least_informative,
    e6_null_approximation,
    e7_pcp_gadget,
    e8_datapath_arbitrary,
    e9_gxpath_gadget,
    e10_query_eval,
)
from repro.reductions.three_coloring import complete_graph_k4, triangle


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}


class TestE1:
    def test_claims(self):
        result = e1_bounded_search.run(sizes=(2, 3))
        assert len(result.rows) == 2
        assert all(row["exact_equals_least_informative"] for row in result.rows)
        assert all(row["nulls_subset_of_exact"] for row in result.rows)
        assert all(row["repeat_query_agrees"] for row in result.rows)


class TestE2:
    def test_claims(self):
        result = e2_three_coloring.run(inputs=(triangle, complete_graph_k4))
        assert len(result.rows) == 2
        assert all(row["matches_claim"] for row in result.rows)
        by_name = {row["input"]: row for row in result.rows}
        assert by_name["triangle"]["three_colorable"] is True
        assert by_name["K4"]["certain_answer"] is True


class TestE3:
    def test_claims(self):
        result = e3_single_inequality.run(small_sizes=(2, 3), large_sizes=(20,))
        agreement = [row for row in result.rows if row["phase"] == "agreement"]
        scaling = [row for row in result.rows if row["phase"] == "scaling"]
        assert agreement and scaling
        assert all(row["agree"] for row in agreement)
        assert all(row["approx_seconds"] is not None for row in scaling)


class TestE4:
    def test_claims(self):
        result = e4_universal_solution.run(chain_lengths=(4, 8), agreement_chain_length=2)
        soundness = [row for row in result.rows if row["phase"] == "soundness"]
        assert soundness and all(row["sound"] for row in soundness)
        scaling = [row for row in result.rows if row["phase"] == "scaling"]
        assert len(scaling) == 2


class TestE5:
    def test_claims(self):
        result = e5_least_informative.run(small_people=4, scaling_people=(10,))
        agreement = [row for row in result.rows if row["phase"] == "agreement"]
        assert agreement
        assert all(row["agree"] for row in agreement)


class TestE6:
    def test_claims(self):
        result = e6_null_approximation.run(sizes=(3, 4), query_tests=("equal", "unequal"), instances_per_setting=1)
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0.0 <= row["answer_recall"] <= 1.0
            assert 0.0 <= row["exact_match_rate"] <= 1.0


class TestE7:
    def test_claims(self):
        result = e7_pcp_gadget.run(max_solution_length=5)
        solvable_rows = [row for row in result.rows if row["solvable_within_bound"]]
        unsolvable_rows = [row for row in result.rows if not row["solvable_within_bound"]]
        assert solvable_rows and unsolvable_rows
        for row in solvable_rows:
            assert row["witness_is_solution"] and row["decodes_back"] and row["error_free"]


class TestE8:
    def test_claims(self):
        result = e8_datapath_arbitrary.run(sizes=(3, 4))
        assert all(row["agree"] for row in result.rows)
        assert all(row["rules_dropped"] == 2 for row in result.rows)


class TestE9:
    def test_claims(self):
        result = e9_gxpath_gadget.run(max_solution_length=5)
        gadget_rows = [row for row in result.rows if row["instance"] != "theorem7-check"]
        assert all(row["preconditions_hold"] for row in gadget_rows)
        assert all(row["bare_tree_flagged"] for row in gadget_rows)
        for row in gadget_rows:
            if row["solvable_within_bound"]:
                assert row["extension_is_solution"]
                assert row["extension_error_free"]
                assert row["corrupted_flagged"]
        theorem7 = next(row for row in result.rows if row["instance"] == "theorem7-check")
        assert theorem7["preconditions_hold"]
        assert theorem7["extension_error_free"]
        assert theorem7["corrupted_flagged"]


class TestE10:
    def test_claims(self):
        result = e10_query_eval.run(sizes=(10, 20))
        assert len(result.rows) == 2
        assert all(row["engines_agree"] for row in result.rows)
        assert all(row["rpq_seconds"] >= 0 for row in result.rows)
