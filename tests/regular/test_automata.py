"""Tests for NFAs, DFAs and language operations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regular import (
    complement_dfa,
    contains,
    determinize,
    enumerate_language,
    equivalent,
    intersect_nfa,
    intersection_empty,
    matches,
    minimize,
    shortest_word,
    to_dfa,
    to_nfa,
)


class TestThompsonNFA:
    @pytest.mark.parametrize(
        "expression,word,expected",
        [
            ("a", ["a"], True),
            ("a", ["b"], False),
            ("a", [], False),
            ("eps", [], True),
            ("eps", ["a"], False),
            ("a.b", ["a", "b"], True),
            ("a.b", ["a"], False),
            ("a|b", ["a"], True),
            ("a|b", ["b"], True),
            ("a|b", ["c"], False),
            ("a*", [], True),
            ("a*", ["a", "a", "a"], True),
            ("a*", ["a", "b"], False),
            ("a+", [], False),
            ("a+", ["a"], True),
            ("(a|b)*", ["a", "b", "b", "a"], True),
            ("(a.b)+", ["a", "b", "a", "b"], True),
            ("(a.b)+", ["a", "b", "a"], False),
        ],
    )
    def test_membership(self, expression, word, expected):
        assert matches(expression, word) is expected

    def test_multichar_labels(self):
        assert matches("knows.worksAt", ["knows", "worksAt"])
        assert not matches("knows.worksAt", ["knows", "knows"])

    def test_is_empty_false_for_ordinary_expressions(self):
        assert not to_nfa("a|b").is_empty()

    def test_accepted_words_enumeration(self):
        words = set(to_nfa("(a|b).c").accepted_words(3))
        assert words == {("a", "c"), ("b", "c")}

    def test_shortest_word(self):
        assert shortest_word("a.a.a|b") == ("b",)
        assert shortest_word("a*") == ()

    def test_reversed(self):
        reverse = to_nfa("a.b").reversed()
        assert reverse.accepts(("b", "a"))
        assert not reverse.accepts(("a", "b"))


class TestDFA:
    def test_determinize_preserves_language(self):
        expr = "(a|b)*.a.b"
        nfa = to_nfa(expr)
        dfa = determinize(nfa)
        for word in nfa.accepted_words(4):
            assert dfa.accepts(word)
        assert not dfa.accepts(("b",))

    def test_minimize_preserves_language(self):
        expr = "(a.b)+|(a.b)"
        dfa = to_dfa(expr)
        assert dfa.accepts(("a", "b"))
        assert dfa.accepts(("a", "b", "a", "b"))
        assert not dfa.accepts(("a",))

    def test_minimize_reduces_states(self):
        # a|a should minimise to the 2-state automaton plus a sink.
        dfa = minimize(determinize(to_nfa("a|a|a"), {"a"}))
        assert dfa.num_states <= 3

    def test_complement(self):
        comp = complement_dfa("a", ["a", "b"])
        assert not comp.accepts(("a",))
        assert comp.accepts(())
        assert comp.accepts(("b",))
        assert comp.accepts(("a", "a"))

    def test_complement_of_universal_is_empty(self):
        comp = complement_dfa("(a|b)*", ["a", "b"])
        assert comp.is_empty()

    def test_completed_idempotent(self):
        dfa = to_dfa("a", ["a"]).completed()
        assert dfa.completed() is dfa

    def test_to_nfa_round_trip(self):
        dfa = to_dfa("a.b|a.c")
        nfa = dfa.to_nfa()
        assert nfa.accepts(("a", "b"))
        assert nfa.accepts(("a", "c"))
        assert not nfa.accepts(("a",))

    def test_dfa_accepted_words(self):
        words = set(to_dfa("a.(b|c)").accepted_words(2))
        assert words == {("a", "b"), ("a", "c")}


class TestLanguageOperations:
    def test_intersection(self):
        product = intersect_nfa(to_nfa("(a|b)*.a"), to_nfa("a.(a|b)*"))
        assert product.accepts(("a",))
        assert product.accepts(("a", "b", "a"))
        assert not product.accepts(("b", "a", "b"))

    def test_intersection_empty(self):
        assert intersection_empty("a.a", "a.a.a")
        assert not intersection_empty("a*", "a.a")

    def test_containment(self):
        assert contains("(a|b)*", "a.b")
        assert not contains("a.b", "(a|b)*")
        assert contains("a+", "a.a.a")
        assert not contains("a+", "eps")

    def test_equivalence(self):
        assert equivalent("a.a*", "a+")
        assert equivalent("(a|b)*", "(b|a)*")
        assert not equivalent("a*", "a+")

    def test_containment_with_explicit_alphabet(self):
        assert contains("a*", "a.a", alphabet=["a", "b"])
        assert not contains("a*", "b", alphabet=["a", "b"])

    def test_enumerate_language(self):
        words = set(enumerate_language("a|b.b", 2))
        assert words == {("a",), ("b", "b")}


class TestAgainstBruteForce:
    """Cross-validate the automata pipeline against direct word enumeration."""

    @given(st.lists(st.sampled_from(["a", "b"]), max_size=5))
    @settings(max_examples=60)
    def test_star_concat_language(self, word):
        expr = "a*.b.a*"
        expected = word.count("b") == 1
        assert matches(expr, word) is expected

    @given(st.lists(st.sampled_from(["a", "b"]), max_size=6))
    @settings(max_examples=60)
    def test_even_length_blocks(self, word):
        expr = "(a.a|b.b)*"
        def brute(w):
            if not w:
                return True
            if len(w) >= 2 and w[0] == w[1]:
                return brute(w[2:])
            return False
        assert matches(expr, word) is brute(word)

    @given(st.lists(st.sampled_from(["a", "b"]), max_size=5))
    @settings(max_examples=40)
    def test_complement_agrees(self, word):
        dfa = complement_dfa("a.(a|b)*", ["a", "b"])
        direct = matches("a.(a|b)*", word)
        assert dfa.accepts(word) is (not direct)
