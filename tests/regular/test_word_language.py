"""Tests for word-RPQ recognition and finite language utilities."""

from __future__ import annotations


from repro.regular import (
    as_finite_language,
    as_word,
    is_finite_union_rpq,
    is_reachability,
    is_word_rpq,
    max_rule_word_length,
    parse_regex,
    word_expression,
)


class TestWordRecognition:
    def test_single_letter_is_word(self):
        assert as_word("a") == ("a",)
        assert is_word_rpq("a")

    def test_concatenation_is_word(self):
        assert as_word("a.b.c") == ("a", "b", "c")

    def test_epsilon_is_empty_word(self):
        assert as_word("eps") == ()
        assert is_word_rpq("eps")

    def test_star_is_not_word(self):
        assert as_word("a*") is None
        assert not is_word_rpq("a*")

    def test_union_of_distinct_words_not_word(self):
        assert as_word("a|b") is None

    def test_word_expression_builder(self):
        assert as_word(word_expression(["x", "y"])) == ("x", "y")
        assert as_word(word_expression([])) == ()


class TestFiniteLanguages:
    def test_finite_union(self):
        language = as_finite_language("a.b|c")
        assert language == frozenset({("a", "b"), ("c",)})
        assert is_finite_union_rpq("a.b|c")

    def test_infinite_language(self):
        assert as_finite_language("a+.b") is None
        assert not is_finite_union_rpq("a*")

    def test_max_rule_word_length(self):
        assert max_rule_word_length("a.b.c") == 3
        assert max_rule_word_length("a|b.c") == 2
        assert max_rule_word_length("eps") == 0
        assert max_rule_word_length("a*") is None


class TestReachabilityRecognition:
    def test_sigma_star_detected(self):
        assert is_reachability("(a|b)*", alphabet=["a", "b"])
        assert is_reachability("(a|b|c)*")

    def test_single_letter_star(self):
        assert is_reachability("a*", alphabet=["a"])
        assert not is_reachability("a*", alphabet=["a", "b"])

    def test_non_star_rejected(self):
        assert not is_reachability("a+", alphabet=["a"])
        assert not is_reachability("a", alphabet=["a"])
        assert not is_reachability("a.b", alphabet=["a", "b"])

    def test_star_of_words_rejected(self):
        assert not is_reachability("(a.b)*", alphabet=["a", "b"])

    def test_accepts_ast_input(self):
        assert is_reachability(parse_regex("(a|b)*"), alphabet=["a", "b"])
