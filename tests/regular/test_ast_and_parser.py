"""Tests for the regular expression AST and parser."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParseError
from repro.regular import (
    EPSILON,
    Concat,
    Plus,
    Star,
    Union,
    any_of,
    concat,
    letter,
    parse_regex,
    plus,
    star,
    union,
    universal,
    word,
)


class TestSmartConstructors:
    def test_letter_validation(self):
        with pytest.raises(ValueError):
            letter("")
        with pytest.raises(ValueError):
            letter(3)

    def test_concat_drops_epsilon(self):
        assert concat(EPSILON, letter("a"), EPSILON) == letter("a")
        assert concat() == EPSILON

    def test_union_dedupes(self):
        assert union(letter("a"), letter("a")) == letter("a")
        with pytest.raises(ValueError):
            union()

    def test_star_simplifications(self):
        assert star(EPSILON) == EPSILON
        assert star(plus(letter("a"))) == Star(letter("a"))
        assert star(star(letter("a"))) == Star(letter("a"))

    def test_plus_simplifications(self):
        assert plus(EPSILON) == EPSILON
        assert plus(plus(letter("a"))) == Plus(letter("a"))
        assert plus(star(letter("a"))) == Star(letter("a"))

    def test_word_and_any_of(self):
        assert word(()) == EPSILON
        assert word(("a", "b")).word() == ("a", "b")
        assert any_of(["b", "a"]).letters() == frozenset({"a", "b"})
        with pytest.raises(ValueError):
            any_of([])

    def test_universal(self):
        expr = universal(["a", "b"])
        assert isinstance(expr, Star)
        assert expr.letters() == frozenset({"a", "b"})

    def test_operators(self):
        expr = letter("a") + letter("b")
        assert isinstance(expr, Union)
        expr = letter("a") * letter("b")
        assert isinstance(expr, Concat)


class TestWordExtraction:
    def test_word_of_concat(self):
        assert concat(letter("a"), letter("b")).word() == ("a", "b")

    def test_word_of_union_same(self):
        assert union(letter("a"), letter("a")).word() == ("a",)

    def test_word_of_union_different_is_none(self):
        assert Union(letter("a"), letter("b")).word() is None

    def test_word_of_star_none(self):
        assert star(letter("a")).word() is None

    def test_finite_language(self):
        expr = Union(word(("a", "b")), letter("c"))
        assert expr.finite_language() == frozenset({("a", "b"), ("c",)})

    def test_finite_language_of_star_is_none(self):
        assert star(letter("a")).finite_language() is None
        assert concat(letter("a"), star(letter("b"))).finite_language() is None

    def test_max_word_length(self):
        assert word(("a", "b", "c")).max_word_length() == 3
        assert Union(letter("a"), word(("a", "b"))).max_word_length() == 2
        assert star(letter("a")).max_word_length() is None
        assert EPSILON.max_word_length() == 0

    def test_str_forms(self):
        assert str(letter("a")) == "a"
        assert "ε" in str(EPSILON)
        assert "*" in str(star(letter("a")))
        assert "+" in str(plus(letter("a")))


class TestParser:
    def test_single_letter(self):
        assert parse_regex("a") == letter("a")

    def test_multichar_label(self):
        assert parse_regex("knows") == letter("knows")

    def test_concat_with_dot_and_space(self):
        assert parse_regex("a.b") == parse_regex("a b") == concat(letter("a"), letter("b"))

    def test_union(self):
        assert parse_regex("a|b") == union(letter("a"), letter("b"))
        assert parse_regex("a U b") == union(letter("a"), letter("b"))

    def test_star_and_plus(self):
        assert parse_regex("a*") == star(letter("a"))
        assert parse_regex("a+") == plus(letter("a"))
        assert parse_regex("a*+") == star(letter("a"))

    def test_epsilon_tokens(self):
        assert parse_regex("eps") == EPSILON
        assert parse_regex("ε") == EPSILON
        assert parse_regex("_") == EPSILON

    def test_parentheses_and_precedence(self):
        expr = parse_regex("(a|b).c")
        assert expr == concat(union(letter("a"), letter("b")), letter("c"))
        expr2 = parse_regex("a|b.c")
        assert expr2 == union(letter("a"), concat(letter("b"), letter("c")))

    def test_reachability_expression(self):
        expr = parse_regex("(a|b)*")
        assert expr == star(union(letter("a"), letter("b")))

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_regex("")
        with pytest.raises(ParseError):
            parse_regex("   ")
        with pytest.raises(ParseError):
            parse_regex("(a")
        with pytest.raises(ParseError):
            parse_regex("a)")
        with pytest.raises(ParseError):
            parse_regex("|a")
        with pytest.raises(ParseError):
            parse_regex("U")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_regex("a ) b")
        assert excinfo.value.position is not None
        assert "position" in str(excinfo.value)


@st.composite
def regex_strategy(draw, depth=3):
    if depth == 0:
        return draw(st.sampled_from([letter("a"), letter("b"), letter("c"), EPSILON]))
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return draw(st.sampled_from([letter("a"), letter("b"), letter("c")]))
    if choice == 1:
        return concat(draw(regex_strategy(depth=depth - 1)), draw(regex_strategy(depth=depth - 1)))
    if choice == 2:
        return union(draw(regex_strategy(depth=depth - 1)), draw(regex_strategy(depth=depth - 1)))
    if choice == 3:
        return star(draw(regex_strategy(depth=depth - 1)))
    return plus(draw(regex_strategy(depth=depth - 1)))


class TestRegexProperties:
    @given(regex_strategy())
    @settings(max_examples=60)
    def test_letters_subset_of_alphabet(self, expr):
        assert expr.letters() <= frozenset({"a", "b", "c"})

    @given(regex_strategy())
    @settings(max_examples=60)
    def test_word_consistent_with_finite_language(self, expr):
        single = expr.word()
        language = expr.finite_language()
        if single is not None:
            assert language is not None
            assert single in language
