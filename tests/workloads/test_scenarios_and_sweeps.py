"""Tests for scenario bundles and random workload sweeps."""

from __future__ import annotations

import pytest

from repro.core import is_solution, universal_solution
from repro.exceptions import WorkloadError
from repro.workloads import (
    CRPQ_SHAPES,
    movie_catalog_scenario,
    multi_community_scenario,
    provenance_scenario,
    random_crpq,
    random_equality_query,
    random_relational_mapping,
    social_network_scenario,
    workload_sweep,
)


class TestScenarios:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (social_network_scenario, {"num_people": 8, "rng": 1}),
            (movie_catalog_scenario, {"num_movies": 6, "rng": 1}),
            (provenance_scenario, {"chain_length": 4, "num_chains": 2, "rng": 1}),
            (multi_community_scenario, {"num_communities": 3, "community_size": 4, "rng": 1}),
        ],
    )
    def test_scenarios_are_well_formed(self, builder, kwargs):
        scenario = builder(**kwargs)
        assert scenario.source.num_nodes > 0
        assert scenario.mapping.is_relational()
        assert scenario.all_queries()
        assert scenario.name in scenario.describe()
        # the universal solution of the bundled mapping is a genuine solution
        target = universal_solution(scenario.mapping, scenario.source)
        assert is_solution(scenario.mapping, scenario.source, target)
        # query alphabets stay within the target alphabet
        for query in scenario.all_queries().values():
            labels = query.letters() if hasattr(query, "letters") else query.labels()
            assert labels <= scenario.mapping.target_alphabet

    def test_scenarios_are_deterministic_in_seed(self):
        first = social_network_scenario(num_people=10, rng=5)
        second = social_network_scenario(num_people=10, rng=5)
        assert first.source == second.source

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            social_network_scenario(num_people=1)
        with pytest.raises(WorkloadError):
            movie_catalog_scenario(num_movies=1)
        with pytest.raises(WorkloadError):
            provenance_scenario(chain_length=1)
        with pytest.raises(WorkloadError):
            multi_community_scenario(num_communities=1)

    def test_multi_community_scenario_is_shardable(self):
        """The bundled graph's contiguous partition recovers the communities."""
        from repro.engine import GraphPartition

        scenario = multi_community_scenario(num_communities=4, community_size=5, rng=3)
        partition = GraphPartition.build(scenario.source.label_index(), 4)
        for shard in partition.shards:
            assert len({str(node).split("n")[0] for node in shard.nodes}) == 1
        assert 0 < partition.cut_edge_count < scenario.source.num_edges


class TestRandomWorkloads:
    def test_random_relational_mapping(self):
        mapping = random_relational_mapping(["r", "s"], ["t", "u"], max_word_length=3, rng=2)
        assert mapping.is_lav()
        assert mapping.is_relational()
        assert mapping.max_rule_word_length() <= 3
        with pytest.raises(WorkloadError):
            random_relational_mapping([], ["t"])
        with pytest.raises(WorkloadError):
            random_relational_mapping(["r"], ["t"], max_word_length=0)

    def test_random_equality_query_shapes(self):
        assert random_equality_query(["t"], test="equal", rng=1).uses_inequality() is False
        assert random_equality_query(["t"], test="unequal", rng=1).uses_inequality() is True
        repeat = random_equality_query(["t", "u"], test="repeat", rng=1)
        assert not repeat.is_data_path_query()
        plain = random_equality_query(["t"], test="plain", rng=1)
        assert plain.is_data_path_query()
        with pytest.raises(WorkloadError):
            random_equality_query([], test="equal")
        with pytest.raises(WorkloadError):
            random_equality_query(["t"], test="bogus")

    def test_workload_sweep_is_deterministic(self):
        first = list(workload_sweep([4, 6], seed=9))
        second = list(workload_sweep([4, 6], seed=9))
        assert len(first) == len(second) == 2
        for left, right in zip(first, second):
            assert left.source == right.source
            assert left.name == right.name
            assert str(left.query) == str(right.query)
            assert left.parameters["nodes"] == right.parameters["nodes"]

    @pytest.mark.parametrize("shape", CRPQ_SHAPES)
    def test_random_crpq_shapes_are_well_formed(self, shape):
        query = random_crpq(
            ("a", "b"), shape=shape, num_atoms=4, head_arity=2,
            data_atom_prob=0.3, closure_prob=0.3, self_loop_prob=0.5, rng=5,
        )
        assert len(query.atoms) >= 4  # self-loops only ever add atoms
        assert len(query.head) <= 2
        assert set(query.head) <= query.variables()
        for atom in query.atoms:
            labels = (
                atom.query.labels() if hasattr(atom.query, "labels") else atom.query.letters()
            )
            assert labels <= {"a", "b"}

    def test_random_crpq_shapes_have_their_structure(self):
        chain = random_crpq(("a",), shape="chain", num_atoms=3, rng=1)
        assert [(atom.source, atom.target) for atom in chain.atoms] == [
            ("x0", "x1"), ("x1", "x2"), ("x2", "x3"),
        ]
        cycle = random_crpq(("a",), shape="cycle", num_atoms=3, rng=1)
        assert cycle.atoms[-1].target == "x0"
        star = random_crpq(("a",), shape="star", num_atoms=4, rng=1)
        assert all(atom.source == "x0" for atom in star.atoms)
        disjoint = random_crpq(("a",), shape="disjoint", num_atoms=4, head_arity=2, rng=1)
        assert disjoint.head == ("x0", "y0")
        variables = disjoint.variables()
        assert any(v.startswith("y") for v in variables)

    def test_random_crpq_options(self):
        boolean = random_crpq(("a",), head_arity=0, rng=2)
        assert boolean.is_boolean()
        pinned = random_crpq(("a", "b"), first_atom="b", rng=2)
        assert str(pinned.atoms[0].query.expression) == "b"
        assert random_crpq(("a", "b"), rng=9) == random_crpq(("a", "b"), rng=9)
        with pytest.raises(WorkloadError):
            random_crpq((), rng=1)
        with pytest.raises(WorkloadError):
            random_crpq(("a",), shape="bogus")
        with pytest.raises(WorkloadError):
            random_crpq(("a",), num_atoms=0)

    def test_workload_pieces_fit_together(self):
        for workload in workload_sweep([5], seed=3, query_test="unequal"):
            assert workload.mapping.is_relational()
            target = universal_solution(workload.mapping, workload.source)
            assert is_solution(workload.mapping, workload.source, target)
            assert workload.query.labels() <= workload.mapping.target_alphabet
