"""Persistent point-cache snapshots (ROADMAP: caches for services that restart).

``GraphSession.save_point_cache`` / ``load_point_cache`` round-trip the
point-workload cache through JSON, keyed on
``(graph.version, query.key, source)``; a snapshot taken at any other
graph version is rejected, since node ids alone cannot prove the graph
is unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.api import GraphSession, Query
from repro.datagraph import generators
from repro.exceptions import EvaluationError

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

QUERIES = ["a.(a|b)*", "b*"]


def warm_session(graph):
    session = GraphSession(graph)
    for text in QUERIES:
        for node in list(graph.node_ids)[:4]:
            session.targets(text, node)
    return session


class TestSaveLoadRoundTrip:
    def graph(self):
        return generators.random_graph(20, 60, labels=("a", "b"), rng=31, domain_size=3)

    def test_round_trip_restores_every_answer(self, tmp_path):
        graph = self.graph()
        session = warm_session(graph)
        path = tmp_path / "points.json"
        saved = session.save_point_cache(path)
        assert saved == 8  # 2 queries x 4 sources

        restored = GraphSession(graph)
        assert restored.load_point_cache(path) == saved
        for text in QUERIES:
            for node in list(graph.node_ids)[:4]:
                assert restored.targets(text, node) == session.targets(text, node)

    def test_loaded_answers_are_served_without_recomputation(self, tmp_path):
        graph = self.graph()
        path = tmp_path / "points.json"
        warm_session(graph).save_point_cache(path)

        restored = GraphSession(graph)
        restored.load_point_cache(path)
        # Sabotage recomputation: a snapshot hit must not call _targets_of.
        restored._targets_of = lambda *a, **k: pytest.fail("recomputed a snapshotted answer")
        answers = restored.targets(QUERIES[0], "n0")
        assert answers == GraphSession(graph).targets(QUERIES[0], "n0")

    def test_snapshot_from_a_different_version_is_rejected(self, tmp_path):
        graph = self.graph()
        path = tmp_path / "points.json"
        warm_session(graph).save_point_cache(path)
        graph.add_node("fresh", 1)  # bumps the version
        with pytest.raises(EvaluationError, match="version"):
            GraphSession(graph).load_point_cache(path)

    def test_snapshot_from_a_different_graph_with_equal_version_is_rejected(self, tmp_path):
        # Two graphs built with the same number of mutations share a
        # version counter; the content fingerprint must tell them apart.
        def build(last_target):
            from repro.datagraph import DataGraph

            graph = DataGraph(alphabet={"a"})
            for name in ("n0", "n1", "n2"):
                graph.add_node(name, 1)
            graph.add_edge("n0", "a", last_target)
            return graph

        first, second = build("n1"), build("n2")
        assert first.version == second.version
        session = GraphSession(first)
        session.targets("a", "n0")
        path = tmp_path / "points.json"
        session.save_point_cache(path)
        with pytest.raises(EvaluationError, match="fingerprint"):
            GraphSession(second).load_point_cache(path)

    def test_non_scalar_node_ids_round_trip(self, tmp_path):
        # NodeId is only required to be hashable: tuple ids must survive
        # the JSON round trip (stored as reprs, resolved on load).
        from repro.datagraph import DataGraph

        graph = DataGraph(alphabet={"a"})
        for shard in range(3):
            graph.add_node(("shard", shard), shard)
        graph.add_edge(("shard", 0), "a", ("shard", 1))
        graph.add_edge(("shard", 1), "a", ("shard", 2))
        session = GraphSession(graph)
        expected = session.targets("a.a", ("shard", 0))
        assert {node.id for node in expected} == {("shard", 2)}
        path = tmp_path / "points.json"
        session.save_point_cache(path)

        restored = GraphSession(graph)
        restored.load_point_cache(path)
        restored._targets_of = lambda *a, **k: pytest.fail("recomputed a snapshotted answer")
        assert restored.targets("a.a", ("shard", 0)) == expected

    def test_non_snapshot_payload_is_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"something": "else"}), encoding="utf-8")
        with pytest.raises(EvaluationError, match="not a point-cache snapshot"):
            GraphSession(self.graph()).load_point_cache(path)

    def test_stale_lru_entries_are_not_saved(self, tmp_path):
        graph = generators.chain(3, labels=("a",))
        session = GraphSession(graph)
        session.targets("a.a", "n0")
        graph.add_node("extra", 7)  # the cached entry is now a stale version
        session.targets("a.a", "n1")
        path = tmp_path / "points.json"
        assert session.save_point_cache(path) == 1  # only the current-version entry
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["graph_version"] == graph.version
        assert len(payload["entries"]) == 1

    def test_save_merges_a_previously_loaded_snapshot(self, tmp_path):
        graph = self.graph()
        first = tmp_path / "first.json"
        warm_session(graph).save_point_cache(first)

        session = GraphSession(graph)
        session.load_point_cache(first)
        session.targets("(a|b)*", "n5")  # one genuinely new answer
        second = tmp_path / "second.json"
        assert session.save_point_cache(second) == 9

    def test_mutation_after_load_invalidates_the_snapshot(self, tmp_path):
        graph = generators.chain(2, labels=("a",))
        session = GraphSession(graph)
        assert {node.id for node in session.targets("a.a", "n0")} == {"n2"}
        path = tmp_path / "points.json"
        session.save_point_cache(path)

        restored = GraphSession(graph)
        restored.load_point_cache(path)
        graph.remove_edge("n1", "a", "n2")
        assert restored.targets("a.a", "n0") == frozenset()

    def test_clear_cache_drops_the_loaded_snapshot(self, tmp_path):
        graph = self.graph()
        path = tmp_path / "points.json"
        warm_session(graph).save_point_cache(path)
        session = GraphSession(graph)
        session.load_point_cache(path)
        session.clear_cache()
        assert session._point_snapshot == {}
        assert session.save_point_cache(tmp_path / "empty.json") == 0


class TestSnapshotCompaction:
    """``save_point_cache(path, max_entries=...)`` keeps the MRU entries only."""

    def graph(self):
        return generators.random_graph(20, 60, labels=("a", "b"), rng=31, domain_size=3)

    def test_compaction_keeps_the_most_recently_used_entries(self, tmp_path):
        graph = self.graph()
        session = GraphSession(graph)
        nodes = list(graph.node_ids)[:6]
        for node in nodes:
            session.targets("a.(a|b)*", node)
        for node in nodes[:2]:  # refresh two entries: they must survive
            session.targets("a.(a|b)*", node)
        path = tmp_path / "compacted.json"
        assert session.save_point_cache(path, max_entries=2) == 2
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["compacted"] is True
        kept = set(payload["entries"])
        for node in nodes[:2]:
            assert any(f"source={node!r}" in key for key in kept), (node, kept)

    def test_compacted_snapshot_loads_and_misses_recompute(self, tmp_path):
        graph = self.graph()
        session = warm_session(graph)  # 2 queries x 4 sources
        expected = {
            (text, node): session.targets(text, node)
            for text in QUERIES
            for node in list(graph.node_ids)[:4]
        }
        path = tmp_path / "compacted.json"
        assert session.save_point_cache(path, max_entries=3) == 3

        restored = GraphSession(graph)
        assert restored.load_point_cache(path) == 3
        # Every lookup still answers correctly — dropped entries recompute.
        for (text, node), answer in expected.items():
            assert restored.targets(text, node) == answer

    def test_uncompacted_save_is_marked_and_unbounded(self, tmp_path):
        graph = self.graph()
        session = warm_session(graph)
        path = tmp_path / "full.json"
        saved = session.save_point_cache(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["compacted"] is False
        assert len(payload["entries"]) == saved == 8

    def test_max_entries_larger_than_cache_keeps_everything(self, tmp_path):
        graph = self.graph()
        session = warm_session(graph)
        path = tmp_path / "roomy.json"
        assert session.save_point_cache(path, max_entries=100) == 8
        assert json.loads(path.read_text(encoding="utf-8"))["compacted"] is False

    def test_zero_keeps_nothing_and_negative_is_rejected(self, tmp_path):
        graph = self.graph()
        session = warm_session(graph)
        assert session.save_point_cache(tmp_path / "zero.json", max_entries=0) == 0
        with pytest.raises(EvaluationError, match="max_entries"):
            session.save_point_cache(tmp_path / "bad.json", max_entries=-1)

class TestSnapshotSurvivesInsertOnlyDeltas:
    """A snapshot from an earlier version loads across journaled
    insert-only deltas: entries provably unaffected survive, the rest
    are dropped and recompute on demand."""

    def two_chains(self):
        from repro.datagraph import DataGraph

        graph = DataGraph(alphabet={"a"})
        for prefix in ("n", "m"):
            for i in range(3):
                graph.add_node(f"{prefix}{i}", i)
            for i in range(2):
                graph.add_edge(f"{prefix}{i}", "a", f"{prefix}{i+1}")
        return graph

    def test_entries_outside_the_touched_closure_survive(self, tmp_path):
        graph = self.two_chains()
        session = GraphSession(graph)
        session.targets("a.a", "n0")
        session.targets("a.a", "m0")
        path = tmp_path / "points.json"
        assert session.save_point_cache(path) == 2

        with graph.batch() as batch:  # touches the m-chain only
            batch.add_node("m3", 3)
            batch.add_edge("m2", "a", "m3")

        restored = GraphSession(graph)
        assert restored.load_point_cache(path) == 1  # the n-chain entry
        restored._targets_of = lambda *a, **k: pytest.fail("recomputed a surviving answer")
        assert {node.id for node in restored.targets("a.a", "n0")} == {"n2"}

    def test_dropped_entries_recompute_to_the_fresh_answer(self, tmp_path):
        graph = self.two_chains()
        session = GraphSession(graph)
        assert {node.id for node in session.targets("a.a", "m0")} == {"m2"}
        path = tmp_path / "points.json"
        session.save_point_cache(path)

        with graph.batch() as batch:
            batch.add_node("m3", 3)
            batch.add_edge("m2", "a", "m3")
            batch.add_edge("m0", "a", "m2")  # the shortcut makes m3 an a.a target

        restored = GraphSession(graph)
        restored.load_point_cache(path)
        assert {node.id for node in restored.targets("a.a", "m0")} == {"m2", "m3"}

    def test_survival_composes_across_consecutive_batches(self, tmp_path):
        graph = self.two_chains()
        session = GraphSession(graph)
        session.targets("a.a", "n0")
        path = tmp_path / "points.json"
        session.save_point_cache(path)

        with graph.batch() as batch:
            batch.add_node("m3", 3)
        with graph.batch() as batch:
            batch.add_edge("m2", "a", "m3")

        restored = GraphSession(graph)
        assert restored.load_point_cache(path) == 1
        restored._targets_of = lambda *a, **k: pytest.fail("recomputed a surviving answer")
        assert {node.id for node in restored.targets("a.a", "n0")} == {"n2"}

    def test_removal_lineage_is_rejected(self, tmp_path):
        graph = self.two_chains()
        session = GraphSession(graph)
        session.targets("a.a", "n0")
        path = tmp_path / "points.json"
        session.save_point_cache(path)
        with graph.batch() as batch:
            batch.remove_edge("m1", "a", "m2")
        with pytest.raises(EvaluationError, match="no insert-only delta chain"):
            GraphSession(graph).load_point_cache(path)

    def test_journal_gap_is_rejected(self, tmp_path):
        graph = self.two_chains()
        session = GraphSession(graph)
        session.targets("a.a", "n0")
        path = tmp_path / "points.json"
        session.save_point_cache(path)
        graph.add_node("gap", 9)  # single-op mutator: no journal entry
        with pytest.raises(EvaluationError, match="no insert-only delta chain"):
            GraphSession(graph).load_point_cache(path)

    def test_non_monotone_kinds_never_survive_a_delta(self, tmp_path):
        # GXPath point answers can shrink under insertion (negation),
        # so the survival filter drops them regardless of the closure.
        graph = self.two_chains()
        session = GraphSession(graph)
        session.targets(Query.parse("a.a", dialect="gxpath-path"), "n0")
        path = tmp_path / "points.json"
        assert session.save_point_cache(path) == 1
        with graph.batch() as batch:  # far from the n-chain
            batch.add_node("m3", 3)
            batch.add_edge("m2", "a", "m3")
        restored = GraphSession(graph)
        assert restored.load_point_cache(path) == 0
        assert {node.id for node in restored.targets(
            Query.parse("a.a", dialect="gxpath-path"), "n0"
        )} == {"n2"}


class TestSnapshotCompactionOrdering:
    def graph(self):
        return generators.random_graph(20, 60, labels=("a", "b"), rng=31, domain_size=3)

    def test_loaded_snapshot_entries_rank_older_than_live_ones(self, tmp_path):
        graph = self.graph()
        first = tmp_path / "first.json"
        warm_session(graph).save_point_cache(first)

        session = GraphSession(graph)
        session.load_point_cache(first)
        fresh = list(graph.node_ids)[10]
        session.targets("b*", fresh)  # the only live (most recent) entry
        second = tmp_path / "second.json"
        assert session.save_point_cache(second, max_entries=1) == 1
        (key,) = json.loads(second.read_text(encoding="utf-8"))["entries"].keys()
        assert f"source={fresh!r}" in key
