"""GraphSession: uniform results, the versioned cache, batched execution."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExecutionPolicy, GraphSession, Query, SequentialExecutor, session_for
from repro.datagraph import GraphBuilder
from repro.exceptions import EvaluationError

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


def diamond_graph():
    return (
        GraphBuilder(name="diamond")
        .node("a", 1).node("b", 2).node("c", 2).node("d", 1)
        .edge("a", "r", "b").edge("a", "r", "c")
        .edge("b", "s", "d").edge("c", "s", "d")
        .build()
    )


class TestResultShapes:
    def test_pairs_nodes_holds_count(self):
        session = GraphSession(diamond_graph())
        result = session.run(Query.rpq("r.s"))
        assert {(u.id, v.id) for u, v in result.pairs()} == {("a", "d")}
        assert result.count() == len(result) == 1
        assert result.holds("a", "d") and not result.holds("a", "b")
        node_result = session.run(Query.gxpath("<r>"))
        assert {node.id for node in node_result.nodes()} == {"a"}
        assert node_result.holds("a") and not node_result.holds("d")

    def test_shape_errors(self):
        session = GraphSession(diamond_graph())
        with pytest.raises(EvaluationError):
            session.run(Query.gxpath("<r>")).pairs()
        with pytest.raises(EvaluationError):
            session.run(Query.rpq("r")).nodes()
        with pytest.raises(EvaluationError):
            session.run(Query.rpq("r")).holds("a")

    def test_rows_normalises_node_answers_to_tuples(self):
        session = GraphSession(diamond_graph())
        rows = session.run(Query.gxpath("<r>")).rows()
        assert all(isinstance(row, tuple) and len(row) == 1 for row in rows)

    def test_unary_crpq_nodes(self):
        session = GraphSession(diamond_graph())
        result = session.run(Query.crpq(("x",), [("x", "r.s", "y")]))
        assert {node.id for node in result.nodes()} == {"a"}

    def test_to_json_is_deterministic_and_parseable(self):
        session = GraphSession(diamond_graph())
        payload = json.loads(session.run(Query.rpq("r")).to_json())
        assert payload["kind"] == "rpq"
        assert payload["arity"] == 2
        assert payload["count"] == 2
        assert payload["rows"][0][0]["id"] == "a"
        again = session.run(Query.rpq("r")).to_json()
        assert json.loads(again) == payload

    def test_null_value_serialises_as_json_null(self):
        graph = GraphBuilder().node("n").node("m", 3).edge("n", "r", "m").build()
        payload = json.loads(GraphSession(graph).run(Query.rpq("r")).to_json())
        assert payload["rows"][0][0]["value"] is None

    def test_laziness(self):
        calls = []
        session = GraphSession(diamond_graph())
        original = Query._evaluate

        def counting(self, engine, graph, null_semantics):
            calls.append(self)
            return original(self, engine, graph, null_semantics)

        Query._evaluate = counting
        try:
            result = session.run(Query.rpq("r"))
            assert not calls and not result.is_materialised
            result.count()
            result.pairs()
            assert len(calls) == 1  # forced exactly once
        finally:
            Query._evaluate = original


class TestVersionedCache:
    def test_repeat_runs_hit_the_cache(self):
        session = GraphSession(diamond_graph())
        assert session.run(Query.rpq("r.s")).count() == 1
        before = session.stats()["results"].hits
        assert session.run(Query.rpq("r.s")).count() == 1
        assert session.stats()["results"].hits == before + 1

    def test_equal_queries_share_one_entry(self):
        session = GraphSession(diamond_graph())
        session.run(Query.parse("r.s", "rpq")).count()
        before = session.stats()["results"].hits
        session.run(Query.rpq("r.s")).count()  # structurally equal plan
        assert session.stats()["results"].hits == before + 1

    def test_mutation_invalidates(self):
        graph = diamond_graph()
        session = GraphSession(graph)
        assert not session.run(Query.rpq("s.r")).pairs()
        graph.add_edge("d", "r", "a")  # bumps graph.version
        assert session.run(Query.rpq("s.r")).pairs() == session.run(Query.rpq("s.r")).pairs()
        assert session.run(Query.rpq("s.r")).holds("b", "a")

    def test_null_semantics_is_part_of_the_key(self):
        graph = GraphBuilder().node("n").node("m").edge("n", "r", "m").build()
        session = GraphSession(graph)
        ree = Query.parse("(r)=", dialect="ree")
        assert session.run(ree).count() == 1  # NULL == NULL without SQL semantics
        assert session.run(ree, null_semantics=True).count() == 0

    def test_cache_can_be_disabled(self):
        session = GraphSession(diamond_graph(), policy=ExecutionPolicy(cache_results=False))
        session.run(Query.rpq("r")).count()
        session.run(Query.rpq("r")).count()
        snapshot = session.stats()["results"]
        assert snapshot.hits == 0 and snapshot.size == 0

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_results_never_stale_across_random_mutations(self, data):
        """Property: after any mutation sequence, session answers equal a
        fresh cache-less evaluation of the same plan (satellite: cache
        invalidation rides the graph's mutation counter)."""
        graph = GraphBuilder().node(0, 0).build()
        session = GraphSession(graph)
        queries = [Query.rpq("r.r"), Query.parse("(r)=", "ree"), Query.gxpath("<r.r->")]
        node_count = 1
        for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
            action = data.draw(st.sampled_from(["node", "edge", "value-node"]))
            if action == "node":
                graph.add_node(node_count, node_count % 3)
                node_count += 1
            elif action == "value-node":
                graph.add_node(node_count, data.draw(st.integers(min_value=0, max_value=2)))
                node_count += 1
            else:
                source = data.draw(st.integers(min_value=0, max_value=node_count - 1))
                target = data.draw(st.integers(min_value=0, max_value=node_count - 1))
                graph.add_edge(source, "r", target)
            for query in queries:
                cached = session.run(query).rows()
                fresh = GraphSession(
                    graph, policy=ExecutionPolicy(cache_results=False)
                ).run(query).rows()
                assert cached == fresh


class TestRunMany:
    BATCH = [
        Query.rpq("r.s"),
        Query.parse("(r)=", "ree"),
        Query.rpq("r.s"),  # duplicate: must be evaluated once and answered twice
        Query.gxpath("<r.[<s>]>"),
        Query.parse("!x.((r|s)[x!=])+", "rem"),
    ]

    def test_order_and_duplicates(self):
        session = GraphSession(diamond_graph())
        results = session.run_many(self.BATCH)
        assert len(results) == len(self.BATCH)
        assert results[0].rows() == results[2].rows()
        assert [result.query for result in results] == self.BATCH

    def test_batch_results_are_materialised_and_cached(self):
        session = GraphSession(diamond_graph())
        results = session.run_many(self.BATCH)
        assert all(result.is_materialised for result in results)
        before = session.stats()["results"].hits
        session.run(self.BATCH[0]).rows()
        assert session.stats()["results"].hits == before + 1

    def test_executor_override(self):
        class CountingExecutor(SequentialExecutor):
            def __init__(self):
                self.batches = []

            def execute_batch(self, engine, graph, queries, null_semantics=False):
                self.batches.append(list(queries))
                return super().execute_batch(engine, graph, queries, null_semantics)

        session = GraphSession(diamond_graph())
        counter = CountingExecutor()
        session.run_many(self.BATCH, executor=counter)
        # the duplicate plan must have been deduplicated before the executor
        assert len(counter.batches) == 1 and len(counter.batches[0]) == len(self.BATCH) - 1
        # a second batch over the unchanged graph is served from cache
        session.run_many(self.BATCH, executor=counter)
        assert len(counter.batches) == 1


class TestSessionFor:
    def test_one_session_per_graph(self):
        graph = diamond_graph()
        assert session_for(graph) is session_for(graph)
        assert session_for(graph) is not session_for(diamond_graph())

    def test_registry_does_not_keep_graphs_alive(self):
        import gc
        import weakref

        graph = diamond_graph()
        session_for(graph)
        ref = weakref.ref(graph)
        del graph
        gc.collect()
        assert ref() is None

    def test_holds_shortcut(self):
        graph = diamond_graph()
        assert session_for(graph).holds(Query.rpq("r.s"), "a", "d")


class TestFacadeSessions:
    def test_exchange_result_session_queries_the_target(self):
        from repro import DataExchangeEngine, GraphSchemaMapping

        source = GraphBuilder().node("a", 1).node("b", 2).edge("a", "r", "b").build()
        engine = DataExchangeEngine(GraphSchemaMapping([("r", "t.t")]))
        result = engine.materialise(source, policy="nulls")
        session = result.session()
        assert session.graph is result.target
        assert session.run(Query.rpq("t.t")).holds("a", "b")
        # the execution kwarg takes an ExecutionPolicy, not the exchange policy string
        tuned = result.session(ExecutionPolicy(cache_results=False))
        assert tuned.run(Query.rpq("t.t")).holds("a", "b")
        assert engine.target_session(source).run(Query.rpq("t.t")).holds("a", "b")

    def test_global_session_is_cached_until_sources_change(self):
        from repro import VirtualIntegrationSystem

        vis = VirtualIntegrationSystem(global_alphabet={"g"})
        feed = vis.add_source("feed", "g")
        feed.add(("a", 1), ("b", 2))
        first = vis.global_session()
        assert vis.global_session() is first          # cached: no re-chase
        assert first.run(Query.rpq("g")).count() == 1
        feed.add(("b", 2), ("c", 3))                  # source mutation invalidates
        second = vis.global_session()
        assert second is not first
        assert second.run(Query.rpq("g")).count() == 2
