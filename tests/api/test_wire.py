"""The structural JSON wire codec: exact round-trips, hostile documents."""

from __future__ import annotations

import json

import pytest

from repro.api import GraphSession, Query
from repro.api import wire
from repro.datagraph import GraphBuilder
from repro.datagraph.node import Node
from repro.datagraph.values import NULL
from repro.exceptions import SerializationError

QUERIES = [
    ("a.(b|c)*", "rpq"),
    ("(a.b)+ | c", "rpq"),
    ("((a|b)+)=", "ree"),
    ("(a.b)!=", "ree"),
    ("!x.(a[x=])+", "rem"),
    ("x,y :- (x, a+, z), (z, ree:(b)=, y)", "crpq"),
    (":- (x, a, y)", "crpq"),
    ("<a.[<b>]>", "gxpath-node"),
    ("a-* . (b)!=", "gxpath-path"),
]


@pytest.fixture
def valued_graph():
    return (
        GraphBuilder(name="wire")
        .node("n1", 1).node("n2", "two").node("n3", NULL).node(("t", 4), 2.5)
        .edge("n1", "a", "n2").edge("n2", "b", "n3")
        .edge("n3", "c", ("t", 4)).edge(("t", 4), "a", "n1")
        .edge("n1", "b", "n1")
        .build()
    )


class TestQueryRoundTrip:
    @pytest.mark.parametrize("text,dialect", QUERIES)
    def test_exact_round_trip(self, text, dialect):
        query = Query.parse(text, dialect=dialect)
        document = wire.encode_query(query)
        # The document must survive a real JSON hop, not just a dict copy.
        decoded = wire.decode_query(json.loads(json.dumps(document)))
        assert decoded == query
        assert decoded.kind is query.kind
        assert decoded.key == query.key

    @pytest.mark.parametrize("text,dialect", QUERIES)
    def test_round_tripped_query_evaluates_identically(self, text, dialect, valued_graph):
        query = Query.parse(text, dialect=dialect)
        decoded = wire.decode_query(wire.encode_query(query))
        session = GraphSession(valued_graph)
        assert session.run(decoded).rows() == session.run(query).rows()

    def test_kind_mismatch_rejected(self):
        document = wire.encode_query(Query.parse("a.b"))
        document["kind"] = "crpq"
        with pytest.raises(SerializationError):
            wire.decode_query(document)

    def test_unknown_class_rejected(self):
        document = wire.encode_query(Query.parse("a.b"))
        document["plan"]["f"]["expression"] = {"%": "os.system", "f": {}}
        with pytest.raises(SerializationError):
            wire.decode_query(document)

    def test_wrong_fields_rejected(self):
        document = wire.encode_query(Query.parse("a"))
        document["plan"]["f"]["bogus"] = 1
        with pytest.raises(SerializationError):
            wire.decode_query(document)

    @pytest.mark.parametrize("document", [None, 3, [], {"kind": "rpq"}, {"plan": {}}])
    def test_malformed_documents_rejected(self, document):
        with pytest.raises(SerializationError):
            wire.decode_query(document)


class TestValuesAndNodes:
    @pytest.mark.parametrize("value", [1, -3.5, "text", True, None, NULL, ("t", 4), ((1, 2), 3)])
    def test_value_round_trip(self, value):
        decoded = wire.decode_value(json.loads(json.dumps(wire.encode_value(value))))
        if value is None or value is NULL:
            assert decoded is NULL  # both null spellings normalise to the SQL null
        else:
            assert decoded == value

    def test_unencodable_value_rejected(self):
        with pytest.raises(SerializationError):
            wire.encode_value(object())

    def test_node_round_trip(self):
        node = Node(("person", 7), NULL)
        assert wire.decode_node(wire.encode_node(node)) == node


class TestAnswerSets:
    def test_row_answers_round_trip(self, valued_graph):
        query = Query.parse("a.(b|c)*")
        answers = GraphSession(valued_graph).run(query)._force()
        assert answers  # a trivial set would prove nothing
        document = json.loads(json.dumps(wire.encode_answers(query, answers)))
        assert wire.decode_answers(query, document) == answers

    def test_node_answers_round_trip(self, valued_graph):
        query = Query.parse("<a.[<b>]>", dialect="gxpath-node")
        answers = GraphSession(valued_graph).run(query)._force()
        document = wire.encode_answers(query, answers)
        assert document["shape"] == "nodes"
        assert wire.decode_answers(query, document) == answers

    def test_encoding_is_deterministic(self, valued_graph):
        query = Query.parse("a|b")
        answers = GraphSession(valued_graph).run(query)._force()
        assert wire.encode_answers(query, answers) == wire.encode_answers(query, answers)

    def test_malformed_answers_rejected(self):
        query = Query.parse("a")
        with pytest.raises(SerializationError):
            wire.decode_answers(query, {"shape": "rows"})
        with pytest.raises(SerializationError):
            wire.decode_answers(query, None)
