"""ExecutionPolicy presets, auto-selection and the deprecation shims."""

from __future__ import annotations

import warnings

import pytest

from repro.api import POLICY_PRESETS, ExecutionPolicy, GraphSession
from repro.engine.forkpool import fork_available
from repro.exceptions import EvaluationError

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


class TestPresets:
    def test_local_is_the_default_policy(self):
        assert ExecutionPolicy.preset("local") == ExecutionPolicy()

    def test_parallel_preset_shape(self):
        policy = ExecutionPolicy.preset("parallel")
        assert policy.executor == "process"
        assert policy.intra_query == "blocks"

    def test_server_preset_shape(self):
        policy = ExecutionPolicy.preset("server")
        assert policy.intra_query == "sharded"
        assert policy.sharded_processes is True

    def test_presets_accept_overrides(self):
        policy = ExecutionPolicy.preset("server", num_shards=3, max_workers=2)
        assert policy.num_shards == 3 and policy.max_workers == 2
        assert policy.intra_query == "sharded"

    def test_overrides_beat_the_preset_base(self):
        policy = ExecutionPolicy.preset("parallel", executor="thread")
        assert policy.executor == "thread"

    def test_unknown_preset_rejected(self):
        with pytest.raises(EvaluationError, match="unknown policy preset"):
            ExecutionPolicy.preset("quantum")

    def test_preset_construction_never_warns(self):
        # The whole module runs under -W error::DeprecationWarning, so
        # simply constructing every preset proves the no-warning path.
        for name in POLICY_PRESETS:
            ExecutionPolicy.preset(name)

    def test_presets_registry_is_exported(self):
        assert set(POLICY_PRESETS) == {"local", "parallel", "server"}

    def test_invalid_override_still_validates(self):
        with pytest.raises(EvaluationError):
            ExecutionPolicy.preset("local", intra_query="quantum")


class TestAuto:
    def test_auto_picks_a_known_preset(self):
        policy = ExecutionPolicy.auto()
        if fork_available():
            assert policy.executor in ("process", "sequential")
        else:
            assert policy == ExecutionPolicy.preset("local")

    def test_auto_accepts_overrides(self):
        assert ExecutionPolicy.auto(max_workers=2).max_workers == 2


class TestDeprecationShims:
    """The old knob-sprawl constructor still works, but warns."""

    def test_intra_query_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="intra_query"):
            policy = ExecutionPolicy(intra_query="blocks")
        assert policy.intra_query == "blocks"

    def test_sharded_knobs_warn_and_apply(self):
        with pytest.warns(DeprecationWarning) as caught:
            policy = ExecutionPolicy(
                intra_query="sharded", num_shards=4, sharded_processes=False
            )
        assert policy.intra_query == "sharded"
        assert policy.num_shards == 4
        assert policy.sharded_processes is False
        message = str(caught[0].message)
        assert "ExecutionPolicy.preset" in message and "auto()" in message

    def test_threshold_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="intra_query_threshold"):
            policy = ExecutionPolicy(intra_query_threshold=7)
        assert policy.intra_query_threshold == 7

    def test_first_class_kwargs_do_not_warn(self):
        policy = ExecutionPolicy(
            executor="thread", max_workers=2, cache_results=False,
            result_cache_size=16, point_cache_size=8,
        )
        assert policy.executor == "thread" and policy.result_cache_size == 16

    def test_shimmed_policy_equals_preset_spelling(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = ExecutionPolicy(intra_query="sharded", sharded_processes=True)
        assert old == ExecutionPolicy.preset("server")

    def test_shimmed_policies_still_run_queries(self, toy_graph):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            policy = ExecutionPolicy(intra_query="blocks", intra_query_threshold=0)
        sequential = GraphSession(toy_graph).run("knows.knows").rows()
        assert GraphSession(toy_graph, policy=policy).run("knows.knows").rows() == sequential
