"""Acceptance property: every language round-trips through the session.

For random graphs, ``Query.<lang>(...)`` → ``GraphSession.run`` must
return exactly the answers of the naive/spec evaluators:

* RPQs against the seed per-source BFS (``evaluate_rpq_naive``);
* data RPQs (REE and REM) against the seed register-automaton BFS
  (``evaluate_data_rpq_naive``);
* CRPQs against an independent brute-force join over naive atom
  relations;
* GXPath node/path expressions against the Figure-1 set semantics.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GraphSession, Query
from repro.datagraph import generators
from repro.gxpath import evaluation as gxpath_evaluation
from repro.query import (
    Atom,
    ConjunctiveRPQ,
    data_rpq,
    equality_rpq,
    evaluate_data_rpq_naive,
    evaluate_rpq_naive,
    memory_rpq,
    rpq,
)

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

RPQ_TEXTS = ["a", "a.b", "(a|b)*", "a.(a|b)*.b", "(a.b)+", "b*.a"]
REE_TEXTS = ["(a)=", "(a.b)=", "(a|b)* . ((a|b)+)= . (a|b)*", "((a.b)+)!="]
REM_TEXTS = ["!x.(a[x=])", "!x.((a|b)[x!=])+", "!x.(a.b[x=])+"]
GXPATH_NODE_TEXTS = ["<a>", "<a.[<b>]>", "~<a.b>", "<(a.b)=>"]
GXPATH_PATH_TEXTS = ["a", "a-.b", "a* . (b)!=", "[<a>].b"]

graphs = st.builds(
    lambda size, seed: generators.random_graph(
        size, size * 2, labels=("a", "b"), rng=seed, domain_size=3
    ),
    size=st.integers(min_value=2, max_value=14),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=25, deadline=None)
@given(graph=graphs, text=st.sampled_from(RPQ_TEXTS))
def test_rpq_roundtrip_matches_naive(graph, text):
    via_session = GraphSession(graph).run(Query.rpq(text)).pairs()
    assert via_session == evaluate_rpq_naive(graph, rpq(text))


@settings(max_examples=25, deadline=None)
@given(graph=graphs, text=st.sampled_from(REE_TEXTS))
def test_ree_roundtrip_matches_naive(graph, text):
    via_session = GraphSession(graph).run(Query.parse(text, "ree")).pairs()
    assert via_session == evaluate_data_rpq_naive(graph, equality_rpq(text))


@settings(max_examples=15, deadline=None)
@given(graph=graphs, text=st.sampled_from(REM_TEXTS))
def test_rem_roundtrip_matches_naive(graph, text):
    via_session = GraphSession(graph).run(Query.parse(text, "rem")).pairs()
    assert via_session == evaluate_data_rpq_naive(graph, memory_rpq(text))


def _crpq_spec(graph, query):
    """Brute-force CRPQ semantics: try every assignment of variables."""
    relations = {}
    for atom in query.atoms:
        if isinstance(atom.query, type(rpq("a"))):
            relations[atom] = evaluate_rpq_naive(graph, atom.query)
        else:
            relations[atom] = evaluate_data_rpq_naive(graph, atom.query)
    variables = sorted(query.variables())
    answers = set()
    for assignment in itertools.product(graph.nodes, repeat=len(variables)):
        binding = dict(zip(variables, assignment))
        if all(
            (binding[atom.source], binding[atom.target]) in relations[atom]
            for atom in query.atoms
        ):
            answers.add(tuple(binding[variable] for variable in query.head))
    return frozenset(answers)


@settings(max_examples=10, deadline=None)
@given(
    graph=st.builds(
        lambda seed: generators.random_graph(5, 10, labels=("a", "b"), rng=seed, domain_size=3),
        seed=st.integers(min_value=0, max_value=500),
    ),
    shape=st.sampled_from(
        [
            (("x", "z"), (("x", "a", "y"), ("y", "b", "z"))),
            (("x",), (("x", "(a|b)*", "y"), ("y", "a", "x"))),
            ((), (("x", "a", "y"),)),
        ]
    ),
    with_data_atom=st.booleans(),
)
def test_crpq_roundtrip_matches_bruteforce(graph, shape, with_data_atom):
    head, triples = shape
    atoms = [Atom(source, rpq(text), target) for source, text, target in triples]
    if with_data_atom:
        atoms.append(Atom("x", data_rpq(equality_rpq("((a|b)+)=").expression), "y"))
    query = ConjunctiveRPQ(tuple(head), tuple(atoms))
    via_session = GraphSession(graph).run(Query.crpq(query)).rows()
    assert via_session == _crpq_spec(graph, query)


@settings(max_examples=20, deadline=None)
@given(graph=graphs, text=st.sampled_from(GXPATH_NODE_TEXTS))
def test_gxpath_node_roundtrip_matches_figure1(graph, text):
    query = Query.parse(text, "gxpath-node")
    via_session = GraphSession(graph).run(query).nodes()
    assert via_session == gxpath_evaluation.evaluate_node(graph, query.plan)


@settings(max_examples=20, deadline=None)
@given(graph=graphs, text=st.sampled_from(GXPATH_PATH_TEXTS))
def test_gxpath_path_roundtrip_matches_figure1(graph, text):
    query = Query.parse(text, "gxpath-path")
    via_session = GraphSession(graph).run(query).pairs()
    assert via_session == gxpath_evaluation.evaluate_path(graph, query.plan)
