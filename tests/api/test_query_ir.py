"""The unified Query IR: construction, parsing, hashing, introspection.

These modules are the new-API suite and must be clean of deprecated
calls, so DeprecationWarning is an error here (mirrored in CI by the
dedicated ``-W error::DeprecationWarning`` step).
"""

from __future__ import annotations

import pytest

from repro.api import Query, QueryKind
from repro.datapaths import RegexWithEquality, RegexWithMemory, parse_ree, parse_rem
from repro.exceptions import ParseError, UnsupportedQueryError
from repro.gxpath import parse_gxpath_node, parse_gxpath_path
from repro.query import Atom, ConjunctiveRPQ, data_rpq, equality_rpq, memory_rpq, rpq
from repro.regular import parse_regex

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


class TestConstructors:
    def test_rpq_from_text_ast_and_wrapper_agree(self):
        from_text = Query.rpq("a.b*")
        from_ast = Query.rpq(parse_regex("a.b*"))
        from_wrapper = Query.rpq(rpq("a.b*"))
        assert from_text == from_ast == from_wrapper
        assert from_text.kind is QueryKind.RPQ
        assert hash(from_text) == hash(from_wrapper)

    def test_data_rpq_text_prefers_ree_then_rem(self):
        assert isinstance(Query.data_rpq("(a.b)=").plan.expression, RegexWithEquality)
        assert isinstance(Query.data_rpq("!x.(a[x=])+").plan.expression, RegexWithMemory)

    def test_data_rpq_wrappers(self):
        ree = equality_rpq("(a)=")
        assert Query.data_rpq(ree).plan is ree
        assert Query.data_rpq(ree.expression) == Query.data_rpq(ree)
        rem = memory_rpq("!x.(a[x=])")
        assert Query.data_rpq(rem).kind is QueryKind.DATA_RPQ

    def test_gxpath_detects_shape(self):
        node = Query.gxpath("<a.[<b>]>")
        path = Query.gxpath("a-* . (b)!=")
        assert node.kind is QueryKind.GXPATH_NODE
        assert path.kind is QueryKind.GXPATH_PATH
        assert Query.gxpath(parse_gxpath_node("<a>")).kind is QueryKind.GXPATH_NODE
        assert Query.gxpath(parse_gxpath_path("a.b")).kind is QueryKind.GXPATH_PATH

    def test_gxpath_kind_mismatch_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            Query.gxpath(parse_gxpath_node("<a>"), kind="path")
        with pytest.raises(UnsupportedQueryError):
            Query.gxpath(parse_gxpath_path("a.b"), kind="node")
        with pytest.raises(UnsupportedQueryError):
            Query.gxpath("a", kind="sideways")

    def test_crpq_from_triples_and_wrapper(self):
        wrapped = ConjunctiveRPQ(
            ("x", "z"), (Atom("x", rpq("a"), "y"), Atom("y", equality_rpq("(b)="), "z"))
        )
        built = Query.crpq(("x", "z"), [("x", "a", "y"), ("y", equality_rpq("(b)=").expression, "z")])
        assert Query.crpq(wrapped).plan is wrapped
        assert built.plan == wrapped
        assert built.arity == 2

    def test_crpq_without_atoms_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            Query.crpq(("x", "y"))


class TestParse:
    @pytest.mark.parametrize(
        "text,dialect,kind",
        [
            ("a.b*", "rpq", QueryKind.RPQ),
            ("(a.b)=", "ree", QueryKind.DATA_RPQ),
            ("!x.(a[x=])+", "rem", QueryKind.DATA_RPQ),
            ("<a.[<b>]>", "gxpath-node", QueryKind.GXPATH_NODE),
            ("a-* . (b)!=", "gxpath-path", QueryKind.GXPATH_PATH),
        ],
    )
    def test_every_dialect_round_trips(self, text, dialect, kind):
        query = Query.parse(text, dialect=dialect)
        assert query.kind is kind
        assert query == Query.parse(text, dialect=dialect)

    def test_unknown_dialect_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="dialect"):
            Query.parse("a", dialect="sparql")

    def test_parse_errors_propagate(self):
        with pytest.raises(ParseError):
            Query.parse("a..b", dialect="rpq")


class TestOf:
    def test_identity_on_queries(self):
        query = Query.rpq("a")
        assert Query.of(query) is query

    def test_coercions(self):
        assert Query.of("a.b").kind is QueryKind.RPQ
        assert Query.of(parse_regex("a")).kind is QueryKind.RPQ
        assert Query.of(rpq("a")).kind is QueryKind.RPQ
        assert Query.of(equality_rpq("(a)=")).kind is QueryKind.DATA_RPQ
        assert Query.of(parse_ree("(a)=")).kind is QueryKind.DATA_RPQ
        assert Query.of(parse_rem("!x.(a[x=])")).kind is QueryKind.DATA_RPQ
        assert Query.of(data_rpq(parse_ree("(a)="))).kind is QueryKind.DATA_RPQ
        assert Query.of(parse_gxpath_node("<a>")).kind is QueryKind.GXPATH_NODE
        assert Query.of(parse_gxpath_path("a.b")).kind is QueryKind.GXPATH_PATH

    def test_rejects_garbage(self):
        with pytest.raises(UnsupportedQueryError):
            Query.of(42)


class TestIntrospection:
    def test_key_is_stable_across_construction_paths(self):
        assert Query.rpq("a.b").key == Query.parse("a.b").key
        assert Query.rpq("a.b").key != Query.rpq("b.a").key
        # Same text in different languages must not collide.
        assert Query.parse("a.b", "rpq").key != Query.parse("a.b", "gxpath-path").key

    def test_arity(self):
        assert Query.rpq("a").arity == 2
        assert Query.data_rpq("(a)=").arity == 2
        assert Query.gxpath("<a>").arity == 1
        assert Query.gxpath("a.b").arity == 2
        assert Query.crpq(("x",), [("x", "a", "y")]).arity == 1
        assert Query.crpq((), [("x", "a", "y")]).arity == 0

    def test_labels(self):
        assert Query.rpq("a.b|c").labels() == {"a", "b", "c"}
        assert Query.data_rpq("(a.b)=").labels() == {"a", "b"}
        assert Query.gxpath("<a.[<b>]>").labels() == {"a", "b"}
        conjunctive = Query.crpq(
            ("x", "y"), [("x", "a", "y"), ("y", equality_rpq("(b)=").expression, "x")]
        )
        assert conjunctive.labels() == {"a", "b"}

    def test_str_mentions_kind(self):
        assert str(Query.rpq("a")).startswith("rpq:")

    def test_usable_as_dict_key(self):
        cache = {Query.parse("(a)=", "ree"): 1}
        assert cache[Query.data_rpq(parse_ree("(a)="))] == 1
