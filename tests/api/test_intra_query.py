"""Intra-query execution policies and the point-workload cache.

Acceptance property (ISSUE 3, extended by ISSUE 4): a session under
every ``intra_query`` mode (off / source-block parallel / sharded)
returns exactly the answers of the naive spec evaluators across all five
dialects and random graphs.  Since the ProductSpace refactor the modes
are no longer RPQ-only — data RPQs ride the register product and GXPath
expressions shard their axis-star closures — so the agreement properties
here genuinely drive every dialect through the partitioned drivers,
including REM register valuations crossing shard boundaries and GXPath
``a*`` over cut edges.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExecutionPolicy, GraphSession, Query
from repro.datagraph import DataGraph, generators
from repro.exceptions import EvaluationError, UnknownNodeError
from repro.query import (
    equality_rpq,
    evaluate_data_rpq_naive,
    evaluate_rpq_naive,
    memory_rpq,
    rpq,
)

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

#: One query text per dialect, exercised under every intra-query mode.
DIALECT_TEXTS = {
    "rpq": "a.(a|b)*.b",
    "ree": "(a|b)* . ((a|b)+)= . (a|b)*",
    "rem": "!x.((a|b)[x!=])+",
    "gxpath-node": "<a.[<b>]>",
    "gxpath-path": "a* . (b)!=",
}

#: Threshold 1 so even tiny random graphs take the partitioned drivers.
MODES = [
    ExecutionPolicy(),
    ExecutionPolicy.preset("local", intra_query="blocks", intra_query_threshold=1, max_workers=2),
    ExecutionPolicy.preset("local", intra_query="sharded", intra_query_threshold=1, num_shards=3),
]

graphs = st.builds(
    lambda size, seed: generators.random_graph(
        size, size * 2, labels=("a", "b"), rng=seed, domain_size=3
    ),
    size=st.integers(min_value=2, max_value=14),
    seed=st.integers(min_value=0, max_value=10_000),
)


def _policy_label(policy):
    return policy.intra_query


class TestModeAgreement:
    @settings(max_examples=20, deadline=None)
    @given(graph=graphs)
    def test_rpq_matches_naive_under_every_mode(self, graph):
        text = DIALECT_TEXTS["rpq"]
        expected = evaluate_rpq_naive(graph, rpq(text))
        for policy in MODES:
            session = GraphSession(graph, policy=policy)
            assert session.run(Query.rpq(text)).pairs() == expected, _policy_label(policy)

    @settings(max_examples=15, deadline=None)
    @given(graph=graphs)
    def test_ree_and_rem_match_naive_under_every_mode(self, graph):
        for dialect, spec in (
            ("ree", equality_rpq(DIALECT_TEXTS["ree"])),
            ("rem", memory_rpq(DIALECT_TEXTS["rem"])),
        ):
            expected = evaluate_data_rpq_naive(graph, spec)
            for policy in MODES:
                session = GraphSession(graph, policy=policy)
                plan = Query.parse(DIALECT_TEXTS[dialect], dialect)
                assert session.run(plan).pairs() == expected, (dialect, _policy_label(policy))

    @settings(max_examples=15, deadline=None)
    @given(graph=graphs)
    def test_gxpath_and_crpq_agree_with_sequential_under_every_mode(self, graph):
        plans = [
            Query.parse(DIALECT_TEXTS["gxpath-node"], "gxpath-node"),
            Query.parse(DIALECT_TEXTS["gxpath-path"], "gxpath-path"),
            Query.crpq(("x", "y"), [("x", "a.(a|b)*", "z"), ("z", "b", "y")]),
        ]
        baseline = GraphSession(graph)
        for plan in plans:
            expected = baseline.run(plan).rows()
            for policy in MODES[1:]:
                session = GraphSession(graph, policy=policy)
                assert session.run(plan).rows() == expected, (str(plan), _policy_label(policy))

    def test_threshold_keeps_small_graphs_sequential(self):
        graph = generators.random_graph(10, 20, labels=("a", "b"), rng=4)
        high = GraphSession(graph, policy=ExecutionPolicy.preset("server"))
        low = GraphSession(graph)
        # below the default threshold of 64 nodes both run sequentially
        assert graph.num_nodes < high.policy.intra_query_threshold
        assert high.run("a.(a|b)*").pairs() == low.run("a.(a|b)*").pairs()

    def test_partitioned_answers_share_the_result_cache(self):
        graph = generators.random_graph(80, 200, labels=("a", "b"), rng=9)
        session = GraphSession(
            graph,
            policy=ExecutionPolicy.preset("local", intra_query="sharded", intra_query_threshold=1),
        )
        first = session.run("a.(a|b)*.b").pairs()
        assert session.run("a.(a|b)*.b").pairs() == first
        assert session.stats()["results"].hits >= 1

    def test_unknown_intra_query_mode_rejected(self):
        with pytest.raises(EvaluationError):
            ExecutionPolicy.preset("local", intra_query="quantum")


class TestCrossShardBoundaries:
    """ISSUE 4 acceptance: the sharded mode is correct even when every
    answer path crosses shard boundaries — for register valuations and
    for GXPath closures, not just plain RPQs."""

    def chain_with_values(self, values):
        graph = DataGraph(alphabet={"a"})
        for position, value in enumerate(values):
            graph.add_node(f"n{position}", value)
        for position in range(len(values) - 1):
            graph.add_edge(f"n{position}", "a", f"n{position + 1}")
        return graph

    def test_rem_valuations_cross_shard_boundaries(self):
        # One node per shard: every hop of the REM walk is a cut edge and
        # the bound register value travels in the frontier messages.
        graph = self.chain_with_values([1, 2, 1, 3, 1, 2])
        spec = memory_rpq("!x.(a[x!=])+")
        expected = evaluate_data_rpq_naive(graph, spec)
        policy = ExecutionPolicy.preset(
            "local", intra_query="sharded", intra_query_threshold=1, num_shards=graph.num_nodes
        )
        session = GraphSession(graph, policy=policy)
        answers = session.run(Query.data_rpq(spec.expression)).pairs()
        assert answers == expected
        # sanity: the relation genuinely depends on the register contents
        ids = {(u.id, v.id) for u, v in answers}
        assert ("n0", "n1") in ids and ("n0", "n2") not in ids

    def test_gxpath_axis_star_over_cut_edges(self):
        graph = self.chain_with_values([1] * 7)
        plan = Query.parse("a*", "gxpath-path")
        expected = GraphSession(graph).run(plan).rows()
        policy = ExecutionPolicy.preset(
            "local", intra_query="sharded", intra_query_threshold=1, num_shards=graph.num_nodes
        )
        assert GraphSession(graph, policy=policy).run(plan).rows() == expected

    def test_sharded_processes_policy_agrees(self):
        graph = generators.community_graph(3, 10, rng=8, domain_size=3)
        plan = Query.parse("!x.((knows|bridge)[x!=])+", "rem")
        baseline = GraphSession(graph).run(plan).pairs()
        for processes in (False, True):
            policy = ExecutionPolicy.preset(
                "server",
                intra_query_threshold=1,
                num_shards=3,
                sharded_processes=processes,
            )
            assert GraphSession(graph, policy=policy).run(plan).pairs() == baseline


class TestPointCache:
    def graph(self):
        return generators.random_graph(30, 90, labels=("a", "b"), rng=21, domain_size=4)

    def test_targets_match_the_full_relation(self):
        graph = self.graph()
        session = GraphSession(graph)
        relation = session.run("a.(a|b)*").pairs()
        for node in graph.node_ids:
            expected = frozenset(v for u, v in relation if u.id == node)
            assert session.targets("a.(a|b)*", node) == expected

    def test_repeat_questions_hit_the_point_cache(self):
        session = GraphSession(self.graph())
        session.targets("a.(a|b)*", "n0")
        before = session.stats()["points"].hits
        session.targets("a.(a|b)*", "n0")
        assert session.stats()["points"].hits == before + 1

    def test_point_queries_do_not_materialise_the_full_relation(self):
        session = GraphSession(self.graph())
        session.targets("a.(a|b)*", "n0")
        assert session.stats()["results"].size == 0

    def test_holds_uses_the_point_path_for_rpqs(self):
        graph = self.graph()
        session = GraphSession(graph)
        relation = GraphSession(graph, policy=ExecutionPolicy(cache_results=False)).run(
            "a.(a|b)*"
        ).pairs()
        some_pair = next(iter(relation))
        assert session.holds("a.(a|b)*", some_pair[0].id, some_pair[1].id)
        assert session.stats()["results"].size == 0  # no full relation computed
        answer_ids = {(u.id, v.id) for u, v in relation}
        non_pairs = [
            (u, v)
            for u in graph.node_ids
            for v in graph.node_ids
            if (u, v) not in answer_ids
        ]
        if non_pairs:
            u, v = non_pairs[0]
            assert not session.holds("a.(a|b)*", u, v)

    def test_holds_prefers_a_cached_full_relation(self):
        session = GraphSession(self.graph())
        relation = session.run("a.(a|b)*").pairs()
        some_pair = next(iter(relation))
        before = session.stats()["points"].misses
        assert session.holds("a.(a|b)*", some_pair[0].id, some_pair[1].id)
        assert session.stats()["points"].misses == before  # served from results

    def test_mutation_invalidates_point_answers(self):
        graph = generators.chain(2, labels=("a",))
        session = GraphSession(graph)
        assert {node.id for node in session.targets("a.a", "n0")} == {"n2"}
        graph.remove_edge("n1", "a", "n2")
        assert session.targets("a.a", "n0") == frozenset()

    def test_targets_rejects_non_binary_plans_and_unknown_sources(self):
        session = GraphSession(self.graph())
        with pytest.raises(EvaluationError):
            session.targets(Query.gxpath("<a>"), "n0")
        with pytest.raises(UnknownNodeError):
            session.targets("a", "no-such-node")

    def test_targets_for_data_queries_filter_the_relation(self):
        graph = self.graph()
        session = GraphSession(graph)
        plan = Query.parse("((a|b)+)=", "ree")
        relation = session.run(plan).pairs()
        for node in list(graph.node_ids)[:5]:
            expected = frozenset(v for u, v in relation if u.id == node)
            assert session.targets(plan, node) == expected

    def test_clear_cache_drops_point_answers(self):
        session = GraphSession(self.graph())
        session.targets("a", "n0")
        assert session.stats()["points"].size == 1
        session.clear_cache()
        assert session.stats()["points"].size == 0
