"""Executors: sequential/parallel agreement, policy validation, backends."""

from __future__ import annotations

import pytest

from repro.api import (
    ExecutionPolicy,
    GraphSession,
    ParallelExecutor,
    Query,
    SequentialExecutor,
)
from repro.datagraph import generators
from repro.exceptions import EvaluationError
from repro.experiments.e10_query_eval import batch_queries

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


@pytest.fixture(scope="module")
def graph():
    return generators.random_graph(40, 80, labels=("a", "b"), rng=11, domain_size=6)


@pytest.fixture(scope="module")
def sequential_answers(graph):
    session = GraphSession(graph, policy=ExecutionPolicy(cache_results=False))
    return [result.rows() for result in session.run_many(batch_queries())]


class TestPolicy:
    def test_build_executor(self):
        assert isinstance(ExecutionPolicy().build_executor(), SequentialExecutor)
        thread = ExecutionPolicy(executor="thread", max_workers=3).build_executor()
        assert isinstance(thread, ParallelExecutor) and thread.backend == "thread"
        process = ExecutionPolicy(executor="process").build_executor()
        assert process.backend == "process"

    def test_unknown_executor_rejected(self):
        with pytest.raises(EvaluationError):
            ExecutionPolicy(executor="quantum").build_executor()

    def test_bad_parallel_arguments_rejected(self):
        with pytest.raises(EvaluationError):
            ParallelExecutor(backend="gpu")
        with pytest.raises(EvaluationError):
            ParallelExecutor(max_workers=0)


class TestBackendAgreement:
    """Property (acceptance): run_many under any parallel executor equals
    sequential results query-for-query on the e10 workload batch."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_equals_sequential(self, graph, sequential_answers, backend):
        session = GraphSession(
            graph, policy=ExecutionPolicy(executor=backend, max_workers=4, cache_results=False)
        )
        results = session.run_many(batch_queries())
        assert [result.rows() for result in results] == sequential_answers

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_null_semantics_travels_to_workers(self, graph, backend):
        queries = [Query.parse("((a|b)+)=", "ree"), Query.parse("!x.((a|b)[x=])+", "rem")]
        plain = GraphSession(graph, policy=ExecutionPolicy(cache_results=False))
        parallel = GraphSession(
            graph, policy=ExecutionPolicy(executor=backend, cache_results=False)
        )
        expected = [r.rows() for r in plain.run_many(queries, null_semantics=True)]
        actual = [r.rows() for r in parallel.run_many(queries, null_semantics=True)]
        assert actual == expected

    def test_single_query_batches_skip_the_pool(self, graph):
        executor = ParallelExecutor(backend="process")
        session = GraphSession(graph, policy=ExecutionPolicy(cache_results=False))
        [only] = session.run_many([Query.rpq("a.b")], executor=executor)
        assert only.rows() == session.run(Query.rpq("a.b")).rows()


class TestSequentialExecutor:
    def test_order_is_preserved(self, graph, sequential_answers):
        # run the batch in reverse and check the answers line up reversed
        session = GraphSession(graph, policy=ExecutionPolicy(cache_results=False))
        reversed_answers = [
            result.rows() for result in session.run_many(list(reversed(batch_queries())))
        ]
        assert reversed_answers == list(reversed(sequential_answers))


class TestConcurrentBatches:
    def test_concurrent_process_batches_do_not_cross_wires(self, graph, sequential_answers):
        """Two threads fanning out process-backed batches concurrently must
        each get their own batch's answers (the fork state is serialised)."""
        import threading

        queries = batch_queries()
        outcomes = {}

        def run(tag, reverse):
            session = GraphSession(
                graph, policy=ExecutionPolicy(executor="process", max_workers=2,
                                              cache_results=False)
            )
            batch = list(reversed(queries)) if reverse else list(queries)
            outcomes[tag] = [result.rows() for result in session.run_many(batch)]

        threads = [
            threading.Thread(target=run, args=("forward", False)),
            threading.Thread(target=run, args=("backward", True)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes["forward"] == sequential_answers
        assert outcomes["backward"] == list(reversed(sequential_answers))
