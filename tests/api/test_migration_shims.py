"""The deprecated module-level evaluators: warn, then agree with the session.

This module deliberately calls the old API, so it does *not* inherit the
new-API ``error::DeprecationWarning`` regime; every call is asserted to
warn via ``pytest.warns`` instead.
"""

from __future__ import annotations

import pytest

from repro import (
    evaluate_crpq,
    evaluate_data_rpq,
    evaluate_gxpath_node,
    evaluate_gxpath_path,
    evaluate_rpq,
)
from repro.api import GraphSession, Query
from repro.datagraph import GraphBuilder
from repro.query import Atom, ConjunctiveRPQ, equality_rpq, memory_rpq, rpq
from repro.gxpath import parse_gxpath_node, parse_gxpath_path


@pytest.fixture()
def graph():
    return (
        GraphBuilder()
        .node("a", 1).node("b", 1).node("c", 2)
        .edge("a", "r", "b").edge("b", "r", "c").edge("c", "s", "a")
        .build()
    )


def test_evaluate_rpq_warns_and_matches_session(graph):
    with pytest.warns(DeprecationWarning, match="evaluate_rpq"):
        legacy = evaluate_rpq(graph, rpq("r.r"))
    assert legacy == GraphSession(graph).run(Query.rpq("r.r")).pairs()


def test_evaluate_data_rpq_warns_and_matches_session(graph):
    query = equality_rpq("(r)=")
    with pytest.warns(DeprecationWarning, match="evaluate_data_rpq"):
        legacy = evaluate_data_rpq(graph, query)
    assert legacy == GraphSession(graph).run(Query.data_rpq(query)).pairs()


def test_evaluate_data_rpq_engine_override_still_works(graph):
    query = equality_rpq("(r)=")
    with pytest.warns(DeprecationWarning):
        algebraic = evaluate_data_rpq(graph, query, engine="algebraic")
    with pytest.warns(DeprecationWarning):
        automaton = evaluate_data_rpq(graph, query, engine="automaton")
    assert algebraic == automaton


def test_evaluate_crpq_warns_and_matches_session(graph):
    query = ConjunctiveRPQ(("x", "z"), (Atom("x", rpq("r"), "y"), Atom("y", rpq("r"), "z")))
    with pytest.warns(DeprecationWarning, match="evaluate_crpq"):
        legacy = evaluate_crpq(graph, query)
    assert legacy == GraphSession(graph).run(Query.crpq(query)).rows()


def test_evaluate_gxpath_node_warns_and_matches_session(graph):
    expression = parse_gxpath_node("<r.[<s>]>")
    with pytest.warns(DeprecationWarning, match="evaluate_gxpath_node"):
        legacy = evaluate_gxpath_node(graph, expression)
    assert legacy == GraphSession(graph).run(Query.gxpath(expression)).nodes()


def test_evaluate_gxpath_path_warns_and_matches_session(graph):
    expression = parse_gxpath_path("r.(s)!=")
    with pytest.warns(DeprecationWarning, match="evaluate_gxpath_path"):
        legacy = evaluate_gxpath_path(graph, expression)
    assert legacy == GraphSession(graph).run(Query.gxpath(expression)).pairs()


def test_shims_share_the_default_session_cache(graph):
    session = GraphSession(graph)  # not the default session; warm nothing
    with pytest.warns(DeprecationWarning):
        evaluate_rpq(graph, "r.r")
    from repro.api import session_for

    default = session_for(graph)
    before = default.stats()["results"].hits
    with pytest.warns(DeprecationWarning):
        evaluate_rpq(graph, "r.r")
    assert default.stats()["results"].hits == before + 1
    assert session.run(Query.rpq("r.r")).pairs() == evaluate_rpq_quiet(graph)


def evaluate_rpq_quiet(graph):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return evaluate_rpq(graph, "r.r")


def test_memory_rpq_through_shim(graph):
    query = memory_rpq("!x.(r[x=])+")
    with pytest.warns(DeprecationWarning):
        legacy = evaluate_data_rpq(graph, query)
    assert legacy == GraphSession(graph).run(Query.data_rpq(query)).pairs()
