"""Tests for graph schema mappings, classification and solution checking."""

from __future__ import annotations

import pytest

from repro.core import (
    GraphSchemaMapping,
    MappingRule,
    copy_mapping,
    gav_mapping,
    is_solution,
    lav_mapping,
    mapping_domain,
    source_requirements,
    violations,
)
from repro.datagraph import GraphBuilder
from repro.exceptions import InvalidMappingError
from repro.query import atomic_rpq, reachability_rpq, word_rpq


@pytest.fixture
def people_source():
    """Source graph: person -friend-> person, person -employer-> company."""
    return (
        GraphBuilder(name="people")
        .node("ann", "Ann")
        .node("ben", "Ben")
        .node("cat", "Cat")
        .node("acme", "ACME")
        .edge("ann", "friend", "ben")
        .edge("ben", "friend", "cat")
        .edge("ann", "employer", "acme")
        .build()
    )


@pytest.fixture
def simple_mapping():
    """friend ⟶ knows;  employer ⟶ worksAt.department (a 2-step path)."""
    return GraphSchemaMapping(
        [
            ("friend", "knows"),
            ("employer", "worksAt.department"),
        ],
        name="people-to-org",
    )


class TestMappingConstruction:
    def test_rules_from_pairs_and_objects(self):
        mapping = GraphSchemaMapping(
            [MappingRule(atomic_rpq("a"), word_rpq(["b", "c"])), ("x", "y")]
        )
        assert len(mapping) == 2
        assert mapping.size() == 2
        assert {str(rule.source) for rule in mapping} == {"a", "x"}

    def test_alphabets_inferred(self, simple_mapping):
        assert simple_mapping.source_alphabet == frozenset({"friend", "employer"})
        assert simple_mapping.target_alphabet == frozenset({"knows", "worksAt", "department"})

    def test_explicit_alphabets_added(self):
        mapping = GraphSchemaMapping([("a", "b")], target_alphabet={"extra"})
        assert "extra" in mapping.target_alphabet

    def test_empty_mapping_rejected(self):
        with pytest.raises(InvalidMappingError):
            GraphSchemaMapping([])

    def test_bad_rule_rejected(self):
        with pytest.raises(InvalidMappingError):
            GraphSchemaMapping([42])

    def test_repr_and_pretty(self, simple_mapping):
        assert "2 rules" in repr(simple_mapping)
        assert "friend" in simple_mapping.pretty()


class TestClassification:
    def test_lav_gav(self, simple_mapping):
        assert simple_mapping.is_lav()
        assert not simple_mapping.is_gav()
        gav = GraphSchemaMapping([("a.b", "c")])
        assert gav.is_gav()
        assert not gav.is_lav()

    def test_relational(self, simple_mapping):
        assert simple_mapping.is_relational()
        assert simple_mapping.max_rule_word_length() == 2
        with_star = GraphSchemaMapping([("a", "b*")])
        assert not with_star.is_relational()
        assert with_star.max_rule_word_length() is None

    def test_finite_union_counts_as_relational(self):
        mapping = GraphSchemaMapping([("a", "b | c.d")])
        assert mapping.is_relational()
        assert mapping.max_rule_word_length() == 2

    def test_relational_reachability(self):
        mapping = GraphSchemaMapping(
            [("a", "b"), ("c", "(b|d)*")], target_alphabet={"b", "d"}
        )
        assert mapping.is_relational_reachability()
        assert not mapping.is_relational()
        assert mapping.is_lav_gav_relational_reachability()
        non_member = GraphSchemaMapping([("a", "b.d"), ("c", "(b|d)*")])
        assert non_member.is_relational_reachability()
        assert not non_member.is_lav_gav_relational_reachability()

    def test_restrict_to_relational(self):
        mapping = GraphSchemaMapping([("a", "b"), ("c", "(b|d)*")], target_alphabet={"b", "d"})
        restricted = mapping.restrict_to_relational()
        assert len(restricted) == 1
        only_reach = GraphSchemaMapping([("c", "(b|d)*")], target_alphabet={"b", "d"})
        with pytest.raises(InvalidMappingError):
            only_reach.restrict_to_relational()

    def test_constructors(self):
        lav = lav_mapping({"a": "x.y", "b": "z"})
        assert lav.is_lav()
        gav = gav_mapping([("a.b", "x")])
        assert gav.is_gav()
        copy = copy_mapping(["a", "b"])
        assert copy.is_lav() and copy.is_gav() and copy.is_relational()
        with pytest.raises(InvalidMappingError):
            copy_mapping([])

    def test_rule_helpers(self):
        rule = MappingRule(atomic_rpq("a"), reachability_rpq(["x", "y"]))
        assert rule.is_lav()
        assert not rule.is_gav()
        assert not rule.is_relational()
        assert rule.is_reachability_rule(["x", "y"])
        assert rule.max_target_word_length() is None
        assert "⟶" in str(rule)


class TestSolutionChecking:
    def test_source_requirements(self, simple_mapping, people_source):
        requirements = source_requirements(simple_mapping, people_source)
        friend_rule = next(rule for rule in simple_mapping if str(rule.source) == "friend")
        pairs = {(a.id, b.id) for a, b in requirements[friend_rule]}
        assert pairs == {("ann", "ben"), ("ben", "cat")}

    def test_identity_copy_is_solution_for_copy_mapping(self, people_source):
        mapping = copy_mapping(["friend", "employer"])
        assert is_solution(mapping, people_source, people_source.copy())

    def test_solution_requires_values_not_just_ids(self, simple_mapping, people_source):
        target = (
            GraphBuilder()
            .node("ann", "DIFFERENT")  # wrong data value
            .node("ben", "Ben")
            .node("cat", "Cat")
            .node("acme", "ACME")
            .node("dep", "R&D")
            .edge("ann", "knows", "ben")
            .edge("ben", "knows", "cat")
            .edge("ann", "worksAt", "acme")
            .edge("acme", "department", "dep")
            .build()
        )
        assert not is_solution(simple_mapping, people_source, target)

    def test_valid_solution(self, simple_mapping, people_source):
        target = (
            GraphBuilder()
            .node("ann", "Ann")
            .node("ben", "Ben")
            .node("cat", "Cat")
            .node("acme", "ACME")
            .node("mid", "whatever")
            .edge("ann", "knows", "ben")
            .edge("ben", "knows", "cat")
            .edge("ann", "worksAt", "mid")
            .edge("mid", "department", "acme")
            .build()
        )
        assert is_solution(simple_mapping, people_source, target)
        assert violations(simple_mapping, people_source, target) == []

    def test_violations_are_reported(self, simple_mapping, people_source):
        target = (
            GraphBuilder()
            .node("ann", "Ann")
            .node("ben", "Ben")
            .edge("ann", "knows", "ben")
            .build()
        )
        found = violations(simple_mapping, people_source, target)
        assert found
        assert any("employer" in str(v.rule) or "friend" in str(v.rule) for v in found)
        assert all("missing" in str(v) for v in found)

    def test_empty_source_everything_is_solution(self, simple_mapping):
        empty = GraphBuilder().build()
        assert is_solution(simple_mapping, empty, GraphBuilder().build())


class TestRuleSatisfactionHelpers:
    """The engine-routed satisfaction accessors on MappingRule / GSM."""

    def test_rule_source_and_target_answers(self, simple_mapping, people_source):
        friend_rule = next(rule for rule in simple_mapping if str(rule.source) == "friend")
        obligations = {(a.id, b.id) for a, b in friend_rule.source_answers(people_source)}
        assert obligations == {("ann", "ben"), ("ben", "cat")}
        target = (
            GraphBuilder()
            .node("ann", "Ann")
            .node("ben", "Ben")
            .edge("ann", "knows", "ben")
            .build()
        )
        provided = {(a.id, b.id) for a, b in friend_rule.target_answers(target)}
        assert provided == {("ann", "ben")}
        assert not friend_rule.satisfied_by(people_source, target)  # (ben, cat) missing

    def test_rule_satisfied_when_vacuous_or_covered(self, people_source):
        vacuous = MappingRule(atomic_rpq("unused-label"), atomic_rpq("anything"))
        assert vacuous.satisfied_by(people_source, GraphBuilder().build())
        copy_rule = MappingRule(atomic_rpq("friend"), atomic_rpq("friend"))
        assert copy_rule.satisfied_by(people_source, people_source.copy())

    def test_mapping_is_satisfied_by_matches_is_solution(self, simple_mapping, people_source):
        bad_target = GraphBuilder().build()
        assert simple_mapping.is_satisfied_by(people_source, bad_target) == is_solution(
            simple_mapping, people_source, bad_target
        )
        mapping = copy_mapping(["friend", "employer"])
        assert mapping.is_satisfied_by(people_source, people_source.copy())

    def test_mapping_domain(self, simple_mapping, people_source):
        domain = {node.id for node in mapping_domain(simple_mapping, people_source)}
        assert domain == {"ann", "ben", "cat", "acme"}

    def test_mapping_domain_excludes_unmatched(self, people_source):
        mapping = GraphSchemaMapping([("employer", "worksAt")])
        domain = {node.id for node in mapping_domain(mapping, people_source)}
        assert domain == {"ann", "acme"}
