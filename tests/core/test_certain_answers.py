"""Tests for the certain-answer algorithms (Sections 6–8, Propositions 4–5)."""

from __future__ import annotations

import pytest

from repro.core import (
    GraphSchemaMapping,
    certain_answers,
    certain_answers_data_path,
    certain_answers_equality_only,
    certain_answers_naive,
    certain_answers_with_nulls,
    is_certain_answer,
    simplify_mapping_for_data_path_query,
)
from repro.datagraph import GraphBuilder
from repro.exceptions import CertainAnswerError, UnsupportedQueryError
from repro.query import equality_rpq, memory_rpq, rpq


def _ids(pairs):
    return {(source.id, target.id) for source, target in pairs}


@pytest.fixture
def copy_like_source():
    """p1(v) -r-> p2(v) -r-> p3(w): two nodes share a data value."""
    return (
        GraphBuilder(name="src")
        .node("p1", "v")
        .node("p2", "v")
        .node("p3", "w")
        .edge("p1", "r", "p2")
        .edge("p2", "r", "p3")
        .build()
    )


@pytest.fixture
def copy_mapping_single():
    """r ⟶ t : a plain relabelling (relational, LAV and GAV)."""
    return GraphSchemaMapping([("r", "t")], name="relabel")


@pytest.fixture
def expanding_mapping():
    """r ⟶ t.t : every source edge becomes a 2-step path with an invented middle node."""
    return GraphSchemaMapping([("r", "t.t")], name="expand")


class TestNavigationalQueries:
    def test_copy_mapping_preserves_navigation(self, copy_like_source, copy_mapping_single):
        answers = certain_answers(copy_mapping_single, copy_like_source, rpq("t.t"))
        assert _ids(answers) == {("p1", "p3")}

    def test_expanding_mapping(self, copy_like_source, expanding_mapping):
        assert _ids(certain_answers(expanding_mapping, copy_like_source, rpq("t.t"))) == {
            ("p1", "p2"),
            ("p2", "p3"),
        }
        assert _ids(certain_answers(expanding_mapping, copy_like_source, rpq("t.t.t.t"))) == {
            ("p1", "p3")
        }
        assert _ids(certain_answers(expanding_mapping, copy_like_source, rpq("t*"))) >= {
            ("p1", "p3"),
            ("p1", "p1"),
        }

    def test_no_spurious_answers(self, copy_like_source, copy_mapping_single):
        # nothing forces a t-edge from p3 anywhere
        answers = certain_answers(copy_mapping_single, copy_like_source, rpq("t"))
        assert ("p3", "p1") not in _ids(answers)
        assert _ids(answers) == {("p1", "p2"), ("p2", "p3")}


class TestEqualityOnlyQueries:
    """Theorem 5: the least-informative algorithm is exact for REE= / REM=."""

    def test_equality_query_on_copy(self, copy_like_source, copy_mapping_single):
        query = equality_rpq("(t)=")
        exact = certain_answers_naive(copy_mapping_single, copy_like_source, query)
        fast = certain_answers_equality_only(copy_mapping_single, copy_like_source, query)
        assert _ids(exact) == _ids(fast) == {("p1", "p2")}

    def test_equality_query_through_invented_nodes(self, copy_like_source, expanding_mapping):
        # (t.t)= asks for 2-step paths with equal endpoint values; the invented
        # middle nodes have unknown values, endpoints keep source values.
        query = equality_rpq("(t.t)=")
        exact = certain_answers_naive(expanding_mapping, copy_like_source, query)
        fast = certain_answers_equality_only(expanding_mapping, copy_like_source, query)
        assert _ids(exact) == _ids(fast) == {("p1", "p2")}

    def test_repeated_value_query(self, copy_like_source, expanding_mapping):
        query = equality_rpq("t* . (t+)= . t*")
        exact = certain_answers_naive(expanding_mapping, copy_like_source, query)
        fast = certain_answers_equality_only(expanding_mapping, copy_like_source, query)
        assert _ids(exact) == _ids(fast)
        # p1 and p2 carry the same value and are joined by a path, so any pair
        # of source nodes on a path covering both is an answer:
        assert ("p1", "p2") in _ids(fast)
        assert ("p1", "p3") in _ids(fast)

    def test_memory_equality_query(self, copy_like_source, copy_mapping_single):
        query = memory_rpq("!x.(t+[x=])")
        fast = certain_answers_equality_only(copy_mapping_single, copy_like_source, query)
        exact = certain_answers_naive(copy_mapping_single, copy_like_source, query)
        assert _ids(fast) == _ids(exact) == {("p1", "p2")}

    def test_rejects_inequality_queries(self, copy_like_source, copy_mapping_single):
        with pytest.raises(UnsupportedQueryError):
            certain_answers_equality_only(
                copy_mapping_single, copy_like_source, equality_rpq("(t)!=")
            )


class TestInequalityQueriesAndNullApproximation:
    """Theorems 3–4 and Remark 1: 2ⁿ_M is a sound under-approximation of 2_M."""

    def test_inequality_on_source_values_is_certain(self, copy_like_source, copy_mapping_single):
        query = equality_rpq("(t.t)!=")
        exact = certain_answers_naive(copy_mapping_single, copy_like_source, query)
        approx = certain_answers_with_nulls(copy_mapping_single, copy_like_source, query)
        assert _ids(exact) == {("p1", "p3")}  # values v vs w are known to differ
        assert _ids(approx) == {("p1", "p3")}

    def test_inequality_through_invented_node_is_not_certain(self, copy_like_source, expanding_mapping):
        # (t)!= between a source node and an invented node is never certain:
        # the adversary can give the invented node the same value.
        query = equality_rpq("(t)!=")
        exact = certain_answers_naive(expanding_mapping, copy_like_source, query)
        approx = certain_answers_with_nulls(expanding_mapping, copy_like_source, query)
        assert _ids(exact) == set()
        assert _ids(approx) == set()

    def test_approximation_is_sound(self, copy_like_source, expanding_mapping):
        for text in ["(t.t)=", "(t.t)!=", "t* . (t+)= . t*", "(t.t.t.t)!="]:
            query = equality_rpq(text)
            exact = certain_answers_naive(expanding_mapping, copy_like_source, query)
            approx = certain_answers_with_nulls(expanding_mapping, copy_like_source, query)
            assert _ids(approx) <= _ids(exact), text

    def test_approximation_can_be_strict(self):
        """A case where 2ⁿ_M misses an answer that 2_M contains (Remark 1).

        Source: a(1) -r-> b(2).  Mapping: r ⟶ t.t, so every solution has a
        path a -t-> m -t-> b through some node m.  Query:
        ``((t)=.t) | ((t)!=.t)`` — "the first step endpoints are equal, or
        they are different".  In every solution over plain data values the
        value of m is either equal to a's value or not, so (a, b) is a
        genuine certain answer.  Over the universal solution m is the SQL
        null and neither comparison is true, so the null-based
        approximation misses the answer.
        """
        source = GraphBuilder().node("a", 1).node("b", 2).edge("a", "r", "b").build()
        mapping = GraphSchemaMapping([("r", "t.t")])
        query = equality_rpq("((t)=.t) | ((t)!=.t)")
        exact = certain_answers_naive(mapping, source, query)
        approx = certain_answers_with_nulls(mapping, source, query)
        # In every solution the invented value is either equal to a's or not,
        # so (a, b) is a certain answer...
        assert ("a", "b") in _ids(exact)
        # ...but under SQL-null evaluation neither comparison is true.
        assert ("a", "b") not in _ids(approx)
        assert _ids(approx) < _ids(exact)


class TestDataPathQueriesUnderArbitraryMappings:
    """Proposition 5: rules producing long words are useless and can be dropped."""

    def test_simplification_drops_reachability_rules(self):
        mapping = GraphSchemaMapping(
            [("r", "t"), ("s", "(t|u)*"), ("p", "t.t.t.t")], target_alphabet={"t", "u"}
        )
        simplified = simplify_mapping_for_data_path_query(mapping, query_length=2)
        assert simplified is not None
        assert len(simplified) == 1
        assert str(next(iter(simplified)).source) == "r"

    def test_simplification_can_remove_everything(self):
        mapping = GraphSchemaMapping([("r", "(t|u)*")], target_alphabet={"t", "u"})
        assert simplify_mapping_for_data_path_query(mapping, query_length=3) is None

    def test_certain_answers_with_reachability_rule(self, copy_like_source):
        mapping = GraphSchemaMapping(
            [("r", "t"), ("r", "(t|u)*")], target_alphabet={"t", "u"}
        )
        query = equality_rpq("(t)=")
        answers = certain_answers_data_path(mapping, copy_like_source, query)
        assert _ids(answers) == {("p1", "p2")}

    def test_reachability_only_mapping_gives_empty_answers(self, copy_like_source):
        mapping = GraphSchemaMapping([("r", "(t|u)*")], target_alphabet={"t", "u"})
        query = equality_rpq("(t)=")
        assert certain_answers_data_path(mapping, copy_like_source, query) == frozenset()

    def test_rejects_non_path_queries(self, copy_like_source):
        mapping = GraphSchemaMapping([("r", "(t|u)*")], target_alphabet={"t", "u"})
        with pytest.raises(UnsupportedQueryError):
            certain_answers_data_path(mapping, copy_like_source, equality_rpq("t|u"))


class TestDispatcherAndEdgeCases:
    def test_auto_dispatch(self, copy_like_source, copy_mapping_single):
        equality = equality_rpq("(t)=")
        assert certain_answers(copy_mapping_single, copy_like_source, equality, method="auto")
        inequality = equality_rpq("(t.t)!=")
        auto = certain_answers(copy_mapping_single, copy_like_source, inequality, method="auto")
        naive = certain_answers(copy_mapping_single, copy_like_source, inequality, method="naive")
        assert _ids(auto) == _ids(naive)

    def test_auto_dispatch_non_relational_data_path(self, copy_like_source):
        mapping = GraphSchemaMapping([("r", "t"), ("r", "(t|u)*")], target_alphabet={"t", "u"})
        answers = certain_answers(mapping, copy_like_source, equality_rpq("(t)="), method="auto")
        assert _ids(answers) == {("p1", "p2")}

    def test_auto_dispatch_rejects_undecidable_combination(self, copy_like_source):
        mapping = GraphSchemaMapping([("r", "(t|u)*")], target_alphabet={"t", "u"})
        with pytest.raises(UnsupportedQueryError):
            certain_answers(mapping, copy_like_source, equality_rpq("((t|u)+)="), method="auto")

    def test_unknown_method(self, copy_like_source, copy_mapping_single):
        with pytest.raises(CertainAnswerError):
            certain_answers(copy_mapping_single, copy_like_source, rpq("t"), method="bogus")
        with pytest.raises(UnsupportedQueryError):
            certain_answers(copy_mapping_single, copy_like_source, rpq("t"), method="data-path")

    def test_is_certain_answer(self, copy_like_source, copy_mapping_single):
        assert is_certain_answer(copy_mapping_single, copy_like_source, rpq("t"), ("p1", "p2"))
        assert not is_certain_answer(copy_mapping_single, copy_like_source, rpq("t"), ("p1", "p3"))

    def test_budget_guard(self, copy_like_source):
        # many invented nodes -> enumeration rejected under a tiny budget
        mapping = GraphSchemaMapping([("r", "t.t.t.t.t")])
        with pytest.raises(CertainAnswerError):
            certain_answers_naive(mapping, copy_like_source, equality_rpq("(t)!="), budget=10)

    def test_unsolvable_mapping_makes_everything_certain(self):
        source = GraphBuilder().node("x", 1).node("y", 2).edge("x", "r", "y").build()
        mapping = GraphSchemaMapping([("r", "eps")], target_alphabet={"t"})
        answers = certain_answers_naive(mapping, source, rpq("t"))
        assert ("x", "y") in _ids(answers)
        approx = certain_answers_with_nulls(mapping, source, rpq("t"))
        assert ("x", "y") in _ids(approx)
        fast = certain_answers_equality_only(mapping, source, rpq("t"))
        assert ("x", "y") in _ids(fast)

    def test_unsupported_query_object(self, copy_like_source, copy_mapping_single):
        with pytest.raises(UnsupportedQueryError):
            certain_answers_naive(copy_mapping_single, copy_like_source, "not a query")
