"""Tests for the Proposition 1 relational encoding of relational GSMs."""

from __future__ import annotations

import pytest

from repro.core import GraphSchemaMapping, universal_solution
from repro.core.relational_encoding import (
    SOURCE_PREFIX,
    TARGET_PREFIX,
    chase_universal_instance,
    chased_instance_to_graph,
    encode_source_graph,
    node_transfer_tgds,
    relational_mapping_schema,
    target_constraints,
    word_rule_tgds,
)
from repro.datagraph import GraphBuilder, find_isomorphism
from repro.datagraph.relational_view import edge_relation_name
from repro.exceptions import UnsupportedQueryError
from repro.relational import chase, solution_satisfies


@pytest.fixture
def source():
    return (
        GraphBuilder(name="src")
        .node("a", 1)
        .node("b", 2)
        .node("c", 3)
        .edge("a", "r", "b")
        .edge("b", "r", "c")
        .edge("a", "s", "c")
        .build()
    )


@pytest.fixture
def mapping():
    return GraphSchemaMapping([("r", "t.t"), ("s", "u")], name="expand")


class TestSchemaAndEncoding:
    def test_schema_contains_both_sides(self, mapping):
        schema = relational_mapping_schema(mapping)
        assert schema.has_relation("Ns")
        assert schema.has_relation("Nt")
        assert schema.has_relation(edge_relation_name("r", SOURCE_PREFIX))
        assert schema.has_relation(edge_relation_name("t", TARGET_PREFIX))

    def test_encode_source_graph(self, mapping, source):
        instance = encode_source_graph(mapping, source)
        assert instance.has_fact("Ns", ("a", 1))
        assert instance.has_fact(edge_relation_name("r", SOURCE_PREFIX), ("a", "b"))
        assert not instance.facts("Nt")


class TestDependencies:
    def test_word_rule_tgds_shape(self, mapping):
        tgds = word_rule_tgds(mapping)
        assert len(tgds) == 2
        expand = next(tgd for tgd in tgds if tgd.name == "rule0")
        target_atoms = [atom for atom in expand.head if atom.relation.startswith(f"{TARGET_PREFIX}_")]
        assert len(target_atoms) == 2  # the word t.t is a two-atom path
        assert expand.existential_variables()  # the middle node is existential

    def test_word_rule_tgds_reject_non_word_targets(self):
        mapping = GraphSchemaMapping([("r", "t|u.u")])
        with pytest.raises(UnsupportedQueryError):
            word_rule_tgds(mapping)

    def test_node_transfer_and_target_constraints(self, mapping):
        transfer = node_transfer_tgds(mapping)
        assert len(transfer) == 4  # two per rule
        coverage, keys = target_constraints(mapping)
        assert len(coverage) == len(mapping.target_alphabet)
        assert len(keys) == 1

    def test_full_st_tgd_chase_agrees_with_direct_construction(self, mapping, source):
        """Chasing D_Gs with the Proposition 1 dependencies reproduces the universal solution."""
        instance = encode_source_graph(mapping, source)
        tgds = word_rule_tgds(mapping) + node_transfer_tgds(mapping)
        coverage, keys = target_constraints(mapping)
        chased = chase(instance, tgds=tgds + coverage, egds=keys)
        graph = chased_instance_to_graph(chased)
        direct = universal_solution(mapping, source)
        assert find_isomorphism(graph, direct) is not None


class TestChaseUniversalInstance:
    def test_chased_instance_is_a_relational_solution(self, mapping, source):
        chased = chase_universal_instance(mapping, source)
        # it satisfies the target constraints of M_rel
        coverage, keys = target_constraints(mapping)
        assert solution_satisfies(chased, chased, coverage, keys)
        # and contains target node facts for all domain nodes
        assert chased.has_fact("Nt", ("a", 1))
        assert chased.has_fact("Nt", ("c", 3))

    def test_decoded_graph_matches_universal_solution(self, mapping, source):
        """Proposition 1: solutions of M_rel correspond to solutions of M."""
        chased = chase_universal_instance(mapping, source)
        decoded = chased_instance_to_graph(chased)
        direct = universal_solution(mapping, source)
        assert find_isomorphism(decoded, direct) is not None

    def test_non_relational_mapping_rejected(self, source):
        mapping = GraphSchemaMapping([("r", "t*")])
        with pytest.raises(UnsupportedQueryError):
            chase_universal_instance(mapping, source)

    def test_non_word_source_queries_supported(self, source):
        """Source queries may be arbitrary RPQs (they are evaluated on G_s)."""
        mapping = GraphSchemaMapping([("r+", "t")])
        chased = chase_universal_instance(mapping, source)
        decoded = chased_instance_to_graph(chased)
        assert decoded.has_edge("a", "t", "c")  # from the r.r path a->b->c
        direct = universal_solution(mapping, source)
        assert find_isomorphism(decoded, direct) is not None
