"""Tests for universal and least informative solutions (Sections 7–8)."""

from __future__ import annotations

import pytest

from repro.core import (
    GraphSchemaMapping,
    build_skeleton,
    homomorphism_to_solution,
    is_solution,
    least_informative_solution,
    mapping_domain,
    universal_solution,
)
from repro.datagraph import GraphBuilder, find_isomorphism, is_null_homomorphism
from repro.exceptions import SolutionError, UnsupportedQueryError


@pytest.fixture
def source():
    return (
        GraphBuilder(name="src")
        .node("a", 1)
        .node("b", 2)
        .node("c", 1)
        .edge("a", "r", "b")
        .edge("b", "r", "c")
        .edge("a", "s", "c")
        .build()
    )


@pytest.fixture
def mapping():
    """r ⟶ t.t (two steps);  s ⟶ u (one step)."""
    return GraphSchemaMapping([("r", "t.t"), ("s", "u")], name="expand")


class TestSkeleton:
    def test_requirements(self, mapping, source):
        skeleton = build_skeleton(mapping, source)
        assert len(skeleton.requirements) == 3  # two r-pairs + one s-pair
        assert skeleton.invented_node_count() == 2  # one intermediate per r-pair
        assert {node.id for node in skeleton.domain} == {"a", "b", "c"}

    def test_non_relational_rejected(self, source):
        mapping = GraphSchemaMapping([("r", "t*")])
        with pytest.raises(UnsupportedQueryError):
            build_skeleton(mapping, source)

    def test_epsilon_rule_between_distinct_nodes_has_no_solution(self, source):
        mapping = GraphSchemaMapping([("r", "eps")], target_alphabet={"t"})
        with pytest.raises(SolutionError):
            build_skeleton(mapping, source)

    def test_epsilon_rule_on_loops_is_fine(self):
        graph = GraphBuilder().node("x", 7).edge("x", "r", "x").build()
        mapping = GraphSchemaMapping([("r", "eps")], target_alphabet={"t"})
        skeleton = build_skeleton(mapping, graph)
        assert skeleton.invented_node_count() == 0


class TestUniversalSolution:
    def test_structure(self, mapping, source):
        target = universal_solution(mapping, source)
        # domain nodes keep their values
        assert target.value_of("a") == 1
        assert target.value_of("b") == 2
        # invented nodes are null nodes
        assert len(target.null_nodes()) == 2
        # each r-pair became a 2-step t-path, the s-pair a single u-edge
        assert target.num_edges == 2 * 2 + 1
        assert ("a", "u", "c") in target.edge_set()

    def test_is_a_solution(self, mapping, source):
        target = universal_solution(mapping, source)
        assert is_solution(mapping, source, target)

    def test_unique_up_to_renaming(self, mapping, source):
        first = universal_solution(mapping, source)
        second = universal_solution(mapping, source)
        assert find_isomorphism(first, second) is not None

    def test_lemma_1_homomorphism_into_arbitrary_solution(self, mapping, source):
        universal = universal_solution(mapping, source)
        # An arbitrary, richer solution: paths go through a shared hub with a concrete value.
        other = (
            GraphBuilder()
            .node("a", 1)
            .node("b", 2)
            .node("c", 1)
            .node("hub", 99)
            .edge("a", "t", "hub")
            .edge("hub", "t", "b")
            .edge("b", "t", "hub")
            .edge("hub", "t", "c")
            .edge("a", "u", "c")
            .edge("a", "extra", "b")
            .build()
        )
        assert is_solution(mapping, source, other)
        h = homomorphism_to_solution(universal, other)
        assert h is not None
        assert is_null_homomorphism(h, universal, other)
        for node in mapping_domain(mapping, source):
            assert h[node.id] == node.id

    def test_no_invented_nodes_for_single_letter_rules(self, source):
        mapping = GraphSchemaMapping([("r", "t"), ("s", "u")])
        target = universal_solution(mapping, source)
        assert not target.null_nodes()
        assert target.num_edges == 3

    def test_unused_rules_leave_target_empty(self):
        graph = GraphBuilder().node("x", 1).build()  # no edges at all
        mapping = GraphSchemaMapping([("r", "t")])
        target = universal_solution(mapping, graph)
        assert target.num_nodes == 0
        assert target.num_edges == 0


class TestLeastInformativeSolution:
    def test_fresh_distinct_values(self, mapping, source):
        target = least_informative_solution(mapping, source)
        assert not target.null_nodes()
        invented_values = [
            node.value for node in target.nodes if node.id not in {"a", "b", "c"}
        ]
        assert len(invented_values) == 2
        assert len(set(invented_values)) == 2
        # fresh values do not collide with source values
        assert not (set(invented_values) & {1, 2})

    def test_is_a_solution(self, mapping, source):
        assert is_solution(mapping, source, least_informative_solution(mapping, source))

    def test_same_shape_as_universal(self, mapping, source):
        universal = universal_solution(mapping, source)
        least = least_informative_solution(mapping, source)
        assert universal.num_nodes == least.num_nodes
        assert universal.num_edges == least.num_edges
        assert {edge[1] for edge in universal.edge_set()} == {edge[1] for edge in least.edge_set()}

    def test_finite_union_rule_uses_shortest_word(self, source):
        mapping = GraphSchemaMapping([("s", "long.path.here | short")])
        target = least_informative_solution(mapping, source)
        assert ("a", "short", "c") in target.edge_set()
        assert target.num_edges == 1
