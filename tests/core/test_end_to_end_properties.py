"""End-to-end property-based tests of the paper's central invariants.

Hypothesis generates small random sources and relational LAV mappings and
checks, across the whole pipeline, the invariants the paper's theorems
assert:

* canonical solutions really are solutions (Sections 7–8);
* the universal solution maps homomorphically into other solutions,
  fixing the domain (Lemma 1);
* data RPQs are preserved along that homomorphism (Proposition 6);
* the SQL-null answers are always contained in the exact ones
  (Theorem 3), and coincide with them for equality-only queries computed
  via least informative solutions (Theorem 5).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GraphSchemaMapping,
    certain_answers_equality_only,
    certain_answers_naive,
    certain_answers_with_nulls,
    homomorphism_to_solution,
    is_solution,
    least_informative_solution,
    mapping_domain,
    universal_solution,
)
from repro.datagraph import DataGraph, is_null_homomorphism
from repro.query import equality_rpq, evaluate_data_rpq


@st.composite
def small_source(draw) -> DataGraph:
    """A random source graph with ≤ 4 nodes, ≤ 5 edges and a small value domain."""
    num_nodes = draw(st.integers(min_value=1, max_value=4))
    graph = DataGraph(alphabet={"r", "s"}, name="prop-source")
    for index in range(num_nodes):
        graph.add_node(f"n{index}", draw(st.integers(min_value=0, max_value=2)))
    num_edges = draw(st.integers(min_value=1, max_value=5))
    for _ in range(num_edges):
        source = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        target = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        label = draw(st.sampled_from(["r", "s"]))
        graph.add_edge(f"n{source}", label, f"n{target}")
    return graph


@st.composite
def small_relational_mapping(draw) -> GraphSchemaMapping:
    """A random LAV relational mapping with word targets of length ≤ 2."""
    target_labels = ["t", "u"]
    rules = []
    for label in ("r", "s"):
        length = draw(st.integers(min_value=1, max_value=2))
        word = ".".join(draw(st.sampled_from(target_labels)) for _ in range(length))
        rules.append((label, word))
    return GraphSchemaMapping(rules, target_alphabet=target_labels)


EQUALITY_QUERIES = ["(t)=", "(t.t)=", "(t|u)* . ((t|u)+)= . (t|u)*"]
INEQUALITY_QUERIES = ["(t)!=", "(t.t)!=", "(t.u)!="]


class TestCanonicalSolutionInvariants:
    @given(small_source(), small_relational_mapping())
    @settings(max_examples=60, deadline=None)
    def test_canonical_targets_are_solutions(self, source, mapping):
        universal = universal_solution(mapping, source)
        least = least_informative_solution(mapping, source)
        assert is_solution(mapping, source, universal)
        assert is_solution(mapping, source, least)
        # both contain the mapping domain (the nodes every solution must have)
        domain_ids = {node.id for node in mapping_domain(mapping, source)}
        assert domain_ids <= {node.id for node in universal.nodes}
        assert domain_ids <= {node.id for node in least.nodes}

    @given(small_source(), small_relational_mapping())
    @settings(max_examples=60, deadline=None)
    def test_lemma_1_homomorphism_into_other_solutions(self, source, mapping):
        universal = universal_solution(mapping, source)
        least = least_informative_solution(mapping, source)
        for other in (least, universal.copy()):
            mapping_h = homomorphism_to_solution(universal, other)
            assert mapping_h is not None
            assert is_null_homomorphism(mapping_h, universal, other)
            for node in mapping_domain(mapping, source):
                assert mapping_h[node.id] == node.id

    @given(small_source(), small_relational_mapping(), st.sampled_from(EQUALITY_QUERIES))
    @settings(max_examples=40, deadline=None)
    def test_proposition_6_preservation_along_lemma_1(self, source, mapping, query_text):
        """Answers over the universal solution survive into the least informative one."""
        universal = universal_solution(mapping, source)
        least = least_informative_solution(mapping, source)
        hom = homomorphism_to_solution(universal, least)
        assert hom is not None
        query = equality_rpq(query_text)
        universal_answers = evaluate_data_rpq(universal, query, null_semantics=True)
        least_answers = evaluate_data_rpq(least, query)
        for left, right in universal_answers:
            if left.is_null or right.is_null:
                continue
            image = (least.node(hom[left.id]), least.node(hom[right.id]))
            assert image in least_answers


class TestCertainAnswerInvariants:
    @given(small_source(), small_relational_mapping(), st.sampled_from(EQUALITY_QUERIES))
    @settings(max_examples=30, deadline=None)
    def test_theorem_5_exactness_on_equality_queries(self, source, mapping, query_text):
        query = equality_rpq(query_text)
        exact = certain_answers_naive(mapping, source, query, budget=100_000)
        fast = certain_answers_equality_only(mapping, source, query)
        assert exact == fast

    @given(small_source(), small_relational_mapping(), st.sampled_from(INEQUALITY_QUERIES))
    @settings(max_examples=30, deadline=None)
    def test_theorem_3_soundness_on_inequality_queries(self, source, mapping, query_text):
        query = equality_rpq(query_text)
        exact = certain_answers_naive(mapping, source, query, budget=100_000)
        approx = certain_answers_with_nulls(mapping, source, query)
        assert approx <= exact

    @given(small_source(), small_relational_mapping(), st.sampled_from(EQUALITY_QUERIES))
    @settings(max_examples=30, deadline=None)
    def test_nulls_never_exceed_equality_only(self, source, mapping, query_text):
        query = equality_rpq(query_text)
        approx = certain_answers_with_nulls(mapping, source, query)
        fast = certain_answers_equality_only(mapping, source, query)
        assert approx <= fast
