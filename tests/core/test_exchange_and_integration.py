"""Tests for the data exchange and virtual integration façades."""

from __future__ import annotations

import pytest

from repro.core import DataExchangeEngine, GraphSchemaMapping, VirtualIntegrationSystem
from repro.datagraph import GraphBuilder
from repro.exceptions import InvalidMappingError, UnsupportedQueryError
from repro.query import equality_rpq, rpq


def _ids(pairs):
    return {(source.id, target.id) for source, target in pairs}


@pytest.fixture
def source():
    return (
        GraphBuilder(name="hr")
        .node("ann", "Ann")
        .node("ben", "Ben")
        .node("acme", "ACME")
        .edge("ann", "colleague", "ben")
        .edge("ann", "employer", "acme")
        .edge("ben", "employer", "acme")
        .build()
    )


@pytest.fixture
def engine():
    mapping = GraphSchemaMapping(
        [("colleague", "knows"), ("employer", "affiliated.with")], name="hr-to-social"
    )
    return DataExchangeEngine(mapping)


class TestDataExchangeEngine:
    def test_materialise_nulls(self, engine, source):
        result = engine.materialise(source, policy="nulls")
        assert result.policy == "nulls"
        assert result.null_node_count == 2  # one per employer edge
        assert engine.check_solution(source, result.target)

    def test_materialise_fresh(self, engine, source):
        result = engine.materialise(source, policy="fresh")
        assert result.null_node_count == 0
        assert engine.check_solution(source, result.target)

    def test_materialize_alias(self, engine, source):
        assert engine.materialize(source).target == engine.materialise(source).target

    def test_unknown_policy(self, engine, source):
        with pytest.raises(UnsupportedQueryError):
            engine.materialise(source, policy="bogus")

    def test_explain_violations(self, engine, source):
        empty_target = GraphBuilder().build()
        assert engine.explain_violations(source, empty_target)
        good = engine.materialise(source).target
        assert engine.explain_violations(source, good) == []

    def test_certain_answers_navigational(self, engine, source):
        answers = engine.certain_answers(source, rpq("knows"))
        assert _ids(answers) == {("ann", "ben")}

    def test_certain_answers_with_data(self, engine, source):
        # both ann and ben are affiliated with the same (invented) department node;
        # (affiliated.with)= would need the invented value, never certain;
        # the 4-step query through acme is certain because acme is a shared constant.
        query = equality_rpq("(affiliated.with)=")
        assert engine.certain_answers(source, query, method="naive") == frozenset()
        round_trip = equality_rpq("(affiliated . with . (with)- . (affiliated)-)=")
        # labels with '-' are just distinct labels here, so skip: use exact query on shared node
        shared = equality_rpq("(affiliated.with)= | (affiliated.with)!=")
        exact = engine.certain_answers_exact(source, shared)
        approx = engine.certain_answers_approximate(source, shared)
        assert _ids(approx) <= _ids(exact)

    def test_exact_and_fast_agree_on_equality_queries(self, engine, source):
        query = equality_rpq("(knows)=")
        assert _ids(engine.certain_answers(source, query)) == _ids(
            engine.certain_answers_exact(source, query)
        )


class TestVirtualIntegrationSystem:
    def _build_system(self):
        system = VirtualIntegrationSystem(["knows", "worksAt"], name="demo")
        friends = system.add_source("friends", "knows")
        coworkers = system.add_source("coworkers", "worksAt . (worksAt)-" if False else "knows.knows")
        friends.extend(
            [
                ((1, "Ann"), (2, "Ben")),
                ((2, "Ben"), (3, "Cat")),
            ]
        )
        coworkers.add((1, "Ann"), (3, "Cat"))
        return system

    def test_validation(self):
        with pytest.raises(InvalidMappingError):
            VirtualIntegrationSystem([])
        system = VirtualIntegrationSystem(["knows"])
        system.add_source("s1", "knows")
        with pytest.raises(InvalidMappingError):
            system.add_source("s1", "knows")
        with pytest.raises(InvalidMappingError):
            system.add_source("s2", "unknownLabel")
        with pytest.raises(InvalidMappingError):
            system.source("missing")
        with pytest.raises(InvalidMappingError):
            VirtualIntegrationSystem(["knows"]).as_mapping()

    def test_source_graph_and_mapping(self):
        system = self._build_system()
        graph = system.as_source_graph()
        assert graph.num_nodes == 3
        assert graph.has_edge(1, "src:friends", 2)
        mapping = system.as_mapping()
        assert mapping.is_lav()
        assert len(mapping) == 2
        assert len(system.sources) == 2
        assert len(system.source("friends")) == 2

    def test_certain_answers_navigational(self):
        system = self._build_system()
        # friends tuples force knows-edges; the coworkers source only forces
        # a knows.knows path which already exists virtually, adding nothing new.
        answers = system.certain_answers(rpq("knows"))
        assert _ids(answers) == {(1, 2), (2, 3)}
        two_step = system.certain_answers(rpq("knows.knows"))
        assert (1, 3) in _ids(two_step)

    def test_certain_answers_with_data(self):
        system = VirtualIntegrationSystem(["cites"], name="scholar")
        src = system.add_source("citations", "cites")
        src.extend(
            [
                ((10, "paperA"), (11, "paperB")),
                ((11, "paperB"), (12, "paperA")),
            ]
        )
        # same-title nodes two hops apart (ids differ, data value repeats)
        query = equality_rpq("(cites.cites)=")
        answers = system.certain_answers(query)
        assert _ids(answers) == {(10, 12)}

    def test_canonical_global_graph(self):
        system = self._build_system()
        graph = system.canonical_global_graph()
        assert graph.has_edge(1, "knows", 2)
        # the coworkers view knows.knows invents one intermediate null node
        assert len(graph.null_nodes()) == 1
