"""Certain answers of conjunctive (data) RPQs under relational mappings.

Section 5 of the paper notes that the navigational results extend to
conjunctive RPQs; since C(D)RPQs are closed under homomorphisms, the
universal-solution and least-informative-solution algorithms apply to
them verbatim.  These tests exercise that extension of the library.
"""

from __future__ import annotations

import pytest

from repro.core import (
    GraphSchemaMapping,
    certain_answers,
    certain_answers_equality_only,
    certain_answers_naive,
    certain_answers_with_nulls,
)
from repro.datagraph import GraphBuilder
from repro.exceptions import UnsupportedQueryError
from repro.query import Atom, ConjunctiveRPQ, equality_rpq, rpq


def _ids(tuples):
    return {tuple(node.id for node in answer) for answer in tuples}


@pytest.fixture
def source():
    """t1(v) -r-> t2(v) -r-> t3(w); t1 -s-> hub(h); t3 -s-> hub."""
    return (
        GraphBuilder(name="crpq-src")
        .node("t1", "v")
        .node("t2", "v")
        .node("t3", "w")
        .node("hub", "h")
        .edge("t1", "r", "t2")
        .edge("t2", "r", "t3")
        .edge("t1", "s", "hub")
        .edge("t3", "s", "hub")
        .build()
    )


@pytest.fixture
def mapping():
    return GraphSchemaMapping([("r", "knows"), ("s", "memberOf.group")], name="crpq-mapping")


class TestNavigationalCRPQs:
    def test_join_through_shared_variable(self, source, mapping):
        # Q(x, z): x knows y, y knows z
        query = ConjunctiveRPQ(
            head=("x", "z"),
            atoms=(Atom("x", rpq("knows"), "y"), Atom("y", rpq("knows"), "z")),
        )
        answers = certain_answers(mapping, source, query)
        assert _ids(answers) == {("t1", "t3")}

    def test_ternary_head(self, source, mapping):
        query = ConjunctiveRPQ(
            head=("x", "y", "z"),
            atoms=(Atom("x", rpq("knows"), "y"), Atom("y", rpq("knows"), "z")),
        )
        answers = certain_answers_with_nulls(mapping, source, query)
        assert _ids(answers) == {("t1", "t2", "t3")}

    def test_common_group_membership(self, source, mapping):
        # Q(x, y): x and y are members of a common group (2-step paths meet).
        query = ConjunctiveRPQ(
            head=("x", "y"),
            atoms=(
                Atom("x", rpq("memberOf.group"), "g"),
                Atom("y", rpq("memberOf.group"), "g"),
            ),
        )
        answers = certain_answers(mapping, source, query)
        pairs = _ids(answers)
        # hub is the shared group target for both t1 and t3
        assert ("t1", "t3") in pairs and ("t3", "t1") in pairs and ("t1", "t1") in pairs

    def test_no_spurious_joins(self, source, mapping):
        query = ConjunctiveRPQ(
            head=("x",),
            atoms=(Atom("x", rpq("knows"), "y"), Atom("x", rpq("memberOf.group"), "z")),
        )
        answers = certain_answers(mapping, source, query)
        assert _ids(answers) == {("t1",)}

    def test_boolean_crpq(self, source, mapping):
        satisfied = ConjunctiveRPQ(head=(), atoms=(Atom("x", rpq("knows.knows"), "y"),))
        assert certain_answers(mapping, source, satisfied) == frozenset({()})
        unsatisfied = ConjunctiveRPQ(head=(), atoms=(Atom("x", rpq("knows.knows.knows"), "y"),))
        assert certain_answers(mapping, source, unsatisfied) == frozenset()


class TestDataCRPQs:
    def test_equality_atom_agreement(self, source, mapping):
        # Q(x, y): x knows y and they carry the same data value; join with a
        # second navigational atom to make it a genuine conjunction.
        query = ConjunctiveRPQ(
            head=("x", "y"),
            atoms=(
                Atom("x", equality_rpq("(knows)="), "y"),
                Atom("y", rpq("knows"), "z"),
            ),
        )
        exact = certain_answers_naive(mapping, source, query)
        fast = certain_answers_equality_only(mapping, source, query)
        approx = certain_answers_with_nulls(mapping, source, query)
        assert _ids(exact) == _ids(fast) == {("t1", "t2")}
        assert approx <= exact

    def test_inequality_atom_soundness(self, source, mapping):
        query = ConjunctiveRPQ(
            head=("x", "z"),
            atoms=(
                Atom("x", equality_rpq("(knows.knows)!="), "z"),
                Atom("x", rpq("memberOf.group"), "g"),
            ),
        )
        exact = certain_answers_naive(mapping, source, query)
        approx = certain_answers_with_nulls(mapping, source, query)
        assert _ids(exact) == {("t1", "t3")}
        assert approx <= exact

    def test_equality_only_rejects_inequality_atoms(self, source, mapping):
        query = ConjunctiveRPQ(
            head=("x", "y"), atoms=(Atom("x", equality_rpq("(knows)!="), "y"),)
        )
        with pytest.raises(UnsupportedQueryError):
            certain_answers_equality_only(mapping, source, query)

    def test_auto_dispatch_on_crpqs(self, source, mapping):
        equality_query = ConjunctiveRPQ(
            head=("x", "y"), atoms=(Atom("x", equality_rpq("(knows)="), "y"),)
        )
        inequality_query = ConjunctiveRPQ(
            head=("x", "y"), atoms=(Atom("x", equality_rpq("(knows.knows)!="), "y"),)
        )
        assert _ids(certain_answers(mapping, source, equality_query)) == {("t1", "t2")}
        auto = certain_answers(mapping, source, inequality_query)
        naive = certain_answers(mapping, source, inequality_query, method="naive")
        assert auto == naive


class TestUnsolvableMappingsWithCRPQs:
    def test_vacuous_certainty_has_right_arity(self):
        source = GraphBuilder().node("a", 1).node("b", 2).edge("a", "r", "b").build()
        mapping = GraphSchemaMapping([("r", "eps")], target_alphabet={"t"})
        query = ConjunctiveRPQ(
            head=("x", "y", "z"),
            atoms=(Atom("x", rpq("t"), "y"), Atom("y", rpq("t"), "z")),
        )
        answers = certain_answers_with_nulls(mapping, source, query)
        assert answers  # vacuously certain
        assert all(len(answer) == 3 for answer in answers)
