"""Tests for regular expressions with equality (REE) and paths with tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import NULL, DataPath
from repro.datapaths import (
    count_inequality_tests,
    equality_subexpressions,
    inequality_subexpressions,
    is_path_with_tests,
    parse_ree,
    path_length,
    ree_any_of,
    ree_concat,
    ree_epsilon,
    ree_equal,
    ree_labels,
    ree_letter,
    ree_matches,
    ree_not_equal,
    ree_plus,
    ree_star,
    ree_union,
    ree_universal,
    ree_uses_inequality,
    ree_word,
)
from repro.exceptions import ParseError


def dp(*items):
    return DataPath.from_sequence(list(items))


class TestReeConstructors:
    def test_letter_validation(self):
        with pytest.raises(ValueError):
            ree_letter("")

    def test_union_needs_parts(self):
        with pytest.raises(ValueError):
            ree_union()
        with pytest.raises(ValueError):
            ree_any_of([])

    def test_word_and_concat(self):
        expr = ree_word(["a", "b"])
        assert ree_matches(expr, dp(1, "a", 2, "b", 3))
        assert ree_concat() == ree_epsilon()

    def test_labels(self):
        expr = ree_equal(ree_concat(ree_letter("a"), ree_letter("b")))
        assert ree_labels(expr) == frozenset({"a", "b"})

    def test_inequality_flags(self):
        eq = ree_equal(ree_word(["a", "b"]))
        neq = ree_not_equal(ree_word(["a"]))
        assert not ree_uses_inequality(eq)
        assert ree_uses_inequality(neq)
        assert count_inequality_tests(ree_concat(neq, neq)) == 2
        assert count_inequality_tests(eq) == 0

    def test_operators(self):
        expr = ree_letter("a") + ree_letter("b")
        assert ree_matches(expr, dp(1, "b", 2))
        expr2 = ree_letter("a") * ree_letter("b")
        assert ree_matches(expr2, dp(1, "a", 2, "b", 3))

    def test_str_forms(self):
        assert "=" in str(ree_equal(ree_letter("a")))
        assert "≠" in str(ree_not_equal(ree_letter("a")))
        assert "ε" in str(ree_epsilon())


class TestReeSemantics:
    """The language definition of Section 3."""

    def test_epsilon(self):
        assert ree_matches(ree_epsilon(), dp(5))
        assert not ree_matches(ree_epsilon(), dp(5, "a", 6))

    def test_letter(self):
        assert ree_matches(ree_letter("a"), dp(1, "a", 2))
        assert not ree_matches(ree_letter("a"), dp(1, "b", 2))

    def test_concat_union_plus(self):
        expr = ree_concat(ree_letter("a"), ree_union(ree_letter("b"), ree_letter("c")))
        assert ree_matches(expr, dp(1, "a", 2, "c", 3))
        plus = ree_plus(ree_letter("a"))
        assert ree_matches(plus, dp(1, "a", 2, "a", 3))
        assert not ree_matches(plus, dp(1))

    def test_star(self):
        expr = ree_star(ree_letter("a"))
        assert ree_matches(expr, dp(1))
        assert ree_matches(expr, dp(1, "a", 2))

    def test_equal_subscript(self):
        expr = ree_equal(ree_word(["a", "b"]))
        assert ree_matches(expr, dp(1, "a", 2, "b", 1))
        assert not ree_matches(expr, dp(1, "a", 2, "b", 3))

    def test_not_equal_subscript(self):
        expr = ree_not_equal(ree_word(["a", "b"]))
        assert ree_matches(expr, dp(1, "a", 2, "b", 3))
        assert not ree_matches(expr, dp(1, "a", 2, "b", 1))

    def test_epsilon_equal_always_holds(self):
        # (ε)= has first = last trivially.
        assert ree_matches(ree_equal(ree_epsilon()), dp(4))
        assert not ree_matches(ree_not_equal(ree_epsilon()), dp(4))

    def test_paper_example_value_occurs_twice(self):
        """Σ* · (Σ+)= · Σ* — some data value occurs more than once."""
        sigma = ["a", "b"]
        expr = ree_concat(
            ree_universal(sigma), ree_equal(ree_plus(ree_any_of(sigma))), ree_universal(sigma)
        )
        assert ree_matches(expr, dp(1, "a", 2, "b", 1, "a", 3))
        assert ree_matches(expr, dp(9, "b", 2, "a", 2))
        assert not ree_matches(expr, dp(1, "a", 2, "b", 3))

    def test_paper_example_path_with_tests(self):
        """(a(bc)=)≠ matches d1 a d2 b d3 c d2 with d1 ≠ d2."""
        expr = ree_not_equal(
            ree_concat(ree_letter("a"), ree_equal(ree_concat(ree_letter("b"), ree_letter("c"))))
        )
        assert ree_matches(expr, dp(1, "a", 2, "b", 3, "c", 2))
        assert not ree_matches(expr, dp(2, "a", 2, "b", 3, "c", 2))  # d1 = d2
        assert not ree_matches(expr, dp(1, "a", 2, "b", 3, "c", 4))  # inner test fails

    def test_nested_subscripts(self):
        # ((a)= ) : a single a-step whose endpoints coincide.
        expr = ree_equal(ree_letter("a"))
        assert ree_matches(expr, dp(1, "a", 1))
        assert not ree_matches(expr, dp(1, "a", 2))

    def test_plus_of_equal_blocks(self):
        # ((a.a)=)+ : consecutive 2-blocks each returning to their first value.
        expr = ree_plus(ree_equal(ree_word(["a", "a"])))
        assert ree_matches(expr, dp(1, "a", 2, "a", 1, "a", 3, "a", 1))
        assert not ree_matches(expr, dp(1, "a", 2, "a", 3))

    def test_null_semantics(self):
        expr = ree_equal(ree_letter("a"))
        assert ree_matches(expr, dp(NULL, "a", NULL))  # plain equality of the null object
        assert not ree_matches(expr, dp(NULL, "a", NULL), null_semantics=True)
        neq = ree_not_equal(ree_letter("a"))
        assert not ree_matches(neq, dp(NULL, "a", 3), null_semantics=True)
        assert ree_matches(neq, dp(2, "a", 3), null_semantics=True)


class TestPathsWithTests:
    def test_recognition(self):
        assert is_path_with_tests(parse_ree("a.b.c"))
        assert is_path_with_tests(parse_ree("(a.(b.c)=)!="))
        assert not is_path_with_tests(parse_ree("a|b"))
        assert not is_path_with_tests(parse_ree("a+"))
        assert not is_path_with_tests(parse_ree("eps"))
        assert not is_path_with_tests(parse_ree("(a|b)="))

    def test_path_length(self):
        assert path_length(parse_ree("a.b.c")) == 3
        assert path_length(parse_ree("(a.(b.c)=)!=")) == 3
        assert path_length(parse_ree("a*")) is None

    def test_test_counting(self):
        expr = parse_ree("((a)=.(b)!=)!=")
        assert inequality_subexpressions(expr) == 2
        assert equality_subexpressions(expr) == 1
        assert equality_subexpressions(parse_ree("a|b")) == 0
        assert equality_subexpressions(parse_ree("(a+)=")) == 1


class TestReeParser:
    def test_basic(self):
        assert ree_matches(parse_ree("a.b"), dp(1, "a", 2, "b", 3))
        assert ree_matches(parse_ree("a|b"), dp(1, "b", 2))
        assert ree_matches(parse_ree("a*"), dp(1))
        assert ree_matches(parse_ree("eps"), dp(1))
        assert ree_matches(parse_ree("ε"), dp(1))

    def test_subscripts(self):
        assert ree_matches(parse_ree("(a.b)="), dp(1, "a", 2, "b", 1))
        assert ree_matches(parse_ree("(a.b)!="), dp(1, "a", 2, "b", 3))
        assert ree_matches(parse_ree("(a.b)≠"), dp(1, "a", 2, "b", 3))

    def test_subscript_binds_to_preceding_factor(self):
        expr = parse_ree("a.(b)=")
        assert ree_matches(expr, dp(1, "a", 2, "b", 2))
        assert not ree_matches(expr, dp(1, "a", 2, "b", 3))

    def test_repeated_value_query(self):
        expr = parse_ree("(a|b)* . ((a|b)+)= . (a|b)*")
        assert ree_matches(expr, dp(1, "a", 2, "b", 2))
        assert not ree_matches(expr, dp(1, "a", 2, "b", 3))

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_ree("")
        with pytest.raises(ParseError):
            parse_ree("(a")
        with pytest.raises(ParseError):
            parse_ree("a!")
        with pytest.raises(ParseError):
            parse_ree("a)")
        with pytest.raises(ParseError):
            parse_ree("|a")


class TestReeAgainstBruteForce:
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=7))
    @settings(max_examples=80)
    def test_repeated_value(self, values):
        labels = tuple("a" for _ in range(len(values) - 1))
        path = DataPath(tuple(values), labels)
        expr = parse_ree("a* . (a+)= . a*")
        expected = len(set(values)) < len(values)
        assert ree_matches(expr, path) is expected

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=7))
    @settings(max_examples=80)
    def test_endpoints_equal(self, values):
        labels = tuple("a" for _ in range(len(values) - 1))
        path = DataPath(tuple(values), labels)
        expr = parse_ree("(a+)=")
        assert ree_matches(expr, path) is (values[0] == values[-1])

    @given(st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_pure_label_structure_ignores_data(self, labels):
        values = tuple(range(len(labels) + 1))
        path = DataPath(values, tuple(labels))
        expr = parse_ree("a*.b.a*")
        assert ree_matches(expr, path) is (labels.count("b") == 1)
