"""Tests for register automata, REM compilation and fragment classification."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import NULL, DataPath
from repro.datapaths import (
    Equal,
    Fragment,
    NotEqual,
    RegisterAutomaton,
    Transition,
    TrueCondition,
    Valuation,
    classify,
    compile_rem,
    is_equality_only,
    parse_ree,
    parse_rem,
    ra_accepts,
    ra_is_empty,
    ree_matches,
    ree_to_rem,
    rem_matches,
)


def dp(*items):
    return DataPath.from_sequence(list(items))


class TestTransitionValidation:
    def test_kinds(self):
        with pytest.raises(ValueError):
            Transition(0, "bogus", 1)
        with pytest.raises(ValueError):
            Transition(0, "letter", 1)
        with pytest.raises(ValueError):
            Transition(0, "guard", 1)
        with pytest.raises(ValueError):
            Transition(0, "store", 1)
        # valid forms
        Transition(0, "letter", 1, symbol="a")
        Transition(0, "guard", 1, condition=TrueCondition())
        Transition(0, "store", 1, registers=("x",))


class TestHandBuiltAutomaton:
    def _same_endpoints_automaton(self) -> RegisterAutomaton:
        """Accepts data paths over 'a' whose first and last values coincide."""
        transitions = [
            Transition(0, "store", 1, registers=("x",)),
            Transition(1, "letter", 2, symbol="a"),
            Transition(2, "guard", 3, condition=Equal("x")),
            Transition(2, "guard", 1, condition=TrueCondition()),
        ]
        return RegisterAutomaton(num_states=4, initial=0, accepting={3}, transitions=transitions)

    def test_acceptance(self):
        automaton = self._same_endpoints_automaton()
        assert automaton.accepts(dp(1, "a", 2, "a", 1))
        assert automaton.accepts(dp(5, "a", 5))
        assert not automaton.accepts(dp(1, "a", 2))
        assert not automaton.accepts(dp(1))

    def test_registers_and_labels(self):
        automaton = self._same_endpoints_automaton()
        assert automaton.registers() == frozenset({"x"})
        assert automaton.labels() == frozenset({"a"})

    def test_initial_valuation(self):
        transitions = [
            Transition(0, "letter", 1, symbol="a"),
            Transition(1, "guard", 2, condition=Equal("x")),
        ]
        automaton = RegisterAutomaton(3, 0, {2}, transitions)
        assert automaton.accepts(dp(1, "a", 7), initial_valuation=Valuation({"x": 7}))
        assert not automaton.accepts(dp(1, "a", 7), initial_valuation=Valuation({"x": 8}))

    def test_null_semantics(self):
        automaton = self._same_endpoints_automaton()
        assert automaton.accepts(dp(NULL, "a", NULL))
        assert not automaton.accepts(dp(NULL, "a", NULL), null_semantics=True)


class TestRemCompilation:
    """compile_rem must agree with the direct derivation semantics."""

    EXPRESSIONS = [
        "a",
        "a.b",
        "a|b",
        "a*",
        "a+",
        "(a|b)*",
        "!x.(a[x!=])+",
        "!x.(a+[x=])",
        "a* . !x.a+[x=] . a*",
        "!x. a . b[x=]",
        "(!x.a[x!=])+",
    ]

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_agrees_with_derivation_semantics(self, text):
        expr = parse_rem(text)
        automaton = compile_rem(expr)
        # exhaustively compare on short data paths over a small value domain
        paths = []
        values = [1, 2]
        labels = ["a", "b"]
        paths.extend(DataPath((v,), ()) for v in values)
        for v1 in values:
            for l1 in labels:
                for v2 in values:
                    paths.append(DataPath((v1, v2), (l1,)))
                    for l2 in labels:
                        for v3 in values:
                            paths.append(DataPath((v1, v2, v3), (l1, l2)))
        for path in paths:
            assert automaton.accepts(path) is rem_matches(expr, path), (text, path)

    def test_ra_accepts_wrapper(self):
        expr = parse_rem("!x.(a[x!=])+")
        assert ra_accepts(expr, dp(1, "a", 2))
        assert ra_accepts(compile_rem(expr), dp(1, "a", 2))
        assert not ra_accepts(expr, dp(1, "a", 1))


class TestNonemptiness:
    def test_simple_nonempty(self):
        assert not ra_is_empty(parse_rem("a.b"))
        assert not ra_is_empty(parse_rem("!x.(a[x!=])+"))

    def test_unsatisfiable_condition(self):
        # ↓x. a [x= ∧ x≠] can never be satisfied.
        from repro.datapaths import rem_bind, rem_letter, rem_test
        from repro.datapaths.conditions import And

        expr = rem_bind("x", rem_test(rem_letter("a"), And(Equal("x"), NotEqual("x"))))
        assert ra_is_empty(expr)

    def test_requires_distinct_then_equal(self):
        # ↓x.(a[x≠]) · ... languages that need specific value patterns are nonempty.
        assert not ra_is_empty(parse_rem("!x. a[x!=] . a[x=]"))

    def test_empty_automaton_without_accepting_reachable(self):
        automaton = RegisterAutomaton(
            2, 0, {1}, [Transition(0, "guard", 0, condition=TrueCondition())]
        )
        assert automaton.is_empty()

    def test_nonempty_with_inequality_chain(self):
        # all values differ from the first: satisfiable with 2 distinct values
        assert not ra_is_empty(parse_rem("!x.(a[x!=])+"))


class TestFragments:
    def test_classify_ree(self):
        assert classify(parse_ree("a.b.c")) is Fragment.PATH_WITH_TESTS
        assert classify(parse_ree("(a.b)!=")) is Fragment.PATH_WITH_TESTS
        assert classify(parse_ree("(a|b)*")) is Fragment.REE_EQUALITY_ONLY
        assert classify(parse_ree("((a|b)+)=")) is Fragment.REE_EQUALITY_ONLY
        assert classify(parse_ree("((a|b)+)!=")) is Fragment.REE

    def test_classify_rem(self):
        assert classify(parse_rem("!x.(a[x=])+")) is Fragment.REM_EQUALITY_ONLY
        assert classify(parse_rem("!x.(a[x!=])+")) is Fragment.REM

    def test_classify_rejects_other_types(self):
        with pytest.raises(TypeError):
            classify("a.b")

    def test_is_equality_only(self):
        assert is_equality_only(parse_ree("(a+)="))
        assert not is_equality_only(parse_ree("(a+)!="))
        assert is_equality_only(parse_rem("!x.a[x=]"))
        assert not is_equality_only(parse_rem("!x.a[x!=]"))
        with pytest.raises(TypeError):
            is_equality_only(42)


class TestReeToRem:
    CASES = [
        "a",
        "a.b",
        "a|b",
        "(a.b)=",
        "(a.b)!=",
        "(a|b)* . ((a|b)+)= . (a|b)*",
        "((a)=.(b)!=)!=",
        "(a+)=",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_translation_preserves_semantics(self, text):
        ree_expr = parse_ree(text)
        rem_expr = ree_to_rem(ree_expr)
        values = [1, 2]
        labels = ["a", "b"]
        paths = [DataPath((v,), ()) for v in values]
        for v1 in values:
            for l1 in labels:
                for v2 in values:
                    paths.append(DataPath((v1, v2), (l1,)))
                    for l2 in labels:
                        for v3 in values:
                            paths.append(DataPath((v1, v2, v3), (l1, l2)))
        for path in paths:
            assert ree_matches(ree_expr, path) is rem_matches(rem_expr, path), (text, path)

    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_translation_on_random_single_label_paths(self, values):
        labels = tuple("a" for _ in range(len(values) - 1))
        path = DataPath(tuple(values), labels)
        ree_expr = parse_ree("a* . (a+)= . a*")
        rem_expr = ree_to_rem(ree_expr)
        assert ree_matches(ree_expr, path) is rem_matches(rem_expr, path)
