"""Tests for REM conditions and valuations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import NULL
from repro.datapaths import (
    EMPTY_VALUATION,
    And,
    Equal,
    NotEqual,
    Or,
    TrueCondition,
    Valuation,
    conj,
    disj,
    equal,
    evaluate_condition,
    negate,
    not_equal,
    parse_condition,
)
from repro.exceptions import UnboundVariableError


class TestValuation:
    def test_empty_valuation(self):
        assert not EMPTY_VALUATION.is_bound("x")
        assert EMPTY_VALUATION.get("x") is None
        assert EMPTY_VALUATION.support() == frozenset()

    def test_bind_is_persistent(self):
        v1 = EMPTY_VALUATION.bind("x", 1)
        assert v1.get("x") == 1
        assert not EMPTY_VALUATION.is_bound("x")

    def test_bind_multiple(self):
        v = EMPTY_VALUATION.bind(["x", "y"], 5)
        assert v.get("x") == 5
        assert v.get("y") == 5

    def test_rebind_overwrites(self):
        v = EMPTY_VALUATION.bind("x", 1).bind("x", 2)
        assert v.get("x") == 2

    def test_equality_and_hash(self):
        v1 = EMPTY_VALUATION.bind("x", 1)
        v2 = Valuation({"x": 1})
        assert v1 == v2
        assert hash(v1) == hash(v2)
        assert v1 != EMPTY_VALUATION
        assert v1 != "not a valuation"

    def test_restrict(self):
        v = Valuation({"x": 1, "y": 2})
        assert v.restrict(["x"]) == Valuation({"x": 1})

    def test_as_dict_copy(self):
        v = Valuation({"x": 1})
        d = v.as_dict()
        d["x"] = 99
        assert v.get("x") == 1

    def test_repr(self):
        assert "x=1" in repr(Valuation({"x": 1}))


class TestConditionEvaluation:
    def test_equal(self):
        sigma = Valuation({"x": 7})
        assert evaluate_condition(Equal("x"), sigma, 7)
        assert not evaluate_condition(Equal("x"), sigma, 8)

    def test_not_equal(self):
        sigma = Valuation({"x": 7})
        assert evaluate_condition(NotEqual("x"), sigma, 8)
        assert not evaluate_condition(NotEqual("x"), sigma, 7)

    def test_true_condition(self):
        assert evaluate_condition(TrueCondition(), EMPTY_VALUATION, 1)

    def test_and_or(self):
        sigma = Valuation({"x": 1, "y": 2})
        assert evaluate_condition(And(Equal("x"), NotEqual("y")), sigma, 1)
        assert not evaluate_condition(And(Equal("x"), Equal("y")), sigma, 1)
        assert evaluate_condition(Or(Equal("x"), Equal("y")), sigma, 2)
        assert not evaluate_condition(Or(Equal("x"), Equal("y")), sigma, 3)

    def test_unbound_variable_raises(self):
        with pytest.raises(UnboundVariableError):
            evaluate_condition(Equal("x"), EMPTY_VALUATION, 1)

    def test_unbound_variable_under_null_semantics_is_false(self):
        assert not evaluate_condition(Equal("x"), EMPTY_VALUATION, 1, null_semantics=True)
        assert not evaluate_condition(NotEqual("x"), EMPTY_VALUATION, 1, null_semantics=True)

    def test_null_semantics_sql_rule(self):
        """Section 7: comparisons involving the null are never true."""
        sigma = Valuation({"x": NULL})
        assert not evaluate_condition(Equal("x"), sigma, NULL, null_semantics=True)
        assert not evaluate_condition(NotEqual("x"), sigma, 5, null_semantics=True)
        sigma2 = Valuation({"x": 5})
        assert not evaluate_condition(Equal("x"), sigma2, NULL, null_semantics=True)
        assert not evaluate_condition(NotEqual("x"), sigma2, NULL, null_semantics=True)
        # and behaves normally on non-null values
        assert evaluate_condition(Equal("x"), sigma2, 5, null_semantics=True)

    def test_condition_operators(self):
        condition = equal("x") & not_equal("y")
        assert isinstance(condition, And)
        condition = equal("x") | equal("y")
        assert isinstance(condition, Or)


class TestConditionAlgebra:
    def test_variables(self):
        condition = And(Equal("x"), Or(NotEqual("y"), Equal("x")))
        assert condition.variables() == frozenset({"x", "y"})
        assert TrueCondition().variables() == frozenset()

    def test_negation_swaps_atoms(self):
        assert negate(Equal("x")) == NotEqual("x")
        assert negate(NotEqual("x")) == Equal("x")

    def test_negation_de_morgan(self):
        condition = And(Equal("x"), NotEqual("y"))
        assert negate(condition) == Or(NotEqual("x"), Equal("y"))

    def test_negation_of_true_raises(self):
        with pytest.raises(ValueError):
            negate(TrueCondition())

    def test_conj_and_disj_builders(self):
        assert conj() == TrueCondition()
        assert conj(Equal("x")) == Equal("x")
        assert isinstance(conj(Equal("x"), Equal("y")), And)
        assert isinstance(disj(Equal("x"), Equal("y")), Or)
        with pytest.raises(ValueError):
            disj()

    def test_str_forms(self):
        assert str(Equal("x")) == "x="
        assert "≠" in str(NotEqual("x"))
        assert "∧" in str(And(Equal("x"), Equal("y")))
        assert "∨" in str(Or(Equal("x"), Equal("y")))
        assert str(TrueCondition()) == "⊤"

    @given(st.integers(), st.integers())
    @settings(max_examples=50)
    def test_negation_is_semantic_complement(self, stored, current):
        """On non-null values, c and ¬c always disagree."""
        sigma = Valuation({"x": stored, "y": stored + 1})
        condition = Or(And(Equal("x"), NotEqual("y")), Equal("y"))
        direct = evaluate_condition(condition, sigma, current)
        negated = evaluate_condition(negate(condition), sigma, current)
        assert direct != negated


class TestConditionParser:
    def test_atoms(self):
        assert parse_condition("x=") == Equal("x")
        assert parse_condition("x!=") == NotEqual("x")
        assert parse_condition("x≠") == NotEqual("x")

    def test_conjunction_disjunction(self):
        assert parse_condition("x= & y!=") == And(Equal("x"), NotEqual("y"))
        assert parse_condition("x= && y=") == And(Equal("x"), Equal("y"))
        assert parse_condition("x= || y=") == Or(Equal("x"), Equal("y"))

    def test_parentheses(self):
        parsed = parse_condition("(x= || y=) & z!=")
        assert parsed == And(Or(Equal("x"), Equal("y")), NotEqual("z"))
