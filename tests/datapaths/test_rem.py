"""Tests for regular expressions with memory (REM) and their semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph import NULL, DataPath
from repro.datapaths import (
    Equal,
    NotEqual,
    Valuation,
    derive,
    parse_rem,
    rem_bind,
    rem_concat,
    rem_epsilon,
    rem_labels,
    rem_letter,
    rem_matches,
    rem_plus,
    rem_star,
    rem_test,
    rem_union,
    rem_variables,
    uses_inequality,
)
from repro.exceptions import ParseError


def dp(*items):
    """Shorthand for building data paths from alternating value/label sequences."""
    return DataPath.from_sequence(list(items))


class TestRemConstructors:
    def test_letter_validation(self):
        with pytest.raises(ValueError):
            rem_letter("")

    def test_bind_needs_variables(self):
        with pytest.raises(ValueError):
            rem_bind([], rem_epsilon())

    def test_union_needs_parts(self):
        with pytest.raises(ValueError):
            rem_union()

    def test_concat_of_nothing_is_epsilon(self):
        assert rem_concat() == rem_epsilon()

    def test_operators(self):
        expr = rem_letter("a") + rem_letter("b")
        assert rem_matches(expr, dp(1, "a", 2))
        expr2 = rem_letter("a") * rem_letter("b")
        assert rem_matches(expr2, dp(1, "a", 2, "b", 3))

    def test_variables_and_labels(self):
        expr = rem_bind("x", rem_test(rem_plus(rem_letter("a")), Equal("x")))
        assert rem_variables(expr) == frozenset({"x"})
        assert rem_labels(expr) == frozenset({"a"})

    def test_uses_inequality(self):
        eq_only = rem_bind("x", rem_test(rem_letter("a"), Equal("x")))
        assert not uses_inequality(eq_only)
        with_neq = rem_bind("x", rem_test(rem_letter("a"), NotEqual("x")))
        assert uses_inequality(with_neq)

    def test_str_forms(self):
        expr = rem_bind("x", rem_test(rem_plus(rem_letter("a")), Equal("x")))
        text = str(expr)
        assert "↓x" in text
        assert "[x=]" in text


class TestRemSemantics:
    """The derivation relation (e, w, σ) ⊢ σ' from Section 3."""

    def test_epsilon_matches_single_value(self):
        assert rem_matches(rem_epsilon(), dp(5))
        assert not rem_matches(rem_epsilon(), dp(5, "a", 6))

    def test_letter(self):
        assert rem_matches(rem_letter("a"), dp(1, "a", 2))
        assert not rem_matches(rem_letter("a"), dp(1, "b", 2))
        assert not rem_matches(rem_letter("a"), dp(1))

    def test_concat(self):
        expr = rem_concat(rem_letter("a"), rem_letter("b"))
        assert rem_matches(expr, dp(1, "a", 2, "b", 3))
        assert not rem_matches(expr, dp(1, "a", 2, "a", 3))

    def test_union(self):
        expr = rem_union(rem_letter("a"), rem_letter("b"))
        assert rem_matches(expr, dp(1, "a", 2))
        assert rem_matches(expr, dp(1, "b", 2))
        assert not rem_matches(expr, dp(1, "c", 2))

    def test_plus(self):
        expr = rem_plus(rem_letter("a"))
        assert rem_matches(expr, dp(1, "a", 2))
        assert rem_matches(expr, dp(1, "a", 2, "a", 3))
        assert not rem_matches(expr, dp(1))

    def test_star(self):
        expr = rem_star(rem_letter("a"))
        assert rem_matches(expr, dp(1))
        assert rem_matches(expr, dp(1, "a", 2, "a", 3))

    def test_bind_and_test_equal(self):
        # ↓x.(a+[x=]) : data paths over a whose last value equals the first.
        expr = rem_bind("x", rem_test(rem_plus(rem_letter("a")), Equal("x")))
        assert rem_matches(expr, dp(1, "a", 2, "a", 1))
        assert not rem_matches(expr, dp(1, "a", 2, "a", 3))

    def test_paper_example_all_values_differ_from_first(self):
        """The paper's example ↓x.(a[x≠])+ ."""
        expr = rem_bind("x", rem_plus(rem_test(rem_letter("a"), NotEqual("x"))))
        assert rem_matches(expr, dp(1, "a", 2, "a", 3, "a", 4))
        assert not rem_matches(expr, dp(1, "a", 2, "a", 1))
        assert not rem_matches(expr, dp(1, "a", 1))

    def test_paper_example_some_value_repeats(self):
        """The paper's example Σ* · ↓x.Σ+[x=] · Σ* (some data value occurs twice)."""
        sigma = rem_union(rem_letter("a"), rem_letter("b"))
        expr = rem_concat(
            rem_star(sigma),
            rem_bind("x", rem_test(rem_plus(sigma), Equal("x"))),
            rem_star(sigma),
        )
        assert rem_matches(expr, dp(1, "a", 2, "b", 1, "a", 3))
        assert rem_matches(expr, dp(7, "a", 2, "b", 2))
        assert not rem_matches(expr, dp(1, "a", 2, "b", 3, "a", 4))

    def test_binding_multiple_variables(self):
        expr = rem_bind(["x", "y"], rem_test(rem_letter("a"), Equal("x") & Equal("y")))
        assert rem_matches(expr, dp(1, "a", 1))
        assert not rem_matches(expr, dp(1, "a", 2))

    def test_initial_valuation_is_respected(self):
        expr = rem_test(rem_letter("a"), Equal("x"))
        assert rem_matches(expr, dp(1, "a", 5), Valuation({"x": 5}))
        assert not rem_matches(expr, dp(1, "a", 5), Valuation({"x": 6}))

    def test_derive_returns_final_valuations(self):
        expr = rem_bind("x", rem_letter("a"))
        results = derive(expr, dp(9, "a", 10))
        assert results == frozenset({Valuation({"x": 9})})

    def test_derive_union_collects_all_valuations(self):
        expr = rem_union(rem_bind("x", rem_letter("a")), rem_bind("y", rem_letter("a")))
        results = derive(expr, dp(3, "a", 4))
        assert Valuation({"x": 3}) in results
        assert Valuation({"y": 3}) in results

    def test_plus_threads_valuations(self):
        # ↓x.(a[x=])+ : every value equals the first one.
        expr = rem_bind("x", rem_plus(rem_test(rem_letter("a"), Equal("x"))))
        assert rem_matches(expr, dp(5, "a", 5, "a", 5))
        assert not rem_matches(expr, dp(5, "a", 5, "a", 6))

    def test_rebinding_inside_plus(self):
        # (↓x.a[x≠])+ checks consecutive values differ (x is re-bound each round).
        expr = rem_plus(rem_bind("x", rem_test(rem_letter("a"), NotEqual("x"))))
        assert rem_matches(expr, dp(1, "a", 2, "a", 1, "a", 3))
        assert not rem_matches(expr, dp(1, "a", 2, "a", 2))

    def test_concat_shares_value(self):
        # ↓x.(a) · (b[x=]) — x bound to the first value, checked after b:
        expr = rem_concat(
            rem_bind("x", rem_letter("a")),
            rem_test(rem_letter("b"), Equal("x")),
        )
        assert rem_matches(expr, dp(1, "a", 2, "b", 1))
        assert not rem_matches(expr, dp(1, "a", 2, "b", 2))

    def test_null_semantics_disables_comparisons(self):
        expr = rem_bind("x", rem_test(rem_plus(rem_letter("a")), Equal("x")))
        path_with_null = dp(NULL, "a", NULL)
        # Standard semantics: NULL == NULL on the Python level, so it matches.
        assert rem_matches(expr, path_with_null)
        # SQL-null semantics (Section 7): comparisons with null are never true.
        assert not rem_matches(expr, path_with_null, null_semantics=True)

    def test_null_semantics_inequality(self):
        expr = rem_bind("x", rem_test(rem_plus(rem_letter("a")), NotEqual("x")))
        assert not rem_matches(expr, dp(NULL, "a", 3), null_semantics=True)
        assert not rem_matches(expr, dp(1, "a", NULL), null_semantics=True)
        assert rem_matches(expr, dp(1, "a", 3), null_semantics=True)


class TestRemParser:
    def test_letter_and_concat(self):
        assert rem_matches(parse_rem("a.b"), dp(1, "a", 2, "b", 3))

    def test_union_and_star(self):
        expr = parse_rem("(a|b)*")
        assert rem_matches(expr, dp(1))
        assert rem_matches(expr, dp(1, "a", 2, "b", 3))

    def test_bind_ascii_and_unicode(self):
        for marker in ("!", "↓"):
            expr = parse_rem(f"{marker}x.(a[x!=])+")
            assert rem_matches(expr, dp(1, "a", 2, "a", 3))
            assert not rem_matches(expr, dp(1, "a", 1))

    def test_bind_multiple_variables(self):
        expr = parse_rem("!x,y. a [x= & y=]")
        assert rem_matches(expr, dp(4, "a", 4))
        assert not rem_matches(expr, dp(4, "a", 5))

    def test_condition_with_disjunction(self):
        expr = parse_rem("!x. a [x= || x!=]")
        assert rem_matches(expr, dp(1, "a", 2))

    def test_epsilon(self):
        assert rem_matches(parse_rem("eps"), dp(1))
        assert rem_matches(parse_rem("ε"), dp(1))

    def test_bind_scopes_over_rest_of_sequence(self):
        # !x. a . b[x=]  — the test refers to the binding at the start.
        expr = parse_rem("!x. a . b[x=]")
        assert rem_matches(expr, dp(1, "a", 2, "b", 1))
        assert not rem_matches(expr, dp(1, "a", 2, "b", 2))

    def test_union_splits_bind_scope(self):
        # In "a | !x.b[x=]" the binding only covers the second branch.
        expr = parse_rem("a | !x.b[x=]")
        assert rem_matches(expr, dp(1, "a", 2))
        assert rem_matches(expr, dp(3, "b", 3))
        assert not rem_matches(expr, dp(3, "b", 4))

    def test_parse_the_paper_repetition_example(self):
        text = "(a|b)* . !x.(a|b)+[x=] . (a|b)*"
        expr = parse_rem(text)
        assert rem_matches(expr, dp(1, "a", 2, "b", 1))
        assert not rem_matches(expr, dp(1, "a", 2, "b", 3))

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_rem("")
        with pytest.raises(ParseError):
            parse_rem("(a")
        with pytest.raises(ParseError):
            parse_rem("!x a")  # missing dot
        with pytest.raises(ParseError):
            parse_rem("a[b]")  # not a condition
        with pytest.raises(ParseError):
            parse_rem("a[x= &&]")
        with pytest.raises(ParseError):
            parse_rem("a)")


class TestRemAgainstBruteForce:
    """Cross-check the REM evaluator against simple hand-rolled predicates."""

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=6))
    @settings(max_examples=80)
    def test_all_differ_from_first(self, values):
        labels = tuple("a" for _ in range(len(values) - 1))
        path = DataPath(tuple(values), labels)
        expr = parse_rem("!x.(a[x!=])+") if len(values) > 1 else None
        if expr is None:
            return
        expected = all(value != values[0] for value in values[1:])
        assert rem_matches(expr, path) is expected

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=6))
    @settings(max_examples=80)
    def test_some_value_repeats(self, values):
        labels = tuple("a" for _ in range(len(values) - 1))
        path = DataPath(tuple(values), labels)
        expr = parse_rem("a* . !x.a+[x=] . a*")
        expected = len(set(values)) < len(values)
        assert rem_matches(expr, path) is expected

    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=2, max_size=6))
    @settings(max_examples=80)
    def test_first_equals_last(self, values):
        labels = tuple("a" for _ in range(len(values) - 1))
        path = DataPath(tuple(values), labels)
        expr = parse_rem("!x.(a+[x=])")
        assert rem_matches(expr, path) is (values[0] == values[-1])
