"""Frame-level protocol tests: framing, limits, truncation, bad JSON."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    error_payload,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    """A connected socket pair; both ends closed afterwards."""
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        payload = {"id": 7, "op": "run", "nested": [1, {"x": None}], "flag": True}
        send_frame(left, payload)
        assert recv_frame(right) == payload

    def test_multiple_frames_stay_separate(self, pair):
        left, right = pair
        for index in range(5):
            send_frame(left, {"seq": index})
        for index in range(5):
            assert recv_frame(right) == {"seq": index}

    def test_empty_object_and_large_payload(self, pair):
        left, right = pair
        send_frame(left, {})
        big = {"rows": [[i, f"node-{i}"] for i in range(5000)]}
        writer = threading.Thread(target=send_frame, args=(left, big))
        writer.start()
        assert recv_frame(right) == {}
        assert recv_frame(right) == big
        writer.join()

    def test_clean_eof_returns_none(self, pair):
        left, right = pair
        left.close()
        assert recv_frame(right) is None


class TestLimits:
    def test_oversized_send_rejected_locally(self, pair):
        left, _ = pair
        with pytest.raises(ProtocolError, match="exceeds"):
            send_frame(left, {"blob": "x" * 64}, max_bytes=32)

    def test_oversized_declared_length_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="limit"):
            recv_frame(right)

    def test_receiver_honours_its_own_limit(self, pair):
        left, right = pair
        send_frame(left, {"blob": "y" * 256})
        with pytest.raises(ProtocolError, match="limit"):
            recv_frame(right, max_bytes=64)

    def test_unserialisable_payload_rejected(self, pair):
        left, _ = pair
        with pytest.raises(ProtocolError, match="JSON"):
            send_frame(left, {"bad": object()})


class TestCorruption:
    def test_disconnect_mid_header(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")  # half a length prefix
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_disconnect_mid_body(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 100) + b'{"partial": tru')
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_invalid_json_body(self, pair):
        left, right = pair
        body = b"this is not json"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            recv_frame(right)

    def test_invalid_utf8_body(self, pair):
        left, right = pair
        body = b"\xff\xfe\xfd"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            recv_frame(right)


class TestErrorPayload:
    def test_shape(self):
        payload = error_payload(42, "timeout", "too slow")
        assert payload == {
            "id": 42,
            "ok": False,
            "error": {"type": "timeout", "message": "too slow"},
        }

    def test_none_id_for_unparseable_requests(self):
        assert error_payload(None, "protocol", "bad frame")["id"] is None
