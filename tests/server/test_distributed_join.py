"""The pool's planner seams: partitioned hash joins and target masks.

``ShardWorkerPool.hash_join`` must agree with the executor's local join
on arbitrary row sets, and ``evaluate(targets=...)`` must equal the full
relation filtered in the parent — the mask only changes *where* the
filtering happens (worker-side, before the pipes).
"""

from __future__ import annotations

import random

import pytest

from repro.api import ExecutionPolicy, GraphSession, Query
from repro.datagraph import generators
from repro.engine.forkpool import fork_available
from repro.server.workers import ShardWorkerPool

pytestmark = pytest.mark.skipif(not fork_available(), reason="needs os.fork")


@pytest.fixture(scope="module")
def graph():
    return generators.community_graph(
        3, 40, intra_edges_per_node=3, bridges_per_community=4,
        labels=("a", "b"), bridge_label="c", rng=11, domain_size=4,
    )


@pytest.fixture
def pool(graph):
    with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
        yield pool


def local_join(left_rows, right_rows, left_key, right_key, right_only):
    table = {}
    for row in right_rows:
        table.setdefault(tuple(row[i] for i in right_key), []).append(row)
    return {
        tuple(left) + tuple(right[i] for i in right_only)
        for left in left_rows
        for right in table.get(tuple(left[i] for i in left_key), ())
    }


class TestHashJoin:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_local_join(self, pool, seed):
        rng = random.Random(seed)
        left = [(rng.randrange(30), rng.randrange(30)) for _ in range(200)]
        right = [(rng.randrange(30), rng.randrange(30)) for _ in range(150)]
        expected = local_join(left, right, (1,), (0,), (1,))
        actual = pool.hash_join(left, right, (1,), (0,), (1,))
        assert actual == expected

    def test_multi_column_keys(self, pool):
        rng = random.Random(99)
        left = [tuple(rng.randrange(6) for _ in range(3)) for _ in range(120)]
        right = [tuple(rng.randrange(6) for _ in range(3)) for _ in range(120)]
        expected = local_join(left, right, (0, 2), (1, 0), (2,))
        assert pool.hash_join(left, right, (0, 2), (1, 0), (2,)) == expected

    def test_disjoint_sides_join_empty(self, pool):
        left = [(1, 2), (3, 4)]
        right = [(100, 200)]
        assert pool.hash_join(left, right, (1,), (0,), (1,)) == set()

    def test_busy_pool_declines(self, pool):
        acquired = pool._lock.acquire(blocking=False)
        assert acquired
        try:
            assert pool.hash_join([(1, 2)], [(2, 3)], (1,), (0,), (1,)) is None
        finally:
            pool._lock.release()

    def test_pool_still_answers_queries_after_joins(self, pool, graph):
        pool.hash_join([(1, 2)], [(2, 3)], (1,), (0,), (1,))
        query = Query.parse("a.(b|c)+")
        expected = GraphSession(graph).run(query).pairs()
        assert pool.evaluate(query) == expected


class TestTargetMasks:
    @pytest.mark.parametrize("expression", ["a.(b|c)+", "(a|b)*"])
    def test_targets_equal_parent_side_filter(self, pool, graph, expression):
        query = Query.parse(expression)
        full = pool.evaluate(query)
        assert full is not None
        targets = {pair[1].id for pair in list(full)[: max(1, len(full) // 7)]}
        masked = pool.evaluate(query, targets=targets)
        assert masked == frozenset(
            pair for pair in full if pair[1].id in targets
        )

    def test_sources_and_targets_compose(self, pool, graph):
        query = Query.parse("(a|c)+")
        full = pool.evaluate(query)
        source, target = next(iter(full))
        point = pool.evaluate(query, sources={source.id}, targets={target.id})
        assert point == frozenset(
            pair for pair in full if pair[0] == source and pair[1] == target
        )

    def test_empty_target_mask(self, pool):
        assert pool.evaluate(Query.parse("a"), targets=set()) == frozenset()


class TestSessionPointQueriesThroughPool:
    def test_holds_uses_the_pool_fast_path(self, graph):
        query = Query.parse("a.(b|c)+")
        baseline = GraphSession(graph)
        expected = baseline.run(query).pairs()
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            calls = []

            def runner(plan, null_semantics, sources=None, targets=None):
                calls.append((sources, targets))
                return pool.evaluate(
                    plan, null_semantics, sources=sources, targets=targets
                )

            runner.supports_sources = True
            runner.supports_targets = True
            runner.hash_join = pool.hash_join
            policy = ExecutionPolicy.preset(
                "server", intra_query_threshold=0, sharded_processes=False
            )
            session = GraphSession(graph, policy=policy, shard_runner=runner)
            positive = next(iter(expected))
            absent_source = positive[0]
            assert session.holds(query, absent_source.id, positive[1].id)
            # at least one call carried a one-element target mask
            assert any(
                targets is not None and len(targets) == 1 for _, targets in calls
            )
