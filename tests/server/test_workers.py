"""The persistent shard-worker pool: correctness, reuse, epochs, cancel.

These tests fork real worker processes, so they are skipped wholesale on
platforms without ``fork`` (the pool itself degrades to ``None`` returns
there, which ``test_unavailable_platform``-style behaviour in the daemon
covers via the session fallback).
"""

from __future__ import annotations

import threading

import pytest

from repro.api import GraphSession, Query
from repro.datagraph import GraphBuilder, generators
from repro.engine.forkpool import fork_available
from repro.exceptions import EvaluationError
from repro.server.workers import QueryCancelled, ShardWorkerPool

pytestmark = pytest.mark.skipif(not fork_available(), reason="needs os.fork")

QUERIES = [
    Query.parse("a.(b|c)+"),
    Query.parse("(a|b)*"),
    Query.parse("((a|c))=", dialect="ree"),
    Query.parse("!x.((a|b)[x!=])+", dialect="rem"),
]


@pytest.fixture(scope="module")
def graph():
    return generators.community_graph(
        3, 40, intra_edges_per_node=3, bridges_per_community=4,
        labels=("a", "b"), bridge_label="c", rng=11, domain_size=4,
    )


@pytest.fixture
def pool(graph):
    with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
        yield pool


class TestCorrectness:
    @pytest.mark.parametrize("query", QUERIES, ids=[str(q.plan) for q in QUERIES])
    def test_matches_local_session(self, pool, graph, query):
        expected = GraphSession(graph).run(query).pairs()
        assert pool.evaluate(query) == expected

    def test_null_semantics_travels_to_workers(self, pool, graph):
        query = Query.parse("((a|b|c)+)=", dialect="ree")
        for null_semantics in (False, True):
            expected = GraphSession(graph).run(query, null_semantics=null_semantics).pairs()
            assert pool.evaluate(query, null_semantics=null_semantics) == expected

    def test_empty_relation(self, pool):
        assert pool.evaluate(Query.parse("nolabel")) == frozenset()


class TestPersistence:
    def test_second_query_reuses_the_same_workers(self, pool):
        assert pool.worker_pids() == ()  # lazy: no fork before first use
        pool.evaluate(QUERIES[0])
        pids = pool.worker_pids()
        assert len(pids) == 2 and len(set(pids)) == 2
        pool.evaluate(QUERIES[2])
        pool.evaluate(QUERIES[0])
        assert pool.worker_pids() == pids  # no re-fork between queries
        assert pool.respawns == 0

    def test_worker_caches_accumulate_across_queries(self, pool):
        pool.evaluate(QUERIES[0])
        first = pool.stats()
        pool.evaluate(QUERIES[0])  # same automaton: a worker-side cache hit
        second = pool.stats()
        assert second["automata"]["hits"] > first["automata"]["hits"]


class TestEpochInvalidation:
    def test_mutation_respawns_the_pool(self, graph):
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            query = QUERIES[0]
            before = pool.evaluate(query)
            assert before == GraphSession(graph).run(query).pairs()
            old_pids = pool.worker_pids()
            graph.add_node("fresh-node", 99)
            graph.add_edge("fresh-node", "a", next(iter(graph.node_ids)))
            try:
                after = pool.evaluate(query)
                assert after == GraphSession(graph).run(query).pairs()
                assert pool.respawns == 1
                assert pool.epoch == graph.version
                assert pool.worker_pids() != old_pids
            finally:
                graph.remove_node("fresh-node")

    def test_epoch_message_clears_worker_query_state(self, graph):
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            pool.evaluate(QUERIES[0])
            fork_pool = pool._pool
            # Plant per-query state worker-side, then send the epoch
            # broadcast the parent uses before a respawn: every worker
            # must report the planted state dropped.
            fork_pool.run({0: ("query", (999, QUERIES[0], False, None))})
            epochs_before = fork_pool.broadcast(("state", None))
            assert 999 in epochs_before[0][1]
            dropped = fork_pool.broadcast(("epoch", graph.version + 1))
            assert dropped[0] == 1  # worker 0 held the planted query
            epochs_after = fork_pool.broadcast(("state", None))
            assert all(state[0] == graph.version + 1 for state in epochs_after)
            assert all(state[1] == [] for state in epochs_after)


class TestDeltaPatching:
    def test_insert_only_batch_patches_workers_in_place(self, graph):
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            query = QUERIES[0]
            before = pool.evaluate(query)
            assert before == GraphSession(graph).run(query).pairs()
            old_pids = pool.worker_pids()
            with graph.batch() as batch:
                batch.add_node("patched-node", 99)
                batch.add_edge("patched-node", "a", next(iter(graph.node_ids)))
            try:
                after = pool.evaluate(query)
                assert after == GraphSession(graph).run(query).pairs()
                assert pool.worker_pids() == old_pids  # PID-stable
                assert pool.respawns == 0
                assert pool.patched_epochs == 1
                assert pool.epoch == graph.version
            finally:
                graph.remove_node("patched-node")

    def test_patched_workers_keep_their_automaton_caches(self, graph):
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            query = QUERIES[1]
            pool.evaluate(query)
            warm = pool.stats()
            anchor = next(iter(graph.node_ids))
            with graph.batch() as batch:
                batch.add_edge(anchor, "b", anchor)
            try:
                pool.evaluate(query)  # patched epoch: same processes, warm caches
                assert pool.patched_epochs == 1
                after = pool.stats()
                assert after["automata"]["hits"] > warm["automata"]["hits"]
            finally:
                graph.remove_edge(anchor, "b", anchor)

    def test_removal_batch_falls_back_to_respawn(self, graph):
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            query = QUERIES[0]
            pool.evaluate(query)
            old_pids = pool.worker_pids()
            graph.add_node("doomed-node", 1)
            pool.evaluate(query)
            assert pool.worker_pids() != old_pids  # single-op mutate: journal gap
            patched_pids = pool.worker_pids()
            with graph.batch() as batch:
                batch.remove_node("doomed-node")
            after = pool.evaluate(query)
            assert after == GraphSession(graph).run(query).pairs()
            assert pool.worker_pids() != patched_pids
            assert pool.patched_epochs == 0
            assert pool.respawns == 2

    def test_consecutive_batches_compose_into_one_patch(self, graph):
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            query = QUERIES[0]
            pool.evaluate(query)
            pids = pool.worker_pids()
            anchor = next(iter(graph.node_ids))
            with graph.batch() as batch:
                batch.add_node("compose-1", 5)
                batch.add_edge("compose-1", "a", anchor)
            with graph.batch() as batch:
                batch.add_node("compose-2", 6)
                batch.add_edge("compose-2", "b", "compose-1")
            try:
                after = pool.evaluate(query)  # two journaled deltas, one broadcast
                assert after == GraphSession(graph).run(query).pairs()
                assert pool.worker_pids() == pids
                assert pool.patched_epochs == 1
                assert pool.epoch == graph.version
            finally:
                graph.remove_node("compose-1")
                graph.remove_node("compose-2")


class TestAdmission:
    def test_busy_pool_declines_instead_of_blocking(self, pool):
        pool.evaluate(QUERIES[0])  # fork the workers first
        acquired = pool._lock.acquire(blocking=False)
        assert acquired
        try:
            assert pool.evaluate(QUERIES[0]) is None  # busy: caller falls back
        finally:
            pool._lock.release()
        assert pool.evaluate(QUERIES[0]) is not None  # usable again

    def test_cancel_aborts_between_rounds(self):
        # A long chain split across shards needs many frontier rounds, so
        # a pre-set cancel event is seen at the first round boundary.
        builder = GraphBuilder(name="long-chain")
        for i in range(64):
            builder.node(i, i)
        for i in range(63):
            builder.edge(i, "a", i + 1)
        chain = builder.build()
        with ShardWorkerPool(chain, num_workers=2, num_shards=8) as pool:
            cancel = threading.Event()
            cancel.set()
            with pytest.raises(QueryCancelled):
                pool.evaluate(Query.parse("a+"), cancel=cancel)
            # The cancelled query's state is dropped and the pool reusable.
            expected = GraphSession(chain).run("a+").pairs()
            assert pool.evaluate(Query.parse("a+")) == expected

    def test_closed_pool_rejects_evaluates(self, graph):
        pool = ShardWorkerPool(graph, num_workers=2)
        pool.evaluate(QUERIES[0])
        pool.close()
        with pytest.raises(EvaluationError, match="closed"):
            pool.evaluate(QUERIES[0])
        assert pool.worker_pids() == ()


class TestSharedCsr:
    """The zero-copy shared-CSR worker path and its segment lifecycle."""

    def _segments(self):
        import glob

        return set(glob.glob("/dev/shm/psm_*"))

    @pytest.mark.parametrize("query", QUERIES, ids=[str(q.plan) for q in QUERIES])
    def test_shared_and_plain_pools_agree(self, graph, query):
        expected = GraphSession(graph).run(query).pairs()
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as shared:
            with ShardWorkerPool(
                graph, num_workers=2, num_shards=4, use_shared_csr=False
            ) as plain:
                assert shared.evaluate(query) == expected
                assert plain.evaluate(query) == expected

    def test_segment_exists_while_forked_and_unlinks_on_close(self, graph):
        before = self._segments()
        pool = ShardWorkerPool(graph, num_workers=2, num_shards=4)
        assert pool.shared_segment is None  # lazy: nothing before first evaluate
        pool.evaluate(QUERIES[0])
        name = pool.shared_segment
        assert name is not None
        assert f"/dev/shm/{name}" in self._segments()
        pool.close()
        assert pool.shared_segment is None
        assert self._segments() - before == set()

    def test_plain_pool_never_creates_a_segment(self, graph):
        before = self._segments()
        with ShardWorkerPool(
            graph, num_workers=2, num_shards=4, use_shared_csr=False
        ) as pool:
            pool.evaluate(QUERIES[0])
            assert pool.shared_segment is None
            assert self._segments() == before

    def test_insert_only_delta_remaps_pid_stable(self, graph):
        query = QUERIES[0]
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            pool.evaluate(query)
            pids = pool.worker_pids()
            old_segment = pool.shared_segment
            anchor = next(iter(graph.node_ids))
            with graph.batch() as batch:
                batch.add_node("csr-remap-node", 7)
                batch.add_edge(anchor, "a", "csr-remap-node")
            try:
                after = pool.evaluate(query)
                assert after == GraphSession(graph).run(query).pairs()
                assert pool.worker_pids() == pids  # patched, not respawned
                assert pool.respawns == 0 and pool.patched_epochs == 1
                new_segment = pool.shared_segment
                assert new_segment is not None and new_segment != old_segment
                # The replaced segment is gone from the system.
                assert f"/dev/shm/{old_segment}" not in self._segments()
            finally:
                graph.remove_node("csr-remap-node")

    def test_respawn_unlinks_previous_segment(self, graph):
        query = QUERIES[0]
        before = self._segments()
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            pool.evaluate(query)
            old_segment = pool.shared_segment
            graph.add_node("csr-respawn-node", 1)  # single-op: journal gap
            try:
                pool.evaluate(query)
                assert pool.respawns == 1
                assert pool.shared_segment != old_segment
                assert f"/dev/shm/{old_segment}" not in self._segments()
            finally:
                graph.remove_node("csr-respawn-node")
        assert self._segments() - before == set()

    def test_worker_memory_probe(self, graph):
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            assert pool.worker_memory() == {}  # not forked yet
            pool.evaluate(QUERIES[0])
            memory = pool.worker_memory()
            assert set(memory) == {0, 1}
            assert all(kb > 0 for kb in memory.values())


class TestMemoryProbeDegradation:
    """``_private_kb`` must degrade, never raise (satellite: hardened
    kernels hide ``/proc/<pid>/smaps_rollup``)."""

    def test_falls_back_to_ru_maxrss_without_smaps(self, monkeypatch):
        import builtins

        from repro.server import workers as workers_module

        real_open = builtins.open

        def hardened_open(path, *args, **kwargs):
            if "smaps_rollup" in str(path):
                raise OSError(13, "Permission denied", str(path))
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", hardened_open)
        kb = workers_module._private_kb()
        assert isinstance(kb, int) and kb > 0  # ru_maxrss stands in

    def test_returns_none_when_resource_also_fails(self, monkeypatch):
        import builtins
        import resource

        from repro.server import workers as workers_module

        real_open = builtins.open

        def hardened_open(path, *args, **kwargs):
            if "smaps_rollup" in str(path):
                raise FileNotFoundError(str(path))
            return real_open(path, *args, **kwargs)

        def denied(_who):
            raise OSError("rusage denied")

        monkeypatch.setattr(builtins, "open", hardened_open)
        monkeypatch.setattr(resource, "getrusage", denied)
        assert workers_module._private_kb() is None

    def test_worker_memory_omits_unmeasurable_workers(self, graph, monkeypatch):
        # The patch rides into the children over fork, so every worker
        # reports None — the reading must omit them all, not raise.
        from repro.server import workers as workers_module

        monkeypatch.setattr(workers_module, "_private_kb", lambda: None)
        with ShardWorkerPool(graph, num_workers=2, num_shards=4) as pool:
            pool.evaluate(QUERIES[0])
            assert pool.worker_memory() == {}


class TestSeededSources:
    """Pool-side seeding: point queries run seeded shard rounds."""

    @pytest.mark.parametrize("query", QUERIES, ids=[str(q.plan) for q in QUERIES])
    def test_sources_restrict_the_relation(self, pool, graph, query):
        full = GraphSession(graph).run(query).pairs()
        node_ids = list(graph.node_ids)
        for source in node_ids[:3]:
            expected = frozenset(pair for pair in full if pair[0].id == source)
            assert pool.evaluate(query, sources={source}) == expected
        some = frozenset(node_ids[:4])
        expected = frozenset(pair for pair in full if pair[0].id in some)
        assert pool.evaluate(query, sources=some) == expected

    def test_empty_sources_yield_empty_relation(self, pool):
        assert pool.evaluate(QUERIES[0], sources=frozenset()) == frozenset()

    def test_session_targets_ride_the_pool(self, pool, graph):
        from repro.api import ExecutionPolicy

        query = QUERIES[0]
        calls = []

        def runner(plan, null_semantics, sources=None):
            calls.append(sources)
            return pool.evaluate(plan, null_semantics, sources=sources)

        runner.supports_sources = True
        session = GraphSession(
            graph,
            policy=ExecutionPolicy.preset(
                "server", intra_query_threshold=0, sharded_processes=False
            ),
            shard_runner=runner,
        )
        source = next(iter(graph.node_ids))
        expected = GraphSession(graph).targets(query, source)
        assert session.targets(query, source) == expected
        assert calls and calls[-1] == {source}

    def test_sessions_skip_runners_without_sources_support(self, graph):
        from repro.api import ExecutionPolicy

        query = QUERIES[0]
        offered = []

        def legacy_runner(plan, null_semantics):
            offered.append(plan)
            return None

        session = GraphSession(
            graph,
            policy=ExecutionPolicy.preset(
                "server", intra_query_threshold=0, sharded_processes=False
            ),
            shard_runner=legacy_runner,
        )
        source = next(iter(graph.node_ids))
        expected = GraphSession(graph).targets(query, source)
        assert session.targets(query, source) == expected  # 2-arg runner untouched
        assert offered == []  # point path never offered a legacy runner
