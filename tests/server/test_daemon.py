"""Daemon integration tests: concurrency, isolation, failure injection.

Everything here drives a real :class:`ReproServer` over real sockets via
:func:`repro.api.connect` (or a raw socket for frame-corruption tests) —
no transport mocking — so the tests pin exactly what the acceptance
criteria name: concurrent clients with correct results, per-query
timeouts, mid-query disconnects, admission backpressure, worker-pool
persistence and epoch invalidation, and the metrics report.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import threading
import time

import pytest

from repro.api import (
    GraphSession,
    Query,
    QueryTimeoutError,
    ServerBusyError,
    ServerShuttingDownError,
    connect,
)
from repro.datagraph import GraphBuilder, generators
from repro.engine.forkpool import fork_available
from repro.exceptions import EvaluationError, UnknownNodeError
from repro.server import ReproServer, ServerConfig
from repro.server import daemon as daemon_module
from repro.server.protocol import recv_frame, send_frame

QUERIES = [
    ("a.(b|c)+", "rpq"),
    ("((a|c))=", "ree"),
    ("!x.((a|b)[x!=])+", "rem"),
    ("x,y :- (x, a+, z), (z, b|c, y)", "crpq"),
    ("<a.[<b>]>", "gxpath-node"),
]


def make_graph():
    return generators.community_graph(
        3, 30, intra_edges_per_node=3, bridges_per_community=3,
        labels=("a", "b"), bridge_label="c", rng=5, domain_size=4,
    )


@pytest.fixture
def served():
    """A running server over a fresh graph; yields ``(graph, address)``."""
    graph = make_graph()
    # pool_min_nodes=0 forces the worker pool on for this small test
    # graph (production default only pools graphs worth forking for).
    server = ReproServer(
        graph, ServerConfig(max_inflight=8, num_workers=2, num_shards=4, pool_min_nodes=0)
    )
    address = server.start()
    yield graph, address, server
    server.shutdown()


class TestBasicOperations:
    def test_every_dialect_matches_local_evaluation(self, served):
        graph, address, _ = served
        local = GraphSession(graph)
        with connect(address) as session:
            for text, dialect in QUERIES:
                query = Query.parse(text, dialect=dialect)
                assert session.run(query).rows() == local.run(query).rows(), text

    def test_run_many_and_targets(self, served):
        graph, address, _ = served
        local = GraphSession(graph)
        queries = [Query.parse(text, dialect=dialect) for text, dialect in QUERIES[:3]]
        with connect(address) as session:
            remote = session.run_many(queries)
            expected = local.run_many(queries)
            assert [r.rows() for r in remote] == [r.rows() for r in expected]
            source = next(iter(graph.node_ids))
            assert session.targets("a", source) == local.targets("a", source)

    def test_remote_result_holds_without_a_graph(self, served):
        graph, address, _ = served
        with connect(address) as session:
            result = session.run("a")
            assert result.graph is None
            pair = next(iter(result.pairs()))
            assert result.holds(pair[0].id, pair[1].id)
            assert not result.holds("no-such-node", pair[1].id)

    def test_explain_ping_and_errors(self, served):
        _, address, _ = served
        with connect(address) as session:
            assert session.ping()
            assert "NFA" in session.explain("a.b")
            # Server-side errors come back typed and leave the
            # connection serving.
            with pytest.raises(UnknownNodeError):
                session.targets("a", "no-such-node")
            assert session.ping()

    def test_session_protocol_holds_shortcut(self, served):
        graph, address, _ = served
        with connect(address) as session:
            pair = next(iter(GraphSession(graph).run("a").pairs()))
            assert session.holds("a", pair[0], pair[1])


class TestBackendConfig:
    def test_invalid_backend_rejected(self):
        with pytest.raises(EvaluationError, match="backend"):
            ServerConfig(backend="bogus")

    def test_sql_backend_server_matches_local(self):
        graph = make_graph()
        server = ReproServer(graph, ServerConfig(num_workers=1, backend="sql"))
        address = server.start()
        try:
            local = GraphSession(graph)
            with connect(address) as session:
                for text, dialect in QUERIES:
                    query = Query.parse(text, dialect=dialect)
                    assert session.run(query).rows() == local.run(query).rows(), text
                source = next(iter(graph.node_ids))
                assert session.targets("a+", source) == local.targets("a+", source)
        finally:
            server.shutdown()

    def test_daemon_runner_advertises_seeded_rounds(self, served):
        _, _, server = served
        pool = server._pool
        assert pool is not None
        runner = server._make_shard_runner(pool)
        assert getattr(runner, "supports_sources", False) is True


class TestConcurrentClients:
    def test_eight_concurrent_clients_get_correct_results(self, served):
        graph, address, _ = served
        local = GraphSession(graph)
        expected = {
            text: local.run(Query.parse(text, dialect=dialect)).rows()
            for text, dialect in QUERIES
        }
        failures = []
        barrier = threading.Barrier(8)

        def client(index):
            text, dialect = QUERIES[index % len(QUERIES)]
            try:
                with connect(address) as session:
                    barrier.wait(timeout=10)
                    for _ in range(3):
                        rows = session.run(Query.parse(text, dialect=dialect)).rows()
                        if rows != expected[text]:
                            failures.append((index, text, "wrong answers"))
            except Exception as error:  # noqa: BLE001 - collected for the assert
                failures.append((index, text, repr(error)))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures

    def test_sessions_are_isolated_per_connection(self, served):
        _, address, _ = served
        with connect(address) as first, connect(address) as second:
            first.run("a.b")
            first.run("a.b")  # second run: a server-side cache hit
            assert first.stats()["results"].hits >= 1
            # The other connection's session saw none of that traffic.
            assert second.stats()["results"].hits == 0
            assert second.stats()["results"].size == 0


@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
class TestWorkerPoolThroughTheDaemon:
    def test_workers_persist_across_queries_and_clients(self, served):
        _, address, _ = served
        with connect(address) as session:
            session.run("a.(b|c)+")
            pids = session.metrics()["worker_pool"]["pids"]
            assert pids, "the first full-relation query must fork the pool"
            session.run("(a|b)+")
        with connect(address) as session:
            session.run("a.(b|c)+")
            after = session.metrics()["worker_pool"]
            assert after["pids"] == pids  # same processes: no re-fork
            assert after["respawns"] == 0

    def test_insert_only_mutation_patches_workers_in_place(self, served):
        graph, address, _ = served
        query = Query.parse("a.(b|c)+")
        with connect(address) as session:
            before = session.run(query).rows()
            assert before == GraphSession(graph).run(query).rows()
            pids = session.metrics()["worker_pool"]["pids"]
            assert pids
            anchor = next(iter(graph.node_ids))
            reply = session.mutate([["add_node", "daemon-new", 7],
                                   ["add_edge", "daemon-new", "a", anchor]])
            assert reply["version"] == graph.version
            assert reply["delta"]["insert_only"] is True
            assert reply["delta"]["summary"]["nodes_added"] == 1
            assert reply["delta"]["summary"]["edges_added"] == 1
            after = session.run(query).rows()
            assert after == GraphSession(graph).run(query).rows()
            # A cache-miss query forces the pool to sync with the new
            # version: the journaled insert-only delta patches the live
            # workers instead of respawning them.
            assert session.run("(b|c).a").rows() == GraphSession(graph).run("(b|c).a").rows()
            metrics = session.metrics()["worker_pool"]
            assert metrics["pids"] == pids, "workers must survive an insert-only mutate"
            assert metrics["respawns"] == 0
            assert metrics["patched_epochs"] >= 1
            assert metrics["epoch"] == graph.version

    def test_removal_mutation_still_respawns_the_workers(self, served):
        graph, address, _ = served
        query = Query.parse("a.(b|c)+")
        with connect(address) as session:
            session.run(query)
            pids = session.metrics()["worker_pool"]["pids"]
            victim = next(iter(graph.node_ids))
            reply = session.mutate([["remove_node", victim]])
            assert reply["delta"]["insert_only"] is False
            assert reply["delta"]["summary"]["nodes_removed"] == 1
            after = session.run(query).rows()
            assert after == GraphSession(graph).run(query).rows()
            metrics = session.metrics()["worker_pool"]
            assert metrics["pids"] != pids  # removals cannot patch in place
            assert metrics["respawns"] == 1
            assert metrics["epoch"] == graph.version


class TestGracefulDrain:
    def test_shutdown_sends_farewell_instead_of_hard_close(self):
        graph = make_graph()
        server = ReproServer(graph, ServerConfig(num_workers=1, drain_grace=1.0))
        address = server.start()
        session = connect(address)
        assert session.ping()
        server.shutdown()
        # The next call sees either the unsolicited shutting_down frame
        # or (if the farewell raced the close) a typed connection error —
        # never a bare socket exception.
        with pytest.raises(Exception) as excinfo:
            session.ping()
        assert isinstance(excinfo.value, (ServerShuttingDownError, EvaluationError))
        session.close()

    def test_drain_lets_inflight_queries_finish(self, monkeypatch):
        graph = make_graph()
        server = ReproServer(graph, ServerConfig(num_workers=1, drain_grace=5.0))
        address = server.start()
        monkeypatch.setattr(daemon_module, "GraphSession", _SlowSession)
        monkeypatch.setattr(_SlowSession, "delay", 0.6)
        outcome = {}
        client = connect(address)

        def slow_query():
            try:
                outcome["rows"] = client.run("a").rows()
            except Exception as error:  # noqa: BLE001 - collected for the assert
                outcome["error"] = error

        thread = threading.Thread(target=slow_query)
        thread.start()
        time.sleep(0.2)  # let the slow query start executing
        started = time.monotonic()
        server.shutdown()  # must wait for the in-flight query, not cut it
        drained = time.monotonic() - started
        thread.join(timeout=10)
        client.close()
        assert "error" not in outcome, outcome.get("error")
        assert outcome["rows"] == GraphSession(graph).run("a").rows()
        assert drained >= 0.2  # shutdown actually waited for the drain

    def test_draining_server_rejects_new_work_with_shutting_down(self, monkeypatch):
        graph = make_graph()
        server = ReproServer(graph, ServerConfig(num_workers=1, drain_grace=5.0))
        address = server.start()
        monkeypatch.setattr(daemon_module, "GraphSession", _SlowSession)
        monkeypatch.setattr(_SlowSession, "delay", 0.8)
        blocker = connect(address)
        rejected = {}
        thread = threading.Thread(target=lambda: blocker.run("a"))
        thread.start()
        time.sleep(0.2)  # the slow query is now in flight

        def second_client():
            try:
                with connect(address) as session:
                    session.run("b")
            except Exception as error:  # noqa: BLE001
                rejected["error"] = error

        shutdown_thread = threading.Thread(target=server.shutdown)
        shutdown_thread.start()
        time.sleep(0.2)  # draining is set; the slow query still runs
        probe = threading.Thread(target=second_client)
        probe.start()
        probe.join(timeout=10)
        shutdown_thread.join(timeout=10)
        thread.join(timeout=10)
        blocker.close()
        assert isinstance(rejected.get("error"), ServerShuttingDownError), rejected

    def test_sigterm_triggers_graceful_shutdown(self):
        graph = make_graph()
        server = ReproServer(graph, ServerConfig(num_workers=1, drain_grace=0.5))
        server.start()
        timer = threading.Timer(0.2, os.kill, (os.getpid(), signal.SIGTERM))
        timer.start()
        server.serve_forever()  # returns once SIGTERM drains the server
        assert server._stopping.is_set()

    def test_request_stop_unblocks_serve_forever(self):
        # The public seam the CLI hangs its early SIGTERM handler on:
        # safe to call from any thread (or signal context) and before
        # start(), so there is no accepting-but-not-yet-graceful window.
        graph = make_graph()
        server = ReproServer(graph, ServerConfig(num_workers=1, drain_grace=0.5))
        server.start()
        timer = threading.Timer(0.2, server.request_stop)
        timer.start()
        server.serve_forever()
        assert server._stopping.is_set()

    def test_drain_grace_must_be_non_negative(self):
        with pytest.raises(EvaluationError, match="drain_grace"):
            ServerConfig(drain_grace=-1.0)


class TestProtocolAbuse:
    def test_malformed_frame_gets_error_then_disconnect(self, served):
        _, address, server = served
        sock = socket.create_connection(address)
        try:
            sock.sendall(struct.pack(">I", 5) + b"nope!")
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"]["type"] == "protocol"
            assert recv_frame(sock) is None  # server dropped the stream
        finally:
            sock.close()
        assert server.metrics.counters["protocol_errors"] == 1

    def test_oversized_frame_is_rejected(self, served):
        _, address, server = served
        sock = socket.create_connection(address)
        try:
            sock.sendall(struct.pack(">I", server.config.max_frame_bytes + 1))
            response = recv_frame(sock)
            assert response["error"]["type"] == "protocol"
        finally:
            sock.close()

    def test_non_object_request_rejected(self, served):
        _, address, _ = served
        sock = socket.create_connection(address)
        try:
            send_frame(sock, [1, 2, 3])
            assert recv_frame(sock)["error"]["type"] == "protocol"
        finally:
            sock.close()

    def test_unknown_op_keeps_the_connection(self, served):
        _, address, _ = served
        sock = socket.create_connection(address)
        try:
            send_frame(sock, {"id": 1, "op": "explode"})
            assert recv_frame(sock)["error"]["type"] == "protocol"
            send_frame(sock, {"id": 2, "op": "ping"})
            assert recv_frame(sock)["pong"] is True  # still serving
        finally:
            sock.close()

    def test_mid_query_disconnect_leaves_the_server_healthy(self, served):
        graph, address, _ = served
        doomed = socket.create_connection(address)
        send_frame(
            doomed,
            {"id": 1, "op": "run",
             "query": {"kind": "rpq", "plan": {"%": "RPQ", "f": {"expression": {
                 "%": "Plus", "f": {"inner": {"%": "Union", "f": {
                     "left": {"%": "Letter", "f": {"label": "a"}},
                     "right": {"%": "Letter", "f": {"label": "b"}}}}}}}}}},
        )
        doomed.close()  # walk away mid-query
        time.sleep(0.2)
        with connect(address) as session:
            assert session.run("a").rows() == GraphSession(graph).run("a").rows()


class _SlowSession(GraphSession):
    """A session whose runs block long enough to hold an executor slot."""

    delay = 1.0

    def run(self, query, null_semantics=False):
        time.sleep(self.delay)
        return super().run(query, null_semantics=null_semantics)


class TestAdmissionAndTimeouts:
    def test_query_timeout_is_enforced_and_reported(self, served, monkeypatch):
        _, address, server = served
        monkeypatch.setattr(daemon_module, "GraphSession", _SlowSession)
        with connect(address) as session:
            started = time.monotonic()
            with pytest.raises(QueryTimeoutError, match="deadline"):
                session.run("a", timeout=0.05)
            assert time.monotonic() - started < _SlowSession.delay
            metrics = session.metrics()
            assert metrics["counters"]["queries_timed_out"] == 1
        assert server.metrics.counters["queries_timed_out"] == 1

    def test_server_config_caps_client_timeouts(self, monkeypatch):
        graph = make_graph()
        server = ReproServer(graph, ServerConfig(query_timeout=0.05, num_workers=1))
        address = server.start()
        monkeypatch.setattr(daemon_module, "GraphSession", _SlowSession)
        try:
            with connect(address) as session:
                started = time.monotonic()
                with pytest.raises(QueryTimeoutError):
                    # Ask for a generous deadline; the server's cap wins.
                    session.run("a", timeout=60.0)
                assert time.monotonic() - started < _SlowSession.delay
        finally:
            server.shutdown()

    def test_backpressure_rejects_excess_queries(self, monkeypatch):
        graph = make_graph()
        server = ReproServer(
            graph, ServerConfig(max_inflight=1, queue_depth=0, num_workers=1)
        )
        address = server.start()
        monkeypatch.setattr(daemon_module, "GraphSession", _SlowSession)
        try:
            blocker = connect(address)
            errors = []

            def long_query():
                try:
                    blocker.run("a")
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            thread = threading.Thread(target=long_query)
            thread.start()
            time.sleep(0.2)  # let the slow query take the only slot
            with connect(address) as session:
                with pytest.raises(ServerBusyError, match="capacity"):
                    session.run("b")
            thread.join(timeout=30)
            blocker.close()
            assert not errors
            assert server.metrics.counters["queries_rejected"] == 1
        finally:
            server.shutdown()

    def test_server_still_works_after_a_timeout(self, served, monkeypatch):
        graph, address, _ = served
        monkeypatch.setattr(daemon_module, "GraphSession", _SlowSession)
        monkeypatch.setattr(_SlowSession, "delay", 0.4)
        with connect(address) as session:
            with pytest.raises(QueryTimeoutError):
                session.run("a", timeout=0.05)
        time.sleep(0.5)  # let the abandoned query drain its slot
        monkeypatch.undo()
        with connect(address) as session:
            assert session.run("a").rows() == GraphSession(graph).run("a").rows()


class TestMetricsAndManagement:
    def test_metrics_report_counters_latency_and_utilization(self, served):
        _, address, _ = served
        with connect(address) as session:
            for _ in range(4):
                session.run("a.b")
            metrics = session.metrics()
        counters = metrics["counters"]
        assert counters["queries_total"] >= 4
        assert counters["connections_total"] >= 1
        latency = metrics["latency"]
        assert latency["count"] >= 4
        assert latency["p95_ms"] is not None and latency["p95_ms"] >= 0
        assert 0.0 <= metrics["worker_pool"]["utilization"] <= 1.0
        assert metrics["uptime_seconds"] > 0

    def test_load_graph_swaps_the_served_graph(self, served):
        _, address, _ = served
        replacement = (
            GraphBuilder(name="tiny").node("x", 1).node("y", 2)
            .edge("x", "r", "y").build()
        )
        with connect(address) as session:
            loaded = session.load_graph(replacement)
            assert loaded["num_nodes"] == 2 and loaded["name"] == "tiny"
            result = session.run("r")
            assert {(a.id, b.id) for a, b in result.pairs()} == {("x", "y")}

    def test_remote_point_cache_snapshot_loads_locally(self, served, tmp_path):
        graph, address, _ = served
        source = next(iter(graph.node_ids))
        path = tmp_path / "points.json"
        with connect(address) as session:
            remote_targets = session.targets("a", source)
            assert session.save_point_cache(path) >= 1
        local = GraphSession(graph)
        assert local.load_point_cache(path) >= 1
        assert local.targets("a", source) == remote_targets

    def test_no_graph_loaded_is_a_clean_error(self):
        server = ReproServer()
        address = server.start()
        try:
            with connect(address) as session:
                assert session.ping()  # ping needs no graph
                with pytest.raises(Exception, match="no graph loaded"):
                    session.run("a")
        finally:
            server.shutdown()

    def test_shutdown_disconnects_clients(self, served):
        _, address, server = served
        session = connect(address)
        assert session.ping()
        server.shutdown()
        with pytest.raises(Exception):
            session.run("a")
        session.close()
