"""Setup shim for environments without PEP 660 editable-install support.

The project metadata lives in pyproject.toml; this file only enables
``pip install -e .`` with older setuptools/pip tool-chains (and offline
machines lacking the ``wheel`` package).
"""

from setuptools import setup

setup()
