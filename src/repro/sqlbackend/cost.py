"""Cost-based selection of the SQL backend under ``backend="auto"``.

The decision reuses the planner's label statistics
(:func:`repro.planner.cost.regex_estimate` over per-label edge counts)
— no new statistics are gathered.  The SQL backend wins when a query is
*closure heavy*: a Kleene iteration over enough edges that the Python
worklist's per-configuration interpretation dominates, while the
recursive CTE streams the same frontier through the embedded engine's C
loop.  Everything else (small graphs, closure-free path shapes, seeded
point lookups) stays on the dict/compact kernels, whose constants win.

The thresholds are deliberately conservative: ``"auto"`` only re-routes
queries where the CTE's advantage is robust, so existing workloads keep
their measured kernels.  Answers are bit-identical either way — the
selection is purely a performance policy, enforced as such by the
equivalence suite in ``tests/sqlbackend``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..datagraph.index import LabelIndex
from ..planner.cost import regex_estimate
from ..planner.logical import AtomScan, Filter, HashJoin, PlanOp, Project, SeededScan
from ..query.data_rpq import DataRPQ
from ..regular import Concat, Plus, Regex, Star, Union
from .compile import STEP, concat_parts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.stats import GraphStatistics

__all__ = [
    "SQL_AUTO_MIN_NODES",
    "SQL_CLOSURE_FACTOR",
    "SQL_PIVOT_SELECTIVITY",
    "has_closure",
    "rpq_pays",
    "closure_pays",
    "plan_pays",
]

#: Below this many nodes ``"auto"`` never selects SQL: the per-query
#: seeding/decoding overhead and the kernels' low constants dominate.
SQL_AUTO_MIN_NODES = 1024

#: ``"auto"`` selects SQL only when the planner's estimate of the answer
#: relation is at least this many times the node count — the regime
#: where the closure frontier is traversed many times over.
SQL_CLOSURE_FACTOR = 4.0

#: A factorable concatenation pays off in SQL when its cheapest step
#: factor has at most ``|V| / SQL_PIVOT_SELECTIVITY`` edges: the factored
#: plan's closures are then seeded by a small pivot relation, while the
#: Python kernels still flow source masks through the whole closure.
SQL_PIVOT_SELECTIVITY = 4


def has_closure(expression: Regex) -> bool:
    """Whether a regex contains a Kleene iteration (``*`` or ``+``)."""
    if isinstance(expression, (Star, Plus)):
        return True
    if isinstance(expression, (Concat, Union)):
        return has_closure(expression.left) or has_closure(expression.right)
    return False


def rpq_pays(
    expression: Regex,
    index: Optional[LabelIndex],
    stats: Optional["GraphStatistics"] = None,
) -> bool:
    """Whether ``"auto"`` should run this RPQ through the SQL backend.

    *stats* (the planner v2 catalogue) sharpens the closure estimate
    with measured per-label fanout; the measured growth never drops
    below the textbook constant, so statistics can only widen — never
    narrow — the set of queries re-routed to SQL.
    """
    if index is None:
        return False
    num_nodes = len(index.nodes)
    if num_nodes < SQL_AUTO_MIN_NODES or not has_closure(expression):
        return False
    if _selective_pivot(expression, index, num_nodes):
        return True
    return regex_estimate(expression, index, stats) >= SQL_CLOSURE_FACTOR * num_nodes


def _selective_pivot(
    expression: Regex, index: LabelIndex, num_nodes: int
) -> bool:
    """Whether the factored plan of :mod:`repro.sqlbackend.compile`
    applies with a pivot selective enough to bound the closure work."""
    parts = concat_parts(expression)
    if parts is None:
        return False
    step_counts = [
        sum(index.edge_count(label) for label in labels)
        for kind, labels in parts
        if kind == STEP
    ]
    if not step_counts:
        return False
    return min(step_counts) * SQL_PIVOT_SELECTIVITY <= num_nodes


def closure_pays(label: str, index: Optional[LabelIndex]) -> bool:
    """Whether ``"auto"`` should run a GXPath axis star (``a*``) in SQL.

    An axis star is the degenerate one-state closure: it pays off when
    the label's edge relation is at least as large as the node set, so
    the closure genuinely iterates instead of terminating immediately.
    """
    if index is None:
        return False
    num_nodes = len(index.nodes)
    return num_nodes >= SQL_AUTO_MIN_NODES and index.edge_count(label) >= num_nodes


def plan_pays(
    root: PlanOp,
    index: Optional[LabelIndex],
    stats: Optional["GraphStatistics"] = None,
) -> bool:
    """Whether ``"auto"`` should lower a whole CRPQ plan to SQL.

    Conservative: every atom must be a plain RPQ (data atoms would be
    materialised Python-side anyway, erasing the win) and at least one
    must be closure heavy by :func:`rpq_pays`.
    """
    if index is None:
        return False
    pays = False
    for scan in _scans(root):
        if isinstance(scan.atom.query, DataRPQ):
            return False
        if rpq_pays(scan.atom.query.expression, index, stats):
            pays = True
    return pays


def _scans(node: PlanOp):
    if isinstance(node, (AtomScan, SeededScan)):
        yield node
    elif isinstance(node, (Project, Filter)):
        yield from _scans(node.child)
    elif isinstance(node, HashJoin):
        yield from _scans(node.left)
        yield from _scans(node.right)
