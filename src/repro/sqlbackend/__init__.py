"""The SQL execution backend: query IR compiled to recursive CTEs.

The third storage/execution backend next to the dict index and the
compact CSR (``ExecutionPolicy(backend="sql")``, cost-selected under
``"auto"``): the paper's relational encoding ``D_G`` materialised in an
embedded SQL engine (stdlib sqlite3 always, DuckDB when importable) and
kept current through the graph's delta journal, with RPQs, GXPath axis
stars and whole CRPQ plans compiled to ``WITH RECURSIVE``
product-reachability statements.  See ``DESIGN.md`` §7.
"""

from .backend import (
    clear_sql_caches,
    closure_pairs,
    evaluate_plan_rows,
    evaluate_rpq_pairs,
    sql_cache_stats,
    store_for,
)
from .cost import SQL_AUTO_MIN_NODES, closure_pays, plan_pays, rpq_pays
from .schema import SQL_DIALECTS, SqlStore, duckdb_available

__all__ = [
    "SQL_DIALECTS",
    "SQL_AUTO_MIN_NODES",
    "SqlStore",
    "duckdb_available",
    "store_for",
    "evaluate_rpq_pairs",
    "closure_pairs",
    "evaluate_plan_rows",
    "rpq_pays",
    "closure_pays",
    "plan_pays",
    "sql_cache_stats",
    "clear_sql_caches",
]
