"""The per-graph ``D_G`` database behind the SQL execution backend.

:class:`SqlStore` materialises the paper's relational encoding ``D_G``
(Section 6, :mod:`repro.datagraph.relational_view`) inside an embedded
SQL engine — the stdlib :mod:`sqlite3` always, DuckDB when importable —
in the shape the compiled queries of :mod:`repro.sqlbackend.compile`
execute over:

* ``nodes(node, value)`` — the binary relation ``N``, with node ids
  mapped onto dense integers (the same trick the compact CSR backend
  plays: SQL joins on machine ints, public ``NodeId`` values only at the
  decode boundary).  Values are stored as ``repr`` text with the
  ``relational_view`` null token, purely for ``D_G`` completeness —
  compiled queries never compare values in SQL (data tests stay on the
  Python side).
* ``edges(label, source, target)`` — the per-label relations ``E_a``
  folded into one table with a label column (arbitrary label strings
  never become SQL identifiers this way), covered by the two indexes a
  product-reachability CTE walks: ``(label, source)`` for forward steps
  and ``(label, target)`` for inverse axes.
* ``_src_seeds(node)`` / ``_dst_seeds(node)`` — tiny seeding tables the
  backend fills per point query, so compiled statements stay constant
  (and therefore prepared-statement-cache friendly) regardless of how
  many sources a seeded evaluation restricts to.

A store is pinned to one ``(graph, version)``: :meth:`SqlStore.refresh`
brings it to the graph's current version **incrementally** when the
graph's delta journal holds an unbroken chain from the store's version
(``INSERT``/``DELETE``/``UPDATE`` of exactly the changed facts), and
falls back to a full re-ingest otherwise.  ``full_rebuilds`` /
``incremental_refreshes`` count which path ran, so tests can pin the
incremental claim.

Stores are process- and thread-aware: the owning pid is recorded (an
inherited sqlite connection must not be used across ``fork``; the
registry in :mod:`repro.sqlbackend.backend` rebuilds post-fork), and all
statement execution happens under the store's lock (sqlite connections
are created with ``check_same_thread=False`` so thread-pool executors
can share the session's store).
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..datagraph.graph import DataGraph
from ..datagraph.node import NodeId
from ..datagraph.values import NULL
from ..exceptions import EvaluationError

__all__ = ["SQL_DIALECTS", "SqlStore", "duckdb_available"]

#: Embedded engines the store can run on.  ``"auto"`` prefers DuckDB
#: when importable and falls back to the stdlib sqlite3.
SQL_DIALECTS = ("auto", "sqlite", "duckdb")

#: Value stored for the SQL null data value, matching the token
#: ``relational_view`` uses in relational instances.
_NULL_TOKEN = "__repro_null__"


def duckdb_available() -> bool:
    """Whether the optional DuckDB engine can be imported."""
    try:  # pragma: no cover - exercised only on duckdb-enabled CI legs
        import duckdb  # noqa: F401
    except ImportError:
        return False
    return True  # pragma: no cover - duckdb-enabled CI legs


def _encode_value(value) -> str:
    if value is NULL or value == NULL:
        return _NULL_TOKEN
    return repr(value)


class SqlStore:
    """One graph's ``D_G`` database plus the dense int-id mapping.

    Parameters
    ----------
    graph:
        The data graph to ingest.  The store does **not** keep a
        reference to it — :meth:`refresh` takes the graph again, so the
        weak-keyed registry of :mod:`repro.sqlbackend.backend` never
        pins a graph alive through its own store.
    dialect:
        ``"sqlite"``, ``"duckdb"`` or ``"auto"`` (DuckDB when
        importable, else sqlite).
    """

    __slots__ = (
        "dialect",
        "connection",
        "version",
        "pid",
        "lock",
        "full_rebuilds",
        "incremental_refreshes",
        "_ids",
        "_pos",
        "_label_stats",
    )

    def __init__(self, graph: DataGraph, dialect: str = "auto"):
        if dialect not in SQL_DIALECTS:
            raise EvaluationError(
                f"unknown SQL dialect {dialect!r}; expected one of {', '.join(SQL_DIALECTS)}"
            )
        if dialect == "auto":
            dialect = "duckdb" if duckdb_available() else "sqlite"
        if dialect == "duckdb":  # pragma: no cover - duckdb-enabled CI legs
            import duckdb

            self.connection = duckdb.connect(":memory:")
        else:
            self.connection = sqlite3.connect(":memory:", check_same_thread=False)
            # Recursive CTEs spill their UNION-dedup b-trees to temp
            # storage, which defaults to file-backed even for a
            # ``:memory:`` database — keeping temp in memory roughly
            # halves closure fixpoint time on large relations.
            self.connection.execute("PRAGMA temp_store=MEMORY")
            self.connection.execute("PRAGMA cache_size=-65536")
        self.dialect = dialect
        self.version: Optional[int] = None
        self.pid = os.getpid()
        self.lock = threading.RLock()
        self.full_rebuilds = 0
        self.incremental_refreshes = 0
        #: Dense ordering: ``_ids[i]`` is the node id stored as int ``i``
        #: (``None`` tombstones removed nodes — their ints never recycle,
        #: so stale rows can never alias a live node).
        self._ids: List[Optional[NodeId]] = []
        self._pos: Dict[NodeId, int] = {}
        self._label_stats: Optional[Tuple[Optional[int], Dict[str, int]]] = None
        self._create_schema()
        self.refresh(graph)

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def _create_schema(self) -> None:
        execute = self.connection.execute
        execute("CREATE TABLE nodes (node INTEGER PRIMARY KEY, value TEXT)")
        execute("CREATE TABLE edges (label TEXT, source INTEGER, target INTEGER)")
        execute("CREATE INDEX edges_forward ON edges (label, source, target)")
        execute("CREATE INDEX edges_backward ON edges (label, target, source)")
        execute("CREATE TABLE _src_seeds (node INTEGER PRIMARY KEY)")
        execute("CREATE TABLE _dst_seeds (node INTEGER PRIMARY KEY)")

    # ------------------------------------------------------------------
    # Int-id mapping
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Live node count (tombstones excluded); used by tests."""
        return len(self._pos)

    def node_int(self, node_id: NodeId) -> Optional[int]:
        """The dense int of a node id, or ``None`` for unknown ids."""
        return self._pos.get(node_id)

    def node_id(self, node_int: int) -> NodeId:
        """The public node id stored as *node_int*."""
        return self._ids[node_int]

    def ints_of(self, node_ids: Iterable[NodeId]) -> List[int]:
        """Dense ints of *node_ids*, silently dropping unknown ids
        (matching the seeded-kernel contract of the other backends)."""
        position = self._pos
        out = []
        for node_id in node_ids:
            i = position.get(node_id)
            if i is not None:
                out.append(i)
        return out

    def _assign(self, node_id: NodeId) -> int:
        i = len(self._ids)
        self._ids.append(node_id)
        self._pos[node_id] = i
        return i

    # ------------------------------------------------------------------
    # Ingest and refresh
    # ------------------------------------------------------------------
    def refresh(self, graph: DataGraph) -> bool:
        """Bring the store to *graph*'s current version.

        Returns ``True`` when anything changed.  The incremental path
        applies the journal's composed :class:`~repro.deltas.delta.
        GraphDelta` between the store's version and the graph's; a
        broken chain (journal eviction, single-op mutations) falls back
        to a full re-ingest.  Either way the store ends bit-identical to
        ``encode_graph(graph)``.
        """
        with self.lock:
            version = graph.version
            if self.version == version:
                return False
            delta = (
                graph.journal.composed(self.version, version)
                if self.version is not None
                else None
            )
            if delta is None:
                self._ingest(graph)
                self.full_rebuilds += 1
            else:
                self._apply_delta(delta)
                self.incremental_refreshes += 1
            self.version = version
            return True

    def _ingest(self, graph: DataGraph) -> None:
        connection = self.connection
        connection.execute("DELETE FROM edges")
        connection.execute("DELETE FROM nodes")
        self._ids = []
        self._pos = {}
        node_rows = [
            (self._assign(node.id), _encode_value(node.value)) for node in graph.nodes
        ]
        connection.executemany("INSERT INTO nodes VALUES (?, ?)", node_rows)
        position = self._pos
        edge_rows = [
            (label, position[source.id], position[target.id])
            for source, label, target in graph.edges
        ]
        connection.executemany("INSERT INTO edges VALUES (?, ?, ?)", edge_rows)
        self._commit()

    def _apply_delta(self, delta) -> None:
        connection = self.connection
        position = self._pos
        # Removals first (a net remove+add of one id arrives as both
        # lists; the delta normalisation keeps them disjoint per fact).
        removed_edges = [
            (label, position[source], position[target])
            for source, label, target in delta.removed_edges
            if source in position and target in position
        ]
        if removed_edges:
            connection.executemany(
                "DELETE FROM edges WHERE label = ? AND source = ? AND target = ?",
                removed_edges,
            )
        for node_id, _value in delta.removed_nodes:
            i = position.pop(node_id, None)
            if i is None:
                continue
            self._ids[i] = None  # tombstone: ints never recycle
            connection.execute("DELETE FROM nodes WHERE node = ?", (i,))
            connection.execute(
                "DELETE FROM edges WHERE source = ? OR target = ?", (i, i)
            )
        added_nodes = [
            (self._assign(node_id), _encode_value(value))
            for node_id, value in delta.added_nodes
            if node_id not in position
        ]
        if added_nodes:
            connection.executemany("INSERT INTO nodes VALUES (?, ?)", added_nodes)
        value_rows = [
            (_encode_value(new), position[node_id])
            for node_id, _old, new in delta.value_changes
            if node_id in position
        ]
        if value_rows:
            connection.executemany(
                "UPDATE nodes SET value = ? WHERE node = ?", value_rows
            )
        added_edges = [
            (label, position[source], position[target])
            for source, label, target in delta.added_edges
            if source in position and target in position
        ]
        if added_edges:
            connection.executemany("INSERT INTO edges VALUES (?, ?, ?)", added_edges)
        self._commit()

    def _commit(self) -> None:
        if self.dialect == "sqlite":
            self.connection.commit()
        else:  # pragma: no cover - duckdb-enabled CI legs
            self.connection.commit()

    # ------------------------------------------------------------------
    # Execution helpers (called by the backend under the store lock)
    # ------------------------------------------------------------------
    def seed(self, table: str, ints: Sequence[int]) -> None:
        """Replace a seeding table's rows (caller holds the lock)."""
        self.connection.execute(f"DELETE FROM {table}")
        self.connection.executemany(
            f"INSERT INTO {table} VALUES (?)", [(i,) for i in ints]
        )

    def label_counts(self) -> Dict[str, int]:
        """Per-label edge counts at the store's current version.

        The statistics behind :func:`~repro.sqlbackend.compile.
        pick_pivot`'s cost-based factor selection; memoised per version
        so repeated compilations of one workload pay one aggregation.
        """
        with self.lock:
            if self._label_stats is None or self._label_stats[0] != self.version:
                counts = dict(
                    self.connection.execute(
                        "SELECT label, COUNT(*) FROM edges GROUP BY label"
                    ).fetchall()
                )
                self._label_stats = (self.version, counts)
            return self._label_stats[1]

    def rows(self, sql: str) -> List[Tuple]:
        """Run one compiled statement and fetch all rows (caller holds
        the lock).  sqlite reuses prepared statements from its
        per-connection statement cache, so re-running a cached compiled
        query skips the SQL parse entirely."""
        cursor = self.connection.execute(sql)
        return cursor.fetchall()

    # ------------------------------------------------------------------
    def facts(self) -> Tuple[Dict[NodeId, str], set]:
        """The store's contents decoded to public ids, for tests:
        ``({node_id: value_text}, {(source_id, label, target_id)})``."""
        with self.lock:
            nodes = {
                self._ids[i]: value
                for i, value in self.rows("SELECT node, value FROM nodes")
            }
            edges = {
                (self._ids[s], label, self._ids[t])
                for label, s, t in self.rows("SELECT label, source, target FROM edges")
            }
        return nodes, edges

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        try:
            self.connection.close()
        except Exception:  # pragma: no cover - already closed
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SqlStore {self.dialect} v{self.version}: "
            f"{len(self._pos)} nodes, {self.full_rebuilds} rebuilds, "
            f"{self.incremental_refreshes} incremental>"
        )
