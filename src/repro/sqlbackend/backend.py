"""Execution of compiled SQL: stores, statement cache, decode boundary.

This module owns the runtime half of the SQL backend:

* a **weak-keyed store registry** — one :class:`~repro.sqlbackend.
  schema.SqlStore` per live graph, refreshed to the graph's version on
  every use (incrementally, through the delta journal) and rebuilt after
  ``fork`` (an inherited sqlite connection must not be reused, so stores
  are pinned to the pid that created them);
* a **compiled-SQL LRU** keyed on the structural query key plus the
  seeding shape, mirroring the engine's automaton caches: two queries
  parsed from different texts but with equal ASTs share one SQL string,
  and sqlite's per-connection prepared-statement cache then skips the
  SQL parse on re-execution because the statement text is byte-identical
  (seeds live in the ``_src_seeds`` / ``_dst_seeds`` tables, never in
  the statement);
* the **decode boundary**: compiled statements join on the store's dense
  ints; public :class:`~repro.datagraph.node.NodeId` values appear only
  when seeding and when decoding fetched rows, exactly like the compact
  CSR backend.

The entry points mirror the engine seams they plug into:
:func:`evaluate_rpq_pairs` (full or seeded RPQ relations, the
``evaluate_rpq`` / ``evaluate_atom_ids`` twin), :func:`closure_pairs`
(GXPath axis stars) and :func:`evaluate_plan_rows` (whole CRPQ plans for
:func:`repro.planner.execute.execute_plan`).
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from ..datagraph.graph import DataGraph
from ..datagraph.node import NodeId
from ..engine.cache import CacheStats, LRUCache
from ..query.data_rpq import DataRPQ
from ..regular import Regex
from .compile import (
    DST_SEEDS,
    SRC_SEEDS,
    atom_table_name,
    closure_sql,
    concat_parts,
    crpq_sql,
    factored_rpq_sql,
    pick_pivot,
    rpq_sql,
)
from .schema import SqlStore

__all__ = [
    "store_for",
    "evaluate_rpq_pairs",
    "closure_pairs",
    "evaluate_plan_rows",
    "sql_cache_stats",
    "clear_sql_caches",
]

Pair = Tuple[NodeId, NodeId]

#: One store per live graph.  Weak keys: dropping the last graph
#: reference drops its database (stores hold no graph reference back).
_STORES: "weakref.WeakKeyDictionary[DataGraph, SqlStore]" = weakref.WeakKeyDictionary()
_STORES_LOCK = threading.Lock()

#: Compiled statements, keyed on ``(shape, structural plan, seeded
#: sources?, seeded targets?)``.
_SQL_CACHE: LRUCache[str] = LRUCache(256)


def store_for(graph: DataGraph, dialect: str = "auto") -> SqlStore:
    """The graph's ``D_G`` store, built on first use and refreshed to the
    graph's current version (incrementally when the delta journal
    allows).

    A store created before a ``fork`` is discarded in the child; an
    explicit *dialect* differing from the cached store's also rebuilds
    (sessions pin one dialect, so this never thrashes in practice).
    """
    with _STORES_LOCK:
        store = _STORES.get(graph)
        if store is not None and (
            store.pid != os.getpid()
            or (dialect != "auto" and store.dialect != dialect)
        ):
            store.close()
            store = None
        if store is None:
            store = SqlStore(graph, dialect)
            _STORES[graph] = store
            return store
    store.refresh(graph)
    return store


def _expression_key(engine, query) -> Regex:
    """The structural regex AST behind any RPQ-like query value."""
    if isinstance(query, str):
        return engine.parse(query)
    if isinstance(query, Regex):
        return query
    return query.expression


def _decode_pairs(store: SqlStore, rows) -> FrozenSet[Pair]:
    ids = store.node_id
    return frozenset((ids(source), ids(target)) for source, target in rows)


def _seed(
    store: SqlStore, table: str, node_ids: Optional[Iterable[NodeId]]
) -> Optional[bool]:
    """Fill one seeding table; ``False`` means the seed set died (no
    surviving known ids), ``None`` means unseeded."""
    if node_ids is None:
        return None
    ints = store.ints_of(set(node_ids))
    if not ints:
        return False
    store.seed(table, sorted(ints))
    return True


def evaluate_rpq_pairs(
    graph: DataGraph,
    query,
    engine=None,
    sources: Optional[Iterable[NodeId]] = None,
    targets: Optional[Iterable[NodeId]] = None,
    dialect: str = "auto",
) -> FrozenSet[Pair]:
    """One RPQ's relation ``e(G)`` as id pairs, via the recursive CTE.

    *sources* / *targets* restrict the relation exactly like the seeded
    kernels (unknown ids are dropped); the compiled statement is shared
    across seed sets of the same shape.

    Full-relation queries whose regex is a concatenation of letter-set
    steps and closures compile to the **factored** plan instead of the
    product CTE: the store's label statistics pick the most selective
    step factor as the base relation, and the closures around it run as
    seeded fixpoints — work bounded by the pivot's reachable
    neighbourhood rather than ``|V| x closure``.
    """
    if engine is None:
        from ..engine.engine import default_engine

        engine = default_engine()
    expression = _expression_key(engine, query)
    store = store_for(graph, dialect)
    with store.lock:
        store.refresh(graph)
        if sources is None and targets is None:
            parts = concat_parts(expression)
            if parts is not None:
                pivot = pick_pivot(parts, store.label_counts())
                sql = _SQL_CACHE.get_or_build(
                    ("rpq-factored", expression, pivot),
                    lambda: factored_rpq_sql(parts, pivot),
                )
                return _decode_pairs(store, store.rows(sql))
        automaton = engine.compile_rpq(expression)
        key = ("rpq", expression, sources is not None, targets is not None)
        sql = _SQL_CACHE.get_or_build(
            key,
            lambda: rpq_sql(
                automaton,
                seeded_sources=sources is not None,
                seeded_targets=targets is not None,
            ),
        )
        if _seed(store, SRC_SEEDS, sources) is False:
            return frozenset()
        if _seed(store, DST_SEEDS, targets) is False:
            return frozenset()
        rows = store.rows(sql)
        return _decode_pairs(store, rows)


def closure_pairs(
    graph: DataGraph,
    label: str,
    inverse: bool = False,
    dialect: str = "auto",
) -> FrozenSet[Pair]:
    """The reflexive-transitive closure of one axis as id pairs.

    For ``inverse=True`` the statement traverses the transposed edges
    directly, so the result *is* the inverse-axis closure — no transpose
    at the caller (unlike the kernel path, which computes forward and
    flips).
    """
    sql = _SQL_CACHE.get_or_build(
        ("closure", label, inverse), lambda: closure_sql(label, inverse)
    )
    store = store_for(graph, dialect)
    with store.lock:
        store.refresh(graph)
        rows = store.rows(sql)
        return _decode_pairs(store, rows)


def evaluate_plan_rows(
    root,
    graph: DataGraph,
    engine=None,
    null_semantics: bool = False,
    dialect: str = "auto",
) -> Set[Tuple[NodeId, ...]]:
    """A whole CRPQ plan's answer rows (head-order id tuples) in SQL.

    The plan tree lowers once (the statement is cached on the structural
    plan — frozen dataclasses, hashable); RPQ atoms run as recursive
    CTEs inside the statement, data-RPQ atoms are materialised through
    the engine into per-atom temp tables and joined in SQL.  A Boolean
    head returns ``{()}`` / empty, matching ``execute_plan``.
    """
    if engine is None:
        from ..engine.engine import default_engine

        engine = default_engine()
    store = store_for(graph, dialect)
    data_scans, head = _prepare_plan(root, engine)
    sql = _SQL_CACHE.get_or_build(("crpq", root), lambda: crpq_sql(root))
    with store.lock:
        store.refresh(graph)
        for scan in data_scans:
            pairs = engine.evaluate_atom_ids(
                graph, scan.atom.query, null_semantics=null_semantics
            )
            table = atom_table_name(scan.index)
            store.connection.execute(f"DROP TABLE IF EXISTS {table}")
            store.connection.execute(f"CREATE TABLE {table} (a INTEGER, b INTEGER)")
            ints = store.node_int
            store.connection.executemany(
                f"INSERT INTO {table} VALUES (?, ?)",
                [
                    (source_int, target_int)
                    for source, target in pairs
                    if (source_int := ints(source)) is not None
                    and (target_int := ints(target)) is not None
                ],
            )
        rows = store.rows(sql)
    if not head:
        return {()} if rows else set()
    ids = store.node_id
    return {tuple(ids(value) for value in row) for row in rows}


def _prepare_plan(root, engine):
    """Attach compiled automata to the plan's RPQ scans and collect its
    data-RPQ scans (which need Python-side materialisation).

    Plan nodes are frozen dataclasses; the automaton rides in the node's
    ``__dict__`` via ``object.__setattr__`` — it is a pure function of
    the atom's regex (graph-independent), so a cached plan keeps a valid
    attachment across graphs and versions.
    """
    from ..planner.logical import AtomScan, Filter, HashJoin, Project, SeededScan

    data_scans = []

    def walk(node):
        if isinstance(node, (AtomScan, SeededScan)):
            if isinstance(node.atom.query, DataRPQ):
                data_scans.append(node)
            elif getattr(node, "_compiled", None) is None:
                object.__setattr__(
                    node, "_compiled", engine.compile_rpq(node.atom.query)
                )
        elif isinstance(node, (Project, Filter)):
            walk(node.child)
        elif isinstance(node, HashJoin):
            walk(node.left)
            walk(node.right)

    walk(root)
    return data_scans, root.head


def sql_cache_stats() -> CacheStats:
    """Hit/miss snapshot of the compiled-SQL LRU (for tests and repr)."""
    return _SQL_CACHE.stats()


def clear_sql_caches() -> None:
    """Drop all compiled SQL and all graph stores (mainly for tests)."""
    _SQL_CACHE.clear()
    with _STORES_LOCK:
        for store in list(_STORES.values()):
            store.close()
        _STORES.clear()
