"""Compiling query IR to SQL over the ``D_G`` schema.

The compile pipeline mirrors the engine's: a regex is parsed and
compiled (through the shared :class:`~repro.engine.engine.
EvaluationEngine` caches) into an ε-free
:class:`~repro.engine.compiled.CompiledAutomaton`, whose transition
table is then emitted as an inline relation and joined against the
``edges`` table inside a ``WITH RECURSIVE`` product-reachability CTE —
the set-at-a-time twin of the Python worklist kernels::

    WITH RECURSIVE
    trans(state, label, next) AS (...automaton moves...),
    reach(src, node, state) AS (
        SELECT n.node, n.node, i.state FROM nodes AS n CROSS JOIN (...initial...) AS i
        UNION
        SELECT r.src, e.target, t.next
        FROM reach AS r CROSS JOIN trans AS t CROSS JOIN edges AS e
        WHERE t.state = r.state AND e.label = t.label AND e.source = r.node
    )
    SELECT DISTINCT r.src, r.node FROM reach AS r WHERE r.state IN (...accepting...)

``UNION`` (not ``UNION ALL``) dedupes configurations, so the fixpoint
terminates on cyclic graphs exactly like the kernels' visited sets.
Seeded variants replace the base relation with the ``_src_seeds`` table
and/or filter accepting rows against ``_dst_seeds`` — the statement text
is identical for every seed set, which is what lets sqlite's prepared-
statement cache (and this module's LRU) amortise compilation across
point queries.

GXPath axis stars compile to the degenerate one-state closure CTE, and
CRPQ plans from :func:`repro.planner.planner.plan_crpq` lower
operator-by-operator: every scan becomes a named reachability CTE (a
seeded scan's base case selects from the *already lowered* left join
side — semijoin pushdown expressed as SQL), hash joins become equi-joins
on the shared variables, filters become ``WHERE`` equalities, and the
projection becomes the final ``SELECT DISTINCT``.  Data-RPQ atoms have
register valuations no first-order CTE can carry, so their relations are
materialised Python-side into per-plan temp tables and joined like any
other CTE — the join itself still runs inside the SQL engine.

Everything emitted here is engine-portable: plain SQL-92 joins plus
recursive CTEs, accepted verbatim by both sqlite and DuckDB.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engine.compiled import CompiledAutomaton
from ..exceptions import EvaluationError
from ..planner.logical import AtomScan, Filter, HashJoin, PlanOp, Project, SeededScan
from ..query.data_rpq import DataRPQ
from ..regular import Concat, Epsilon, Letter, Plus, Regex, Star, Union

__all__ = [
    "rpq_sql",
    "closure_sql",
    "crpq_sql",
    "atom_table_name",
    "letter_set",
    "concat_parts",
    "pick_pivot",
    "factored_rpq_sql",
]

#: Seeding tables of :class:`~repro.sqlbackend.schema.SqlStore`.
SRC_SEEDS = "_src_seeds"
DST_SEEDS = "_dst_seeds"


def _text(value: str) -> str:
    """A SQL string literal (labels only; never user data values)."""
    return "'" + value.replace("'", "''") + "'"


def _ident(name: str) -> str:
    """A quoted SQL identifier (CRPQ variables, including the planner's
    primed loop columns)."""
    return '"' + name.replace('"', '""') + '"'


def _inline_rows(rows: List[Tuple], columns: Tuple[str, ...]) -> str:
    """An inline relation as a UNION ALL of literal selects.

    ``VALUES`` row-constructor aliasing differs between engines;
    ``SELECT ... UNION ALL SELECT ...`` is the portable spelling and
    these relations are tiny (automaton transitions and states).
    """
    selects = []
    for index, row in enumerate(rows):
        parts = []
        for column, value in zip(columns, row):
            literal = _text(value) if isinstance(value, str) else str(value)
            parts.append(f"{literal} AS {column}" if index == 0 else literal)
        selects.append("SELECT " + ", ".join(parts))
    return " UNION ALL ".join(selects)


# ----------------------------------------------------------------------
# Plain RPQs: the product-reachability CTE
# ----------------------------------------------------------------------
def rpq_sql(
    automaton: CompiledAutomaton,
    seeded_sources: bool = False,
    seeded_targets: bool = False,
    prefix: str = "q",
) -> str:
    """The full SQL statement of one RPQ's (possibly seeded) relation.

    The result set is ``(src_int, dst_int)`` pairs over the store's
    dense ids.  *prefix* namespaces the CTEs so several compiled RPQs
    can coexist in one statement (the CRPQ lowering).
    """
    parts = _rpq_ctes(automaton, seeded_sources, prefix)
    if parts is None:
        return "SELECT 0 AS src, 0 AS node WHERE 1 = 0"
    ctes, select = _rpq_select(automaton, seeded_targets, prefix)
    if ctes is None:
        return select
    return f"WITH RECURSIVE {', '.join(parts + ctes)} {select}"


def _transition_rows(automaton: CompiledAutomaton) -> List[Tuple[int, str, int]]:
    rows: List[Tuple[int, str, int]] = []
    for state, by_symbol in enumerate(automaton.moves):
        for symbol, targets in by_symbol:
            for target in targets:
                rows.append((state, symbol, target))
    return rows


def _rpq_ctes(
    automaton: CompiledAutomaton, seeded_sources: bool, prefix: str
) -> Optional[List[str]]:
    """The ``trans`` and ``reach`` CTE definitions, or ``None`` for an
    automaton with no initial states (an empty relation)."""
    if not automaton.initial:
        return None
    initial = " UNION ALL ".join(
        f"SELECT {state} AS state" if index == 0 else f"SELECT {state}"
        for index, state in enumerate(automaton.initial)
    )
    base_table = SRC_SEEDS if seeded_sources else "nodes"
    base = (
        f"SELECT n.node AS src, n.node AS node, i.state AS state "
        f"FROM {base_table} AS n CROSS JOIN ({initial}) AS i"
    )
    transitions = _transition_rows(automaton)
    reach = f"{prefix}_reach(src, node, state)"
    if not transitions:
        return [f"{reach} AS ({base})"]
    trans_rows = _inline_rows(transitions, ("state", "label", "next"))
    step = _step_sql(prefix)
    return [
        f"{prefix}_trans(state, label, next) AS ({trans_rows})",
        f"{reach} AS ({base} UNION {step})",
    ]


def _step_sql(prefix: str) -> str:
    """One product-reachability step.

    ``CROSS JOIN`` is sqlite's join-order directive: the recursive queue
    row must be the outermost loop (its frontier rows arrive one at a
    time) with ``edges`` probed innermost through the
    ``(label, source)`` prefix of ``edges_forward`` — left to its own
    statistics sqlite has been seen scanning the whole queue per edge
    instead, turning the fixpoint quadratic.
    """
    return (
        f"SELECT r.src, e.target, t.next FROM {prefix}_reach AS r "
        f"CROSS JOIN {prefix}_trans AS t CROSS JOIN edges AS e "
        f"WHERE t.state = r.state AND e.label = t.label AND e.source = r.node"
    )


def _rpq_select(
    automaton: CompiledAutomaton, seeded_targets: bool, prefix: str
) -> Tuple[Optional[List[str]], str]:
    """The final accepting-row select over the reach CTE."""
    if not automaton.accepting:
        return None, "SELECT 0 AS src, 0 AS node WHERE 1 = 0"
    accepting = ", ".join(str(state) for state in sorted(automaton.accepting))
    where = f"r.state IN ({accepting})"
    if seeded_targets:
        where += f" AND r.node IN (SELECT node FROM {DST_SEEDS})"
    return [], (
        f"SELECT DISTINCT r.src, r.node FROM {prefix}_reach AS r WHERE {where}"
    )


# ----------------------------------------------------------------------
# GXPath axis stars: the one-state closure CTE
# ----------------------------------------------------------------------
def closure_sql(
    label: str,
    inverse: bool = False,
    seeded_sources: bool = False,
    seeded_targets: bool = False,
) -> str:
    """The reflexive-transitive closure of one label's edge relation.

    The inverse axis traverses the transposed edges (``target -> source``)
    directly, which equals the transpose of the forward closure — exactly
    the semantics of :class:`~repro.gxpath.ast.AxisStar` with
    ``inverse=True``.
    """
    base_table = SRC_SEEDS if seeded_sources else "nodes"
    base = f"SELECT n.node AS src, n.node AS node FROM {base_table} AS n"
    # CROSS JOIN pins the queue row as the outer loop (see _step_sql).
    if inverse:
        step = (
            f"SELECT r.src, e.source FROM closure AS r CROSS JOIN edges AS e "
            f"WHERE e.label = {_text(label)} AND e.target = r.node"
        )
    else:
        step = (
            f"SELECT r.src, e.target FROM closure AS r CROSS JOIN edges AS e "
            f"WHERE e.label = {_text(label)} AND e.source = r.node"
        )
    where = (
        f" WHERE r.node IN (SELECT node FROM {DST_SEEDS})" if seeded_targets else ""
    )
    return (
        f"WITH RECURSIVE closure(src, node) AS ({base} UNION {step}) "
        f"SELECT DISTINCT r.src, r.node FROM closure AS r{where}"
    )


# ----------------------------------------------------------------------
# Factored concatenations: cost-selected semijoin pushdown inside an RPQ
# ----------------------------------------------------------------------
#: Part kinds of a factorable concatenation: one edge step over a letter
#: set, or the Kleene star / plus of one.
STEP, STAR, PLUS = "step", "star", "plus"

Part = Tuple[str, Tuple[str, ...]]


def letter_set(expression: Regex) -> Optional[Tuple[str, ...]]:
    """The sorted label tuple of a pure letter union, else ``None``."""
    if isinstance(expression, Letter):
        return (expression.symbol,)
    if isinstance(expression, Union):
        left = letter_set(expression.left)
        right = letter_set(expression.right)
        if left is None or right is None:
            return None
        return tuple(sorted(set(left + right)))
    return None


def concat_parts(expression: Regex) -> Optional[Tuple[Part, ...]]:
    """The factor sequence of a concatenation of letter-set steps and
    letter-set closures, or ``None`` for any other shape.

    ``a*.b`` yields ``((STAR, ('a',)), (STEP, ('b',)))``; shapes with
    nested structure under an iteration (``(a.b)*``) or unions of
    concatenations are not factorable and run as product CTEs.
    """
    factors: List[Regex] = []

    def flatten(e: Regex) -> None:
        if isinstance(e, Concat):
            flatten(e.left)
            flatten(e.right)
        else:
            factors.append(e)

    flatten(expression)
    parts: List[Part] = []
    for factor in factors:
        labels = letter_set(factor)
        if labels is not None:
            parts.append((STEP, labels))
            continue
        if isinstance(factor, (Star, Plus)):
            labels = letter_set(factor.inner)
            if labels is None:
                return None
            parts.append((STAR if isinstance(factor, Star) else PLUS, labels))
            continue
        if isinstance(factor, Epsilon):
            continue
        return None
    if not parts:
        return None
    return tuple(parts)


def pick_pivot(parts: Tuple[Part, ...], label_counts: Dict[str, int]) -> int:
    """The index of the part evaluation starts from.

    The cheapest single-step part by the store's label statistics: its
    edge relation is the base the closures grow from, so every later
    fixpoint is seeded by (and therefore bounded by reachability from)
    the most selective factor instead of all ``|V|`` nodes — the same
    semijoin argument the CRPQ planner applies across atoms, applied
    inside one RPQ.  A concatenation of closures only (no step part)
    starts from its leftmost factor over the full node set.
    """
    steps = [index for index, (kind, _labels) in enumerate(parts) if kind == STEP]
    if not steps:
        return 0
    return min(
        steps,
        key=lambda i: (sum(label_counts.get(label, 0) for label in parts[i][1]), i),
    )


def _labels_clause(labels: Tuple[str, ...]) -> str:
    if len(labels) == 1:
        return f"e.label = {_text(labels[0])}"
    return "e.label IN (" + ", ".join(_text(label) for label in labels) + ")"


def factored_rpq_sql(
    parts: Tuple[Part, ...], pivot: int, prefix: str = "q"
) -> str:
    """The factored statement of one recognised concatenation.

    The pivot part materialises first; every part left of it extends the
    relation's ``src`` endpoint backward (probing ``edges_backward``),
    every part right of it extends ``dst`` forward.  Closure extensions
    are recursive CTEs *seeded by the relation built so far*, so their
    fixpoints only ever visit configurations that can still join with
    the pivot — work is bounded by the answer's reachable neighbourhood,
    not by ``|V| x closure`` as in the product CTE.
    """
    ctes: List[str] = []
    counter = 0

    def emit(body: str) -> str:
        nonlocal counter
        name = f"{prefix}_part{counter}"
        counter += 1
        ctes.append(f"{name}(src, dst) AS ({body})")
        return name

    def step(current: str, labels: Tuple[str, ...], backward: bool) -> str:
        if backward:
            select = (
                f"SELECT DISTINCT e.source AS src, r.dst AS dst "
                f"FROM {current} AS r CROSS JOIN edges AS e "
                f"WHERE {_labels_clause(labels)} AND e.target = r.src"
            )
        else:
            select = (
                f"SELECT DISTINCT r.src AS src, e.target AS dst "
                f"FROM {current} AS r CROSS JOIN edges AS e "
                f"WHERE {_labels_clause(labels)} AND e.source = r.dst"
            )
        return emit(select)

    def closure(current: str, labels: Tuple[str, ...], backward: bool) -> str:
        nonlocal counter
        name = f"{prefix}_part{counter}"
        counter += 1
        # CROSS JOIN pins the queue row as the outer loop (see _step_sql).
        if backward:
            grow = (
                f"SELECT e.source, r.dst FROM {name} AS r CROSS JOIN edges AS e "
                f"WHERE {_labels_clause(labels)} AND e.target = r.src"
            )
        else:
            grow = (
                f"SELECT r.src, e.target FROM {name} AS r CROSS JOIN edges AS e "
                f"WHERE {_labels_clause(labels)} AND e.source = r.dst"
            )
        ctes.append(
            f"{name}(src, dst) AS (SELECT src, dst FROM {current} UNION {grow})"
        )
        return name

    def extend(current: str, part: Part, backward: bool) -> str:
        kind, labels = part
        if kind == STEP:
            return step(current, labels, backward)
        if kind == PLUS:  # e+ == e . e*: one mandatory step, then the star
            current = step(current, labels, backward)
        return closure(current, labels, backward)

    # The pivot's own relation is the base everything grows from: the
    # edge step itself, or — for a pivot closure — the closure grown
    # from its zero-step (identity) or one-step (edge) base.
    kind, labels = parts[pivot]
    edge_base = (
        f"SELECT DISTINCT e.source AS src, e.target AS dst "
        f"FROM edges AS e WHERE {_labels_clause(labels)}"
    )
    if kind == STEP:
        current = emit(edge_base)
    else:
        current = emit(
            edge_base
            if kind == PLUS
            else "SELECT n.node AS src, n.node AS dst FROM nodes AS n"
        )
        current = closure(current, labels, backward=False)
    for index in range(pivot - 1, -1, -1):
        current = extend(current, parts[index], backward=True)
    for index in range(pivot + 1, len(parts)):
        current = extend(current, parts[index], backward=False)
    select = f"SELECT DISTINCT src, dst FROM {current}"
    return f"WITH RECURSIVE {', '.join(ctes)} {select}"


# ----------------------------------------------------------------------
# CRPQ plans: operator-by-operator lowering to named CTEs
# ----------------------------------------------------------------------
def atom_table_name(index: int) -> str:
    """The temp table a data-RPQ atom's relation is materialised into."""
    return f"_crpq_atom_{index}"


class _Lowering:
    """One plan tree's lowering state: ordered CTE definitions plus a
    counter for unique names."""

    def __init__(self) -> None:
        self.ctes: List[str] = []
        self.recursive = False
        self._counter = 0

    def fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}{self._counter}"

    # ------------------------------------------------------------------
    def lower(
        self, node: PlanOp, seeds: Optional[Dict[str, str]] = None
    ) -> Tuple[str, Tuple[str, ...]]:
        """Lower one operator; returns ``(cte_name, columns)``.

        *seeds* maps seed variables to the CTE holding their surviving
        bindings (set by the parent join when lowering its right side).
        """
        if isinstance(node, (AtomScan, SeededScan)):
            return self._scan(node, seeds or {})
        if isinstance(node, Filter):
            child_name, child_columns = self.lower(node.child, seeds)
            keep = tuple(c for c in child_columns if c != node.right)
            name = self.fresh("f")
            cols = ", ".join(_ident(c) for c in keep)
            self.ctes.append(
                f"{name} AS (SELECT DISTINCT {cols} FROM {child_name} "
                f"WHERE {_ident(node.left)} = {_ident(node.right)})"
            )
            return name, keep
        if isinstance(node, HashJoin):
            return self._join(node)
        raise EvaluationError(f"cannot lower plan operator {node!r} to SQL")

    def _scan(
        self, node: "AtomScan | SeededScan", seeds: Dict[str, str]
    ) -> Tuple[str, Tuple[str, ...]]:
        atom = node.atom
        columns = node.columns
        source_seed = seeds.get(getattr(node, "seed_sources", None))
        target_seed = seeds.get(getattr(node, "seed_targets", None))
        name = self.fresh("s")
        out_cols = f"{_ident(columns[0])}, {_ident(columns[1])}"
        if isinstance(atom.query, DataRPQ):
            # Materialised Python-side into a temp table by the backend;
            # the seeds (when any) become plain membership filters.
            where = []
            if source_seed is not None:
                where.append(f"a IN (SELECT {_ident(node.seed_sources)} FROM {source_seed})")
            if target_seed is not None:
                where.append(f"b IN (SELECT {_ident(node.seed_targets)} FROM {target_seed})")
            clause = f" WHERE {' AND '.join(where)}" if where else ""
            self.ctes.append(
                f"{name} AS (SELECT DISTINCT a AS {_ident(columns[0])}, "
                f"b AS {_ident(columns[1])} FROM {atom_table_name(node.index)}{clause})"
            )
            return name, columns
        automaton = node._compiled  # attached by the backend before lowering
        prefix = self.fresh("a")
        parts = _rpq_ctes_seeded(automaton, prefix, source_seed,
                                 getattr(node, "seed_sources", None))
        if parts is None or not automaton.accepting:
            self.ctes.append(
                f"{name} AS (SELECT 0 AS {_ident(columns[0])}, "
                f"0 AS {_ident(columns[1])} WHERE 1 = 0)"
            )
            return name, columns
        self.recursive = True
        self.ctes.extend(parts)
        accepting = ", ".join(str(state) for state in sorted(automaton.accepting))
        where = f"r.state IN ({accepting})"
        if target_seed is not None:
            where += (
                f" AND r.node IN (SELECT {_ident(node.seed_targets)} FROM {target_seed})"
            )
        self.ctes.append(
            f"{name} AS (SELECT DISTINCT r.src AS {_ident(columns[0])}, "
            f"r.node AS {_ident(columns[1])} FROM {prefix}_reach AS r WHERE {where})"
        )
        return name, columns

    def _join(self, node: HashJoin) -> Tuple[str, Tuple[str, ...]]:
        left_name, left_columns = self.lower(node.left)
        # Semijoin pushdown: the right scan's base case reads the
        # distinct bindings straight out of the left CTE.
        scan = node.right.child if isinstance(node.right, Filter) else node.right
        seeds: Dict[str, str] = {}
        if isinstance(scan, SeededScan):
            for variable in {scan.seed_sources, scan.seed_targets} - {None}:
                if variable in left_columns:
                    seeds[variable] = left_name
        right_name, right_columns = self.lower(node.right, seeds)
        right_only = tuple(c for c in right_columns if c not in left_columns)
        out = ", ".join(
            [f"l.{_ident(c)}" for c in left_columns]
            + [f"r.{_ident(c)}" for c in right_only]
        )
        if node.keys:
            condition = " AND ".join(
                f"l.{_ident(k)} = r.{_ident(k)}" for k in node.keys
            )
            join = f"{left_name} AS l JOIN {right_name} AS r ON {condition}"
        else:
            join = f"{left_name} AS l CROSS JOIN {right_name} AS r"
        name = self.fresh("j")
        self.ctes.append(f"{name} AS (SELECT DISTINCT {out} FROM {join})")
        return name, left_columns + right_only


def _rpq_ctes_seeded(
    automaton: CompiledAutomaton,
    prefix: str,
    source_seed: Optional[str],
    seed_variable: Optional[str],
) -> Optional[List[str]]:
    """RPQ CTEs whose base case optionally reads a lowered CTE's bindings."""
    if not automaton.initial:
        return None
    initial = " UNION ALL ".join(
        f"SELECT {state} AS state" if index == 0 else f"SELECT {state}"
        for index, state in enumerate(automaton.initial)
    )
    if source_seed is not None:
        base_table = (
            f"(SELECT DISTINCT {_ident(seed_variable)} AS node FROM {source_seed})"
        )
    else:
        base_table = "nodes"
    base = (
        f"SELECT n.node AS src, n.node AS node, i.state AS state "
        f"FROM {base_table} AS n CROSS JOIN ({initial}) AS i"
    )
    transitions = _transition_rows(automaton)
    reach = f"{prefix}_reach(src, node, state)"
    if not transitions:
        return [f"{reach} AS ({base})"]
    trans_rows = _inline_rows(transitions, ("state", "label", "next"))
    return [
        f"{prefix}_trans(state, label, next) AS ({trans_rows})",
        f"{reach} AS ({base} UNION {_step_sql(prefix)})",
    ]


def crpq_sql(root: PlanOp) -> str:
    """Lower a whole planned CRPQ to one SQL statement.

    *root* must be the planner's ``Project`` node; every RPQ scan node
    must carry its compiled automaton as ``_compiled`` (attached by the
    backend — plan nodes are frozen dataclasses, so the attribute rides
    on a shallow lowering copy, see
    :func:`repro.sqlbackend.backend.evaluate_plan_sql`).  The statement
    returns one row per answer tuple in head order; a Boolean head
    compiles to ``SELECT DISTINCT 1 ... LIMIT 1`` (row present ⇔ true).
    """
    if not isinstance(root, Project):
        raise EvaluationError(f"expected a Project plan root, got {root!r}")
    lowering = _Lowering()
    child_name, child_columns = lowering.lower(root.child)
    if root.head:
        head = ", ".join(_ident(variable) for variable in root.head)
        select = f"SELECT DISTINCT {head} FROM {child_name}"
    else:
        select = f"SELECT DISTINCT 1 FROM {child_name} LIMIT 1"
    keyword = "WITH RECURSIVE " if lowering.recursive else "WITH "
    return f"{keyword}{', '.join(lowering.ctes)} {select}"
