"""Parser for regular expressions with memory.

Textual syntax (ASCII-friendly variants of the paper's notation)::

    expr     := seq ('|' seq)*                      union
    seq      := bind | item (('.')? item)*          concatenation
    bind     := ('!' | '↓') var (',' var)* '.' seq  variable binding ↓x̄.e
    item     := base postfix*
    postfix  := '*' | '+' | '[' condition ']'
    base     := LABEL | '(' expr ')' | 'eps' | 'ε' | '_'

    condition := conj ('||' conj)*                  disjunction
    conj      := atom ('&&'|'&' atom)*              conjunction
    atom      := var '=' | var '!=' | var '≠' | '(' condition ')'

The binding operator scopes over the rest of the current concatenation,
matching the paper's usage ``↓x.(a[x≠])+`` where the binding applies to
everything that follows it up to the enclosing parenthesis or union.

Examples::

    parse_rem("!x.(a[x!=])+")          # all values after the first differ from it
    parse_rem("(a|b)* . !x. (a|b)+ [x=] . (a|b)*")   # some value repeats
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..exceptions import ParseError
from .conditions import Condition, Equal, NotEqual, conj, disj
from .rem import (
    RegexWithMemory,
    RemEpsilon,
    rem_bind,
    rem_concat,
    rem_letter,
    rem_plus,
    rem_star,
    rem_test,
    rem_union,
)

__all__ = ["parse_rem", "parse_condition"]

_RESERVED = set("()[]|.*+!↓,&")
_EPSILON_TOKENS = {"eps", "ε", "_"}


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in "()[]|.*+,↓":
            # '||' and '&&' are meaningful only inside conditions and are
            # tokenised there; at this level '|' is union.
            tokens.append((char, char, index))
            index += 1
            continue
        if char == "!":
            tokens.append(("!", "!", index))
            index += 1
            continue
        if char == "&":
            tokens.append(("&", "&", index))
            index += 1
            continue
        start = index
        while index < len(text) and not text[index].isspace() and text[index] not in _RESERVED:
            index += 1
        tokens.append(("label", text[start:index], start))
    return tokens


class _RemParser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.position = 0

    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Optional[Tuple[str, str, int]]:
        index = self.position + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def advance(self) -> Tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of REM expression", self.text, len(self.text))
        self.position += 1
        return token

    def expect(self, kind: str) -> Tuple[str, str, int]:
        token = self.peek()
        if token is None or token[0] != kind:
            where = token[2] if token else len(self.text)
            raise ParseError(f"expected {kind!r}", self.text, where)
        return self.advance()

    # ------------------------------------------------------------------
    def parse(self) -> RegexWithMemory:
        expression = self.parse_union()
        token = self.peek()
        if token is not None:
            raise ParseError(f"unexpected token {token[1]!r}", self.text, token[2])
        return expression

    def parse_union(self) -> RegexWithMemory:
        parts = [self.parse_sequence()]
        while True:
            token = self.peek()
            if token is not None and token[0] == "|":
                self.advance()
                parts.append(self.parse_sequence())
            else:
                break
        return rem_union(*parts) if len(parts) > 1 else parts[0]

    def parse_sequence(self) -> RegexWithMemory:
        token = self.peek()
        if token is not None and token[0] in {"!", "↓"}:
            return self.parse_bind()
        parts = [self.parse_item()]
        while True:
            token = self.peek()
            if token is None:
                break
            if token[0] == ".":
                self.advance()
                nxt = self.peek()
                if nxt is not None and nxt[0] in {"!", "↓"}:
                    parts.append(self.parse_bind())
                    break
                parts.append(self.parse_item())
            elif token[0] in {"!", "↓"}:
                parts.append(self.parse_bind())
                break
            elif token[0] in {"label", "("}:
                parts.append(self.parse_item())
            else:
                break
        return rem_concat(*parts) if len(parts) > 1 else parts[0]

    def parse_bind(self) -> RegexWithMemory:
        self.advance()  # the '!' or '↓' marker
        variables = [self._parse_variable_name()]
        while True:
            token = self.peek()
            if token is not None and token[0] == ",":
                self.advance()
                variables.append(self._parse_variable_name())
            else:
                break
        self.expect(".")
        body = self.parse_sequence()
        return rem_bind(variables, body)

    def _parse_variable_name(self) -> str:
        kind, value, position = self.advance()
        if kind != "label":
            raise ParseError(f"expected a variable name, got {value!r}", self.text, position)
        return value

    def parse_item(self) -> RegexWithMemory:
        expression = self.parse_base()
        while True:
            token = self.peek()
            if token is None:
                return expression
            if token[0] == "*":
                self.advance()
                expression = rem_star(expression)
            elif token[0] == "+":
                self.advance()
                expression = rem_plus(expression)
            elif token[0] == "[":
                self.advance()
                condition = self._parse_condition_until_bracket()
                expression = rem_test(expression, condition)
            else:
                return expression

    def parse_base(self) -> RegexWithMemory:
        kind, value, position = self.advance()
        if kind == "(":
            inner = self.parse_union()
            self.expect(")")
            return inner
        if kind == "label":
            if value in _EPSILON_TOKENS:
                return RemEpsilon()
            return rem_letter(value)
        raise ParseError(f"unexpected token {value!r}", self.text, position)

    # ------------------------------------------------------------------
    # Conditions inside [ ... ]
    # ------------------------------------------------------------------
    def _parse_condition_until_bracket(self) -> Condition:
        condition = self._parse_condition_disjunction()
        self.expect("]")
        return condition

    def _parse_condition_disjunction(self) -> Condition:
        parts = [self._parse_condition_conjunction()]
        while True:
            token = self.peek()
            if token is not None and token[0] == "|":
                self.advance()
                # accept both '|' and '||'
                if self.peek() is not None and self.peek()[0] == "|":
                    self.advance()
                parts.append(self._parse_condition_conjunction())
            else:
                break
        return disj(*parts) if len(parts) > 1 else parts[0]

    def _parse_condition_conjunction(self) -> Condition:
        parts = [self._parse_condition_atom()]
        while True:
            token = self.peek()
            if token is not None and token[0] == "&":
                self.advance()
                if self.peek() is not None and self.peek()[0] == "&":
                    self.advance()
                parts.append(self._parse_condition_atom())
            else:
                break
        return conj(*parts) if len(parts) > 1 else parts[0]

    def _parse_condition_atom(self) -> Condition:
        kind, value, position = self.advance()
        if kind == "(":
            inner = self._parse_condition_disjunction()
            self.expect(")")
            return inner
        if kind != "label":
            raise ParseError(f"expected a condition, got {value!r}", self.text, position)
        # The tokenizer keeps '=' '!=' '≠' attached to the variable name
        # since '=' and '≠' are not reserved characters.
        if value.endswith("!="):
            return NotEqual(value[:-2])
        if value.endswith("≠"):
            return NotEqual(value[:-1])
        if value.endswith("="):
            return Equal(value[:-1])
        # Form 'x' '!' '=' split across tokens (e.g. "x !=")
        nxt = self.peek()
        if nxt is not None and nxt[0] == "!":
            self.advance()
            eq = self.advance()
            if eq[0] == "label" and eq[1] == "=":
                return NotEqual(value)
            raise ParseError("expected '=' after '!' in condition", self.text, eq[2])
        raise ParseError(
            f"conditions must be of the form x= or x!=, got {value!r}", self.text, position
        )


def parse_rem(text: str) -> RegexWithMemory:
    """Parse a textual REM expression into its AST."""
    if not text or not text.strip():
        raise ParseError("empty REM expression", text, 0)
    return _RemParser(text).parse()


def parse_condition(text: str) -> Condition:
    """Parse a bare condition (the part that goes inside ``[...]``)."""
    parser = _RemParser(text + "]")
    condition = parser._parse_condition_until_bracket()
    if parser.peek() is not None:
        token = parser.peek()
        raise ParseError(f"unexpected token {token[1]!r}", text, token[2])
    return condition
