"""Register automata over data paths and compilation from REM expressions.

Register automata [Kaminski & Francez 1994] are the automaton counterpart
of regular expressions with memory: Section 3 of the paper notes that REM
captures exactly their expressive power on data paths.  This module
implements a register automaton model tailored to data paths and a
Thompson-style compilation from REM expressions onto it, which is then
used by the query engine to evaluate memory RPQs over data graphs by a
product construction.

Model
-----
A data path ``d0 a1 d1 ... an dn`` is processed as the initial data value
``d0`` followed by the pairs ``(a1, d1) ... (an, dn)``.  At every moment
the automaton has a *current data value* (the most recently read one) and
a partial valuation of its registers.  Transitions are of three kinds:

* ``letter(a)`` — consume the next pair ``(a, d)``; the current value
  becomes ``d``;
* ``guard(c)`` — an ε-move allowed only if the condition ``c`` holds of
  the current value and the register valuation;
* ``store(x̄)`` — an ε-move writing the current value into registers ``x̄``.

A data path is accepted if, after consuming all pairs, an accepting state
is reachable.  This formulation mirrors the derivation semantics of REM:
``↓x̄.e`` becomes a ``store`` on entry and ``e[c]`` a ``guard`` on exit,
and concatenation works because the shared data value of ``w1 · w2`` is
exactly the current value when control passes from the first fragment to
the second.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..datagraph.paths import DataPath
from ..datagraph.values import DataValue
from ..exceptions import EvaluationError
from .conditions import (
    EMPTY_VALUATION,
    And,
    Condition,
    Equal,
    NotEqual,
    Or,
    TrueCondition,
    Valuation,
    evaluate_condition,
)
from .rem import (
    RegexWithMemory,
    RemBind,
    RemConcat,
    RemEpsilon,
    RemLetter,
    RemPlus,
    RemTest,
    RemUnion,
)

__all__ = ["Transition", "RegisterAutomaton", "compile_rem", "ra_accepts", "ra_is_empty"]


@dataclass(frozen=True)
class Transition:
    """A transition of a register automaton.

    Exactly one of the three payloads is set, according to *kind*:
    ``"letter"`` (field :attr:`symbol`), ``"guard"`` (field
    :attr:`condition`) or ``"store"`` (field :attr:`registers`).
    """

    source: int
    kind: str
    target: int
    symbol: Optional[str] = None
    condition: Optional[Condition] = None
    registers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in {"letter", "guard", "store"}:
            raise ValueError(f"unknown transition kind {self.kind!r}")
        if self.kind == "letter" and not self.symbol:
            raise ValueError("letter transitions need a symbol")
        if self.kind == "guard" and self.condition is None:
            raise ValueError("guard transitions need a condition")
        if self.kind == "store" and not self.registers:
            raise ValueError("store transitions need at least one register")


@dataclass
class RegisterAutomaton:
    """A register automaton over data paths."""

    num_states: int
    initial: int
    accepting: Set[int]
    transitions: List[Transition] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._outgoing: Dict[int, List[Transition]] = {}
        for transition in self.transitions:
            self._outgoing.setdefault(transition.source, []).append(transition)

    def add_transition(self, transition: Transition) -> None:
        """Append a transition (used by the compiler)."""
        self.transitions.append(transition)
        self._outgoing.setdefault(transition.source, []).append(transition)

    def outgoing(self, state: int) -> Tuple[Transition, ...]:
        """Transitions leaving *state*."""
        return tuple(self._outgoing.get(state, ()))

    def registers(self) -> FrozenSet[str]:
        """All registers mentioned by guards or stores."""
        result: Set[str] = set()
        for transition in self.transitions:
            if transition.kind == "store":
                result.update(transition.registers)
            elif transition.kind == "guard" and transition.condition is not None:
                result.update(transition.condition.variables())
        return frozenset(result)

    def labels(self) -> FrozenSet[str]:
        """All edge labels used by letter transitions."""
        return frozenset(
            transition.symbol for transition in self.transitions if transition.kind == "letter"
        )

    # ------------------------------------------------------------------
    # Execution on data paths
    # ------------------------------------------------------------------
    def silent_closure(
        self, configurations: Iterable[Tuple[int, Valuation]], value: DataValue, null_semantics: bool
    ) -> FrozenSet[Tuple[int, Valuation]]:
        """Close a configuration set under guard/store moves for the current *value*."""
        closure: Set[Tuple[int, Valuation]] = set(configurations)
        queue = deque(closure)
        while queue:
            state, valuation = queue.popleft()
            for transition in self.outgoing(state):
                if transition.kind == "letter":
                    continue
                if transition.kind == "guard":
                    assert transition.condition is not None
                    if not evaluate_condition(transition.condition, valuation, value, null_semantics):
                        continue
                    successor = (transition.target, valuation)
                else:  # store
                    successor = (transition.target, valuation.bind(transition.registers, value))
                if successor not in closure:
                    closure.add(successor)
                    queue.append(successor)
        return frozenset(closure)

    def letter_step(
        self,
        configurations: Iterable[Tuple[int, Valuation]],
        symbol: str,
        new_value: DataValue,
        null_semantics: bool,
    ) -> FrozenSet[Tuple[int, Valuation]]:
        """Consume one ``(symbol, value)`` pair and re-close under silent moves."""
        moved: Set[Tuple[int, Valuation]] = set()
        for state, valuation in configurations:
            for transition in self.outgoing(state):
                if transition.kind == "letter" and transition.symbol == symbol:
                    moved.add((transition.target, valuation))
        return self.silent_closure(moved, new_value, null_semantics)

    def accepts(
        self,
        data_path: DataPath,
        initial_valuation: Valuation = EMPTY_VALUATION,
        null_semantics: bool = False,
    ) -> bool:
        """Whether the automaton accepts the data path."""
        current = self.silent_closure(
            {(self.initial, initial_valuation)}, data_path.values[0], null_semantics
        )
        for index, symbol in enumerate(data_path.labels):
            value = data_path.values[index + 1]
            current = self.letter_step(current, symbol, value, null_semantics)
            if not current:
                return False
        return any(state in self.accepting for state, _ in current)

    # ------------------------------------------------------------------
    # Nonemptiness (symbolic)
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Whether the automaton accepts no data path at all.

        The search abstracts data values symbolically: the only thing a
        run can observe is which registers equal the current value, so we
        explore configurations ``(state, register equality pattern)``
        where a fresh value (different from all register contents) can
        always be introduced.  Configurations are normalised by renaming
        the abstract value ids, which keeps the state space finite.  The
        abstraction is exact for automata produced from REM expressions
        (guards only compare the current value with registers).
        """
        registers = sorted(self.registers())
        start = self._normalize({reg: None for reg in registers}, 0)
        seen: Set[Tuple[int, Tuple, int]] = set()
        queue: deque = deque()

        for config in self._symbolic_closure(self.initial, dict(start[0]), start[1]):
            if config not in seen:
                seen.add(config)
                queue.append(config)

        while queue:
            state, valuation_items, current = queue.popleft()
            if state in self.accepting:
                return False
            valuation = dict(valuation_items)
            # The next data value can be fresh (None) or equal to a register.
            next_values = {None} | {vid for vid in valuation.values() if vid is not None}
            for transition in self.outgoing(state):
                if transition.kind != "letter":
                    continue
                for choice in next_values:
                    if choice is None:
                        used = [vid for vid in valuation.values() if vid is not None]
                        new_current = (max(used) + 1) if used else 1
                    else:
                        new_current = choice
                    for config in self._symbolic_closure(transition.target, dict(valuation), new_current):
                        if config not in seen:
                            seen.add(config)
                            queue.append(config)
        return True

    @staticmethod
    def _normalize(
        valuation: Dict[str, Optional[int]], current: int
    ) -> Tuple[Tuple[Tuple[str, Optional[int]], ...], int]:
        """Rename abstract value ids canonically (first occurrence order)."""
        renaming: Dict[int, int] = {}

        def rename(vid: Optional[int]) -> Optional[int]:
            if vid is None:
                return None
            if vid not in renaming:
                renaming[vid] = len(renaming)
            return renaming[vid]

        items = tuple((register, rename(vid)) for register, vid in sorted(valuation.items()))
        return items, rename(current) if current is not None else None

    def _symbolic_closure(
        self, state: int, valuation: Dict[str, Optional[int]], current: int
    ) -> Iterable[Tuple[int, Tuple, int]]:
        """Closure under guard/store moves in the symbolic abstraction.

        Yields configurations normalised via :meth:`_normalize`.
        """
        start_items, start_current = self._normalize(valuation, current)
        closure = {(state, start_items, start_current)}
        queue = deque([(state, dict(valuation), current)])
        while queue:
            st, val, cur = queue.popleft()
            for transition in self.outgoing(st):
                if transition.kind == "letter":
                    continue
                if transition.kind == "guard":
                    assert transition.condition is not None
                    if not self._symbolic_condition(transition.condition, val, cur):
                        continue
                    successor = (transition.target, dict(val), cur)
                else:
                    new_val = dict(val)
                    for register in transition.registers:
                        new_val[register] = cur
                    successor = (transition.target, new_val, cur)
                items, norm_current = self._normalize(successor[1], successor[2])
                key = (successor[0], items, norm_current)
                if key not in closure:
                    closure.add(key)
                    queue.append(successor)
        return closure

    def _symbolic_condition(
        self, condition: Condition, valuation: Dict[str, Optional[int]], current: int
    ) -> bool:
        if isinstance(condition, TrueCondition):
            return True
        if isinstance(condition, Equal):
            return valuation.get(condition.variable) == current
        if isinstance(condition, NotEqual):
            stored = valuation.get(condition.variable)
            return stored is not None and stored != current
        if isinstance(condition, And):
            return self._symbolic_condition(condition.left, valuation, current) and self._symbolic_condition(
                condition.right, valuation, current
            )
        if isinstance(condition, Or):
            return self._symbolic_condition(condition.left, valuation, current) or self._symbolic_condition(
                condition.right, valuation, current
            )
        raise EvaluationError(f"unknown condition {condition!r}")  # pragma: no cover - defensive


def compile_rem(expression: RegexWithMemory) -> RegisterAutomaton:
    """Compile a REM expression into an equivalent register automaton."""
    counter = [0]
    transitions: List[Transition] = []

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def link(source: int, kind: str, target: int, **payload) -> None:
        transitions.append(Transition(source, kind, target, **payload))

    def build(expr: RegexWithMemory) -> Tuple[int, int]:
        start = fresh()
        end = fresh()
        if isinstance(expr, RemEpsilon):
            link(start, "guard", end, condition=TrueCondition())
        elif isinstance(expr, RemLetter):
            link(start, "letter", end, symbol=expr.symbol)
        elif isinstance(expr, RemConcat):
            left = build(expr.left)
            right = build(expr.right)
            link(start, "guard", left[0], condition=TrueCondition())
            link(left[1], "guard", right[0], condition=TrueCondition())
            link(right[1], "guard", end, condition=TrueCondition())
        elif isinstance(expr, RemUnion):
            left = build(expr.left)
            right = build(expr.right)
            link(start, "guard", left[0], condition=TrueCondition())
            link(start, "guard", right[0], condition=TrueCondition())
            link(left[1], "guard", end, condition=TrueCondition())
            link(right[1], "guard", end, condition=TrueCondition())
        elif isinstance(expr, RemPlus):
            inner = build(expr.inner)
            link(start, "guard", inner[0], condition=TrueCondition())
            link(inner[1], "guard", inner[0], condition=TrueCondition())
            link(inner[1], "guard", end, condition=TrueCondition())
        elif isinstance(expr, RemTest):
            inner = build(expr.inner)
            link(start, "guard", inner[0], condition=TrueCondition())
            link(inner[1], "guard", end, condition=expr.condition)
        elif isinstance(expr, RemBind):
            inner = build(expr.inner)
            link(start, "store", inner[0], registers=expr.variables_bound)
            link(inner[1], "guard", end, condition=TrueCondition())
        else:  # pragma: no cover - defensive
            raise EvaluationError(f"unknown REM node {expr!r}")
        return start, end

    initial, accepting = build(expression)
    return RegisterAutomaton(
        num_states=counter[0], initial=initial, accepting={accepting}, transitions=transitions
    )


def ra_accepts(
    expression_or_automaton: RegexWithMemory | RegisterAutomaton,
    data_path: DataPath,
    null_semantics: bool = False,
) -> bool:
    """Acceptance of a data path by a register automaton (or a REM compiled to one)."""
    automaton = (
        expression_or_automaton
        if isinstance(expression_or_automaton, RegisterAutomaton)
        else compile_rem(expression_or_automaton)
    )
    return automaton.accepts(data_path, null_semantics=null_semantics)


def ra_is_empty(expression_or_automaton: RegexWithMemory | RegisterAutomaton) -> bool:
    """Nonemptiness test (symbolic) for register automata / REM expressions."""
    automaton = (
        expression_or_automaton
        if isinstance(expression_or_automaton, RegisterAutomaton)
        else compile_rem(expression_or_automaton)
    )
    return automaton.is_empty()
