"""Regular expressions with equality (REE) and their semantics on data paths.

Section 3 of the paper defines the class ``REE(Σ)`` by the grammar::

    e := ε | a | e + e | e · e | e+ | e= | e≠

The language ``L(e)`` of data paths is defined structurally; the two
subscripted forms restrict the sub-language to data paths whose first and
last data values are equal (``e=``) or different (``e≠``).

These expressions are strictly weaker than register automata but enjoy
PTIME nonemptiness and membership; the paper's Theorem 1 shows that even
this simple class makes certain-answer query answering undecidable under
reachability mappings, while Sections 7–8 give tractable algorithms for
them under relational mappings.

The SQL-null mode (Section 7) makes the ``e=``/``e≠`` tests false when
either endpoint value is the null.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from ..datagraph.paths import DataPath
from ..datagraph.values import values_differ, values_equal
from ..exceptions import EvaluationError

__all__ = [
    "RegexWithEquality",
    "ReeEpsilon",
    "ReeLetter",
    "ReeConcat",
    "ReeUnion",
    "ReePlus",
    "ReeEqualTest",
    "ReeNotEqualTest",
    "ree_epsilon",
    "ree_letter",
    "ree_concat",
    "ree_union",
    "ree_plus",
    "ree_star",
    "ree_equal",
    "ree_not_equal",
    "ree_word",
    "ree_any_of",
    "ree_universal",
    "ree_matches",
    "ree_uses_inequality",
    "ree_labels",
    "count_inequality_tests",
]


class RegexWithEquality:
    """Base class of REE expression nodes."""

    def labels(self) -> FrozenSet[str]:
        """Edge labels used by the expression."""
        raise NotImplementedError

    def uses_inequality(self) -> bool:
        """Whether the expression contains an ``e≠`` subscript (outside REE=)."""
        raise NotImplementedError

    def inequality_count(self) -> int:
        """Number of ``e≠`` subscripts (Proposition 4 cares about ≤ 1)."""
        raise NotImplementedError

    def __add__(self, other: "RegexWithEquality") -> "RegexWithEquality":
        return ReeUnion(self, other)

    def __mul__(self, other: "RegexWithEquality") -> "RegexWithEquality":
        return ReeConcat(self, other)


@dataclass(frozen=True)
class ReeEpsilon(RegexWithEquality):
    """ε: matches every single data value."""

    def labels(self) -> FrozenSet[str]:
        return frozenset()

    def uses_inequality(self) -> bool:
        return False

    def inequality_count(self) -> int:
        return 0

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class ReeLetter(RegexWithEquality):
    """A single letter ``a``: matches data paths ``d a d'``."""

    symbol: str

    def labels(self) -> FrozenSet[str]:
        return frozenset({self.symbol})

    def uses_inequality(self) -> bool:
        return False

    def inequality_count(self) -> int:
        return 0

    def __str__(self) -> str:
        return self.symbol


@dataclass(frozen=True)
class ReeConcat(RegexWithEquality):
    """Concatenation ``e · e'``."""

    left: RegexWithEquality
    right: RegexWithEquality

    def labels(self) -> FrozenSet[str]:
        return self.left.labels() | self.right.labels()

    def uses_inequality(self) -> bool:
        return self.left.uses_inequality() or self.right.uses_inequality()

    def inequality_count(self) -> int:
        return self.left.inequality_count() + self.right.inequality_count()

    def __str__(self) -> str:
        return f"({self.left}·{self.right})"


@dataclass(frozen=True)
class ReeUnion(RegexWithEquality):
    """Union ``e + e'``."""

    left: RegexWithEquality
    right: RegexWithEquality

    def labels(self) -> FrozenSet[str]:
        return self.left.labels() | self.right.labels()

    def uses_inequality(self) -> bool:
        return self.left.uses_inequality() or self.right.uses_inequality()

    def inequality_count(self) -> int:
        return self.left.inequality_count() + self.right.inequality_count()

    def __str__(self) -> str:
        return f"({self.left}+{self.right})"


@dataclass(frozen=True)
class ReePlus(RegexWithEquality):
    """One-or-more repetition ``e+``."""

    inner: RegexWithEquality

    def labels(self) -> FrozenSet[str]:
        return self.inner.labels()

    def uses_inequality(self) -> bool:
        return self.inner.uses_inequality()

    def inequality_count(self) -> int:
        return self.inner.inequality_count()

    def __str__(self) -> str:
        return f"({self.inner})+"


@dataclass(frozen=True)
class ReeEqualTest(RegexWithEquality):
    """Equality subscript ``e=``: first and last data value must coincide."""

    inner: RegexWithEquality

    def labels(self) -> FrozenSet[str]:
        return self.inner.labels()

    def uses_inequality(self) -> bool:
        return self.inner.uses_inequality()

    def inequality_count(self) -> int:
        return self.inner.inequality_count()

    def __str__(self) -> str:
        return f"({self.inner})="


@dataclass(frozen=True)
class ReeNotEqualTest(RegexWithEquality):
    """Inequality subscript ``e≠``: first and last data value must differ."""

    inner: RegexWithEquality

    def labels(self) -> FrozenSet[str]:
        return self.inner.labels()

    def uses_inequality(self) -> bool:
        return True

    def inequality_count(self) -> int:
        return self.inner.inequality_count() + 1

    def __str__(self) -> str:
        return f"({self.inner})≠"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def ree_epsilon() -> ReeEpsilon:
    """The ε expression."""
    return ReeEpsilon()


def ree_letter(symbol: str) -> ReeLetter:
    """A single-letter expression."""
    if not isinstance(symbol, str) or not symbol:
        raise ValueError(f"REE letters must be non-empty strings, got {symbol!r}")
    return ReeLetter(symbol)


def ree_concat(*parts: RegexWithEquality) -> RegexWithEquality:
    """Concatenation of several REE expressions."""
    if not parts:
        return ReeEpsilon()
    result = parts[0]
    for part in parts[1:]:
        result = ReeConcat(result, part)
    return result


def ree_union(*parts: RegexWithEquality) -> RegexWithEquality:
    """Union of several REE expressions."""
    if not parts:
        raise ValueError("union of zero REE expressions is undefined")
    result = parts[0]
    for part in parts[1:]:
        result = ReeUnion(result, part)
    return result


def ree_plus(inner: RegexWithEquality) -> ReePlus:
    """One-or-more repetition."""
    return ReePlus(inner)


def ree_star(inner: RegexWithEquality) -> RegexWithEquality:
    """Zero-or-more repetition, defined as ``ε + e+`` as in the paper."""
    return ReeUnion(ReeEpsilon(), ReePlus(inner))


def ree_equal(inner: RegexWithEquality) -> ReeEqualTest:
    """The equality subscript ``e=``."""
    return ReeEqualTest(inner)


def ree_not_equal(inner: RegexWithEquality) -> ReeNotEqualTest:
    """The inequality subscript ``e≠``."""
    return ReeNotEqualTest(inner)


def ree_word(labels: Tuple[str, ...] | List[str]) -> RegexWithEquality:
    """The expression matching exactly this sequence of labels (any data)."""
    return ree_concat(*[ree_letter(symbol) for symbol in labels]) if labels else ReeEpsilon()


def ree_any_of(alphabet) -> RegexWithEquality:
    """The expression ``a1 + ... + ak`` over the sorted alphabet."""
    letters = sorted(set(alphabet))
    if not letters:
        raise ValueError("ree_any_of needs a non-empty alphabet")
    return ree_union(*[ree_letter(symbol) for symbol in letters])


def ree_universal(alphabet) -> RegexWithEquality:
    """The reachability expression ``Σ*`` over the given alphabet."""
    return ree_star(ree_any_of(alphabet))


# ----------------------------------------------------------------------
# Semantics
# ----------------------------------------------------------------------
def ree_matches(
    expression: RegexWithEquality, data_path: DataPath, null_semantics: bool = False
) -> bool:
    """Whether the data path belongs to ``L(e)``."""
    return _Matcher(data_path, null_semantics).run(expression, 0, len(data_path))


def ree_uses_inequality(expression: RegexWithEquality) -> bool:
    """Whether the expression lies outside the REE= fragment (Section 8)."""
    return expression.uses_inequality()


def ree_labels(expression: RegexWithEquality) -> FrozenSet[str]:
    """All edge labels mentioned by the expression."""
    return expression.labels()


def count_inequality_tests(expression: RegexWithEquality) -> int:
    """Number of ``e≠`` subscripts in the expression (Proposition 4)."""
    return expression.inequality_count()


class _Matcher:
    """Memoised membership evaluator over one data path."""

    def __init__(self, data_path: DataPath, null_semantics: bool):
        self.path = data_path
        self.null_semantics = null_semantics
        self._memo: Dict[Tuple[int, int, int], bool] = {}

    def run(self, expression: RegexWithEquality, start: int, end: int) -> bool:
        key = (id(expression), start, end)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self._memo[key] = False  # cut ill-founded cycles through zero-length Plus parts
        result = self._compute(expression, start, end)
        self._memo[key] = result
        return result

    def _endpoint_test(self, start: int, end: int, want_equal: bool) -> bool:
        first = self.path.values[start]
        last = self.path.values[end]
        if self.null_semantics:
            return values_equal(first, last) if want_equal else values_differ(first, last)
        return (first == last) if want_equal else (first != last)

    def _compute(self, expression: RegexWithEquality, start: int, end: int) -> bool:
        if isinstance(expression, ReeEpsilon):
            return start == end
        if isinstance(expression, ReeLetter):
            return end == start + 1 and self.path.labels[start] == expression.symbol
        if isinstance(expression, ReeConcat):
            return any(
                self.run(expression.left, start, split) and self.run(expression.right, split, end)
                for split in range(start, end + 1)
            )
        if isinstance(expression, ReeUnion):
            return self.run(expression.left, start, end) or self.run(expression.right, start, end)
        if isinstance(expression, ReePlus):
            # Reachability over positions by one or more applications of inner.
            reached: Set[int] = set()
            frontier = [start]
            while frontier:
                next_frontier: List[int] = []
                for position in frontier:
                    for split in range(position, end + 1):
                        if self.run(expression.inner, position, split):
                            if split == end:
                                return True
                            if split not in reached:
                                reached.add(split)
                                next_frontier.append(split)
                frontier = next_frontier
            return False
        if isinstance(expression, ReeEqualTest):
            return self.run(expression.inner, start, end) and self._endpoint_test(start, end, True)
        if isinstance(expression, ReeNotEqualTest):
            return self.run(expression.inner, start, end) and self._endpoint_test(start, end, False)
        raise EvaluationError(f"unknown REE expression node {expression!r}")  # pragma: no cover
