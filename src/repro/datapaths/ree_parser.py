"""Parser for regular expressions with equality.

Textual syntax::

    expr    := term ('|' term)*                union
    term    := factor (('.')? factor)*         concatenation
    factor  := base postfix*
    postfix := '*' | '+' | '=' | '!=' | '≠'    star / plus / equality / inequality subscripts
    base    := LABEL | '(' expr ')' | 'eps' | 'ε' | '_'

The ``=`` and ``!=`` postfixes correspond to the paper's ``e=`` and
``e≠`` subscripts.  Examples::

    parse_ree("(a.b)=")          # d a d' b d  with first = last value
    parse_ree("(a|b)* . ((a|b)+)= . (a|b)*")   # some data value repeats
    parse_ree("(a (b c)=)!=")    # the paper's path-with-tests example
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..exceptions import ParseError
from .ree import (
    RegexWithEquality,
    ReeEpsilon,
    ree_concat,
    ree_equal,
    ree_letter,
    ree_not_equal,
    ree_plus,
    ree_star,
    ree_union,
)

__all__ = ["parse_ree"]

_RESERVED = set("()|.*+=!≠")
_EPSILON_TOKENS = {"eps", "ε", "_"}


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "!" and index + 1 < len(text) and text[index + 1] == "=":
            tokens.append(("!=", "!=", index))
            index += 2
            continue
        if char == "≠":
            tokens.append(("!=", "≠", index))
            index += 1
            continue
        if char in "()|.*+=":
            tokens.append((char, char, index))
            index += 1
            continue
        if char == "!":
            raise ParseError("'!' must be followed by '=' in REE expressions", text, index)
        start = index
        while index < len(text) and not text[index].isspace() and text[index] not in _RESERVED:
            index += 1
        tokens.append(("label", text[start:index], start))
    return tokens


class _ReeParser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.position = 0

    def peek(self) -> Optional[Tuple[str, str, int]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> Tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of REE expression", self.text, len(self.text))
        self.position += 1
        return token

    def expect(self, kind: str) -> Tuple[str, str, int]:
        token = self.peek()
        if token is None or token[0] != kind:
            where = token[2] if token else len(self.text)
            raise ParseError(f"expected {kind!r}", self.text, where)
        return self.advance()

    def parse(self) -> RegexWithEquality:
        expression = self.parse_union()
        token = self.peek()
        if token is not None:
            raise ParseError(f"unexpected token {token[1]!r}", self.text, token[2])
        return expression

    def parse_union(self) -> RegexWithEquality:
        parts = [self.parse_concat()]
        while True:
            token = self.peek()
            if token is not None and token[0] == "|":
                self.advance()
                parts.append(self.parse_concat())
            else:
                break
        return ree_union(*parts) if len(parts) > 1 else parts[0]

    def parse_concat(self) -> RegexWithEquality:
        parts = [self.parse_postfix()]
        while True:
            token = self.peek()
            if token is None:
                break
            if token[0] == ".":
                self.advance()
                parts.append(self.parse_postfix())
            elif token[0] in {"label", "("}:
                parts.append(self.parse_postfix())
            else:
                break
        return ree_concat(*parts) if len(parts) > 1 else parts[0]

    def parse_postfix(self) -> RegexWithEquality:
        expression = self.parse_base()
        while True:
            token = self.peek()
            if token is None:
                return expression
            if token[0] == "*":
                self.advance()
                expression = ree_star(expression)
            elif token[0] == "+":
                self.advance()
                expression = ree_plus(expression)
            elif token[0] == "=":
                self.advance()
                expression = ree_equal(expression)
            elif token[0] == "!=":
                self.advance()
                expression = ree_not_equal(expression)
            else:
                return expression

    def parse_base(self) -> RegexWithEquality:
        kind, value, position = self.advance()
        if kind == "(":
            inner = self.parse_union()
            self.expect(")")
            return inner
        if kind == "label":
            if value in _EPSILON_TOKENS:
                return ReeEpsilon()
            return ree_letter(value)
        raise ParseError(f"unexpected token {value!r}", self.text, position)


def parse_ree(text: str) -> RegexWithEquality:
    """Parse a textual REE expression into its AST."""
    if not text or not text.strip():
        raise ParseError("empty REE expression", text, 0)
    return _ReeParser(text).parse()
