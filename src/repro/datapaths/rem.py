"""Regular expressions with memory (REM) and their semantics on data paths.

Section 3 of the paper defines the class ``REM(Σ, X)`` by the grammar::

    e := ε | a | e + e | e · e | e+ | e[c] | ↓x̄.e

where ``a`` ranges over edge labels, ``c`` over conditions and ``x̄`` over
tuples of variables (registers).  The semantics is the derivation
relation ``(e, w, σ) ⊢ σ'``: starting from valuation ``σ`` and parsing
the data path ``w`` according to ``e`` one may end in valuation ``σ'``.
The language is ``L(e) = {w | ∃σ : (e, w, ⊥) ⊢ σ}``.

This module implements the ASTs, the derivation relation (via dynamic
programming over sub-paths of ``w``), language membership, and the
fragment checks used elsewhere (``REM=`` — no inequality conditions,
Section 8).  The SQL-null evaluation mode of Section 7 is supported via
the ``null_semantics`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from ..datagraph.paths import DataPath
from ..exceptions import EvaluationError
from .conditions import (
    EMPTY_VALUATION,
    And,
    Condition,
    Equal,
    NotEqual,
    Or,
    TrueCondition,
    Valuation,
    evaluate_condition,
)

__all__ = [
    "RegexWithMemory",
    "RemEpsilon",
    "RemLetter",
    "RemConcat",
    "RemUnion",
    "RemPlus",
    "RemTest",
    "RemBind",
    "rem_epsilon",
    "rem_letter",
    "rem_concat",
    "rem_union",
    "rem_plus",
    "rem_star",
    "rem_test",
    "rem_bind",
    "derive",
    "rem_matches",
    "uses_inequality",
    "rem_variables",
    "rem_labels",
]


class RegexWithMemory:
    """Base class of REM expression nodes."""

    def variables(self) -> FrozenSet[str]:
        """Variables (registers) mentioned anywhere in the expression."""
        raise NotImplementedError

    def labels(self) -> FrozenSet[str]:
        """Edge labels used by the expression."""
        raise NotImplementedError

    def uses_inequality(self) -> bool:
        """Whether any condition in the expression uses ``x≠`` (outside REM=)."""
        raise NotImplementedError

    def __add__(self, other: "RegexWithMemory") -> "RegexWithMemory":
        return RemUnion(self, other)

    def __mul__(self, other: "RegexWithMemory") -> "RegexWithMemory":
        return RemConcat(self, other)


@dataclass(frozen=True)
class RemEpsilon(RegexWithMemory):
    """The expression ε: matches any single data value, leaves σ unchanged."""

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def labels(self) -> FrozenSet[str]:
        return frozenset()

    def uses_inequality(self) -> bool:
        return False

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class RemLetter(RegexWithMemory):
    """A single letter ``a``: matches data paths ``d a d'``."""

    symbol: str

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def labels(self) -> FrozenSet[str]:
        return frozenset({self.symbol})

    def uses_inequality(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.symbol


@dataclass(frozen=True)
class RemConcat(RegexWithMemory):
    """Concatenation ``e1 · e2`` (splitting the data path at a shared value)."""

    left: RegexWithMemory
    right: RegexWithMemory

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def labels(self) -> FrozenSet[str]:
        return self.left.labels() | self.right.labels()

    def uses_inequality(self) -> bool:
        return self.left.uses_inequality() or self.right.uses_inequality()

    def __str__(self) -> str:
        return f"({self.left}·{self.right})"


@dataclass(frozen=True)
class RemUnion(RegexWithMemory):
    """Union ``e1 + e2``."""

    left: RegexWithMemory
    right: RegexWithMemory

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def labels(self) -> FrozenSet[str]:
        return self.left.labels() | self.right.labels()

    def uses_inequality(self) -> bool:
        return self.left.uses_inequality() or self.right.uses_inequality()

    def __str__(self) -> str:
        return f"({self.left}+{self.right})"


@dataclass(frozen=True)
class RemPlus(RegexWithMemory):
    """One-or-more repetition ``e+`` (valuations thread through iterations)."""

    inner: RegexWithMemory

    def variables(self) -> FrozenSet[str]:
        return self.inner.variables()

    def labels(self) -> FrozenSet[str]:
        return self.inner.labels()

    def uses_inequality(self) -> bool:
        return self.inner.uses_inequality()

    def __str__(self) -> str:
        return f"({self.inner})+"


@dataclass(frozen=True)
class RemTest(RegexWithMemory):
    """Condition test ``e[c]``: after matching ``e`` the last value must satisfy ``c``."""

    inner: RegexWithMemory
    condition: Condition

    def variables(self) -> FrozenSet[str]:
        return self.inner.variables() | self.condition.variables()

    def labels(self) -> FrozenSet[str]:
        return self.inner.labels()

    def uses_inequality(self) -> bool:
        if self.inner.uses_inequality():
            return True
        return _condition_uses_inequality(self.condition)

    def __str__(self) -> str:
        return f"{self.inner}[{self.condition}]"


@dataclass(frozen=True)
class RemBind(RegexWithMemory):
    """Binding ``↓x̄.e``: store the first data value in the registers ``x̄``."""

    variables_bound: Tuple[str, ...]
    inner: RegexWithMemory

    def variables(self) -> FrozenSet[str]:
        return frozenset(self.variables_bound) | self.inner.variables()

    def labels(self) -> FrozenSet[str]:
        return self.inner.labels()

    def uses_inequality(self) -> bool:
        return self.inner.uses_inequality()

    def __str__(self) -> str:
        bound = ",".join(self.variables_bound)
        return f"↓{bound}.{self.inner}"


def _condition_uses_inequality(condition: Condition) -> bool:
    if isinstance(condition, NotEqual):
        return True
    if isinstance(condition, (Equal, TrueCondition)):
        return False
    if isinstance(condition, (And, Or)):
        return _condition_uses_inequality(condition.left) or _condition_uses_inequality(condition.right)
    raise TypeError(f"unknown condition {condition!r}")  # pragma: no cover - defensive


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def rem_epsilon() -> RemEpsilon:
    """The ε expression."""
    return RemEpsilon()


def rem_letter(symbol: str) -> RemLetter:
    """A single-letter expression."""
    if not isinstance(symbol, str) or not symbol:
        raise ValueError(f"REM letters must be non-empty strings, got {symbol!r}")
    return RemLetter(symbol)


def rem_concat(*parts: RegexWithMemory) -> RegexWithMemory:
    """Concatenation of several REM expressions."""
    if not parts:
        return RemEpsilon()
    result = parts[0]
    for part in parts[1:]:
        result = RemConcat(result, part)
    return result


def rem_union(*parts: RegexWithMemory) -> RegexWithMemory:
    """Union of several REM expressions."""
    if not parts:
        raise ValueError("union of zero REM expressions is undefined")
    result = parts[0]
    for part in parts[1:]:
        result = RemUnion(result, part)
    return result


def rem_plus(inner: RegexWithMemory) -> RemPlus:
    """One-or-more repetition of an expression."""
    return RemPlus(inner)


def rem_star(inner: RegexWithMemory) -> RegexWithMemory:
    """Zero-or-more repetition, defined as ``ε + e+`` (as in the paper: Σ* = ε + Σ+)."""
    return RemUnion(RemEpsilon(), RemPlus(inner))


def rem_test(inner: RegexWithMemory, condition: Condition) -> RemTest:
    """The test expression ``e[c]``."""
    return RemTest(inner, condition)


def rem_bind(variables: Iterable[str] | str, inner: RegexWithMemory) -> RemBind:
    """The binding expression ``↓x̄.e``."""
    if isinstance(variables, str):
        variables = (variables,)
    bound = tuple(variables)
    if not bound:
        raise ValueError("↓ must bind at least one variable")
    return RemBind(bound, inner)


# ----------------------------------------------------------------------
# Semantics: the derivation relation (e, w, σ) ⊢ σ'
# ----------------------------------------------------------------------
def derive(
    expression: RegexWithMemory,
    data_path: DataPath,
    valuation: Valuation = EMPTY_VALUATION,
    null_semantics: bool = False,
) -> FrozenSet[Valuation]:
    """All valuations ``σ'`` with ``(e, w, σ) ⊢ σ'``.

    The computation is a dynamic program over sub-paths ``w[i..j]`` of the
    input data path, memoised on ``(expression, i, j, σ)``.
    """
    evaluator = _Derivation(data_path, null_semantics)
    return frozenset(evaluator.run(expression, 0, len(data_path), valuation))


def rem_matches(
    expression: RegexWithMemory,
    data_path: DataPath,
    valuation: Valuation = EMPTY_VALUATION,
    null_semantics: bool = False,
) -> bool:
    """Whether ``w ∈ L(e)`` (starting from the given valuation, default ⊥)."""
    return bool(derive(expression, data_path, valuation, null_semantics))


def uses_inequality(expression: RegexWithMemory) -> bool:
    """Whether the expression lies outside the REM= fragment (Section 8)."""
    return expression.uses_inequality()


def rem_variables(expression: RegexWithMemory) -> FrozenSet[str]:
    """All registers mentioned by the expression."""
    return expression.variables()


def rem_labels(expression: RegexWithMemory) -> FrozenSet[str]:
    """All edge labels mentioned by the expression."""
    return expression.labels()


class _Derivation:
    """Memoised evaluator of the derivation relation over one data path."""

    def __init__(self, data_path: DataPath, null_semantics: bool):
        self.path = data_path
        self.null_semantics = null_semantics
        self._memo: Dict[Tuple[int, int, int, Valuation], FrozenSet[Valuation]] = {}

    def run(
        self, expression: RegexWithMemory, start: int, end: int, valuation: Valuation
    ) -> FrozenSet[Valuation]:
        key = (id(expression), start, end, valuation)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Seed the memo with the empty set to cut ill-founded cycles
        # (can only arise through zero-length Plus iterations).
        self._memo[key] = frozenset()
        result = frozenset(self._compute(expression, start, end, valuation))
        self._memo[key] = result
        return result

    # The sub-path w[i..j] spans label positions i..j-1 and data values i..j.
    def _compute(
        self, expression: RegexWithMemory, start: int, end: int, valuation: Valuation
    ) -> Set[Valuation]:
        if isinstance(expression, RemEpsilon):
            return {valuation} if start == end else set()

        if isinstance(expression, RemLetter):
            if end == start + 1 and self.path.labels[start] == expression.symbol:
                return {valuation}
            return set()

        if isinstance(expression, RemConcat):
            results: Set[Valuation] = set()
            for split in range(start, end + 1):
                intermediate = self.run(expression.left, start, split, valuation)
                for sigma in intermediate:
                    results.update(self.run(expression.right, split, end, sigma))
            return results

        if isinstance(expression, RemUnion):
            return set(self.run(expression.left, start, end, valuation)) | set(
                self.run(expression.right, start, end, valuation)
            )

        if isinstance(expression, RemPlus):
            # Reachability over (position, valuation) states via one or more
            # applications of the inner expression.
            results: Set[Valuation] = set()
            seen: Set[Tuple[int, Valuation]] = set()
            frontier: list[Tuple[int, Valuation]] = [(start, valuation)]
            while frontier:
                next_frontier: list[Tuple[int, Valuation]] = []
                for position, sigma in frontier:
                    for split in range(position, end + 1):
                        for sigma_next in self.run(expression.inner, position, split, sigma):
                            if split == end:
                                results.add(sigma_next)
                            state = (split, sigma_next)
                            if state not in seen:
                                seen.add(state)
                                next_frontier.append(state)
                frontier = next_frontier
            return results

        if isinstance(expression, RemTest):
            results = set()
            last_value = self.path.values[end]
            for sigma in self.run(expression.inner, start, end, valuation):
                if evaluate_condition(expression.condition, sigma, last_value, self.null_semantics):
                    results.add(sigma)
            return results

        if isinstance(expression, RemBind):
            first_value = self.path.values[start]
            bound = valuation.bind(expression.variables_bound, first_value)
            return set(self.run(expression.inner, start, end, bound))

        raise EvaluationError(f"unknown REM expression node {expression!r}")  # pragma: no cover
