"""Data-path expression languages: REM, REE, paths with tests, register automata.

This sub-package implements the query formalisms of Section 3 of the
paper — the languages of data paths that data RPQs are based on — along
with the condition/valuation machinery, parsers, the compilation of REM
to register automata, and fragment classification (REM= / REE= / paths
with tests) used by the algorithms of Sections 6–8.
"""

from .conditions import (
    EMPTY_VALUATION,
    And,
    Condition,
    Equal,
    NotEqual,
    Or,
    TrueCondition,
    Valuation,
    conj,
    disj,
    equal,
    evaluate_condition,
    negate,
    not_equal,
)
from .fragments import Fragment, classify, is_equality_only, ree_to_rem
from .path_tests import (
    equality_subexpressions,
    inequality_subexpressions,
    is_path_with_tests,
    path_length,
)
from .ree import (
    RegexWithEquality,
    count_inequality_tests,
    ree_any_of,
    ree_concat,
    ree_epsilon,
    ree_equal,
    ree_labels,
    ree_letter,
    ree_matches,
    ree_not_equal,
    ree_plus,
    ree_star,
    ree_union,
    ree_universal,
    ree_uses_inequality,
    ree_word,
)
from .ree_parser import parse_ree
from .register_automata import RegisterAutomaton, Transition, compile_rem, ra_accepts, ra_is_empty
from .rem import (
    RegexWithMemory,
    derive,
    rem_bind,
    rem_concat,
    rem_epsilon,
    rem_labels,
    rem_letter,
    rem_matches,
    rem_plus,
    rem_star,
    rem_test,
    rem_union,
    rem_variables,
    uses_inequality,
)
from .rem_parser import parse_condition, parse_rem

__all__ = [
    # conditions
    "Condition",
    "Equal",
    "NotEqual",
    "And",
    "Or",
    "TrueCondition",
    "Valuation",
    "EMPTY_VALUATION",
    "equal",
    "not_equal",
    "conj",
    "disj",
    "negate",
    "evaluate_condition",
    # REM
    "RegexWithMemory",
    "rem_epsilon",
    "rem_letter",
    "rem_concat",
    "rem_union",
    "rem_plus",
    "rem_star",
    "rem_test",
    "rem_bind",
    "derive",
    "rem_matches",
    "uses_inequality",
    "rem_variables",
    "rem_labels",
    "parse_rem",
    "parse_condition",
    # REE
    "RegexWithEquality",
    "ree_epsilon",
    "ree_letter",
    "ree_concat",
    "ree_union",
    "ree_plus",
    "ree_star",
    "ree_equal",
    "ree_not_equal",
    "ree_word",
    "ree_any_of",
    "ree_universal",
    "ree_matches",
    "ree_uses_inequality",
    "ree_labels",
    "count_inequality_tests",
    "parse_ree",
    # paths with tests / fragments
    "is_path_with_tests",
    "path_length",
    "inequality_subexpressions",
    "equality_subexpressions",
    "Fragment",
    "classify",
    "is_equality_only",
    "ree_to_rem",
    # register automata
    "RegisterAutomaton",
    "Transition",
    "compile_rem",
    "ra_accepts",
    "ra_is_empty",
]
