"""Paths with tests — the simplest data RPQs (data path queries).

Section 3 of the paper singles out the fragment ``e := a | e·e | e= | e≠``
of regular expressions with equality, called *paths with tests*: a word of
labels where some sub-words are annotated with an equality or inequality
test between their first and last data values.  RPQs based on such
expressions are called *data path queries*; they feature in:

* Proposition 3 — certain answering of a data path query under a LAV
  relational mapping is coNP-hard (the query there uses three
  inequalities);
* Proposition 4 — with at most one inequality sub-expression, data
  complexity drops to NLogspace;
* Proposition 5 — for data path queries, certain answers are decidable
  (coNP) under *arbitrary* GSMs, because rules producing words longer
  than the query are useless.

This module provides recognition of the fragment inside general REE
expressions, the inequality count used by Proposition 4, and the query
length bound used by Proposition 5.
"""

from __future__ import annotations

from typing import Optional

from .ree import (
    ReeConcat,
    ReeEpsilon,
    ReeEqualTest,
    ReeLetter,
    ReeNotEqualTest,
    ReePlus,
    ReeUnion,
    RegexWithEquality,
)

__all__ = [
    "is_path_with_tests",
    "path_length",
    "inequality_subexpressions",
    "equality_subexpressions",
]


def is_path_with_tests(expression: RegexWithEquality) -> bool:
    """Whether the expression belongs to the ``a | e·e | e= | e≠`` fragment.

    Union, Kleene plus and ε are excluded, exactly as in the paper's
    definition (the expressions are "just words, where some subwords carry
    an annotation").
    """
    if isinstance(expression, ReeLetter):
        return True
    if isinstance(expression, ReeConcat):
        return is_path_with_tests(expression.left) and is_path_with_tests(expression.right)
    if isinstance(expression, (ReeEqualTest, ReeNotEqualTest)):
        return is_path_with_tests(expression.inner)
    return False


def path_length(expression: RegexWithEquality) -> Optional[int]:
    """The number of labels matched by a path-with-tests expression.

    Every data path in the language of a path with tests has the same
    length (the number of letters in the underlying word); this is the
    bound Proposition 5 uses to prune mapping rules.  Returns ``None`` if
    the expression is not a path with tests.
    """
    if not is_path_with_tests(expression):
        return None
    return _length(expression)


def _length(expression: RegexWithEquality) -> int:
    if isinstance(expression, ReeLetter):
        return 1
    if isinstance(expression, ReeConcat):
        return _length(expression.left) + _length(expression.right)
    if isinstance(expression, (ReeEqualTest, ReeNotEqualTest)):
        return _length(expression.inner)
    raise AssertionError("not a path with tests")  # pragma: no cover - guarded by caller


def inequality_subexpressions(expression: RegexWithEquality) -> int:
    """Number of ``e≠`` annotations in the expression (Proposition 4)."""
    return expression.inequality_count()


def equality_subexpressions(expression: RegexWithEquality) -> int:
    """Number of ``e=`` annotations in the expression."""
    if isinstance(expression, ReeEqualTest):
        return 1 + equality_subexpressions(expression.inner)
    if isinstance(expression, ReeNotEqualTest):
        return equality_subexpressions(expression.inner)
    if isinstance(expression, (ReeConcat, ReeUnion)):
        return equality_subexpressions(expression.left) + equality_subexpressions(expression.right)
    if isinstance(expression, ReePlus):
        return equality_subexpressions(expression.inner)
    if isinstance(expression, (ReeLetter, ReeEpsilon)):
        return 0
    raise TypeError(f"unknown REE node {expression!r}")  # pragma: no cover - defensive
