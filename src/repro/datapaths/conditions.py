"""Conditions and valuations for regular expressions with memory.

Section 3 of the paper defines conditions over a set ``X`` of variables
(registers) by the grammar::

    c := x=  |  x≠  |  c ∧ c  |  c ∨ c

Satisfaction is defined with respect to a pair ``(σ, d)`` where ``σ`` is
a partial valuation of the variables and ``d`` is a data value:

* ``σ, d ⊨ x=``  iff  ``σ(x) = d``;
* ``σ, d ⊨ x≠``  iff  ``σ(x) ≠ d``;

with the usual rules for ``∧`` and ``∨``.  Conditions are closed under
negation by pushing ``¬`` to the leaves and swapping ``x=`` with ``x≠``.

Section 7 modifies the rules over the extended domain ``D ∪ {null}``:
a comparison is only true when neither side is null (the SQL rule).  The
evaluation functions take a ``null_semantics`` flag selecting between
the two readings; Remark 2 of the paper shows the two-valued reading
used here coincides with SQL's three-valued logic for data RPQs.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from ..datagraph.values import DataValue, is_null
from ..exceptions import UnboundVariableError

__all__ = [
    "Condition",
    "Equal",
    "NotEqual",
    "And",
    "Or",
    "TrueCondition",
    "Valuation",
    "EMPTY_VALUATION",
    "equal",
    "not_equal",
    "conj",
    "disj",
    "negate",
    "evaluate_condition",
]


class Condition:
    """Base class of REM conditions."""

    def variables(self) -> FrozenSet[str]:
        """The set of variables mentioned by the condition."""
        raise NotImplementedError

    def negated(self) -> "Condition":
        """The negation, pushed to the leaves (x= ↔ x≠)."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The always-true condition (used for unconditioned sub-expressions)."""

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def negated(self) -> "Condition":
        # There is no "false" in the paper's grammar; callers never negate
        # the trivial condition, so we keep closure by returning a condition
        # that can never hold: x= ∧ x≠ over a reserved variable would need a
        # binding, so instead we raise to surface misuse early.
        raise ValueError("the trivial condition has no negation in the REM condition grammar")

    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class Equal(Condition):
    """The atomic condition ``x=``: the current data value equals σ(x)."""

    variable: str

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.variable})

    def negated(self) -> "Condition":
        return NotEqual(self.variable)

    def __str__(self) -> str:
        return f"{self.variable}="


@dataclass(frozen=True)
class NotEqual(Condition):
    """The atomic condition ``x≠``: the current data value differs from σ(x)."""

    variable: str

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.variable})

    def negated(self) -> "Condition":
        return Equal(self.variable)

    def __str__(self) -> str:
        return f"{self.variable}≠"


@dataclass(frozen=True)
class And(Condition):
    """Conjunction of two conditions."""

    left: Condition
    right: Condition

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def negated(self) -> "Condition":
        return Or(self.left.negated(), self.right.negated())

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction of two conditions."""

    left: Condition
    right: Condition

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def negated(self) -> "Condition":
        return And(self.left.negated(), self.right.negated())

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


def equal(variable: str) -> Equal:
    """The condition ``variable=``."""
    return Equal(variable)


def not_equal(variable: str) -> NotEqual:
    """The condition ``variable≠``."""
    return NotEqual(variable)


def conj(*conditions: Condition) -> Condition:
    """Conjunction of several conditions (``⊤`` for the empty conjunction)."""
    useful = [c for c in conditions if not isinstance(c, TrueCondition)]
    if not useful:
        return TrueCondition()
    result = useful[0]
    for condition in useful[1:]:
        result = And(result, condition)
    return result


def disj(*conditions: Condition) -> Condition:
    """Disjunction of several conditions."""
    if not conditions:
        raise ValueError("disjunction of zero conditions is undefined")
    result = conditions[0]
    for condition in conditions[1:]:
        result = Or(result, condition)
    return result


def negate(condition: Condition) -> Condition:
    """The negation of a condition, pushed to the leaves."""
    return condition.negated()


class Valuation:
    """An immutable partial map from variables (registers) to data values.

    The paper writes valuations as ``σ : X → D ∪ {⊥}`` with finite
    support.  Unbound variables are simply absent from the mapping.
    """

    __slots__ = ("_assignment",)

    def __init__(self, assignment: Optional[Mapping[str, DataValue]] = None):
        self._assignment: Mapping[str, DataValue] = MappingProxyType(dict(assignment or {}))

    def get(self, variable: str) -> Optional[DataValue]:
        """The value bound to *variable*, or ``None`` (⊥) if unbound."""
        return self._assignment.get(variable)

    def is_bound(self, variable: str) -> bool:
        """Whether *variable* has been assigned a value."""
        return variable in self._assignment

    def bind(self, variables: Iterable[str] | str, value: DataValue) -> "Valuation":
        """Return a new valuation with the given variable(s) bound to *value*.

        This implements the ``σ_{x̄ = d}`` update used by the ``↓x̄.e``
        construct of REM expressions.
        """
        if isinstance(variables, str):
            variables = (variables,)
        updated = dict(self._assignment)
        for variable in variables:
            updated[variable] = value
        return Valuation(updated)

    def as_dict(self) -> Dict[str, DataValue]:
        """A plain-dict copy of the assignment."""
        return dict(self._assignment)

    def support(self) -> FrozenSet[str]:
        """The set of bound variables."""
        return frozenset(self._assignment)

    def restrict(self, variables: Iterable[str]) -> "Valuation":
        """The valuation restricted to the given variables."""
        keep = set(variables)
        return Valuation({var: val for var, val in self._assignment.items() if var in keep})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Valuation):
            return NotImplemented
        return dict(self._assignment) == dict(other._assignment)

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    def __reduce__(self):
        # The MappingProxyType behind _assignment does not pickle; rebuild
        # from a plain dict so register-product configurations can cross
        # process boundaries (the sharded multiprocess driver).
        return (Valuation, (dict(self._assignment),))

    def __repr__(self) -> str:
        inner = ", ".join(f"{var}={val!r}" for var, val in sorted(self._assignment.items()))
        return f"Valuation({{{inner}}})"


#: The empty valuation ⊥ (every variable undefined).
EMPTY_VALUATION = Valuation()


def evaluate_condition(
    condition: Condition,
    valuation: Valuation,
    value: DataValue,
    null_semantics: bool = False,
) -> bool:
    """Evaluate ``σ, d ⊨ c``.

    Parameters
    ----------
    condition:
        The condition ``c``.
    valuation:
        The valuation ``σ``.
    value:
        The current data value ``d``.
    null_semantics:
        When ``True``, apply the SQL-null rule of Section 7: a comparison
        is true only if neither ``σ(x)`` nor ``d`` is the null value.

    Raises
    ------
    UnboundVariableError
        If the condition refers to a variable that ``σ`` does not bind
        (the pathological case the paper's Remark in Section 3 excludes)
        and ``null_semantics`` is off.  Under null semantics an unbound
        register behaves like a null (no comparison with it is true).
    """
    if isinstance(condition, TrueCondition):
        return True
    if isinstance(condition, (Equal, NotEqual)):
        bound = valuation.is_bound(condition.variable)
        if not bound:
            if null_semantics:
                return False
            raise UnboundVariableError(
                f"condition {condition} refers to unbound register {condition.variable!r}"
            )
        stored = valuation.get(condition.variable)
        if null_semantics and (is_null(stored) or is_null(value)):
            return False
        if isinstance(condition, Equal):
            return stored == value
        return stored != value
    if isinstance(condition, And):
        return evaluate_condition(condition.left, valuation, value, null_semantics) and evaluate_condition(
            condition.right, valuation, value, null_semantics
        )
    if isinstance(condition, Or):
        return evaluate_condition(condition.left, valuation, value, null_semantics) or evaluate_condition(
            condition.right, valuation, value, null_semantics
        )
    raise TypeError(f"unknown condition {condition!r}")  # pragma: no cover - defensive
