"""Classification of data RPQ expressions into the paper's fragments.

The paper works with a hierarchy of languages on data paths:

* **REM** — regular expressions with memory (full register-automaton power);
* **REE** — regular expressions with equality (weaker, PTIME problems);
* **REM=** / **REE=** — the equality-only fragments of Section 8
  (no ``x≠`` conditions / no ``e≠`` subscripts);
* **paths with tests** (a.k.a. *data path queries*) — the word-shaped
  fragment of REE used in Propositions 3–5.

The helpers here classify an expression object into these fragments and
translate REE expressions into REM expressions (every equality RPQ is a
memory RPQ — the converse fails).  The translation threads one fresh
register per subscripted sub-expression.
"""

from __future__ import annotations

from enum import Enum
from typing import Union

from .conditions import Equal, NotEqual
from .path_tests import is_path_with_tests
from .rem import (
    RegexWithMemory,
    RemBind,
    RemConcat,
    RemEpsilon,
    RemLetter,
    RemPlus,
    RemTest,
    RemUnion,
)
from .ree import (
    RegexWithEquality,
    ReeConcat,
    ReeEpsilon,
    ReeEqualTest,
    ReeLetter,
    ReeNotEqualTest,
    ReePlus,
    ReeUnion,
)

__all__ = ["Fragment", "classify", "is_equality_only", "ree_to_rem", "DataPathExpression"]

#: Either kind of data-path expression.
DataPathExpression = Union[RegexWithMemory, RegexWithEquality]


class Fragment(Enum):
    """Named fragments of data RPQ expression languages."""

    REM = "REM"
    REM_EQUALITY_ONLY = "REM="
    REE = "REE"
    REE_EQUALITY_ONLY = "REE="
    PATH_WITH_TESTS = "path-with-tests"


def classify(expression: DataPathExpression) -> Fragment:
    """The most specific fragment the expression belongs to.

    Paths with tests are reported as such (they are also REE expressions);
    REE expressions are reported as ``REE=`` when they avoid ``e≠``;
    REM expressions are reported as ``REM=`` when they avoid ``x≠``.
    """
    if isinstance(expression, RegexWithEquality):
        if is_path_with_tests(expression):
            return Fragment.PATH_WITH_TESTS
        if expression.uses_inequality():
            return Fragment.REE
        return Fragment.REE_EQUALITY_ONLY
    if isinstance(expression, RegexWithMemory):
        if expression.uses_inequality():
            return Fragment.REM
        return Fragment.REM_EQUALITY_ONLY
    raise TypeError(f"not a data RPQ expression: {expression!r}")


def is_equality_only(expression: DataPathExpression) -> bool:
    """Whether the expression avoids all inequality comparisons (Section 8)."""
    if isinstance(expression, (RegexWithEquality, RegexWithMemory)):
        return not expression.uses_inequality()
    raise TypeError(f"not a data RPQ expression: {expression!r}")


def ree_to_rem(expression: RegexWithEquality) -> RegexWithMemory:
    """Translate an REE expression into an equivalent REM expression.

    Each subscripted sub-expression ``e=`` / ``e≠`` becomes
    ``↓x.(translate(e)[x=])`` / ``↓x.(translate(e)[x≠])`` with a fresh
    register ``x``: the register captures the first data value of the
    sub-path and the test compares it with the last one, which is exactly
    the REE semantics.
    """
    counter = [0]

    def fresh_register() -> str:
        counter[0] += 1
        return f"_r{counter[0]}"

    def translate(node: RegexWithEquality) -> RegexWithMemory:
        if isinstance(node, ReeEpsilon):
            return RemEpsilon()
        if isinstance(node, ReeLetter):
            return RemLetter(node.symbol)
        if isinstance(node, ReeConcat):
            return RemConcat(translate(node.left), translate(node.right))
        if isinstance(node, ReeUnion):
            return RemUnion(translate(node.left), translate(node.right))
        if isinstance(node, ReePlus):
            return RemPlus(translate(node.inner))
        if isinstance(node, ReeEqualTest):
            register = fresh_register()
            return RemBind((register,), RemTest(translate(node.inner), Equal(register)))
        if isinstance(node, ReeNotEqualTest):
            register = fresh_register()
            return RemBind((register,), RemTest(translate(node.inner), NotEqual(register)))
        raise TypeError(f"unknown REE node {node!r}")  # pragma: no cover - defensive

    return translate(expression)
