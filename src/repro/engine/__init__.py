"""The shared query-evaluation engine (compiled-automaton cache + indexed product BFS).

This sub-package is the seam between the query languages (RPQ, data RPQ,
GXPath) and the data store (:class:`~repro.datagraph.graph.DataGraph`).
It provides:

* :class:`EvaluationEngine` — the facade every evaluator routes through,
  owning LRU-bounded caches of parsed regexes and compiled automata plus
  batched entry points (``evaluate_many`` / ``holds_many``);
* :func:`default_engine` — the process-wide instance used by the
  module-level functions in :mod:`repro.query` and by the certain-answer
  algorithms, so all call sites share one compilation cache;
* :class:`CompiledAutomaton` — ε-free tabular automata built once per
  query;
* the :class:`ProductSpace` protocol (:mod:`repro.engine.spaces`) with
  one implementation per dialect — :class:`NfaProductSpace` for plain
  RPQs, :class:`RegisterProductSpace` for data RPQs,
  :class:`ClosureSpace` for GXPath axis-star closures — all evaluated by
  the same phase kernels (:mod:`repro.engine.product`) over each graph's
  lazily built :class:`~repro.datagraph.index.LabelIndex`
  (:mod:`repro.engine.data` holds the REE algebra and the register
  entry points);
* the partitioned evaluation layer (:mod:`repro.engine.partition`) —
  edge-cut :class:`GraphPartition` plans with shard-local views, the
  sharded scatter/gather driver (shard rounds in forked worker
  processes when the platform allows) and the source-block parallel
  driver, both generic over any product space.

Quickstart::

    from repro.engine import default_engine

    engine = default_engine()
    answers = engine.evaluate_rpq(graph, "a.(a|b)*.b")      # full e(G)
    many = engine.evaluate_many(graph, ["a.b", "b*", "a*"])  # shared index
    engine.stats()["automata"].hits                          # cache telemetry
"""

from .cache import CacheStats, LRUCache
from .compiled import CompiledAutomaton, compile_nfa
from .engine import EvaluationEngine, default_engine, set_default_engine
from .partition import (
    GraphPartition,
    ShardView,
    parallel_full_relation,
    parallel_product_relation,
    sharded_full_relation,
    sharded_product_relation,
    split_blocks,
)
from .spaces import ClosureSpace, NfaProductSpace, ProductSpace, RegisterProductSpace

__all__ = [
    "EvaluationEngine",
    "default_engine",
    "set_default_engine",
    "CompiledAutomaton",
    "compile_nfa",
    "CacheStats",
    "LRUCache",
    "ProductSpace",
    "NfaProductSpace",
    "RegisterProductSpace",
    "ClosureSpace",
    "GraphPartition",
    "ShardView",
    "split_blocks",
    "parallel_full_relation",
    "parallel_product_relation",
    "sharded_full_relation",
    "sharded_product_relation",
]
