"""The shared query-evaluation engine (compiled-automaton cache + indexed product BFS).

This sub-package is the seam between the query languages (RPQ, data RPQ,
GXPath) and the data store (:class:`~repro.datagraph.graph.DataGraph`).
It provides:

* :class:`EvaluationEngine` — the facade every evaluator routes through,
  owning LRU-bounded caches of parsed regexes and compiled automata plus
  batched entry points (``evaluate_many`` / ``holds_many``);
* :func:`default_engine` — the process-wide instance used by the
  module-level functions in :mod:`repro.query` and by the certain-answer
  algorithms, so all call sites share one compilation cache;
* :class:`CompiledAutomaton` — ε-free tabular automata built once per
  query;
* the indexed product evaluators (:mod:`repro.engine.product`,
  :mod:`repro.engine.data`) that run over each graph's lazily built
  :class:`~repro.datagraph.index.LabelIndex`;
* the partitioned evaluation layer (:mod:`repro.engine.partition`) —
  edge-cut :class:`GraphPartition` plans with shard-local views, the
  sharded scatter/gather driver and the source-block parallel driver
  that fan one ``full_relation`` pass across worker pools.

Quickstart::

    from repro.engine import default_engine

    engine = default_engine()
    answers = engine.evaluate_rpq(graph, "a.(a|b)*.b")      # full e(G)
    many = engine.evaluate_many(graph, ["a.b", "b*", "a*"])  # shared index
    engine.stats()["automata"].hits                          # cache telemetry
"""

from .cache import CacheStats, LRUCache
from .compiled import CompiledAutomaton, compile_nfa
from .engine import EvaluationEngine, default_engine, set_default_engine
from .partition import (
    GraphPartition,
    ShardView,
    parallel_full_relation,
    sharded_full_relation,
    split_blocks,
)

__all__ = [
    "EvaluationEngine",
    "default_engine",
    "set_default_engine",
    "CompiledAutomaton",
    "compile_nfa",
    "CacheStats",
    "LRUCache",
    "GraphPartition",
    "ShardView",
    "split_blocks",
    "parallel_full_relation",
    "sharded_full_relation",
]
