"""Compiled form of a Thompson NFA, specialised for product evaluation.

The raw :class:`~repro.regular.nfa.NFA` is convenient for language-
theoretic operations but wasteful on the evaluation hot path: every
``step`` call re-walks ε edges and allocates fresh frozensets.  A
:class:`CompiledAutomaton` is built once per query (and cached by the
engine) with all ε reasoning folded away:

* ``moves[state]`` lists ``(symbol, targets)`` pairs where ``targets``
  already includes the ε-closure of every symbol successor;
* ``initial`` is the ε-closure of the NFA's initial states;
* ``backward_moves`` is the transposed table, used by the backward
  pruning pass of the product BFS.

With ε folded into the tables, a product configuration is a plain
``(node, state)`` pair and a transition is two tuple lookups — no set
algebra per edge.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..regular import NFA

__all__ = ["CompiledAutomaton", "compile_nfa"]

#: ``moves`` entry: (symbol, tuple of ε-closed successor states).
SymbolMoves = Tuple[Tuple[str, Tuple[int, ...]], ...]


class CompiledAutomaton:
    """An ε-free tabular view of an NFA, ready for product construction."""

    __slots__ = (
        "num_states",
        "initial",
        "accepting",
        "moves",
        "backward_moves",
        "symbols",
        "accepts_empty_word",
    )

    def __init__(self, nfa: NFA):
        self.num_states: int = nfa.num_states
        closures = _all_epsilon_closures(nfa)
        self.initial: Tuple[int, ...] = tuple(sorted(nfa.epsilon_closure(nfa.initial)))
        self.accepting: FrozenSet[int] = frozenset(nfa.accepting)
        self.accepts_empty_word: bool = any(state in self.accepting for state in self.initial)

        forward: List[Dict[str, Set[int]]] = [dict() for _ in range(nfa.num_states)]
        for state, by_symbol in nfa.transitions.items():
            for symbol, targets in by_symbol.items():
                if symbol is None:
                    continue
                closed = forward[state].setdefault(symbol, set())
                for target in targets:
                    closed.update(closures[target])
        self.moves: Tuple[SymbolMoves, ...] = tuple(
            tuple(sorted((symbol, tuple(sorted(targets))) for symbol, targets in by_symbol.items()))
            for by_symbol in forward
        )

        backward: List[Dict[str, Set[int]]] = [dict() for _ in range(nfa.num_states)]
        for state, by_symbol in enumerate(self.moves):
            for symbol, targets in by_symbol:
                for target in targets:
                    backward[target].setdefault(symbol, set()).add(state)
        self.backward_moves: Tuple[SymbolMoves, ...] = tuple(
            tuple(sorted((symbol, tuple(sorted(sources))) for symbol, sources in by_symbol.items()))
            for by_symbol in backward
        )

        self.symbols: FrozenSet[str] = frozenset(
            symbol for by_symbol in self.moves for symbol, _ in by_symbol
        )

    # ------------------------------------------------------------------
    def step_targets(self, state: int, symbol: str) -> Tuple[int, ...]:
        """ε-closed successor states of one state on one symbol."""
        for move_symbol, targets in self.moves[state]:
            if move_symbol == symbol:
                return targets
        return ()

    def accepts_word(self, word: Tuple[str, ...]) -> bool:
        """Word membership on the compiled tables (used by tests)."""
        current: Set[int] = set(self.initial)
        for symbol in word:
            nxt: Set[int] = set()
            for state in current:
                nxt.update(self.step_targets(state, symbol))
            if not nxt:
                return False
            current = nxt
        return bool(current & self.accepting)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledAutomaton: {self.num_states} states, "
            f"{len(self.symbols)} symbols, {len(self.initial)} initial>"
        )


def _all_epsilon_closures(nfa: NFA) -> Tuple[FrozenSet[int], ...]:
    """Per-state ε-closures, memoised across the whole automaton."""
    cache: Dict[int, FrozenSet[int]] = {}

    def closure(state: int) -> FrozenSet[int]:
        cached = cache.get(state)
        if cached is None:
            cached = nfa.epsilon_closure((state,))
            cache[state] = cached
        return cached

    return tuple(closure(state) for state in range(nfa.num_states))


def compile_nfa(nfa: NFA) -> CompiledAutomaton:
    """Compile an NFA into its tabular product-evaluation form."""
    return CompiledAutomaton(nfa)
