"""Shared fork-based fan-out used by the batch executor and the partition driver.

Both cross-query batches (:mod:`repro.api.executors`) and intra-query
shard rounds (:mod:`repro.engine.partition`) ship unpicklable state
(graphs, label indexes, compiled automata) to workers the same way: a
module-level global assigned under a lock, worker processes forked so
they inherit it by copy-on-write, and only small picklable messages
crossing the process boundary.  This module holds the one copy of that
subtle pattern, in two shapes:

* :func:`run_forked` — the historical one-shot fan-out: fork a pool,
  evaluate ``worker(payload, i)`` for every task index, tear the pool
  down.  Right for a single round of independent tasks.

* :class:`ForkPool` — a pool of **long-lived** forked workers driven by
  explicit message rounds.  Workers are forked once (inheriting the
  payload by copy-on-write), keep whatever per-process state they build
  between rounds, and exchange only small picklable messages with the
  parent over pipes.  This is what lets the sharded driver keep its
  per-shard mask tables inside the workers across frontier-exchange
  rounds instead of re-forking a fresh pool every round, and what the
  server's persistent shard workers are built on.

The module lock serialises the *fork moment* of every pool in the
process: two concurrent forks would otherwise overwrite each other's
payload global between assignment and the workers' fork.  Once a pool's
workers are forked they no longer read the global, so holding a
:class:`ForkPool` open does not block other fan-outs.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..exceptions import EvaluationError

__all__ = ["fork_available", "run_forked", "ForkPool"]

#: Worker state inherited by forked children; guarded by _LOCK.
#: One-shot pools store ``(worker, payload)``; ForkPool stores
#: ``(worker, payload)`` with a three-argument worker.
_STATE = None
_LOCK = threading.Lock()


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _invoke(index: int):
    worker, payload = _STATE
    return worker(payload, index)


def run_forked(
    payload: Any,
    worker: Callable[[Any, int], Any],
    count: int,
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Evaluate ``worker(payload, i)`` for ``i in range(count)`` in forked workers.

    *worker* must be a module-level function (it is reached through the
    fork-inherited global, and referenced by name from the pool); each
    call's return value must be picklable for the trip back.  Results are
    returned in task order.
    """
    global _STATE
    if count == 0:
        # ProcessPoolExecutor rejects max_workers=0; an empty fan-out
        # needs no pool (and no lock) at all.
        return []
    context = multiprocessing.get_context("fork")
    with _LOCK:
        _STATE = (worker, payload)
        try:
            workers = max_workers if max_workers is not None else count
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                return list(pool.map(_invoke, range(count)))
        finally:
            _STATE = None


# ----------------------------------------------------------------------
# Persistent pools
# ----------------------------------------------------------------------
def _pool_worker_main(conn, index: int) -> None:
    """Entry point of one long-lived forked worker.

    The worker function and payload arrive through the fork-inherited
    global (captured into locals immediately, before the parent clears
    it is irrelevant — the child owns a copy-on-write snapshot).  The
    loop answers one message at a time; per-process state the worker
    function keeps between messages (e.g. shard mask tables) lives in
    the worker module's own globals.
    """
    worker, payload = _STATE
    while True:
        try:
            kind, message = conn.recv()
        except EOFError:  # parent died or closed our pipe: exit quietly
            break
        if kind == "stop":
            break
        try:
            reply = (True, worker(payload, index, message))
        except BaseException as error:  # noqa: BLE001 - must cross the pipe
            reply = (False, error)
        try:
            conn.send(reply)
        except Exception as error:  # unpicklable result or exception
            conn.send((False, EvaluationError(f"fork-pool reply not picklable: {error}")))


class ForkPool:
    """A pool of long-lived forked workers driven by message rounds.

    Parameters
    ----------
    payload:
        Arbitrary (possibly unpicklable) state the workers inherit by
        copy-on-write at fork time.
    worker:
        A module-level function ``worker(payload, index, message)``
        evaluated in worker *index* for every message sent to it.  Its
        return value must be picklable.  Per-process state kept between
        messages belongs in the worker module's globals — each worker
        process owns a private copy.
    count:
        Number of worker processes.

    The pool is a context manager; :meth:`close` (or ``__exit__``) sends
    every worker a stop message and reaps the processes.  Workers are
    daemonic, so a crashed parent cannot leak them.
    """

    def __init__(self, payload: Any, worker: Callable[[Any, int, Any], Any], count: int):
        if count < 1:
            raise EvaluationError(f"a fork pool needs at least one worker, got {count}")
        if not fork_available():
            raise EvaluationError("ForkPool requires the 'fork' start method")
        global _STATE
        context = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        self.count = count
        with _LOCK:
            _STATE = (worker, payload)
            try:
                for index in range(count):
                    parent_end, child_end = context.Pipe()
                    process = context.Process(
                        target=_pool_worker_main, args=(child_end, index), daemon=True
                    )
                    process.start()
                    child_end.close()
                    self._conns.append(parent_end)
                    self._procs.append(process)
            finally:
                _STATE = None
        self._closed = False

    # ------------------------------------------------------------------
    def run(self, tasks: Mapping[int, Any]) -> Dict[int, Any]:
        """Send one message per worker index and collect the replies.

        Messages are sent to every addressed worker before any reply is
        awaited, so a round's tasks execute concurrently.  A worker
        exception is re-raised in the parent; a worker that died
        mid-task surfaces as an :class:`EvaluationError`.
        """
        if self._closed:
            raise EvaluationError("fork pool is closed")
        for index, message in tasks.items():
            self._conns[index].send(("task", message))
        results: Dict[int, Any] = {}
        failure: Optional[BaseException] = None
        for index in tasks:
            try:
                ok, value = self._conns[index].recv()
            except EOFError:
                failure = failure or EvaluationError(
                    f"fork-pool worker {index} died mid-task"
                )
                continue
            if ok:
                results[index] = value
            else:
                failure = failure or value
        if failure is not None:
            raise failure
        return results

    def broadcast(self, message: Any) -> List[Any]:
        """Send the same message to every worker; replies in worker order."""
        results = self.run({index: message for index in range(self.count)})
        return [results[index] for index in range(self.count)]

    def pids(self) -> List[int]:
        """The worker process ids (stable for the pool's lifetime)."""
        return [process.pid for process in self._procs]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker and reap the processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass  # worker already gone
        for process in self._procs:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=timeout)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ForkPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<ForkPool {self.count} workers ({state})>"
