"""Shared fork-pool fan-out used by the batch executor and the partition driver.

Both cross-query batches (:mod:`repro.api.executors`) and intra-query
source blocks (:mod:`repro.engine.partition`) ship unpicklable state
(graphs, label indexes, compiled automata) to workers the same way: a
module-level global assigned under a lock, worker processes forked so
they inherit it by copy-on-write, and only a small integer task index
crossing the process boundary.  This module holds the one copy of that
subtle pattern.

The lock serialises *all* fork-backed fan-outs in the process: two
concurrent fan-outs would otherwise overwrite each other's state between
assignment and the workers' fork, and would oversubscribe the CPUs
anyway.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional

__all__ = ["fork_available", "run_forked"]

#: (worker, payload) inherited by forked children; guarded by _LOCK.
_STATE = None
_LOCK = threading.Lock()


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _invoke(index: int):
    worker, payload = _STATE
    return worker(payload, index)


def run_forked(
    payload: Any,
    worker: Callable[[Any, int], Any],
    count: int,
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Evaluate ``worker(payload, i)`` for ``i in range(count)`` in forked workers.

    *worker* must be a module-level function (it is reached through the
    fork-inherited global, and referenced by name from the pool); each
    call's return value must be picklable for the trip back.  Results are
    returned in task order.
    """
    global _STATE
    if count == 0:
        # ProcessPoolExecutor rejects max_workers=0; an empty fan-out
        # needs no pool (and no lock) at all.
        return []
    context = multiprocessing.get_context("fork")
    with _LOCK:
        _STATE = (worker, payload)
        try:
            workers = max_workers if max_workers is not None else count
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                return list(pool.map(_invoke, range(count)))
        finally:
            _STATE = None
