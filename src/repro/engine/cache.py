"""LRU-bounded caches with hit/miss accounting for the evaluation engine.

The engine keeps one cache per compilation artefact family (Thompson
NFAs, register automata, ...).  Keys are the hashable query ASTs (all
query ASTs in this project are frozen dataclasses), so two structurally
equal queries — however they were constructed or parsed — share one
compiled automaton.  Every cache is LRU-bounded so long-running services
evaluating millions of ad-hoc queries cannot grow without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

__all__ = ["CacheStats", "LRUCache"]

V = TypeVar("V")


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's effectiveness."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache(Generic[V]):
    """A small LRU cache: bounded, with hit/miss/eviction counters.

    ``get_or_build(key, build)`` is the only lookup path; it moves hits to
    the most-recently-used end and evicts the least-recently-used entry
    when full.  Not thread-safe: neither this cache nor the engine facade
    takes locks, so callers sharing an engine across threads must
    serialise access themselves (or give each thread its own
    :class:`~repro.engine.engine.EvaluationEngine`).
    """

    __slots__ = ("maxsize", "_entries", "_hits", "_misses", "_evictions")

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_build(self, key: Hashable, build: Callable[[], V]) -> V:
        """Return the cached value for *key*, building and storing it on a miss."""
        entries = self._entries
        try:
            value = entries[key]
        except KeyError:
            self._misses += 1
            value = build()
            entries[key] = value
            if len(entries) > self.maxsize:
                entries.popitem(last=False)
                self._evictions += 1
            return value
        self._hits += 1
        entries.move_to_end(key)
        return value

    def peek(self, key: Hashable, default=None):
        """The cached value for *key* without touching recency or counters.

        The repair path inspects *previous-version* entries this way:
        a stale entry consulted as repair input should neither count as
        a hit nor be promoted over entries still serving live lookups.
        """
        return self._entries.get(key, default)

    def items(self):
        """A snapshot of ``(key, value)`` pairs, least-recently-used first.

        Read-only: neither counters nor recency are touched, so sessions
        can serialise their caches (point-cache snapshots) without
        distorting the statistics.
        """
        return tuple(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries (counters are kept; they describe the lifetime)."""
        self._entries.clear()

    def stats(self) -> CacheStats:
        """A snapshot of the cache counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            maxsize=self.maxsize,
        )
