"""Index-driven evaluation kernels for data RPQs (REE and REM).

These are the engine-side counterparts of the two evaluation strategies
described in :mod:`repro.query.data_rpq_eval`:

* the bottom-up relational algebra for equality RPQs (REE), and
* the register-automaton × graph product for memory RPQs (REM).

Both work over a :class:`~repro.datagraph.index.LabelIndex` and on plain
node ids; the public wrappers in :mod:`repro.query.data_rpq_eval`
translate to :class:`~repro.datagraph.node.Node` pairs at the boundary.
Automaton compilation (``compile_rem``, the REE→REM translation) is
cached by the :class:`~repro.engine.engine.EvaluationEngine`, so repeated
evaluation of one query over many graphs — the shape of the adversarial
certain-answer loops — compiles exactly once.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from ..datagraph.index import LabelIndex
from ..datagraph.node import NodeId
from ..datagraph.values import values_differ, values_equal
from ..datapaths import RegisterAutomaton, Valuation
from ..datapaths.ree import (
    ReeConcat,
    ReeEpsilon,
    ReeEqualTest,
    ReeLetter,
    ReeNotEqualTest,
    ReePlus,
    ReeUnion,
    RegexWithEquality,
)
from ..exceptions import EvaluationError
from . import product
from .spaces import RegisterProductSpace

__all__ = [
    "ree_relation",
    "register_automaton_relation",
    "register_automaton_relation_per_source",
]

IdPair = Tuple[NodeId, NodeId]


# ----------------------------------------------------------------------
# Bottom-up relational algebra for REE, over the label index
# ----------------------------------------------------------------------
def ree_relation(
    index: LabelIndex, expression: RegexWithEquality, null_semantics: bool = False
) -> FrozenSet[IdPair]:
    """The id-pair relation of an equality RPQ, computed bottom-up."""
    memo: Dict[int, FrozenSet[IdPair]] = {}
    return _ree_relation(index, expression, null_semantics, memo)


def _ree_relation(
    index: LabelIndex,
    expression: RegexWithEquality,
    null_semantics: bool,
    memo: Dict[int, FrozenSet[IdPair]],
) -> FrozenSet[IdPair]:
    key = id(expression)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if isinstance(expression, ReeEpsilon):
        result = frozenset((node_id, node_id) for node_id in index.nodes)
    elif isinstance(expression, ReeLetter):
        result = frozenset(index.pairs(expression.symbol))
    elif isinstance(expression, ReeConcat):
        left = _ree_relation(index, expression.left, null_semantics, memo)
        right = _ree_relation(index, expression.right, null_semantics, memo)
        result = compose_relations(left, right)
    elif isinstance(expression, ReeUnion):
        result = _ree_relation(index, expression.left, null_semantics, memo) | _ree_relation(
            index, expression.right, null_semantics, memo
        )
    elif isinstance(expression, ReePlus):
        result = transitive_closure(_ree_relation(index, expression.inner, null_semantics, memo))
    elif isinstance(expression, (ReeEqualTest, ReeNotEqualTest)):
        inner = _ree_relation(index, expression.inner, null_semantics, memo)
        values = index.values
        want_equal = isinstance(expression, ReeEqualTest)
        kept = set()
        for source, target in inner:
            first = values[source]
            last = values[target]
            if null_semantics:
                ok = values_equal(first, last) if want_equal else values_differ(first, last)
            else:
                ok = (first == last) if want_equal else (first != last)
            if ok:
                kept.add((source, target))
        result = frozenset(kept)
    else:  # pragma: no cover - defensive
        raise EvaluationError(f"unknown REE node {expression!r}")
    memo[key] = result
    return result


def compose_relations(left: Iterable[IdPair], right: Iterable[IdPair]) -> FrozenSet[IdPair]:
    """Relational composition ``left ∘ right`` on id pairs."""
    right_index: Dict[NodeId, Set[NodeId]] = {}
    for middle, target in right:
        right_index.setdefault(middle, set()).add(target)
    result: Set[IdPair] = set()
    for source, middle in left:
        targets = right_index.get(middle)
        if targets:
            for target in targets:
                result.add((source, target))
    return frozenset(result)


def transitive_closure(relation: Iterable[IdPair]) -> FrozenSet[IdPair]:
    """The transitive closure of a binary relation on id pairs."""
    successors: Dict[NodeId, Set[NodeId]] = {}
    for source, target in relation:
        successors.setdefault(source, set()).add(target)
    closure: Set[IdPair] = set()
    for start in list(successors):
        seen: Set[NodeId] = set()
        queue = deque(successors.get(start, ()))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            closure.add((start, current))
            queue.extend(successors.get(current, ()))
    return frozenset(closure)


# ----------------------------------------------------------------------
# Register-automaton × graph product for REM, over the label index
# ----------------------------------------------------------------------
def register_automaton_relation(
    index: LabelIndex, automaton: RegisterAutomaton, null_semantics: bool = False
) -> FrozenSet[IdPair]:
    """The id-pair relation computed by product reachability with *automaton*.

    Configurations are ``(node, state, register valuation)``, evaluated
    as **one** full-relation mask-propagation pass over the
    :class:`~repro.engine.spaces.RegisterProductSpace`: every source
    seeds its initial silent closure with its own bit, and the shared
    phase-3 fixpoint annotates each configuration with the bitmask of
    sources reaching it.  Sources whose runs meet in the same
    ``(node, state, valuation)`` configuration — common when register
    contents range over a bounded value domain — share all downstream
    expansion, which the historical per-source search (kept as
    :func:`register_automaton_relation_per_source`) repeated once per
    source.
    """
    space = RegisterProductSpace(index, automaton, null_semantics)
    return frozenset(product.product_relation(space))


def register_automaton_relation_per_source(
    index: LabelIndex, automaton: RegisterAutomaton, null_semantics: bool = False
) -> FrozenSet[IdPair]:
    """The per-source register-automaton search (executable baseline).

    One BFS over the register product per source node.  Superseded by the
    mask-propagation pass of :func:`register_automaton_relation`; kept as
    the equivalence spec and as the baseline the
    ``bench_datarpq_kernels`` CI gate measures against.
    """
    pairs: Set[IdPair] = set()
    for source in index.nodes:
        for target in _register_reachable(index, automaton, source, null_semantics):
            pairs.add((source, target))
    return frozenset(pairs)


def _register_reachable(
    index: LabelIndex, automaton: RegisterAutomaton, source: NodeId, null_semantics: bool
) -> Set[NodeId]:
    values = index.values
    initial = automaton.silent_closure(
        {(automaton.initial, Valuation())}, values[source], null_semantics
    )
    seen: Set[Tuple[NodeId, int, Valuation]] = {
        (source, state, valuation) for state, valuation in initial
    }
    queue: deque = deque(seen)
    targets: Set[NodeId] = set()
    accepting = automaton.accepting
    for _, state, _ in seen:
        if state in accepting:
            targets.add(source)
            break
    while queue:
        node, state, valuation = queue.popleft()
        for transition in automaton.outgoing(state):
            if transition.kind != "letter":
                continue
            for neighbour in index.targets(transition.symbol, node):
                stepped = automaton.silent_closure(
                    {(transition.target, valuation)}, values[neighbour], null_semantics
                )
                for next_state, next_valuation in stepped:
                    config = (neighbour, next_state, next_valuation)
                    if config in seen:
                        continue
                    seen.add(config)
                    if next_state in accepting:
                        targets.add(neighbour)
                    queue.append(config)
    return targets
