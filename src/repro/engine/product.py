"""Indexed product-graph reachability for RPQ evaluation.

The seed evaluator ran one BFS over the (graph × automaton) product per
source node, re-deriving ε-closures and scanning every outgoing edge of a
node regardless of label.  This module replaces it with a three-phase
pass over the product that is run **once** for the whole binary relation
``e(G)``:

1. **Forward multi-source reachability** (:func:`forward_expand`) — one
   BFS from *all* initial configurations ``(v, q₀)`` at once, over the
   label-indexed adjacency (only labels the automaton can actually read
   are followed).
2. **Backward pruning from accepting states** (:func:`backward_prune`) —
   a BFS over the reversed product from every reachable accepting
   configuration; configurations that cannot reach acceptance are
   *useless* and dropped before the expensive phase.
3. **Source-set propagation** (:func:`propagate_masks`) — a worklist
   fixpoint that annotates every useful configuration with the bitmask of
   source nodes that reach it.  Masks are Python integers, so unioning
   the source sets of thousands of configurations is a handful of
   word-parallel big-int ORs rather than per-source set manipulation.

The answer is read off the accepting configurations: ``(u, v) ∈ e(G)``
iff bit ``u`` is set on some ``(v, q_f)``.

Each phase is exposed as a standalone kernel so the partitioned drivers
in :mod:`repro.engine.partition` can recompose them: the propagation
fixpoint is *linear* in its seeds (the mask reaching a configuration is
the union of the contributions of the individual sources), so phase 3
can be split into independent source blocks (:func:`source_block_relation`)
and fanned out across worker pools, or run shard-locally with
cross-shard frontier exchange.  The kernels only require the
``targets``-style adjacency interface, which shard-local index views
also implement.

Single-source and single-pair questions use a direct BFS (phases 1–2
only, with early exit), which is still automaton-compiled and
index-driven.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datagraph.index import LabelIndex
from ..datagraph.node import NodeId
from .compiled import CompiledAutomaton

__all__ = [
    "full_relation",
    "reachable_targets",
    "pair_holds",
    "witness_labels",
    "initial_configs",
    "forward_expand",
    "backward_prune",
    "seed_masks",
    "propagate_masks",
    "decode_pairs",
    "source_block_relation",
]

Config = Tuple[NodeId, int]
Pair = Tuple[NodeId, NodeId]


# ----------------------------------------------------------------------
# Phase kernels
# ----------------------------------------------------------------------
def initial_configs(
    automaton: CompiledAutomaton, nodes: Iterable[NodeId]
) -> Set[Config]:
    """The initial product configurations ``(v, q₀)`` for the given nodes."""
    initial_states = automaton.initial
    return {(node, state) for node in nodes for state in initial_states}


def forward_expand(
    index: LabelIndex, automaton: CompiledAutomaton, seeds: Iterable[Config]
) -> Set[Config]:
    """Phase 1: forward BFS over the product from *seeds* (which are included)."""
    moves = automaton.moves
    targets_of = index.targets
    reachable: Set[Config] = set(seeds)
    queue: deque = deque(reachable)
    while queue:
        node, state = queue.popleft()
        for symbol, next_states in moves[state]:
            targets = targets_of(symbol, node)
            for target in targets:
                for next_state in next_states:
                    config = (target, next_state)
                    if config not in reachable:
                        reachable.add(config)
                        queue.append(config)
    return reachable


def backward_prune(
    index: LabelIndex, automaton: CompiledAutomaton, reachable: Set[Config]
) -> Set[Config]:
    """Phase 2: the subset of *reachable* that can still reach acceptance."""
    accepting = automaton.accepting
    backward_moves = automaton.backward_moves
    sources_of = index.sources
    useful: Set[Config] = {config for config in reachable if config[1] in accepting}
    queue: deque = deque(useful)
    while queue:
        node, state = queue.popleft()
        for symbol, previous_states in backward_moves[state]:
            sources = sources_of(symbol, node)
            for source in sources:
                for previous_state in previous_states:
                    config = (source, previous_state)
                    if config in reachable and config not in useful:
                        useful.add(config)
                        queue.append(config)
    return useful


def seed_masks(
    index: LabelIndex,
    automaton: CompiledAutomaton,
    useful: Optional[Set[Config]] = None,
    sources: Optional[Sequence[NodeId]] = None,
) -> Dict[Config, int]:
    """Initial ``config -> source bitmask`` seeds for phase 3.

    Bits are assigned under the *global* node ordering of *index*, so
    masks produced from different source blocks (or different shards of a
    partition) can be OR-merged directly.  With *sources* given, only
    that block of source nodes contributes seed bits; with *useful*
    given, seeds at pruned configurations are dropped.
    """
    position = index.position
    initial_states = automaton.initial
    seeds: Dict[Config, int] = {}
    for node in index.nodes if sources is None else sources:
        bit = 1 << position[node]
        for state in initial_states:
            config = (node, state)
            if useful is not None and config not in useful:
                continue
            seeds[config] = seeds.get(config, 0) | bit
    return seeds


def propagate_masks(
    index: LabelIndex,
    automaton: CompiledAutomaton,
    seeds: Dict[Config, int],
    useful: Optional[Set[Config]] = None,
    masks: Optional[Dict[Config, int]] = None,
) -> Tuple[Dict[Config, int], Set[Config]]:
    """Phase 3: propagate source bitmasks to a fixpoint.

    Merges *seeds* into *masks* (a fresh table when ``None``) and runs
    the worklist until no mask grows.  Restricting propagation to the
    *useful* set skips dead configurations; shard-local index views pass
    ``useful=None`` and simply stop at their boundary (their ``targets``
    return only local edges).

    Returns the mask table and the set of configurations whose mask
    changed — the sharded driver scans the changed configurations'
    cut edges to build the next cross-shard frontier.
    """
    moves = automaton.moves
    targets_of = index.targets
    if masks is None:
        masks = {}
    changed: Set[Config] = set()
    pending: deque = deque()
    enqueued: Set[Config] = set()
    for config, mask in seeds.items():
        known = masks.get(config, 0)
        merged = known | mask
        if merged != known:
            masks[config] = merged
            changed.add(config)
            if config not in enqueued:
                enqueued.add(config)
                pending.append(config)
    while pending:
        config = pending.popleft()
        enqueued.discard(config)
        node, state = config
        mask = masks[config]
        for symbol, next_states in moves[state]:
            targets = targets_of(symbol, node)
            for target in targets:
                for next_state in next_states:
                    successor = (target, next_state)
                    if useful is not None and successor not in useful:
                        continue
                    known = masks.get(successor, 0)
                    merged = known | mask
                    if merged != known:
                        masks[successor] = merged
                        changed.add(successor)
                        if successor not in enqueued:
                            enqueued.add(successor)
                            pending.append(successor)
    return masks, changed


def decode_pairs(
    nodes: Sequence[NodeId],
    automaton: CompiledAutomaton,
    masks: Dict[Config, int],
) -> Set[Pair]:
    """Read the answer relation off the accepting configurations' masks.

    The bit decoding mirrors ``LabelIndex.nodes_of``, inlined because
    this loop dominates the answer-materialisation cost on dense
    relations.
    """
    accepting = automaton.accepting
    pairs: Set[Pair] = set()
    for (node, state), mask in masks.items():
        if state not in accepting:
            continue
        while mask:
            low = mask & -mask
            pairs.add((nodes[low.bit_length() - 1], node))
            mask ^= low
    return pairs


def source_block_relation(
    index: LabelIndex,
    automaton: CompiledAutomaton,
    useful: Set[Config],
    block: Sequence[NodeId],
) -> Set[Pair]:
    """The answer pairs contributed by one block of source nodes.

    Runs the phase-3 fixpoint with seeds restricted to *block*; because
    propagation is linear in its seeds, the union of the block relations
    over any source partition equals :func:`full_relation`'s answer.
    Phases 1–2 are shared: the caller computes *useful* once and hands it
    to every block.
    """
    seeds = seed_masks(index, automaton, useful=useful, sources=block)
    masks, _ = propagate_masks(index, automaton, seeds, useful=useful)
    return decode_pairs(index.nodes, automaton, masks)


# ----------------------------------------------------------------------
# The sequential composition
# ----------------------------------------------------------------------
def full_relation(index: LabelIndex, automaton: CompiledAutomaton) -> Set[Pair]:
    """All pairs ``(u, v)`` connected by a path accepted by *automaton*."""
    nodes = index.nodes
    if not nodes:
        return set()
    reachable = forward_expand(index, automaton, initial_configs(automaton, nodes))
    useful = backward_prune(index, automaton, reachable)
    if not useful:
        return set()
    seeds = seed_masks(index, automaton, useful=useful)
    masks, _ = propagate_masks(index, automaton, seeds, useful=useful)
    return decode_pairs(nodes, automaton, masks)


def reachable_targets(
    index: LabelIndex,
    automaton: CompiledAutomaton,
    source: NodeId,
    stop_at: Optional[NodeId] = None,
) -> Set[NodeId]:
    """Nodes ``v`` with ``(source, v)`` in the relation (early exit on *stop_at*)."""
    accepting = automaton.accepting
    moves = automaton.moves
    seen: Set[Config] = set()
    queue: deque = deque()
    targets: Set[NodeId] = set()
    for state in automaton.initial:
        config = (source, state)
        seen.add(config)
        queue.append(config)
        if state in accepting:
            targets.add(source)
            if stop_at is not None and source == stop_at:
                return targets
    while queue:
        node, state = queue.popleft()
        for symbol, next_states in moves[state]:
            neighbours = index.targets(symbol, node)
            for neighbour in neighbours:
                for next_state in next_states:
                    config = (neighbour, next_state)
                    if config in seen:
                        continue
                    seen.add(config)
                    if next_state in accepting:
                        targets.add(neighbour)
                        if stop_at is not None and neighbour == stop_at:
                            return targets
                    queue.append(config)
    return targets


def pair_holds(
    index: LabelIndex, automaton: CompiledAutomaton, source: NodeId, target: NodeId
) -> bool:
    """Whether ``(source, target)`` is in the relation (early-exit BFS)."""
    return target in reachable_targets(index, automaton, source, stop_at=target)


def witness_labels(
    index: LabelIndex, automaton: CompiledAutomaton, source: NodeId, target: NodeId
) -> Optional[Tuple[str, ...]]:
    """The label sequence of a shortest witnessing path, or ``None``.

    BFS over the product with parent pointers; used for explanations and
    for tests that need the product construction to exhibit a real path.
    """
    accepting = automaton.accepting
    moves = automaton.moves
    parents: Dict[Config, Tuple[Optional[Config], Optional[str]]] = {}
    queue: deque = deque()
    for state in automaton.initial:
        config = (source, state)
        parents[config] = (None, None)
        queue.append(config)
        if source == target and state in accepting:
            return ()

    def reconstruct(config: Config) -> Tuple[str, ...]:
        labels: List[str] = []
        cursor: Optional[Config] = config
        while cursor is not None:
            parent, label = parents[cursor]
            if label is not None:
                labels.append(label)
            cursor = parent
        return tuple(reversed(labels))

    while queue:
        node, state = queue.popleft()
        for symbol, next_states in moves[state]:
            neighbours = index.targets(symbol, node)
            for neighbour in neighbours:
                for next_state in next_states:
                    config = (neighbour, next_state)
                    if config in parents:
                        continue
                    parents[config] = ((node, state), symbol)
                    if neighbour == target and next_state in accepting:
                        return reconstruct(config)
                    queue.append(config)
    return None
