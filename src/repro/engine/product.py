"""Dialect-generic phase kernels over product configuration spaces.

The seed evaluator ran one BFS over the (graph × automaton) product per
source node, re-deriving ε-closures and scanning every outgoing edge of a
node regardless of label.  This module replaces it with a three-phase
pass that is run **once** for the whole binary relation ``e(G)`` — and,
since PR 4, the phases are generic over any
:class:`~repro.engine.spaces.ProductSpace` (NFA product, register-
automaton product, per-label closure), so every dialect shares one
kernel stack:

1. **Forward multi-source reachability** (:func:`forward_expand`) — one
   BFS from *all* seed configurations at once, over the label-indexed
   adjacency (only labels the control can actually read are followed).
2. **Backward pruning from accepting states** (:func:`backward_prune`) —
   a BFS over the reversed product from every reachable accepting
   configuration; configurations that cannot reach acceptance are
   *useless* and dropped before the expensive phase.  Only spaces with
   ``prune = True`` (the NFA product) support this; the others run
   phase 3 unpruned.
3. **Source-set propagation** (:func:`propagate_masks`) — a worklist
   fixpoint that annotates every useful configuration with the bitmask of
   source nodes that reach it.  Masks are Python integers, so unioning
   the source sets of thousands of configurations is a handful of
   word-parallel big-int ORs rather than per-source set manipulation.

The answer is read off the accepting configurations: ``(u, v) ∈ e(G)``
iff bit ``u`` is set on some accepting configuration sitting at ``v``.

Each phase is exposed as a standalone kernel so the partitioned drivers
in :mod:`repro.engine.partition` can recompose them: the propagation
fixpoint is *linear* in its seeds (the mask reaching a configuration is
the union of the contributions of the individual sources), so phase 3
can be split into independent source blocks (:func:`source_block_relation`)
and fanned out across worker pools, or run shard-locally with
cross-shard frontier exchange.  The kernels take the adjacency to expand
over as a parameter (defaulting to the space's full label index), which
shard-local index views also implement.

:func:`full_relation` keeps the historical ``(index, automaton)``
signature for plain RPQs; :func:`product_relation` is the dialect-generic
composition.  Single-source and single-pair RPQ questions use a direct
BFS (:func:`reachable_targets` / :func:`pair_holds`, with early exit),
which is still automaton-compiled and index-driven.

**Seeded evaluation** (:func:`seeded_product_relation`) is the semijoin
contract the CRPQ planner relies on: the same phases, but seeded only
from a restricted set of source nodes and/or pruned to a restricted set
of target nodes, so a later join atom explores only the part of the
product the already-bound variables can reach.  Restricting *sources*
shrinks phase 1 and the seed bits of phase 3; restricting *targets*
shrinks the accepting set phase 2 prunes back from (and, for
non-pruning spaces, the accepting configurations phase 4 decodes).
``seeded_product_relation(space)`` with no restriction *is*
:func:`product_relation`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..datagraph.compact import CompactLabelIndex
from ..datagraph.index import LabelIndex
from ..datagraph.node import NodeId
from . import compact as compact_kernels
from .compiled import CompiledAutomaton
from .spaces import NfaProductSpace, ProductSpace

__all__ = [
    "full_relation",
    "product_relation",
    "seeded_product_relation",
    "reachable_targets",
    "pair_holds",
    "witness_labels",
    "initial_configs",
    "forward_expand",
    "backward_prune",
    "seed_masks",
    "propagate_masks",
    "decode_pairs",
    "source_block_relation",
]

Config = Tuple[NodeId, int]
Pair = Tuple[NodeId, NodeId]


# ----------------------------------------------------------------------
# Phase kernels (generic over a ProductSpace)
# ----------------------------------------------------------------------
def initial_configs(space: ProductSpace, nodes: Optional[Sequence[NodeId]] = None) -> Set:
    """The seed configurations of the given nodes (all index nodes by default)."""
    seeds: Set = set()
    for node in space.index.nodes if nodes is None else nodes:
        seeds.update(space.seed_configs(node))
    return seeds


def forward_expand(space: ProductSpace, seeds, adjacency=None) -> Set:
    """Phase 1: forward BFS over the product from *seeds* (which are included)."""
    if adjacency is None:
        adjacency = space.index
    successors = space.successors
    reachable: Set = set(seeds)
    queue: deque = deque(reachable)
    while queue:
        config = queue.popleft()
        for successor in successors(adjacency, config):
            if successor not in reachable:
                reachable.add(successor)
                queue.append(successor)
    return reachable


def backward_prune(
    space: ProductSpace, reachable: Set, adjacency=None, targets: Optional[Set[NodeId]] = None
) -> Set:
    """Phase 2: the subset of *reachable* that can still reach acceptance.

    Requires a space with ``prune = True`` (reversible expansion); the
    drivers skip this phase — and pass ``useful=None`` downstream — for
    spaces that only run forward.  With *targets* given, only acceptance
    at one of those nodes counts (the seeded-scan restriction), so every
    configuration that merely accepts elsewhere is pruned too.
    """
    if adjacency is None:
        adjacency = space.index
    predecessors = space.predecessors
    is_accepting = space.is_accepting
    node_of = space.node_of
    useful: Set = {
        config
        for config in reachable
        if is_accepting(config) and (targets is None or node_of(config) in targets)
    }
    queue: deque = deque(useful)
    while queue:
        config = queue.popleft()
        for predecessor in predecessors(adjacency, config):
            if predecessor in reachable and predecessor not in useful:
                useful.add(predecessor)
                queue.append(predecessor)
    return useful


def seed_masks(
    space: ProductSpace,
    useful: Optional[Set] = None,
    sources: Optional[Sequence[NodeId]] = None,
) -> Dict:
    """Initial ``config -> source bitmask`` seeds for phase 3.

    Bits are assigned under the *global* node ordering of the space's
    index, so masks produced from different source blocks (or different
    shards of a partition) can be OR-merged directly.  With *sources*
    given, only that block of source nodes contributes seed bits; with
    *useful* given, seeds at pruned configurations are dropped.
    """
    position = space.index.position
    seed_configs = space.seed_configs
    seeds: Dict = {}
    for node in space.index.nodes if sources is None else sources:
        bit = 1 << position[node]
        for config in seed_configs(node):
            if useful is not None and config not in useful:
                continue
            seeds[config] = seeds.get(config, 0) | bit
    return seeds


def propagate_masks(
    space: ProductSpace,
    seeds: Dict,
    useful: Optional[Set] = None,
    masks: Optional[Dict] = None,
    adjacency=None,
) -> Tuple[Dict, Set]:
    """Phase 3: propagate source bitmasks to a fixpoint.

    Merges *seeds* into *masks* (a fresh table when ``None``) and runs
    the worklist until no mask grows.  Restricting propagation to the
    *useful* set skips dead configurations; shard-local adjacency views
    pass ``useful=None`` and simply stop at their boundary (their
    ``targets`` return only local edges).

    Returns the mask table and the set of configurations whose mask
    changed — the sharded driver scans the changed configurations'
    cut edges to build the next cross-shard frontier.
    """
    if adjacency is None:
        adjacency = space.index
    successors = space.successors
    if masks is None:
        masks = {}
    changed: Set = set()
    pending: deque = deque()
    enqueued: Set = set()
    # A configuration re-enters the worklist every time its mask grows;
    # memoising its successor list keeps re-pops to pure mask ORs (the
    # register product's expansion recomputes silent closures otherwise).
    expansions: Dict = {}
    for config, mask in seeds.items():
        known = masks.get(config, 0)
        merged = known | mask
        if merged != known:
            masks[config] = merged
            changed.add(config)
            if config not in enqueued:
                enqueued.add(config)
                pending.append(config)
    while pending:
        config = pending.popleft()
        enqueued.discard(config)
        mask = masks[config]
        expanded = expansions.get(config)
        if expanded is None:
            expanded = expansions[config] = tuple(successors(adjacency, config))
        for successor in expanded:
            if useful is not None and successor not in useful:
                continue
            known = masks.get(successor, 0)
            merged = known | mask
            if merged != known:
                masks[successor] = merged
                changed.add(successor)
                if successor not in enqueued:
                    enqueued.add(successor)
                    pending.append(successor)
    return masks, changed


def decode_pairs(
    space: ProductSpace, masks: Dict, targets: Optional[Set[NodeId]] = None
) -> Set[Pair]:
    """Read the answer relation off the accepting configurations' masks.

    The bit decoding mirrors ``LabelIndex.nodes_of``, inlined because
    this loop dominates the answer-materialisation cost on dense
    relations.  With *targets* given, only accepting configurations at
    those nodes are decoded — how non-pruning spaces honour a seeded
    scan's target restriction.
    """
    nodes = space.index.nodes
    is_accepting = space.is_accepting
    node_of = space.node_of
    pairs: Set[Pair] = set()
    for config, mask in masks.items():
        if not is_accepting(config):
            continue
        target = node_of(config)
        if targets is not None and target not in targets:
            continue
        while mask:
            low = mask & -mask
            pairs.add((nodes[low.bit_length() - 1], target))
            mask ^= low
    return pairs


def source_block_relation(
    space: ProductSpace,
    useful: Optional[Set],
    block: Sequence[NodeId],
    targets: Optional[Set[NodeId]] = None,
) -> Set[Pair]:
    """The answer pairs contributed by one block of source nodes.

    Runs the phase-3 fixpoint with seeds restricted to *block*; because
    propagation is linear in its seeds, the union of the block relations
    over any source partition equals :func:`product_relation`'s answer.
    Phases 1–2 are shared: the caller computes *useful* once (``None``
    for non-pruning spaces) and hands it to every block.  A seeded
    scan's *targets* restriction is applied at decode time (pruning
    spaces already folded it into *useful*).
    """
    seeds = seed_masks(space, useful=useful, sources=block)
    masks, _ = propagate_masks(space, seeds, useful=useful)
    return decode_pairs(space, masks, targets=targets)


# ----------------------------------------------------------------------
# The sequential compositions
# ----------------------------------------------------------------------
def product_relation(space: ProductSpace) -> Set[Pair]:
    """All pairs ``(u, v)`` the product space connects — any dialect.

    Runs phases 1–2 only on spaces that support pruning; otherwise the
    propagation fixpoint explores exactly the forward-reachable
    configurations, which is what the per-source searches explored in
    total (shared, here, across all sources at once).
    """
    return seeded_product_relation(space)


def seeded_product_relation(
    space: ProductSpace,
    sources: Optional[Sequence[NodeId]] = None,
    targets: Optional[Set[NodeId]] = None,
    compact: Optional[CompactLabelIndex] = None,
) -> Set[Pair]:
    """The pairs of :func:`product_relation` restricted to bound endpoints.

    The semijoin kernel behind the CRPQ planner's seeded scans: with
    *sources* given, only those nodes are seeded, so phase 1 explores
    just the product reachable from the bound left-hand values and phase
    3 propagates only their bits; with *targets* given, pruning spaces
    restrict the phase-2 accepting set to those nodes and non-pruning
    spaces filter at decode time.  Equivalent to (but much cheaper than)
    ``{(u, v) ∈ product_relation(space) | u ∈ sources, v ∈ targets}``.

    With *compact* given (the CSR twin of ``space.index``), the space's
    int-id kernel in :mod:`repro.engine.compact` runs instead of the
    dict phases — bit-identical answers, array-indexed inner loops; a
    space without a compact kernel silently takes the dict path.
    """
    if compact is not None:
        relation = compact_kernels.compact_space_relation(
            space, compact, sources=sources, targets=targets
        )
        if relation is not None:
            return relation
    if not space.index.nodes:
        return set()
    if sources is not None and not sources:
        return set()
    if targets is not None and not targets:
        return set()
    useful: Optional[Set] = None
    if space.prune:
        reachable = forward_expand(space, initial_configs(space, sources))
        useful = backward_prune(space, reachable, targets=targets)
        if not useful:
            return set()
    seeds = seed_masks(space, useful=useful, sources=sources)
    masks, _ = propagate_masks(space, seeds, useful=useful)
    return decode_pairs(space, masks, targets=targets)


def full_relation(
    index: Union[LabelIndex, CompactLabelIndex], automaton: CompiledAutomaton
) -> Set[Pair]:
    """All pairs ``(u, v)`` connected by a path accepted by *automaton*.

    The plain-RPQ entry point: :func:`product_relation` over the
    :class:`~repro.engine.spaces.NfaProductSpace`, or — handed the CSR
    :class:`~repro.datagraph.compact.CompactLabelIndex` twin — the
    int-id kernel directly.
    """
    if isinstance(index, CompactLabelIndex):
        return compact_kernels.nfa_relation(index, automaton)
    return product_relation(NfaProductSpace(index, automaton))


def reachable_targets(
    index: Union[LabelIndex, CompactLabelIndex],
    automaton: CompiledAutomaton,
    source: NodeId,
    stop_at: Optional[NodeId] = None,
) -> Set[NodeId]:
    """Nodes ``v`` with ``(source, v)`` in the relation (early exit on *stop_at*)."""
    if isinstance(index, CompactLabelIndex):
        return compact_kernels.nfa_reachable_targets(index, automaton, source, stop_at)
    accepting = automaton.accepting
    moves = automaton.moves
    seen: Set[Config] = set()
    queue: deque = deque()
    targets: Set[NodeId] = set()
    for state in automaton.initial:
        config = (source, state)
        seen.add(config)
        queue.append(config)
        if state in accepting:
            targets.add(source)
            if stop_at is not None and source == stop_at:
                return targets
    while queue:
        node, state = queue.popleft()
        for symbol, next_states in moves[state]:
            neighbours = index.targets(symbol, node)
            for neighbour in neighbours:
                for next_state in next_states:
                    config = (neighbour, next_state)
                    if config in seen:
                        continue
                    seen.add(config)
                    if next_state in accepting:
                        targets.add(neighbour)
                        if stop_at is not None and neighbour == stop_at:
                            return targets
                    queue.append(config)
    return targets


def pair_holds(
    index: LabelIndex, automaton: CompiledAutomaton, source: NodeId, target: NodeId
) -> bool:
    """Whether ``(source, target)`` is in the relation (early-exit BFS)."""
    return target in reachable_targets(index, automaton, source, stop_at=target)


def witness_labels(
    index: LabelIndex, automaton: CompiledAutomaton, source: NodeId, target: NodeId
) -> Optional[Tuple[str, ...]]:
    """The label sequence of a shortest witnessing path, or ``None``.

    BFS over the product with parent pointers; used for explanations and
    for tests that need the product construction to exhibit a real path.
    """
    accepting = automaton.accepting
    moves = automaton.moves
    parents: Dict[Config, Tuple[Optional[Config], Optional[str]]] = {}
    queue: deque = deque()
    for state in automaton.initial:
        config = (source, state)
        parents[config] = (None, None)
        queue.append(config)
        if source == target and state in accepting:
            return ()

    def reconstruct(config: Config) -> Tuple[str, ...]:
        labels: List[str] = []
        cursor: Optional[Config] = config
        while cursor is not None:
            parent, label = parents[cursor]
            if label is not None:
                labels.append(label)
            cursor = parent
        return tuple(reversed(labels))

    while queue:
        node, state = queue.popleft()
        for symbol, next_states in moves[state]:
            neighbours = index.targets(symbol, node)
            for neighbour in neighbours:
                for next_state in next_states:
                    config = (neighbour, next_state)
                    if config in parents:
                        continue
                    parents[config] = ((node, state), symbol)
                    if neighbour == target and next_state in accepting:
                        return reconstruct(config)
                    queue.append(config)
    return None
