"""Indexed product-graph reachability for RPQ evaluation.

The seed evaluator ran one BFS over the (graph × automaton) product per
source node, re-deriving ε-closures and scanning every outgoing edge of a
node regardless of label.  This module replaces it with a three-phase
pass over the product that is run **once** for the whole binary relation
``e(G)``:

1. **Forward multi-source reachability** — one BFS from *all* initial
   configurations ``(v, q₀)`` at once, over the label-indexed adjacency
   (only labels the automaton can actually read are followed).
2. **Backward pruning from accepting states** — a BFS over the reversed
   product from every reachable accepting configuration; configurations
   that cannot reach acceptance are *useless* and dropped before the
   expensive phase.
3. **Source-set propagation** — a worklist fixpoint that annotates every
   useful configuration with the bitmask of source nodes that reach it.
   Masks are Python integers, so unioning the source sets of thousands of
   configurations is a handful of word-parallel big-int ORs rather than
   per-source set manipulation.

The answer is read off the accepting configurations: ``(u, v) ∈ e(G)``
iff bit ``u`` is set on some ``(v, q_f)``.  Single-source and single-pair
questions use a direct BFS (phases 1–2 only, with early exit), which is
still automaton-compiled and index-driven.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..datagraph.index import LabelIndex
from ..datagraph.node import NodeId
from .compiled import CompiledAutomaton

__all__ = [
    "full_relation",
    "reachable_targets",
    "pair_holds",
    "witness_labels",
]

Config = Tuple[NodeId, int]


def full_relation(index: LabelIndex, automaton: CompiledAutomaton) -> Set[Tuple[NodeId, NodeId]]:
    """All pairs ``(u, v)`` connected by a path accepted by *automaton*."""
    nodes = index.nodes
    if not nodes:
        return set()
    initial_states = automaton.initial
    accepting = automaton.accepting
    moves = automaton.moves

    # Phase 1: forward multi-source reachability over the product.
    reachable: Set[Config] = set()
    queue: deque = deque()
    for node in nodes:
        for state in initial_states:
            config = (node, state)
            reachable.add(config)
            queue.append(config)
    while queue:
        node, state = queue.popleft()
        for symbol, next_states in moves[state]:
            targets = index.targets(symbol, node)
            for target in targets:
                for next_state in next_states:
                    config = (target, next_state)
                    if config not in reachable:
                        reachable.add(config)
                        queue.append(config)

    # Phase 2: backward pruning — keep only configurations that can still
    # reach an accepting configuration (within the reachable set).
    backward_moves = automaton.backward_moves
    useful: Set[Config] = {config for config in reachable if config[1] in accepting}
    queue.extend(useful)
    while queue:
        node, state = queue.popleft()
        for symbol, previous_states in backward_moves[state]:
            sources = index.sources(symbol, node)
            for source in sources:
                for previous_state in previous_states:
                    config = (source, previous_state)
                    if config in reachable and config not in useful:
                        useful.add(config)
                        queue.append(config)
    if not useful:
        return set()

    # Phase 3: propagate source bitmasks through the useful configurations.
    position = index.position
    masks: Dict[Config, int] = {}
    pending: deque = deque()
    enqueued: Set[Config] = set()
    for node in nodes:
        bit = 1 << position[node]
        for state in initial_states:
            config = (node, state)
            if config in useful:
                masks[config] = masks.get(config, 0) | bit
                if config not in enqueued:
                    enqueued.add(config)
                    pending.append(config)
    while pending:
        config = pending.popleft()
        enqueued.discard(config)
        node, state = config
        mask = masks[config]
        for symbol, next_states in moves[state]:
            targets = index.targets(symbol, node)
            for target in targets:
                for next_state in next_states:
                    successor = (target, next_state)
                    if successor not in useful:
                        continue
                    known = masks.get(successor, 0)
                    merged = known | mask
                    if merged != known:
                        masks[successor] = merged
                        if successor not in enqueued:
                            enqueued.add(successor)
                            pending.append(successor)

    # Read the relation off the accepting configurations.  The bit
    # decoding mirrors LabelIndex.nodes_of, inlined because this loop
    # dominates the answer-materialisation cost on dense relations.
    pairs: Set[Tuple[NodeId, NodeId]] = set()
    node_list = nodes
    for (node, state), mask in masks.items():
        if state not in accepting:
            continue
        while mask:
            low = mask & -mask
            pairs.add((node_list[low.bit_length() - 1], node))
            mask ^= low
    return pairs


def reachable_targets(
    index: LabelIndex,
    automaton: CompiledAutomaton,
    source: NodeId,
    stop_at: Optional[NodeId] = None,
) -> Set[NodeId]:
    """Nodes ``v`` with ``(source, v)`` in the relation (early exit on *stop_at*)."""
    accepting = automaton.accepting
    moves = automaton.moves
    seen: Set[Config] = set()
    queue: deque = deque()
    targets: Set[NodeId] = set()
    for state in automaton.initial:
        config = (source, state)
        seen.add(config)
        queue.append(config)
        if state in accepting:
            targets.add(source)
            if stop_at is not None and source == stop_at:
                return targets
    while queue:
        node, state = queue.popleft()
        for symbol, next_states in moves[state]:
            neighbours = index.targets(symbol, node)
            for neighbour in neighbours:
                for next_state in next_states:
                    config = (neighbour, next_state)
                    if config in seen:
                        continue
                    seen.add(config)
                    if next_state in accepting:
                        targets.add(neighbour)
                        if stop_at is not None and neighbour == stop_at:
                            return targets
                    queue.append(config)
    return targets


def pair_holds(
    index: LabelIndex, automaton: CompiledAutomaton, source: NodeId, target: NodeId
) -> bool:
    """Whether ``(source, target)`` is in the relation (early-exit BFS)."""
    return target in reachable_targets(index, automaton, source, stop_at=target)


def witness_labels(
    index: LabelIndex, automaton: CompiledAutomaton, source: NodeId, target: NodeId
) -> Optional[Tuple[str, ...]]:
    """The label sequence of a shortest witnessing path, or ``None``.

    BFS over the product with parent pointers; used for explanations and
    for tests that need the product construction to exhibit a real path.
    """
    accepting = automaton.accepting
    moves = automaton.moves
    parents: Dict[Config, Tuple[Optional[Config], Optional[str]]] = {}
    queue: deque = deque()
    for state in automaton.initial:
        config = (source, state)
        parents[config] = (None, None)
        queue.append(config)
        if source == target and state in accepting:
            return ()

    def reconstruct(config: Config) -> Tuple[str, ...]:
        labels: List[str] = []
        cursor: Optional[Config] = config
        while cursor is not None:
            parent, label = parents[cursor]
            if label is not None:
                labels.append(label)
            cursor = parent
        return tuple(reversed(labels))

    while queue:
        node, state = queue.popleft()
        for symbol, next_states in moves[state]:
            neighbours = index.targets(symbol, node)
            for neighbour in neighbours:
                for next_state in next_states:
                    config = (neighbour, next_state)
                    if config in parents:
                        continue
                    parents[config] = ((node, state), symbol)
                    if neighbour == target and next_state in accepting:
                        return reconstruct(config)
                    queue.append(config)
    return None
