"""Partitioned evaluation: source-block parallelism and sharded scatter/gather.

Two independent ways to split one product-relation pass across more
hardware, both built from the phase kernels of :mod:`repro.engine.product`
and both **generic over any** :class:`~repro.engine.spaces.ProductSpace`
— plain RPQs, register-automaton data RPQs and GXPath closures all ride
the same drivers:

* **Source-block parallelism** (:func:`parallel_product_relation`) keeps
  one copy of the graph but splits the phase-3 bitmask propagation
  fixpoint — which dominates full-relation evaluation — into independent
  blocks of source nodes.  For pruning spaces, phases 1–2 (forward
  reachability + backward prune) run once in the caller; each worker then
  propagates only its block's seed bits and the per-block answer pairs
  are unioned.  The ``"fork"`` backend ships the space (graph index,
  compiled control) to workers by copy-on-write, which is what actually
  buys CPU parallelism under the GIL; the ``"thread"`` backend exists for
  platforms without ``fork``.

* **Sharded scatter/gather** (:class:`GraphPartition` +
  :func:`sharded_product_relation`) is the seam toward multi-machine
  evaluation: an edge-cut partition assigns every node to a shard, each
  shard holds a shard-local adjacency view (:class:`ShardView`,
  duck-typed to the ``targets`` interface the kernels need), and a driver
  iterates rounds of shard-local mask propagation followed by cross-shard
  frontier exchange over the cut edges until no shard learns a new source
  bit.  Bit positions come from the *global* node ordering, so gathering
  is a union of the shards' accepting masks.  When ``fork`` is available
  the driver forks **one persistent worker pool per invocation** through
  the shared :class:`~repro.engine.forkpool.ForkPool`: shards are
  assigned to workers round-robin, each worker keeps its shards' mask
  tables in its own process across frontier rounds, and only the round's
  inbox/outbox messages are pickled either way (the final decode happens
  worker-side too, so the full mask tables never cross the pipe).  The
  in-process loop remains as the degradation path (and the right choice
  for small graphs, where even a one-time pool cannot amortise) —
  answers are identical either way.

Both drivers also run **seeded** (``sources`` / ``targets`` restricted)
evaluation — see :func:`repro.engine.product.seeded_product_relation` —
which is how the CRPQ planner's per-atom semijoin scans inherit
intra-query parallelism without any planner-specific driver code.

:func:`parallel_full_relation` and :func:`sharded_full_relation` keep the
historical ``(index, automaton)`` signatures for plain RPQs.  Equivalence
across drivers and dialects is pinned by ``tests/engine/test_partition.py``
/ ``tests/engine/test_spaces.py``, and the ``bench_intraquery_parallel``
CI gate keeps the parallel path from regressing below sequential.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..datagraph.index import LabelIndex
from ..datagraph.node import NodeId
from ..exceptions import EvaluationError
from .compiled import CompiledAutomaton
from .forkpool import ForkPool, fork_available, run_forked
from . import product
from .product import Pair
from .spaces import NfaProductSpace, ProductSpace

__all__ = [
    "ShardView",
    "GraphPartition",
    "split_blocks",
    "parallel_product_relation",
    "parallel_full_relation",
    "sharded_product_relation",
    "sharded_full_relation",
    "partitioned_product_relation",
]

#: Empty adjacency used for labels a shard has no local/cut edges for.
_EMPTY_ADJACENCY: Mapping[NodeId, Tuple[NodeId, ...]] = {}

#: Below this many nodes the sharded driver's ``processes=None`` default
#: stays in-process: forking even one worker pool cannot amortise on
#: small work.
PROCESS_SHARDS_MIN_NODES = 512


# ----------------------------------------------------------------------
# Source-block parallelism
# ----------------------------------------------------------------------
def split_blocks(nodes: Sequence[NodeId], num_blocks: int) -> List[Tuple[NodeId, ...]]:
    """Split *nodes* into at most *num_blocks* contiguous, near-equal blocks.

    Every node lands in exactly one block and no block is empty (fewer
    blocks are returned when there are fewer nodes than requested).
    """
    if num_blocks < 1:
        raise EvaluationError(f"num_blocks must be positive, got {num_blocks}")
    count = len(nodes)
    num_blocks = min(num_blocks, count)
    if num_blocks <= 1:
        return [tuple(nodes)] if count else []
    size, extra = divmod(count, num_blocks)
    blocks: List[Tuple[NodeId, ...]] = []
    start = 0
    for block_index in range(num_blocks):
        end = start + size + (1 if block_index < extra else 0)
        blocks.append(tuple(nodes[start:end]))
        start = end
    return blocks


def _block_worker(state, block_index: int) -> Set[Pair]:
    """Forked worker: one source block's relation (state arrives by fork)."""
    space, useful, blocks, targets = state
    return product.source_block_relation(space, useful, blocks[block_index], targets=targets)


def parallel_product_relation(
    space: ProductSpace,
    num_blocks: Optional[int] = None,
    backend: str = "auto",
    sources: Optional[Sequence[NodeId]] = None,
    targets: Optional[Set[NodeId]] = None,
) -> Set[Pair]:
    """``product_relation`` with the phase-3 fixpoint fanned out over source blocks.

    Works for any :class:`ProductSpace`: pruning spaces share the
    forward/backward phases across all blocks; non-pruning spaces (the
    register product, closures) hand every block an unpruned fixpoint.
    With *sources* / *targets* given this is the driver-parallel form of
    :func:`~repro.engine.product.seeded_product_relation`: the blocks are
    cut from the bound source set only, so a CRPQ seeded scan fans its
    semijoin out over the same worker pool as a full relation.

    Parameters
    ----------
    num_blocks:
        Number of source blocks (and workers); defaults to the CPU count
        capped at 8.
    backend:
        ``"fork"``, ``"thread"``, or ``"auto"`` (fork when available).
    sources / targets:
        Optional endpoint restrictions (seeded evaluation); ``None``
        means unrestricted.
    """
    if backend not in {"auto", "fork", "thread"}:
        raise EvaluationError(f"unknown intra-query backend {backend!r}")
    nodes = space.index.nodes if sources is None else tuple(sources)
    if not nodes:
        return set()
    if targets is not None:
        if not targets:
            return set()
        targets = set(targets)
    useful: Optional[Set] = None
    if space.prune:
        reachable = product.forward_expand(space, product.initial_configs(space, sources))
        useful = product.backward_prune(space, reachable, targets=targets)
        if not useful:
            return set()
    workers = num_blocks if num_blocks is not None else min(os.cpu_count() or 1, 8)
    if workers < 1:
        raise EvaluationError(f"num_blocks must be positive, got {workers}")
    blocks = split_blocks(nodes, workers)
    if len(blocks) <= 1:
        return product.source_block_relation(space, useful, nodes, targets=targets)
    if backend == "auto":
        backend = "fork" if fork_available() else "thread"
    if backend == "fork" and fork_available():
        partials = run_forked((space, useful, blocks, targets), _block_worker, len(blocks))
        return set().union(*partials)
    with ThreadPoolExecutor(max_workers=len(blocks)) as pool:
        partials = pool.map(
            lambda block: product.source_block_relation(space, useful, block, targets=targets),
            blocks,
        )
        return set().union(*partials)


def parallel_full_relation(
    index: LabelIndex,
    automaton: CompiledAutomaton,
    num_blocks: Optional[int] = None,
    backend: str = "auto",
) -> Set[Pair]:
    """The plain-RPQ entry point: source-block parallelism over the NFA product."""
    return parallel_product_relation(
        NfaProductSpace(index, automaton), num_blocks=num_blocks, backend=backend
    )


# ----------------------------------------------------------------------
# Edge-cut partitions and shard-local views
# ----------------------------------------------------------------------
class ShardView:
    """A shard-local adjacency view over one block of an edge-cut partition.

    Duck-types the ``targets`` interface of
    :class:`~repro.datagraph.index.LabelIndex`, returning only edges whose
    *both* endpoints live in the shard, so the product kernels run on a
    shard unchanged and simply stop at the boundary.  Cut edges (local
    source, remote target) are kept separately for the driver's
    frontier-exchange scan.
    """

    __slots__ = ("shard_id", "nodes", "_succ", "_cut")

    def __init__(
        self,
        shard_id: int,
        nodes: Tuple[NodeId, ...],
        succ: Dict[str, Dict[NodeId, Tuple[NodeId, ...]]],
        cut: Dict[str, Dict[NodeId, Tuple[NodeId, ...]]],
    ):
        self.shard_id = shard_id
        self.nodes = nodes
        self._succ = succ
        self._cut = cut

    def targets(self, label: str, source: NodeId) -> Tuple[NodeId, ...]:
        """Shard-local targets of *source* along *label*."""
        return self._succ.get(label, _EMPTY_ADJACENCY).get(source, ())

    def cut_targets(self, label: str, source: NodeId) -> Tuple[NodeId, ...]:
        """Targets of *source* along *label* owned by **other** shards."""
        return self._cut.get(label, _EMPTY_ADJACENCY).get(source, ())

    @property
    def num_cut_edges(self) -> int:
        """Number of outgoing edges of this shard crossing the cut."""
        return sum(len(targets) for by_node in self._cut.values() for targets in by_node.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardView {self.shard_id}: {len(self.nodes)} nodes, "
            f"{self.num_cut_edges} cut edges>"
        )


class _CutView:
    """The cut edges of a shard, presented through the ``targets`` interface.

    Handing this view to :meth:`ProductSpace.successors` makes frontier
    exchange dialect-generic: whatever configurations the space reaches
    over a cut edge are exactly the messages to route to the owning
    shard, with no per-dialect exchange code.
    """

    __slots__ = ("_shard",)

    def __init__(self, shard: ShardView):
        self._shard = shard

    def targets(self, label: str, source: NodeId) -> Tuple[NodeId, ...]:
        return self._shard.cut_targets(label, source)


class GraphPartition:
    """An edge-cut partition of a label-indexed graph into shards.

    Planning (this class) is separated from execution
    (:func:`sharded_product_relation`): a partition assigns every node to
    a shard and materialises one :class:`ShardView` per shard, with
    cross-shard edges recorded as frontier-exchange boundaries.  The
    partition is built against one :class:`LabelIndex` snapshot and
    remembers its ``version``, so stale partitions are detectable the
    same way stale indexes are.
    """

    __slots__ = ("version", "num_shards", "assignment", "shards")

    def __init__(self, index: LabelIndex, assignment: Dict[NodeId, int], num_shards: int):
        if num_shards < 1:
            raise EvaluationError(f"a partition needs at least one shard, got {num_shards}")
        missing = [node for node in index.nodes if node not in assignment]
        if missing:
            raise EvaluationError(f"partition assignment misses {len(missing)} node(s)")
        self.version = index.version
        self.num_shards = num_shards
        self.assignment = assignment
        members: List[List[NodeId]] = [[] for _ in range(num_shards)]
        for node in index.nodes:
            shard = assignment[node]
            if not 0 <= shard < num_shards:
                raise EvaluationError(f"node {node!r} assigned to invalid shard {shard}")
            members[shard].append(node)
        local: List[Dict[str, Dict[NodeId, Tuple[NodeId, ...]]]] = [{} for _ in range(num_shards)]
        cut: List[Dict[str, Dict[NodeId, Tuple[NodeId, ...]]]] = [{} for _ in range(num_shards)]
        for label in index.edge_labels():
            for source, targets in index.successors(label).items():
                shard = assignment[source]
                mine = tuple(target for target in targets if assignment[target] == shard)
                theirs = tuple(target for target in targets if assignment[target] != shard)
                if mine:
                    local[shard].setdefault(label, {})[source] = mine
                if theirs:
                    cut[shard].setdefault(label, {})[source] = theirs
        self.shards: Tuple[ShardView, ...] = tuple(
            ShardView(shard_id, tuple(members[shard_id]), local[shard_id], cut[shard_id])
            for shard_id in range(num_shards)
        )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, index: LabelIndex, num_shards: int, strategy: str = "contiguous"
    ) -> "GraphPartition":
        """Partition *index* into *num_shards* shards.

        ``"contiguous"`` slices the index's node order into equal blocks —
        the right default when related nodes are added together (e.g. the
        community generators); ``"hash"`` scatters nodes by hash, a
        worst-case cut useful for stress-testing the frontier exchange.
        """
        if num_shards < 1:
            raise EvaluationError(f"a partition needs at least one shard, got {num_shards}")
        nodes = index.nodes
        assignment: Dict[NodeId, int] = {}
        if strategy == "contiguous":
            for shard_id, block in enumerate(split_blocks(nodes, num_shards)):
                for node in block:
                    assignment[node] = shard_id
        elif strategy == "hash":
            for node in nodes:
                assignment[node] = hash(node) % num_shards
        else:
            raise EvaluationError(
                f"unknown partition strategy {strategy!r}; expected 'contiguous' or 'hash'"
            )
        return cls(index, assignment, num_shards)

    def owner(self, node: NodeId) -> int:
        """The shard a node is assigned to."""
        return self.assignment[node]

    def apply_delta(self, delta) -> None:
        """Patch the partition in place for a delta without node removals.

        New nodes are appended round-robin by their position in the
        delta, so every process holding a copy of this partition (the
        pool parent and each forked worker) computes the **same**
        assignment independently — which is what lets an epoch message
        ship just the delta instead of a rebuilt partition.  Added and
        removed edges are spliced into the owning shard's local or cut
        adjacency; node removals would need rebalancing and must rebuild.
        """
        if delta.removed_nodes:
            raise EvaluationError("cannot patch a partition across node removals")
        assignment = self.assignment
        existing = len(assignment)
        new_members: Dict[int, List[NodeId]] = {}
        for offset, (node_id, _value) in enumerate(delta.added_nodes):
            shard_id = (existing + offset) % self.num_shards
            assignment[node_id] = shard_id
            new_members.setdefault(shard_id, []).append(node_id)
        for shard in self.shards:
            added = new_members.get(shard.shard_id)
            if added:
                shard.nodes = shard.nodes + tuple(added)
        for source, label, target in delta.removed_edges:
            shard = self.shards[assignment[source]]
            table = shard._succ if assignment[target] == shard.shard_id else shard._cut
            by_source = table.get(label)
            if by_source is None:
                continue
            remaining = tuple(other for other in by_source.get(source, ()) if other != target)
            if remaining:
                by_source[source] = remaining
            elif source in by_source:
                del by_source[source]
                if not by_source:
                    del table[label]
        for source, label, target in delta.added_edges:
            shard = self.shards[assignment[source]]
            table = shard._succ if assignment[target] == shard.shard_id else shard._cut
            by_source = table.setdefault(label, {})
            current = by_source.get(source, ())
            if target not in current:
                by_source[source] = current + (target,)
        if delta.new_version is not None:
            self.version = delta.new_version

    @property
    def cut_edge_count(self) -> int:
        """Total number of edges crossing shard boundaries."""
        return sum(shard.num_cut_edges for shard in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "/".join(str(len(shard.nodes)) for shard in self.shards)
        return (
            f"<GraphPartition v{self.version}: {self.num_shards} shards ({sizes} nodes), "
            f"{self.cut_edge_count} cut edges>"
        )


# ----------------------------------------------------------------------
# Sharded scatter/gather driver
# ----------------------------------------------------------------------
def _shard_round(
    space: ProductSpace,
    shard: ShardView,
    owner_of: Dict[NodeId, int],
    shard_masks: Dict,
    seeds: Dict,
) -> Tuple[Dict[int, Dict], Set]:
    """One shard's round: local mask fixpoint, then the cut-edge frontier scan.

    Mutates *shard_masks* in place and returns the outbox messages —
    grouped by destination shard, ``{owner: {config: mask}}`` — plus the
    set of configurations whose mask changed this round.
    """
    _, changed = product.propagate_masks(space, seeds, masks=shard_masks, adjacency=shard)
    cut_view = _CutView(shard)
    successors = space.successors
    node_of = space.node_of
    outboxes: Dict[int, Dict] = {}
    for config in changed:
        mask = shard_masks[config]
        for successor in successors(cut_view, config):
            owner = owner_of[node_of(successor)]
            outbox = outboxes.setdefault(owner, {})
            outbox[successor] = outbox.get(successor, 0) | mask
    return outboxes, changed


def _merge_outboxes(outboxes: Dict[int, Dict], shard_outboxes: Dict[int, Dict]) -> None:
    """OR one shard's outbox messages into the round's routing table."""
    for owner, messages in shard_outboxes.items():
        outbox = outboxes.setdefault(owner, {})
        for config, mask in messages.items():
            outbox[config] = outbox.get(config, 0) | mask


#: Per-shard mask tables of a pooled worker, ``{shard_id: {config: mask}}``.
#: Only ever populated inside forked :class:`ForkPool` children — each
#: worker process owns the tables of the shards assigned to it and keeps
#: them across frontier rounds; the parent's copy stays empty.
_POOL_MASKS: Dict[int, Dict] = {}


def _pool_shard_worker(payload, index: int, message):
    """Persistent pooled worker: rounds for this worker's shards, then decode.

    ``("round", {shard_id: inbox})`` runs one frontier round for every
    addressed shard against the mask tables kept in :data:`_POOL_MASKS`
    and returns the merged outboxes.  ``("decode", targets)`` gathers the
    accepting pairs of every shard this worker owns — so the (large)
    mask tables never cross the pipe, only messages and answers do.
    """
    space, shards, owner_of = payload
    kind, body = message
    if kind == "round":
        outboxes: Dict[int, Dict] = {}
        for shard_id, inbox in body.items():
            shard_masks = _POOL_MASKS.setdefault(shard_id, {})
            shard_outboxes, _ = _shard_round(
                space, shards[shard_id], owner_of, shard_masks, inbox
            )
            _merge_outboxes(outboxes, shard_outboxes)
        return outboxes
    if kind == "decode":
        pairs: Set[Pair] = set()
        for shard_masks in _POOL_MASKS.values():
            pairs |= product.decode_pairs(space, shard_masks, targets=body)
        return pairs
    raise EvaluationError(f"unknown shard-pool message kind {kind!r}")


def _pooled_sharded_relation(
    space: ProductSpace,
    shards: Tuple[ShardView, ...],
    owner_of: Dict[NodeId, int],
    inboxes: List[Dict],
    targets: Optional[Set[NodeId]],
    max_workers: Optional[int],
) -> Set[Pair]:
    """Drive the sharded fixpoint over one persistent worker pool.

    Workers are forked **once** per invocation (not once per round, as
    the driver historically did); shard *s* lives in worker ``s % W`` for
    the pool's whole life, so its mask table stays put and only frontier
    messages travel.  The parent routes outbox messages without a
    dedup filter — it no longer holds the masks — which is safe because
    :func:`~repro.engine.product.propagate_masks` drops already-known
    bits, so a stale message produces an empty round, not extra work.
    """
    workers = min(len(shards), max_workers or (os.cpu_count() or 1))
    pending = {shard_id: inbox for shard_id, inbox in enumerate(inboxes) if inbox}
    with ForkPool((space, shards, owner_of), _pool_shard_worker, workers) as pool:
        while pending:
            tasks: Dict[int, Dict[int, Dict]] = {}
            for shard_id, inbox in pending.items():
                tasks.setdefault(shard_id % workers, {})[shard_id] = inbox
            replies = pool.run({w: ("round", body) for w, body in tasks.items()})
            outboxes: Dict[int, Dict] = {}
            for shard_outboxes in replies.values():
                _merge_outboxes(outboxes, shard_outboxes)
            pending = {sid: messages for sid, messages in outboxes.items() if messages}
        partials = pool.broadcast(("decode", targets))
    return set().union(set(), *partials)


def sharded_product_relation(
    space: ProductSpace,
    partition: Optional[GraphPartition] = None,
    num_shards: Optional[int] = None,
    processes: Optional[bool] = None,
    max_workers: Optional[int] = None,
    sources: Optional[Sequence[NodeId]] = None,
    targets: Optional[Set[NodeId]] = None,
) -> Set[Pair]:
    """``product_relation`` evaluated shard-by-shard with frontier exchange.

    Scatter: every shard seeds its own nodes' initial configurations with
    their global source bits.  Each round runs the shard-local mask
    fixpoint (over intra-shard edges only), then expands the changed
    configurations over the cut edges and routes ``(config, mask)``
    frontier messages to the owning shards.  The driver iterates rounds
    until no shard learns a new bit — the number of rounds is bounded by
    the longest chain of cut edges an answer path crosses.  Gather: the
    union of the shards' accepting-mask decodings.

    When *processes* allows it the driver forks **one persistent worker
    pool** for the whole invocation: ``True`` forks whenever the
    platform supports it, ``False`` never forks, and ``None`` (the
    default) forks on graphs of at least ``PROCESS_SHARDS_MIN_NODES``
    nodes — below that even a one-time pool costs more than the query.
    Each worker keeps its shards' mask tables in-process across rounds
    and decodes its own answers, so only frontier messages and final
    pairs are pickled.  Without ``fork`` the driver degrades to the
    in-process loop; the answers are identical in every mode.

    A *partition* may be passed in (reusing a plan across queries);
    otherwise one is built with ``num_shards`` shards (default: CPU count
    capped at 8).

    With *sources* / *targets* given the driver runs the seeded
    (semijoin) form: each shard seeds only its locally owned bound
    sources, and accepting masks are decoded against the target
    restriction — the sharded counterpart of
    :func:`~repro.engine.product.seeded_product_relation`.
    """
    index = space.index
    nodes = index.nodes
    if not nodes:
        return set()
    if sources is not None and not sources:
        return set()
    if targets is not None:
        if not targets:
            return set()
        targets = set(targets)
    source_set = None if sources is None else set(sources)
    if partition is None:
        shards_wanted = num_shards if num_shards is not None else min(os.cpu_count() or 1, 8)
        partition = GraphPartition.build(index, max(1, shards_wanted))
    elif partition.version != index.version:
        raise EvaluationError(
            f"stale partition: built at graph version {partition.version}, "
            f"index is at {index.version}"
        )
    owner_of = partition.assignment
    shards = partition.shards
    if processes is None:
        # Auto: fork only where it can pay — a fork-capable platform, more
        # than one core, and enough nodes to amortise the per-round pool.
        use_processes = (
            fork_available()
            and (os.cpu_count() or 1) >= 2
            and len(nodes) >= PROCESS_SHARDS_MIN_NODES
        )
    else:
        use_processes = processes and fork_available()

    inboxes: List[Dict] = [
        product.seed_masks(
            space,
            sources=shard.nodes
            if source_set is None
            else tuple(node for node in shard.nodes if node in source_set),
        )
        for shard in shards
    ]
    if use_processes and len(shards) > 1 and any(inboxes):
        return _pooled_sharded_relation(space, shards, owner_of, inboxes, targets, max_workers)
    masks: List[Dict] = [{} for _ in shards]
    while any(inboxes):
        active = tuple(shard_id for shard_id, inbox in enumerate(inboxes) if inbox)
        outboxes: Dict[int, Dict] = {}
        for shard_id in active:
            seeds = inboxes[shard_id]
            inboxes[shard_id] = {}
            shard_outboxes, _ = _shard_round(
                space, shards[shard_id], owner_of, masks[shard_id], seeds
            )
            _merge_outboxes(outboxes, shard_outboxes)
        # Route messages: only genuinely new bits become next-round seeds.
        for shard_id, messages in outboxes.items():
            shard_masks = masks[shard_id]
            inbox = inboxes[shard_id]
            for config, mask in messages.items():
                if mask | shard_masks.get(config, 0) != shard_masks.get(config, 0):
                    inbox[config] = inbox.get(config, 0) | mask
    pairs: Set[Pair] = set()
    for shard_masks in masks:
        pairs |= product.decode_pairs(space, shard_masks, targets=targets)
    return pairs


def sharded_full_relation(
    index: LabelIndex,
    automaton: CompiledAutomaton,
    partition: Optional[GraphPartition] = None,
    num_shards: Optional[int] = None,
    processes: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> Set[Pair]:
    """The plain-RPQ entry point: the sharded driver over the NFA product."""
    return sharded_product_relation(
        NfaProductSpace(index, automaton),
        partition=partition,
        num_shards=num_shards,
        processes=processes,
        max_workers=max_workers,
    )


# ----------------------------------------------------------------------
# Mode dispatch
# ----------------------------------------------------------------------
def partitioned_product_relation(
    space: ProductSpace,
    mode: str,
    workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    partition: Optional[GraphPartition] = None,
    processes: Optional[bool] = None,
    sources: Optional[Sequence[NodeId]] = None,
    targets: Optional[Set[NodeId]] = None,
) -> Set[Pair]:
    """Dispatch one product space through the driver *mode* names.

    The one mode→driver mapping shared by the engine's ``*_partitioned``
    methods, the GXPath closure routing and the CRPQ planner's per-atom
    seeded scans, so new driver knobs are threaded through a single
    seam.  *sources* / *targets* select seeded (semijoin) evaluation.
    """
    if mode in {"blocks", "source-blocks"}:
        return parallel_product_relation(
            space, num_blocks=workers, sources=sources, targets=targets
        )
    if mode == "sharded":
        return sharded_product_relation(
            space,
            partition=partition,
            num_shards=num_shards,
            processes=processes,
            max_workers=workers,
            sources=sources,
            targets=targets,
        )
    raise EvaluationError(
        f"unknown partitioned mode {mode!r}; expected 'blocks' or 'sharded'"
    )
