"""Partitioned evaluation: source-block parallelism and sharded scatter/gather.

Two independent ways to split one ``full_relation`` pass across more
hardware, both built from the phase kernels of :mod:`repro.engine.product`:

* **Source-block parallelism** (:func:`parallel_full_relation`) keeps one
  copy of the graph but splits the phase-3 bitmask propagation fixpoint —
  which dominates full-relation evaluation — into independent blocks of
  source nodes.  Phases 1–2 (forward reachability + backward prune) run
  once in the caller; each worker then propagates only its block's seed
  bits and the per-block answer pairs are unioned.  The ``"fork"``
  backend ships the label index and compiled automaton to workers by
  copy-on-write, which is what actually buys CPU parallelism under the
  GIL; the ``"thread"`` backend exists for platforms without ``fork``.

* **Sharded scatter/gather** (:class:`GraphPartition` +
  :func:`sharded_full_relation`) is the seam toward multi-process /
  multi-machine evaluation: an edge-cut partition assigns every node to a
  shard, each shard holds a shard-local adjacency view
  (:class:`ShardView`, duck-typed to the ``targets`` interface the
  kernels need), and a driver iterates rounds of shard-local mask
  propagation followed by cross-shard frontier exchange over the cut
  edges until no shard learns a new source bit.  Bit positions come from
  the *global* node ordering, so gathering is a union of the shards'
  accepting masks.

Both drivers return exactly the pairs of
:func:`repro.engine.product.full_relation`; equivalence is pinned by
``tests/engine/test_partition.py`` and the ``bench_intraquery_parallel``
CI gate keeps the parallel path from regressing below sequential.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..datagraph.index import LabelIndex
from ..datagraph.node import NodeId
from ..exceptions import EvaluationError
from .compiled import CompiledAutomaton
from .forkpool import fork_available, run_forked
from . import product
from .product import Config, Pair

__all__ = [
    "ShardView",
    "GraphPartition",
    "split_blocks",
    "parallel_full_relation",
    "sharded_full_relation",
]

#: Empty adjacency used for labels a shard has no local/cut edges for.
_EMPTY_ADJACENCY: Mapping[NodeId, Tuple[NodeId, ...]] = {}


# ----------------------------------------------------------------------
# Source-block parallelism
# ----------------------------------------------------------------------
def split_blocks(nodes: Sequence[NodeId], num_blocks: int) -> List[Tuple[NodeId, ...]]:
    """Split *nodes* into at most *num_blocks* contiguous, near-equal blocks.

    Every node lands in exactly one block and no block is empty (fewer
    blocks are returned when there are fewer nodes than requested).
    """
    if num_blocks < 1:
        raise EvaluationError(f"num_blocks must be positive, got {num_blocks}")
    count = len(nodes)
    num_blocks = min(num_blocks, count)
    if num_blocks <= 1:
        return [tuple(nodes)] if count else []
    size, extra = divmod(count, num_blocks)
    blocks: List[Tuple[NodeId, ...]] = []
    start = 0
    for block_index in range(num_blocks):
        end = start + size + (1 if block_index < extra else 0)
        blocks.append(tuple(nodes[start:end]))
        start = end
    return blocks


def _block_worker(state, block_index: int) -> Set[Pair]:
    """Forked worker: one source block's relation (state arrives by fork)."""
    index, automaton, useful, blocks = state
    return product.source_block_relation(index, automaton, useful, blocks[block_index])


def parallel_full_relation(
    index: LabelIndex,
    automaton: CompiledAutomaton,
    num_blocks: Optional[int] = None,
    backend: str = "auto",
) -> Set[Pair]:
    """``full_relation`` with the phase-3 fixpoint fanned out over source blocks.

    Parameters
    ----------
    num_blocks:
        Number of source blocks (and workers); defaults to the CPU count
        capped at 8.
    backend:
        ``"fork"``, ``"thread"``, or ``"auto"`` (fork when available).
    """
    if backend not in {"auto", "fork", "thread"}:
        raise EvaluationError(f"unknown intra-query backend {backend!r}")
    nodes = index.nodes
    if not nodes:
        return set()
    reachable = product.forward_expand(index, automaton, product.initial_configs(automaton, nodes))
    useful = product.backward_prune(index, automaton, reachable)
    if not useful:
        return set()
    workers = num_blocks if num_blocks is not None else min(os.cpu_count() or 1, 8)
    if workers < 1:
        raise EvaluationError(f"num_blocks must be positive, got {workers}")
    blocks = split_blocks(nodes, workers)
    if len(blocks) <= 1:
        return product.source_block_relation(index, automaton, useful, nodes)
    if backend == "auto":
        backend = "fork" if fork_available() else "thread"
    if backend == "fork" and fork_available():
        partials = run_forked(
            (index, automaton, useful, blocks), _block_worker, len(blocks)
        )
        return set().union(*partials)
    with ThreadPoolExecutor(max_workers=len(blocks)) as pool:
        partials = pool.map(
            lambda block: product.source_block_relation(index, automaton, useful, block), blocks
        )
        return set().union(*partials)


# ----------------------------------------------------------------------
# Edge-cut partitions and shard-local views
# ----------------------------------------------------------------------
class ShardView:
    """A shard-local adjacency view over one block of an edge-cut partition.

    Duck-types the ``targets`` interface of
    :class:`~repro.datagraph.index.LabelIndex`, returning only edges whose
    *both* endpoints live in the shard, so the product kernels run on a
    shard unchanged and simply stop at the boundary.  Cut edges (local
    source, remote target) are kept separately for the driver's
    frontier-exchange scan.
    """

    __slots__ = ("shard_id", "nodes", "_succ", "_cut")

    def __init__(
        self,
        shard_id: int,
        nodes: Tuple[NodeId, ...],
        succ: Dict[str, Dict[NodeId, Tuple[NodeId, ...]]],
        cut: Dict[str, Dict[NodeId, Tuple[NodeId, ...]]],
    ):
        self.shard_id = shard_id
        self.nodes = nodes
        self._succ = succ
        self._cut = cut

    def targets(self, label: str, source: NodeId) -> Tuple[NodeId, ...]:
        """Shard-local targets of *source* along *label*."""
        return self._succ.get(label, _EMPTY_ADJACENCY).get(source, ())

    def cut_targets(self, label: str, source: NodeId) -> Tuple[NodeId, ...]:
        """Targets of *source* along *label* owned by **other** shards."""
        return self._cut.get(label, _EMPTY_ADJACENCY).get(source, ())

    @property
    def num_cut_edges(self) -> int:
        """Number of outgoing edges of this shard crossing the cut."""
        return sum(len(targets) for by_node in self._cut.values() for targets in by_node.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardView {self.shard_id}: {len(self.nodes)} nodes, "
            f"{self.num_cut_edges} cut edges>"
        )


class GraphPartition:
    """An edge-cut partition of a label-indexed graph into shards.

    Planning (this class) is separated from execution
    (:func:`sharded_full_relation`): a partition assigns every node to a
    shard and materialises one :class:`ShardView` per shard, with
    cross-shard edges recorded as frontier-exchange boundaries.  The
    partition is built against one :class:`LabelIndex` snapshot and
    remembers its ``version``, so stale partitions are detectable the
    same way stale indexes are.
    """

    __slots__ = ("version", "num_shards", "assignment", "shards")

    def __init__(self, index: LabelIndex, assignment: Dict[NodeId, int], num_shards: int):
        if num_shards < 1:
            raise EvaluationError(f"a partition needs at least one shard, got {num_shards}")
        missing = [node for node in index.nodes if node not in assignment]
        if missing:
            raise EvaluationError(f"partition assignment misses {len(missing)} node(s)")
        self.version = index.version
        self.num_shards = num_shards
        self.assignment = assignment
        members: List[List[NodeId]] = [[] for _ in range(num_shards)]
        for node in index.nodes:
            shard = assignment[node]
            if not 0 <= shard < num_shards:
                raise EvaluationError(f"node {node!r} assigned to invalid shard {shard}")
            members[shard].append(node)
        local: List[Dict[str, Dict[NodeId, Tuple[NodeId, ...]]]] = [{} for _ in range(num_shards)]
        cut: List[Dict[str, Dict[NodeId, Tuple[NodeId, ...]]]] = [{} for _ in range(num_shards)]
        for label in index.edge_labels():
            for source, targets in index.successors(label).items():
                shard = assignment[source]
                mine = tuple(target for target in targets if assignment[target] == shard)
                theirs = tuple(target for target in targets if assignment[target] != shard)
                if mine:
                    local[shard].setdefault(label, {})[source] = mine
                if theirs:
                    cut[shard].setdefault(label, {})[source] = theirs
        self.shards: Tuple[ShardView, ...] = tuple(
            ShardView(shard_id, tuple(members[shard_id]), local[shard_id], cut[shard_id])
            for shard_id in range(num_shards)
        )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, index: LabelIndex, num_shards: int, strategy: str = "contiguous"
    ) -> "GraphPartition":
        """Partition *index* into *num_shards* shards.

        ``"contiguous"`` slices the index's node order into equal blocks —
        the right default when related nodes are added together (e.g. the
        community generators); ``"hash"`` scatters nodes by hash, a
        worst-case cut useful for stress-testing the frontier exchange.
        """
        if num_shards < 1:
            raise EvaluationError(f"a partition needs at least one shard, got {num_shards}")
        nodes = index.nodes
        assignment: Dict[NodeId, int] = {}
        if strategy == "contiguous":
            for shard_id, block in enumerate(split_blocks(nodes, num_shards)):
                for node in block:
                    assignment[node] = shard_id
        elif strategy == "hash":
            for node in nodes:
                assignment[node] = hash(node) % num_shards
        else:
            raise EvaluationError(
                f"unknown partition strategy {strategy!r}; expected 'contiguous' or 'hash'"
            )
        return cls(index, assignment, num_shards)

    def owner(self, node: NodeId) -> int:
        """The shard a node is assigned to."""
        return self.assignment[node]

    @property
    def cut_edge_count(self) -> int:
        """Total number of edges crossing shard boundaries."""
        return sum(shard.num_cut_edges for shard in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "/".join(str(len(shard.nodes)) for shard in self.shards)
        return (
            f"<GraphPartition v{self.version}: {self.num_shards} shards ({sizes} nodes), "
            f"{self.cut_edge_count} cut edges>"
        )


# ----------------------------------------------------------------------
# Sharded scatter/gather driver
# ----------------------------------------------------------------------
def sharded_full_relation(
    index: LabelIndex,
    automaton: CompiledAutomaton,
    partition: Optional[GraphPartition] = None,
    num_shards: Optional[int] = None,
) -> Set[Pair]:
    """``full_relation`` evaluated shard-by-shard with frontier exchange.

    Scatter: every shard seeds its own nodes' initial configurations with
    their global source bits.  Each round runs the shard-local mask
    fixpoint (over intra-shard edges only), then scans the changed
    configurations' cut edges and routes ``(config, mask)`` frontier
    messages to the owning shards.  The driver iterates rounds until no
    shard learns a new bit — the number of rounds is bounded by the
    longest chain of cut edges an answer path crosses.  Gather: the union
    of the shards' accepting-mask decodings.

    A *partition* may be passed in (reusing a plan across queries);
    otherwise one is built with ``num_shards`` shards (default: CPU count
    capped at 8).
    """
    nodes = index.nodes
    if not nodes:
        return set()
    if partition is None:
        shards_wanted = num_shards if num_shards is not None else min(os.cpu_count() or 1, 8)
        partition = GraphPartition.build(index, max(1, shards_wanted))
    elif partition.version != index.version:
        raise EvaluationError(
            f"stale partition: built at graph version {partition.version}, "
            f"index is at {index.version}"
        )
    moves = automaton.moves
    owner_of = partition.assignment
    shards = partition.shards

    masks: List[Dict[Config, int]] = [{} for _ in shards]
    inboxes: List[Dict[Config, int]] = [
        product.seed_masks(index, automaton, sources=shard.nodes) for shard in shards
    ]
    while any(inboxes):
        outboxes: Dict[int, Dict[Config, int]] = {}
        for shard in shards:
            shard_id = shard.shard_id
            seeds = inboxes[shard_id]
            if not seeds:
                continue
            inboxes[shard_id] = {}
            shard_masks = masks[shard_id]
            _, changed = product.propagate_masks(shard, automaton, seeds, masks=shard_masks)
            # Frontier exchange: push the changed configurations' masks
            # across this shard's cut edges to the owners of the targets.
            for node, state in changed:
                mask = shard_masks[(node, state)]
                for symbol, next_states in moves[state]:
                    remote_targets = shard.cut_targets(symbol, node)
                    for target in remote_targets:
                        target_owner = owner_of[target]
                        outbox = outboxes.setdefault(target_owner, {})
                        for next_state in next_states:
                            config = (target, next_state)
                            outbox[config] = outbox.get(config, 0) | mask
        # Route messages: only genuinely new bits become next-round seeds.
        for shard_id, messages in outboxes.items():
            shard_masks = masks[shard_id]
            inbox = inboxes[shard_id]
            for config, mask in messages.items():
                if mask | shard_masks.get(config, 0) != shard_masks.get(config, 0):
                    inbox[config] = inbox.get(config, 0) | mask
    pairs: Set[Pair] = set()
    for shard_masks in masks:
        pairs |= product.decode_pairs(nodes, automaton, shard_masks)
    return pairs
