"""Int-id evaluation kernels over the compact CSR storage backend.

These are the :mod:`repro.engine.product` phase kernels re-expressed on
a :class:`~repro.datagraph.compact.CompactLabelIndex`: a product
configuration is the single integer ``node_int * S + state`` instead of
a hashed ``(NodeId, state)`` tuple, visited/useful sets are
``bytearray``s indexed by that integer, frontiers are plain lists, and
adjacency expansion walks ``array('q')`` CSR rows.  Source bitmasks keep
the exact semantics of the dict kernels (bit ``i`` is the node at index
``i`` of the shared dense ordering), so the two backends produce
bit-identical answer sets; mask tables are flat lists indexed by
configuration with a ``touched`` journal for sparse decoding.

The per-state transition **plans** — ``plans[state]`` is a list of
``(offsets, neighbors, next_states)`` triples, one per symbol the state
can read that actually has edges — are the compact analogue of binding
``space.successors`` to an adjacency: the inner loop is pure array
indexing with no per-edge symbol lookup.

The sharded entry points (:func:`nfa_shard_plans`,
:func:`compact_shard_round`, :func:`decode_shard_masks`) mirror
:func:`repro.engine.partition._shard_round`'s two-pass contract (local
fixpoint, then cut-edge scan of the changed configurations) using the
node→shard owner column instead of materialised shard views, so the
server's forked workers can run rounds directly on the one shared CSR
copy.
"""

from __future__ import annotations

from itertools import repeat
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datagraph.compact import CompactLabelIndex
from ..datagraph.node import NodeId
from ..datapaths.conditions import EMPTY_VALUATION
from ..datapaths.register_automata import RegisterAutomaton
from .compiled import CompiledAutomaton
from .spaces import ClosureSpace, NfaProductSpace, ProductSpace, RegisterProductSpace

__all__ = [
    "COMPACT_AUTO_MIN_NODES",
    "resolve_backend",
    "nfa_relation",
    "nfa_reachable_targets",
    "closure_relation",
    "register_relation",
    "compact_space_relation",
    "nfa_shard_plans",
    "compact_shard_round",
    "decode_shard_masks",
]

Pair = Tuple[NodeId, NodeId]

#: Below this many nodes the dict kernels' lower constant wins and
#: ``backend="auto"`` stays on them; at and above it the int-id kernels'
#: per-step savings dominate.  Deliberately small — the crossover on the
#: bench graphs sits far lower — so "auto" behaves compactly wherever
#: the difference could matter.
COMPACT_AUTO_MIN_NODES = 256


def resolve_backend(backend: str, num_nodes: int) -> bool:
    """Whether evaluation should use the compact kernels.

    ``"compact"`` and ``"dict"`` force; ``"auto"`` switches on graph
    size.  This is the compact half of the backend seam — every entry
    point (engine methods, planner scans, GXPath axes, the shard
    workers) resolves through here.  ``"sql"`` resolves ``False``: the
    SQL backend is selected *upstream* (in the engine entry points and
    ``execute_plan``, see :mod:`repro.sqlbackend`), so code paths
    without a SQL twin degrade to the dict kernels with identical
    answers.
    """
    if backend == "compact":
        return True
    if backend in ("dict", "sql"):
        return False
    if backend == "auto":
        return num_nodes >= COMPACT_AUTO_MIN_NODES
    raise ValueError(
        f"unknown backend {backend!r}: expected 'auto', 'compact', 'dict' or 'sql'"
    )


# ----------------------------------------------------------------------
# Plan construction: automaton moves bound to CSR rows
# ----------------------------------------------------------------------
def _forward_plans(
    compact: CompactLabelIndex, automaton: CompiledAutomaton
) -> List[List[Tuple[Sequence[int], Sequence[int], Tuple[int, ...]]]]:
    plans: List[List[Tuple[Sequence[int], Sequence[int], Tuple[int, ...]]]] = []
    for by_symbol in automaton.moves:
        entries = []
        for symbol, next_states in by_symbol:
            row = compact.csr(symbol)
            if row is not None:
                entries.append((row[0], row[1], next_states))
        plans.append(entries)
    return plans


def _backward_plans(
    compact: CompactLabelIndex, automaton: CompiledAutomaton
) -> List[List[Tuple[Sequence[int], Sequence[int], Tuple[int, ...]]]]:
    plans: List[List[Tuple[Sequence[int], Sequence[int], Tuple[int, ...]]]] = []
    for by_symbol in automaton.backward_moves:
        entries = []
        for symbol, previous_states in by_symbol:
            row = compact.csr_t(symbol)
            if row is not None:
                entries.append((row[0], row[1], previous_states))
        plans.append(entries)
    return plans


def _mask_sources(
    mask: int, nodes: Sequence[NodeId], cache: Dict[int, List[NodeId]]
) -> List[NodeId]:
    """The source nodes named by *mask*'s bits, memoised per mask value.

    Configurations of one strongly-connected region all carry the same
    mask, so decoding caches the bit expansion by mask value — on dense
    relations this collapses hundreds of thousands of ``bit_length``
    walks into one per distinct mask.
    """
    sources = cache.get(mask)
    if sources is None:
        sources = []
        cursor = mask
        while cursor:
            low = cursor & -cursor
            sources.append(nodes[low.bit_length() - 1])
            cursor ^= low
        cache[mask] = sources
    return sources


def _source_ints(
    compact: CompactLabelIndex, sources: Optional[Sequence[NodeId]]
) -> Sequence[int]:
    if sources is None:
        return range(compact.num_nodes)
    position = compact.position
    out = []
    for node_id in sources:
        u = position.get(node_id)
        if u is not None:
            out.append(u)
    return out


# ----------------------------------------------------------------------
# The NFA product kernel (plain RPQs): full and seeded
# ----------------------------------------------------------------------
def nfa_relation(
    compact: CompactLabelIndex,
    automaton: CompiledAutomaton,
    sources: Optional[Sequence[NodeId]] = None,
    targets: Optional[Iterable[NodeId]] = None,
) -> Set[Pair]:
    """All ``(u, v)`` pairs accepted by *automaton*, on int-id arrays.

    The same three phases as the dict kernel — forward reach, backward
    prune (with a *targets* restriction folded into the useful set),
    bitmask propagation — each over flat arrays.  Bit-identical to
    ``seeded_product_relation(NfaProductSpace(index, automaton), ...)``.
    """
    n = compact.num_nodes
    if n == 0:
        return set()
    src_ints = _source_ints(compact, sources)
    if not src_ints:
        return set()
    target_flags: Optional[bytearray] = None
    if targets is not None:
        target_flags = bytearray(n)
        position = compact.position
        for node_id in targets:
            u = position.get(node_id)
            if u is not None:
                target_flags[u] = 1
        if not any(target_flags):
            return set()
    S = automaton.num_states
    initial = automaton.initial
    accepting = bytearray(S)
    for state in automaton.accepting:
        accepting[state] = 1
    forward = _forward_plans(compact, automaton)

    # Phase 1: forward reachability over the product, LIFO order (the
    # set of reached configurations is order-independent).
    visited = bytearray(n * S)
    stack: List[int] = []
    for u in src_ints:
        for state in initial:
            config = u * S + state
            if not visited[config]:
                visited[config] = 1
                stack.append(config)
    while stack:
        config = stack.pop()
        u, state = divmod(config, S)
        for offsets, neighbors, next_states in forward[state]:
            for v in neighbors[offsets[u] : offsets[u + 1]]:
                base = v * S
                for next_state in next_states:
                    successor = base + next_state
                    if not visited[successor]:
                        visited[successor] = 1
                        stack.append(successor)

    # Phase 2: keep only configurations that can still reach acceptance
    # (at a restricted target node, when given).
    backward = _backward_plans(compact, automaton)
    useful = bytearray(n * S)
    stack = []
    for config in range(n * S):
        if visited[config] and accepting[config % S]:
            if target_flags is None or target_flags[config // S]:
                useful[config] = 1
                stack.append(config)
    if not stack:
        return set()
    while stack:
        config = stack.pop()
        u, state = divmod(config, S)
        for offsets, neighbors, previous_states in backward[state]:
            for v in neighbors[offsets[u] : offsets[u + 1]]:
                base = v * S
                for previous_state in previous_states:
                    predecessor = base + previous_state
                    if visited[predecessor] and not useful[predecessor]:
                        useful[predecessor] = 1
                        stack.append(predecessor)

    # Phase 3: propagate source bitmasks to a fixpoint over the useful
    # configurations.  FIFO order converges in near-level-order rounds
    # (LIFO chases long chains with partial masks and revisits far more
    # on dense closures), and each configuration's useful successors are
    # memoised on first pop so revisits are pure big-int ORs.
    masks: List[int] = [0] * (n * S)
    touched: List[int] = []
    in_queue = bytearray(n * S)
    pending: List[int] = []
    expansions: List[Optional[Tuple[int, ...]]] = [None] * (n * S)
    for u in src_ints:
        bit = 1 << u
        for state in initial:
            config = u * S + state
            if useful[config]:
                if not masks[config]:
                    touched.append(config)
                masks[config] |= bit
                if not in_queue[config]:
                    in_queue[config] = 1
                    pending.append(config)
    head = 0
    while head < len(pending):
        config = pending[head]
        head += 1
        in_queue[config] = 0
        mask = masks[config]
        expanded = expansions[config]
        if expanded is None:
            u, state = divmod(config, S)
            out: List[int] = []
            for offsets, neighbors, next_states in forward[state]:
                for v in neighbors[offsets[u] : offsets[u + 1]]:
                    base = v * S
                    for next_state in next_states:
                        successor = base + next_state
                        if useful[successor]:
                            out.append(successor)
            expanded = expansions[config] = tuple(out)
        for successor in expanded:
            known = masks[successor]
            merged = known | mask
            if merged != known:
                if not known:
                    touched.append(successor)
                masks[successor] = merged
                if not in_queue[successor]:
                    in_queue[successor] = 1
                    pending.append(successor)

    # Decode: accepting configurations' masks name the sources; the
    # target restriction was already folded into the useful set.
    nodes = compact.nodes
    pairs: Set[Pair] = set()
    decoded: Dict[int, List[NodeId]] = {}
    for config in touched:
        if not accepting[config % S]:
            continue
        target = nodes[config // S]
        sources_of = _mask_sources(masks[config], nodes, decoded)
        pairs.update(zip(sources_of, repeat(target)))
    return pairs


def nfa_reachable_targets(
    compact: CompactLabelIndex,
    automaton: CompiledAutomaton,
    source: NodeId,
    stop_at: Optional[NodeId] = None,
) -> Set[NodeId]:
    """Nodes ``v`` with ``(source, v)`` accepted (early exit on *stop_at*).

    The point-query twin of :func:`repro.engine.product.reachable_targets`.
    """
    position = compact.position
    start = position.get(source)
    if start is None:
        return set()
    stop = position.get(stop_at) if stop_at is not None else None
    n = compact.num_nodes
    S = automaton.num_states
    accepting = bytearray(S)
    for state in automaton.accepting:
        accepting[state] = 1
    forward = _forward_plans(compact, automaton)
    nodes = compact.nodes
    visited = bytearray(n * S)
    found = bytearray(n)
    targets: Set[NodeId] = set()
    queue: List[int] = []
    for state in automaton.initial:
        config = start * S + state
        if not visited[config]:
            visited[config] = 1
            queue.append(config)
        if accepting[state] and not found[start]:
            found[start] = 1
            targets.add(source)
            if stop is not None and start == stop:
                return targets
    head = 0
    while head < len(queue):
        config = queue[head]
        head += 1
        u, state = divmod(config, S)
        for offsets, neighbors, next_states in forward[state]:
            for v in neighbors[offsets[u] : offsets[u + 1]]:
                base = v * S
                for next_state in next_states:
                    successor = base + next_state
                    if visited[successor]:
                        continue
                    visited[successor] = 1
                    if accepting[next_state] and not found[v]:
                        found[v] = 1
                        targets.add(nodes[v])
                        if stop is not None and v == stop:
                            return targets
                    queue.append(successor)
    return targets


# ----------------------------------------------------------------------
# The closure kernel (GXPath a* / a-* axes)
# ----------------------------------------------------------------------
def closure_relation(
    compact: CompactLabelIndex,
    label: str,
    inverse: bool = False,
    sources: Optional[Sequence[NodeId]] = None,
    targets: Optional[Iterable[NodeId]] = None,
) -> Set[Pair]:
    """The reflexive-transitive closure of one label's edge relation.

    Configurations degenerate to bare int nodes (``S = 1``): masks are a
    flat list over nodes and every configuration accepts, so ``(u, u)``
    pairs are included — exactly ``product_relation(ClosureSpace(...))``.
    """
    n = compact.num_nodes
    if n == 0:
        return set()
    src_ints = _source_ints(compact, sources)
    if not src_ints:
        return set()
    target_flags: Optional[bytearray] = None
    if targets is not None:
        target_flags = bytearray(n)
        position = compact.position
        for node_id in targets:
            u = position.get(node_id)
            if u is not None:
                target_flags[u] = 1
    row = compact.csr_t(label) if inverse else compact.csr(label)
    masks: List[int] = [0] * n
    touched: List[int] = []
    in_queue = bytearray(n)
    pending: List[int] = []
    for u in src_ints:
        if not masks[u]:
            touched.append(u)
        masks[u] |= 1 << u
        if row is not None and not in_queue[u]:
            in_queue[u] = 1
            pending.append(u)
    if row is not None:
        offsets, neighbors = row
        head = 0
        while head < len(pending):
            u = pending[head]
            head += 1
            in_queue[u] = 0
            mask = masks[u]
            for v in neighbors[offsets[u] : offsets[u + 1]]:
                known = masks[v]
                merged = known | mask
                if merged != known:
                    if not known:
                        touched.append(v)
                    masks[v] = merged
                    if not in_queue[v]:
                        in_queue[v] = 1
                        pending.append(v)
    nodes = compact.nodes
    pairs: Set[Pair] = set()
    decoded: Dict[int, List[NodeId]] = {}
    for u in touched:
        if target_flags is not None and not target_flags[u]:
            continue
        sources_of = _mask_sources(masks[u], nodes, decoded)
        pairs.update(zip(sources_of, repeat(nodes[u])))
    return pairs


# ----------------------------------------------------------------------
# The register-automaton kernel (memory RPQs / translated REEs)
# ----------------------------------------------------------------------
def register_relation(
    compact: CompactLabelIndex,
    automaton: RegisterAutomaton,
    null_semantics: bool = False,
    sources: Optional[Sequence[NodeId]] = None,
    targets: Optional[Iterable[NodeId]] = None,
) -> Set[Pair]:
    """The data-RPQ relation by mask propagation over int-id configurations.

    Register valuations are unbounded values, so configurations stay
    hashed tuples — but the node component is the int id, adjacency
    expansion walks CSR rows grouped per state and symbol, and data
    values come from the flat column instead of a dict keyed by node id.
    Pruning is unavailable (valuations do not reverse), matching the
    dict-backed :class:`~repro.engine.spaces.RegisterProductSpace`.
    """
    n = compact.num_nodes
    if n == 0:
        return set()
    src_ints = _source_ints(compact, sources)
    if not src_ints:
        return set()
    target_ints: Optional[Set[int]] = None
    if targets is not None:
        position = compact.position
        target_ints = {
            position[node_id] for node_id in targets if node_id in position
        }
    values = compact.values
    accepting = automaton.accepting
    silent_closure = automaton.silent_closure
    # Letter transitions bound to CSR rows, grouped by source state.
    letters: Dict[int, List[Tuple[Sequence[int], Sequence[int], int]]] = {}
    for transition in automaton.transitions:
        if transition.kind != "letter":
            continue
        row = compact.csr(transition.symbol)
        if row is not None:
            letters.setdefault(transition.source, []).append(
                (row[0], row[1], transition.target)
            )
    masks: Dict[Tuple[int, int, object], int] = {}
    pending: List[Tuple[int, int, object]] = []
    in_queue: Set[Tuple[int, int, object]] = set()
    for u in src_ints:
        bit = 1 << u
        closure = silent_closure(
            {(automaton.initial, EMPTY_VALUATION)}, values[u], null_semantics
        )
        for state, valuation in closure:
            config = (u, state, valuation)
            known = masks.get(config, 0)
            merged = known | bit
            if merged != known:
                masks[config] = merged
                if config not in in_queue:
                    in_queue.add(config)
                    pending.append(config)
    expansions: Dict[Tuple[int, int, object], Tuple] = {}
    head = 0
    while head < len(pending):
        config = pending[head]
        head += 1
        in_queue.discard(config)
        mask = masks[config]
        expanded = expansions.get(config)
        if expanded is None:
            u, state, valuation = config
            out = []
            for offsets, neighbors, target_state in letters.get(state, ()):
                for v in neighbors[offsets[u] : offsets[u + 1]]:
                    stepped = silent_closure(
                        {(target_state, valuation)}, values[v], null_semantics
                    )
                    for next_state, next_valuation in stepped:
                        out.append((v, next_state, next_valuation))
            expanded = expansions[config] = tuple(out)
        for successor in expanded:
            known = masks.get(successor, 0)
            merged = known | mask
            if merged != known:
                masks[successor] = merged
                if successor not in in_queue:
                    in_queue.add(successor)
                    pending.append(successor)
    nodes = compact.nodes
    pairs: Set[Pair] = set()
    decoded: Dict[int, List[NodeId]] = {}
    for (u, state, _valuation), mask in masks.items():
        if state not in accepting:
            continue
        if target_ints is not None and u not in target_ints:
            continue
        sources_of = _mask_sources(mask, nodes, decoded)
        pairs.update(zip(sources_of, repeat(nodes[u])))
    return pairs


# ----------------------------------------------------------------------
# The space-level dispatch: one seam for every dialect
# ----------------------------------------------------------------------
def compact_space_relation(
    space: ProductSpace,
    compact: CompactLabelIndex,
    sources: Optional[Sequence[NodeId]] = None,
    targets: Optional[Iterable[NodeId]] = None,
) -> Optional[Set[Pair]]:
    """Evaluate a :class:`ProductSpace`'s (seeded) relation compactly.

    The compact twin of
    :func:`repro.engine.product.seeded_product_relation`: the space names
    its control structure (via :attr:`ProductSpace.compact_kernel`), this
    module supplies the array kernels.  Returns ``None`` for spaces
    without a compact kernel so callers fall back to the dict path.
    """
    kernel = space.compact_kernel
    if kernel == "nfa":
        assert isinstance(space, NfaProductSpace)
        return nfa_relation(compact, space.automaton, sources=sources, targets=targets)
    if kernel == "closure":
        assert isinstance(space, ClosureSpace)
        return closure_relation(compact, space.label, sources=sources, targets=targets)
    if kernel == "register":
        assert isinstance(space, RegisterProductSpace)
        return register_relation(
            compact,
            space.automaton,
            space.null_semantics,
            sources=sources,
            targets=targets,
        )
    return None


# ----------------------------------------------------------------------
# Sharded rounds over the owner column (the zero-copy worker path)
# ----------------------------------------------------------------------
def nfa_shard_plans(
    compact: CompactLabelIndex, automaton: CompiledAutomaton
) -> Tuple[int, Tuple[int, ...], FrozenSet[int], List]:
    """Per-query state a shard worker builds once: ``(S, initial, accepting, plans)``."""
    return (
        automaton.num_states,
        automaton.initial,
        automaton.accepting,
        _forward_plans(compact, automaton),
    )


def compact_shard_round(
    plans: List,
    S: int,
    owner: Sequence[int],
    shard_id: int,
    masks: Dict[int, int],
    seeds: Dict[int, int],
) -> Dict[int, Dict[int, int]]:
    """One shard-local fixpoint round plus the cut-edge scan.

    Mirrors the dict driver's ``_shard_round``: merge the inbox *seeds*
    into this shard's mask table, run the fixpoint following only edges
    whose target the shard owns, then scan the changed configurations'
    remaining (cut) edges into per-owner outboxes.  Configurations cross
    the wire as plain ints, so the parent's routing loop is identical
    for both backends.
    """
    changed: List[int] = []
    is_changed: Set[int] = set()
    pending: List[int] = []
    in_queue: Set[int] = set()
    for config, mask in seeds.items():
        known = masks.get(config, 0)
        merged = known | mask
        if merged != known:
            masks[config] = merged
            if config not in is_changed:
                is_changed.add(config)
                changed.append(config)
            if config not in in_queue:
                in_queue.add(config)
                pending.append(config)
    head = 0
    while head < len(pending):
        config = pending[head]
        head += 1
        in_queue.discard(config)
        mask = masks[config]
        u, state = divmod(config, S)
        for cursor_plan in plans[state]:
            offsets, neighbors, next_states = cursor_plan
            for v in neighbors[offsets[u] : offsets[u + 1]]:
                if owner[v] != shard_id:
                    continue  # cut edge: handled by the post-scan below
                base = v * S
                for next_state in next_states:
                    successor = base + next_state
                    known = masks.get(successor, 0)
                    merged = known | mask
                    if merged != known:
                        masks[successor] = merged
                        if successor not in is_changed:
                            is_changed.add(successor)
                            changed.append(successor)
                        if successor not in in_queue:
                            in_queue.add(successor)
                            pending.append(successor)
    outboxes: Dict[int, Dict[int, int]] = {}
    for config in changed:
        mask = masks[config]
        u, state = divmod(config, S)
        for offsets, neighbors, next_states in plans[state]:
            for v in neighbors[offsets[u] : offsets[u + 1]]:
                shard = owner[v]
                if shard == shard_id:
                    continue
                base = v * S
                outbox = outboxes.setdefault(shard, {})
                for next_state in next_states:
                    successor = base + next_state
                    outbox[successor] = outbox.get(successor, 0) | mask
    return outboxes


def decode_shard_masks(
    compact: CompactLabelIndex,
    S: int,
    accepting: FrozenSet[int],
    masks: Dict[int, int],
) -> Set[Pair]:
    """Decode one shard's mask table into public node-id pairs."""
    nodes = compact.nodes
    accept = bytearray(S)
    for state in accepting:
        accept[state] = 1
    pairs: Set[Pair] = set()
    decoded: Dict[int, List[NodeId]] = {}
    for config, mask in masks.items():
        if not accept[config % S]:
            continue
        sources_of = _mask_sources(mask, nodes, decoded)
        pairs.update(zip(sources_of, repeat(nodes[config // S])))
    return pairs
