"""The shared query-evaluation engine facade.

:class:`EvaluationEngine` is the one seam every evaluator in the project
routes through.  It owns:

* **compiled-automaton caches** (LRU-bounded, keyed on the structural
  query AST) — parsed regexes, Thompson NFAs compiled to ε-free tables,
  and register automata for memory RPQs;
* **the product evaluators** of :mod:`repro.engine.product` and
  :mod:`repro.engine.data`, driven by each graph's lazily built
  :class:`~repro.datagraph.index.LabelIndex`;
* **batched entry points** (:meth:`evaluate_many`, :meth:`holds_many`)
  that amortise compilation and index construction across a workload.

A process-wide default instance (:func:`default_engine`) backs the
module-level convenience functions ``repro.query.evaluate_rpq`` /
``evaluate_data_rpq`` and the certain-answer algorithms, so any two
call sites evaluating the same query share one compiled automaton.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..datagraph.graph import DataGraph
from ..datagraph.node import Node, NodeId
from ..datapaths import (
    RegexWithEquality,
    RegexWithMemory,
    RegisterAutomaton,
    compile_rem,
    ree_to_rem,
)
from ..exceptions import EvaluationError
from ..regular import Regex, parse_regex, thompson
from . import compact as compact_kernels
from . import data as data_kernels
from . import partition as partition_kernels
from . import product
from . import spaces
from .cache import CacheStats, LRUCache
from .compiled import CompiledAutomaton

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a query<->engine cycle
    from ..query.data_rpq import DataRPQ
    from ..query.rpq import RPQ

__all__ = ["EvaluationEngine", "default_engine", "set_default_engine"]

#: Queries are accepted as RPQ wrappers, regex ASTs, or textual expressions.
#: (The RPQ type is only referenced structurally — via its ``expression``
#: attribute — so this module never imports :mod:`repro.query` at runtime.)
RPQLike = Union["RPQ", Regex, str]
NodePair = Tuple[Node, Node]


class EvaluationEngine:
    """Shared, cached evaluation of RPQs, data RPQs and word queries.

    Parameters
    ----------
    automaton_cache_size:
        Bound on the number of compiled NFAs kept (LRU eviction).
    register_cache_size:
        Bound on the number of compiled register automata kept.
    parse_cache_size:
        Bound on the number of parsed textual regular expressions kept.
    """

    def __init__(
        self,
        automaton_cache_size: int = 256,
        register_cache_size: int = 128,
        parse_cache_size: int = 512,
    ):
        self._automata: LRUCache[CompiledAutomaton] = LRUCache(automaton_cache_size)
        self._register_automata: LRUCache[RegisterAutomaton] = LRUCache(register_cache_size)
        self._parses: LRUCache[Regex] = LRUCache(parse_cache_size)

    # ------------------------------------------------------------------
    # Compilation (cached)
    # ------------------------------------------------------------------
    def parse(self, text: str) -> Regex:
        """Parse a textual regular expression (cached by the literal text)."""
        return self._parses.get_or_build(text, lambda: parse_regex(text))

    def _expression_of(self, query: RPQLike) -> Regex:
        if isinstance(query, str):
            return self.parse(query)
        if isinstance(query, Regex):
            return query
        return query.expression  # RPQ wrapper (structural, avoids import cycle)

    def compile_rpq(self, query: RPQLike) -> CompiledAutomaton:
        """The compiled ε-free automaton of an RPQ (cached on the regex AST)."""
        expression = self._expression_of(query)
        return self._automata.get_or_build(
            expression, lambda: CompiledAutomaton(thompson(expression))
        )

    def compile_data_rpq(
        self, expression: Union[RegexWithEquality, RegexWithMemory]
    ) -> RegisterAutomaton:
        """The register automaton of a REM (or translated REE) expression."""

        def build() -> RegisterAutomaton:
            rem = ree_to_rem(expression) if isinstance(expression, RegexWithEquality) else expression
            return compile_rem(rem)

        return self._register_automata.get_or_build(expression, build)

    # ------------------------------------------------------------------
    # RPQ evaluation
    # ------------------------------------------------------------------
    def _index_for(self, graph: DataGraph, backend: str):
        """The index the kernels walk: the CSR twin when *backend*
        resolves compact for this graph, else the dict label index.

        This is where every engine entry point applies the storage
        backend seam — answers are bit-identical either way, so the
        choice never leaks into results or caches.  (``"sql"`` resolves
        ``False`` here: entry points with a SQL twin route to
        :mod:`repro.sqlbackend` *before* touching an index; the rest
        degrade to the dict kernels.)
        """
        if compact_kernels.resolve_backend(backend, graph.num_nodes):
            return graph.compact_index()
        return graph.label_index()

    def _sql_selected(self, graph: DataGraph, query: RPQLike, backend: str) -> bool:
        """Whether an RPQ entry point should run through the SQL backend.

        ``"sql"`` forces it; ``"auto"`` asks the cost model of
        :mod:`repro.sqlbackend.cost` (closure-heavy relations on large
        graphs, estimated from the planner's label statistics).  Other
        backends never select SQL.
        """
        if backend == "sql":
            return True
        if backend != "auto":
            return False
        from ..planner.stats import graph_statistics
        from ..sqlbackend.cost import rpq_pays

        # Statistics only ever widen the measured closure growth above
        # the textbook floor, so threading them here can make auto pick
        # SQL for more closure-heavy queries — never fewer.
        return rpq_pays(
            self._expression_of(query), graph.label_index(), graph_statistics(graph)
        )

    def evaluate_rpq(
        self, graph: DataGraph, query: RPQLike, backend: str = "auto"
    ) -> FrozenSet[NodePair]:
        """The full binary relation ``e(G)`` of an RPQ on a data graph."""
        node = graph.node
        return frozenset(
            (node(source), node(target))
            for source, target in self.evaluate_rpq_ids(graph, query, backend)
        )

    def evaluate_rpq_ids(
        self, graph: DataGraph, query: RPQLike, backend: str = "auto"
    ) -> FrozenSet[Tuple[NodeId, NodeId]]:
        """``e(G)`` as raw id pairs (no Node materialisation)."""
        if self._sql_selected(graph, query, backend):
            from ..sqlbackend import backend as sql_backend

            return sql_backend.evaluate_rpq_pairs(graph, query, engine=self)
        return frozenset(
            product.full_relation(self._index_for(graph, backend), self.compile_rpq(query))
        )

    def evaluate_rpq_partitioned(
        self,
        graph: DataGraph,
        query: RPQLike,
        mode: str = "blocks",
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        partition: Optional["partition_kernels.GraphPartition"] = None,
        processes: Optional[bool] = None,
    ) -> FrozenSet[NodePair]:
        """``e(G)`` through the partitioned drivers; identical answers to
        :meth:`evaluate_rpq`.

        ``mode="blocks"`` splits the phase-3 source propagation across
        worker processes (source-block parallelism); ``mode="sharded"``
        runs the edge-cut scatter/gather driver, reusing *partition* when
        one is supplied and running shard rounds in forked processes
        according to *processes* (see
        :func:`~repro.engine.partition.sharded_product_relation`).
        """
        space = spaces.NfaProductSpace(graph.label_index(), self.compile_rpq(query))
        id_pairs = partition_kernels.partitioned_product_relation(
            space, mode, workers=workers, num_shards=shards, partition=partition,
            processes=processes,
        )
        node = graph.node
        return frozenset((node(source), node(target)) for source, target in id_pairs)

    def evaluate_rpq_from(
        self, graph: DataGraph, query: RPQLike, source: NodeId, backend: str = "auto"
    ) -> FrozenSet[Node]:
        """All nodes ``v`` with ``(source, v) ∈ e(G)``.

        Explicit ``backend="sql"`` runs a source-seeded CTE; ``"auto"``
        stays on the Python BFS — a single-source frontier is exactly
        the shape the dict/compact kernels win.
        """
        graph.node(source)  # raise UnknownNodeError early, mirroring the seed API
        if backend == "sql":
            from ..sqlbackend import backend as sql_backend

            pairs = sql_backend.evaluate_rpq_pairs(
                graph, query, engine=self, sources=(source,)
            )
            return frozenset(graph.node(target) for _, target in pairs)
        targets = product.reachable_targets(
            self._index_for(graph, backend), self.compile_rpq(query), source
        )
        return frozenset(graph.node(target) for target in targets)

    def rpq_holds(
        self,
        graph: DataGraph,
        query: RPQLike,
        source: NodeId,
        target: NodeId,
        backend: str = "auto",
    ) -> bool:
        """Whether ``(source, target) ∈ e(G)``."""
        graph.node(source)
        if backend == "sql":
            from ..sqlbackend import backend as sql_backend

            return bool(
                sql_backend.evaluate_rpq_pairs(
                    graph, query, engine=self, sources=(source,), targets=(target,)
                )
            )
        return product.pair_holds(
            self._index_for(graph, backend), self.compile_rpq(query), source, target
        )

    def witness_path_labels(
        self, graph: DataGraph, query: RPQLike, source: NodeId, target: NodeId
    ) -> Optional[Tuple[str, ...]]:
        """The label sequence of a shortest witnessing path, or ``None``."""
        graph.node(source)
        return product.witness_labels(graph.label_index(), self.compile_rpq(query), source, target)

    # ------------------------------------------------------------------
    # Batched entry points
    # ------------------------------------------------------------------
    def evaluate_many(
        self, graph: DataGraph, queries: Sequence[RPQLike], backend: str = "auto"
    ) -> Tuple[FrozenSet[NodePair], ...]:
        """Evaluate several RPQs over one graph, sharing its label index.

        Returns one answer relation per query, in query order.  Duplicate
        queries are evaluated once.
        """
        index = self._index_for(graph, backend)
        node = graph.node
        # Keyed on the compiled object itself (identity hash): this both
        # dedupes repeated queries and pins the automaton alive, so LRU
        # eviction mid-batch cannot recycle a key.
        memo: Dict[CompiledAutomaton, FrozenSet[NodePair]] = {}
        results: List[FrozenSet[NodePair]] = []
        for query in queries:
            compiled = self.compile_rpq(query)
            answer = memo.get(compiled)
            if answer is None:
                if self._sql_selected(graph, query, backend):
                    from ..sqlbackend import backend as sql_backend

                    id_pairs = sql_backend.evaluate_rpq_pairs(graph, query, engine=self)
                else:
                    id_pairs = product.full_relation(index, compiled)
                answer = frozenset(
                    (node(source), node(target)) for source, target in id_pairs
                )
                memo[compiled] = answer
            results.append(answer)
        return tuple(results)

    def holds_many(
        self,
        graph: DataGraph,
        query: RPQLike,
        pairs: Iterable[Tuple[NodeId, NodeId]],
        backend: str = "auto",
    ) -> Dict[Tuple[NodeId, NodeId], bool]:
        """Decide membership of many pairs at once.

        Pairs are grouped by source so each distinct source runs one
        product BFS; when the workload asks about most of the graph, the
        engine switches to one full-relation pass instead.
        """
        wanted: Dict[NodeId, Set[NodeId]] = {}
        ordered: List[Tuple[NodeId, NodeId]] = []
        for source, target in pairs:
            graph.node(source)  # raise UnknownNodeError, matching rpq_holds
            graph.node(target)
            ordered.append((source, target))
            wanted.setdefault(source, set()).add(target)
        if not ordered:
            return {}
        compiled = self.compile_rpq(query)
        index = self._index_for(graph, backend)
        if len(wanted) > max(4, len(index.nodes) // 4):
            relation = product.full_relation(index, compiled)
            return {pair: pair in relation for pair in ordered}
        verdicts: Dict[Tuple[NodeId, NodeId], bool] = {}
        for source, targets in wanted.items():
            reachable = product.reachable_targets(index, compiled, source)
            for target in targets:
                verdicts[(source, target)] = target in reachable
        return {pair: verdicts[pair] for pair in ordered}

    # ------------------------------------------------------------------
    # Data RPQ evaluation
    # ------------------------------------------------------------------
    def evaluate_data_rpq(
        self,
        graph: DataGraph,
        query: DataRPQ,
        null_semantics: bool = False,
        engine: str = "auto",
        backend: str = "auto",
    ) -> FrozenSet[NodePair]:
        """Evaluate a data RPQ, dispatching between the REE and REM engines.

        The register-automaton path honours the storage *backend* (its
        mask pass has an int-id CSR twin); the algebraic REE engine is
        relation algebra over the dict index and ignores it.  Register
        valuations have no first-order SQL encoding, so ``"sql"``
        degrades to the dict mask pass here — answers stay identical.
        """
        expression = query.expression
        if engine not in {"auto", "algebraic", "automaton"}:
            raise EvaluationError(f"unknown data RPQ engine {engine!r}")
        index = graph.label_index()
        node = graph.node
        if engine == "algebraic" or (
            engine == "auto" and isinstance(expression, RegexWithEquality)
        ):
            if not isinstance(expression, RegexWithEquality):
                raise EvaluationError("the algebraic engine only evaluates equality RPQs (REE)")
            id_pairs = data_kernels.ree_relation(index, expression, null_semantics)
        else:
            automaton = self.compile_data_rpq(expression)
            if compact_kernels.resolve_backend(backend, graph.num_nodes):
                id_pairs = compact_kernels.register_relation(
                    graph.compact_index(), automaton, null_semantics
                )
            else:
                id_pairs = data_kernels.register_automaton_relation(
                    index, automaton, null_semantics
                )
        return frozenset((node(source), node(target)) for source, target in id_pairs)

    def evaluate_data_rpq_partitioned(
        self,
        graph: DataGraph,
        query: DataRPQ,
        mode: str = "blocks",
        null_semantics: bool = False,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        partition: Optional["partition_kernels.GraphPartition"] = None,
        processes: Optional[bool] = None,
    ) -> FrozenSet[NodePair]:
        """A data RPQ through the partitioned drivers; identical answers to
        :meth:`evaluate_data_rpq`.

        Both REE (translated to a register automaton) and REM queries run
        over the :class:`~repro.engine.spaces.RegisterProductSpace`, so
        the source-block and sharded drivers apply unchanged — register
        valuations ride inside the configurations and cross shard
        boundaries as ordinary frontier messages.
        """
        automaton = self.compile_data_rpq(query.expression)
        space = spaces.RegisterProductSpace(graph.label_index(), automaton, null_semantics)
        id_pairs = partition_kernels.partitioned_product_relation(
            space, mode, workers=workers, num_shards=shards, partition=partition,
            processes=processes,
        )
        node = graph.node
        return frozenset((node(source), node(target)) for source, target in id_pairs)

    # ------------------------------------------------------------------
    # Seeded (semijoin) atom evaluation — the CRPQ planner's kernel seam
    # ------------------------------------------------------------------
    def space_for_atom(
        self, graph: DataGraph, query, null_semantics: bool = False
    ) -> spaces.ProductSpace:
        """The :class:`~repro.engine.spaces.ProductSpace` of one CRPQ atom.

        *query* is an RPQ or data-RPQ wrapper (or a bare regex / REE /
        REM expression): data expressions compile to the register
        product, everything else to the NFA product.  The distinction is
        structural — on the expression type, not the wrapper — so this
        module still never imports :mod:`repro.query` at runtime.
        """
        index = graph.label_index()
        expression = getattr(query, "expression", query)
        if isinstance(expression, (RegexWithEquality, RegexWithMemory)):
            automaton = self.compile_data_rpq(expression)
            return spaces.RegisterProductSpace(index, automaton, null_semantics)
        return spaces.NfaProductSpace(index, self.compile_rpq(query))

    def evaluate_atom_ids(
        self,
        graph: DataGraph,
        query,
        sources: Optional[Iterable[NodeId]] = None,
        targets: Optional[Iterable[NodeId]] = None,
        null_semantics: bool = False,
        mode: str = "off",
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        partition: Optional["partition_kernels.GraphPartition"] = None,
        processes: Optional[bool] = None,
        backend: str = "auto",
    ) -> FrozenSet[Tuple[NodeId, NodeId]]:
        """One CRPQ atom's relation as raw id pairs, optionally seeded.

        This is the semijoin entry point the planner's scans call:
        *sources* / *targets* restrict the relation to the node sets
        already bound by earlier joins (``None`` means unrestricted), so
        a later atom is evaluated only from the bindings that can still
        contribute to the join.  ``mode`` picks the kernel driver —
        ``"off"`` runs the sequential phases, ``"blocks"`` /
        ``"sharded"`` reuse the intra-query drivers of
        :mod:`repro.engine.partition`, seeded the same way.  Answers are
        identical in every mode.
        """
        expression = getattr(query, "expression", query)
        if (
            backend == "sql"
            and mode == "off"
            and not isinstance(expression, (RegexWithEquality, RegexWithMemory))
        ):
            # Plain-regex atoms have a seeded CTE twin; register atoms
            # (and the partitioned modes, whose shard views are built
            # over the dict index) stay on the Python kernels.
            from ..sqlbackend import backend as sql_backend

            return sql_backend.evaluate_rpq_pairs(
                graph, query, engine=self, sources=sources, targets=targets
            )
        space = self.space_for_atom(graph, query, null_semantics)
        index = space.index
        if sources is not None:
            # Deterministic seed order (and block splits) regardless of
            # the set iteration order the bindings arrived in; ids the
            # index does not know contribute nothing and are dropped.
            position = index.position
            sources = tuple(
                sorted((node for node in set(sources) if node in position), key=position.__getitem__)
            )
        if targets is not None and not isinstance(targets, set):
            targets = set(targets)
        if mode == "off":
            compact = (
                graph.compact_index()
                if compact_kernels.resolve_backend(backend, graph.num_nodes)
                else None
            )
            return frozenset(
                product.seeded_product_relation(
                    space, sources=sources, targets=targets, compact=compact
                )
            )
        return frozenset(
            partition_kernels.partitioned_product_relation(
                space,
                mode,
                workers=workers,
                num_shards=shards,
                partition=partition,
                processes=processes,
                sources=sources,
                targets=targets,
            )
        )

    def data_rpq_holds(
        self,
        graph: DataGraph,
        query: DataRPQ,
        source: NodeId,
        target: NodeId,
        null_semantics: bool = False,
    ) -> bool:
        """Whether ``(source, target)`` belongs to the data RPQ answer."""
        source_node = graph.node(source)
        target_node = graph.node(target)
        return (source_node, target_node) in self.evaluate_data_rpq(graph, query, null_semantics)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Mapping[str, CacheStats]:
        """Hit/miss snapshots of every cache, keyed by cache name."""
        return {
            "automata": self._automata.stats(),
            "register_automata": self._register_automata.stats(),
            "parses": self._parses.stats(),
        }

    def clear_caches(self) -> None:
        """Drop all cached compilation artefacts."""
        self._automata.clear()
        self._register_automata.clear()
        self._parses.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        parts = ", ".join(
            f"{name}={snapshot.size}/{snapshot.maxsize} ({snapshot.hits} hits)"
            for name, snapshot in stats.items()
        )
        return f"<EvaluationEngine {parts}>"


#: The process-wide engine behind the module-level evaluation functions.
_DEFAULT_ENGINE = EvaluationEngine()


def default_engine() -> EvaluationEngine:
    """The process-wide shared engine instance."""
    return _DEFAULT_ENGINE


def set_default_engine(engine: EvaluationEngine) -> EvaluationEngine:
    """Replace the process-wide engine (returns the previous one)."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous
