"""Product spaces: one configuration-space protocol for every dialect.

Every query language in the paper evaluates by reachability in a product
of the graph with some finite control — an NFA for plain RPQs, a register
automaton for memory RPQs, a single looping state for the GXPath ``a*``
closure.  The phase kernels in :mod:`repro.engine.product` (forward
expansion, backward pruning, bitmask source propagation, answer
decoding) only ever need five operations from that product, captured
here as the **ProductSpace protocol**:

``seed_configs(node)``
    The configurations a source node *node* starts in (its "seed
    identity"): the product states reachable before reading any edge.
``successors(adjacency, config)``
    One-step expansion of *config* along the edges served by
    *adjacency* — anything with the ``targets(label, node)`` interface:
    the full :class:`~repro.datagraph.index.LabelIndex`, a shard-local
    :class:`~repro.engine.partition.ShardView`, or a cut-edge view.
``predecessors(adjacency, config)``
    One-step reverse expansion (only when :attr:`prune` is true;
    *adjacency* must serve ``sources(label, node)``).
``is_accepting(config)`` / ``node_of(config)``
    The acceptance test, and the graph node a configuration sits at —
    together they let :func:`~repro.engine.product.decode_pairs` read
    ``(source, node_of(config))`` off every accepting mask bit.

Because the kernels take the adjacency as a parameter, every space
shards for free: the partition drivers in :mod:`repro.engine.partition`
run the same space against shard-local views and exchange frontier
configurations over the cut edges, whatever the dialect.

The same five operations also give every space **seeded** evaluation
(:func:`~repro.engine.product.seeded_product_relation`, the CRPQ
planner's semijoin contract) for free: restricting the nodes handed to
``seed_configs`` restricts the sources a relation is computed from, and
restricting which accepting configurations count (by ``node_of``)
restricts the targets — no space needs seeding-specific code.

Three implementations cover the paper's languages:

* :class:`NfaProductSpace` — ``(node, state)`` configurations over a
  compiled ε-free NFA; plain RPQs.  Supports backward pruning.
* :class:`RegisterProductSpace` — ``(node, state, valuation)``
  configurations over a register automaton; memory RPQs (REM) and, via
  the REE→REM translation, equality RPQs.  One mask-propagation pass
  over this space replaces the historical per-source search: sources
  whose runs meet in the same configuration share all downstream work,
  and the source sets ride along as word-parallel big-int ORs.
* :class:`ClosureSpace` — bare-node configurations over one edge label;
  the transitive-closure hot path of GXPath ``a*`` / ``a-*`` axes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..datagraph.index import LabelIndex
from ..datagraph.node import NodeId
from ..datapaths.conditions import EMPTY_VALUATION
from ..datapaths.register_automata import RegisterAutomaton
from .compiled import CompiledAutomaton

__all__ = [
    "ProductSpace",
    "NfaProductSpace",
    "RegisterProductSpace",
    "ClosureSpace",
]


class ProductSpace:
    """Protocol base class for (graph × control) configuration spaces.

    Subclasses hold the global :class:`LabelIndex` (node ordering, data
    values) but take the *adjacency* each expansion runs over as a call
    parameter, so one space instance serves the sequential kernels, the
    source-block workers and every shard of a partition.  Configurations
    are opaque hashable values; only the space interprets them.

    :attr:`prune` declares whether the space supports backward expansion
    (:meth:`predecessors`): when true, the drivers run the
    forward/backward phases and hand the kernels a *useful* set; when
    false (register automata — valuations cannot be run backwards; the
    closure space — every configuration accepts) the propagation phase
    simply runs unpruned.
    """

    __slots__ = ()

    #: Whether backward pruning is available (and worthwhile).
    prune: bool = False
    #: Which int-id kernel in :mod:`repro.engine.compact` evaluates this
    #: space over a CSR :class:`~repro.datagraph.compact.CompactLabelIndex`
    #: ("nfa" | "closure" | "register"); ``None`` means the space has no
    #: compact twin and the dict kernels are the only path.
    compact_kernel: "str | None" = None
    index: LabelIndex

    def seed_configs(self, node: NodeId) -> Iterable:
        """The configurations source *node* occupies before reading any edge."""
        raise NotImplementedError

    def successors(self, adjacency, config) -> Iterable:
        """One-step successors of *config* along *adjacency*'s edges."""
        raise NotImplementedError

    def predecessors(self, adjacency, config) -> Iterable:
        """One-step predecessors (``prune`` spaces only)."""
        raise NotImplementedError

    def is_accepting(self, config) -> bool:
        """Whether *config* witnesses an answer ending at :meth:`node_of`."""
        raise NotImplementedError

    def node_of(self, config) -> NodeId:
        """The graph node the configuration sits at."""
        raise NotImplementedError


class NfaProductSpace(ProductSpace):
    """The classical (graph × NFA) product of plain RPQ evaluation.

    Configurations are ``(node, state)`` pairs over a
    :class:`~repro.engine.compiled.CompiledAutomaton`.  This is the
    refactored form of the behaviour the kernels hard-coded before the
    protocol existed, and the only space with backward pruning (ε-free
    NFAs reverse trivially).
    """

    __slots__ = ("index", "automaton", "_moves", "_backward_moves", "_accepting")

    prune = True
    compact_kernel = "nfa"

    def __init__(self, index: LabelIndex, automaton: CompiledAutomaton):
        self.index = index
        self.automaton = automaton
        self._moves = automaton.moves
        self._backward_moves = automaton.backward_moves
        self._accepting = automaton.accepting

    def seed_configs(self, node: NodeId) -> List[Tuple[NodeId, int]]:
        return [(node, state) for state in self.automaton.initial]

    def successors(self, adjacency, config) -> List[Tuple[NodeId, int]]:
        node, state = config
        targets_of = adjacency.targets
        out: List[Tuple[NodeId, int]] = []
        for symbol, next_states in self._moves[state]:
            for target in targets_of(symbol, node):
                for next_state in next_states:
                    out.append((target, next_state))
        return out

    def predecessors(self, adjacency, config) -> List[Tuple[NodeId, int]]:
        node, state = config
        sources_of = adjacency.sources
        out: List[Tuple[NodeId, int]] = []
        for symbol, previous_states in self._backward_moves[state]:
            for source in sources_of(symbol, node):
                for previous_state in previous_states:
                    out.append((source, previous_state))
        return out

    def is_accepting(self, config) -> bool:
        return config[1] in self._accepting

    def node_of(self, config) -> NodeId:
        return config[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NfaProductSpace {len(self.index.nodes)} nodes x {self.automaton!r}>"


class RegisterProductSpace(ProductSpace):
    """The (graph × register automaton) product of memory-RPQ evaluation.

    Configurations are ``(node, state, valuation)`` triples: the register
    valuation is part of the control state, so the space is as large as
    the distinct register contents runs can accumulate.  Expansion steps
    a letter transition across an edge and immediately closes under the
    automaton's silent guard/store moves against the target node's data
    value, exactly as the historical per-source search did — but driven
    through the shared kernels, one propagation pass covers **all**
    sources at once: runs from different sources that meet in the same
    configuration merge their source bitmasks and share every expansion
    after the meeting point.

    Backward pruning is unsupported: guards and stores read the forward
    direction's current data value, so the product does not reverse.
    """

    __slots__ = ("index", "automaton", "null_semantics", "_values", "_letters", "_accepting")

    prune = False
    compact_kernel = "register"

    def __init__(
        self, index: LabelIndex, automaton: RegisterAutomaton, null_semantics: bool = False
    ):
        self.index = index
        self.automaton = automaton
        self.null_semantics = null_semantics
        self._values = index.values
        self._accepting = automaton.accepting
        # Letter transitions grouped by source state: the only transition
        # kind expansion consults (silent moves live in silent_closure).
        letters: Dict[int, List[Tuple[str, int]]] = {}
        for transition in automaton.transitions:
            if transition.kind == "letter":
                letters.setdefault(transition.source, []).append(
                    (transition.symbol, transition.target)
                )
        self._letters = letters

    def seed_configs(self, node: NodeId) -> List[Tuple[NodeId, int, object]]:
        closure = self.automaton.silent_closure(
            {(self.automaton.initial, EMPTY_VALUATION)},
            self._values[node],
            self.null_semantics,
        )
        return [(node, state, valuation) for state, valuation in closure]

    def successors(self, adjacency, config) -> List[Tuple[NodeId, int, object]]:
        node, state, valuation = config
        targets_of = adjacency.targets
        silent_closure = self.automaton.silent_closure
        values = self._values
        null_semantics = self.null_semantics
        out: List[Tuple[NodeId, int, object]] = []
        for symbol, target_state in self._letters.get(state, ()):
            for neighbour in targets_of(symbol, node):
                stepped = silent_closure(
                    {(target_state, valuation)}, values[neighbour], null_semantics
                )
                for next_state, next_valuation in stepped:
                    out.append((neighbour, next_state, next_valuation))
        return out

    def is_accepting(self, config) -> bool:
        return config[1] in self._accepting

    def node_of(self, config) -> NodeId:
        return config[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RegisterProductSpace {len(self.index.nodes)} nodes x "
            f"{self.automaton.num_states} states>"
        )


class ClosureSpace(ProductSpace):
    """The degenerate product behind per-label transitive closures.

    Configurations are bare node ids; expansion follows one edge label;
    every configuration accepts.  ``product_relation`` over this space is
    the reflexive-transitive closure ``a*`` — the hot path of GXPath
    axis-star evaluation — computed as a single mask propagation instead
    of one BFS per start node.  Inverse axes (``a-*``) are the transpose
    of the forward closure, so callers evaluate forward and flip pairs.
    """

    __slots__ = ("index", "label")

    prune = False
    compact_kernel = "closure"

    def __init__(self, index: LabelIndex, label: str):
        self.index = index
        self.label = label

    def seed_configs(self, node: NodeId) -> Tuple[NodeId, ...]:
        return (node,)

    def successors(self, adjacency, config) -> Tuple[NodeId, ...]:
        return adjacency.targets(self.label, config)

    def predecessors(self, adjacency, config) -> Tuple[NodeId, ...]:
        return adjacency.sources(self.label, config)

    def is_accepting(self, config) -> bool:
        return True

    def node_of(self, config) -> NodeId:
        return config

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClosureSpace {self.label!r}* over {len(self.index.nodes)} nodes>"
