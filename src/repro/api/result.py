"""Uniform lazy query results.

Every language used to return a different shape — pair sets for RPQs and
data RPQs, node sets for GXPath node expressions, head tuples for CRPQs,
bools from the ``*_holds`` helpers.  :class:`Result` wraps all of them
behind one small accessor surface:

* :meth:`Result.rows` — the answers as a frozenset of node tuples
  (1-tuples for node queries), always available;
* :meth:`Result.pairs` / :meth:`Result.nodes` — shape-checked views for
  binary relations and node sets;
* :meth:`Result.holds` — membership test by node ids or nodes;
* :meth:`Result.count` / ``len`` / ``bool`` / iteration;
* :meth:`Result.to_json` — a deterministic JSON document.

Results are **lazy**: the evaluation thunk passed by the session runs on
first access and is forced at most once, so ``session.run(q)`` is free
until an accessor is called, and a result forced twice never recomputes.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Callable, FrozenSet, Iterator, Optional, Tuple

from ..datagraph.node import Node
from ..datagraph.values import is_null
from ..exceptions import EvaluationError
from .query import Query, QueryKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datagraph.graph import DataGraph

__all__ = ["Result"]

NodeTuple = Tuple[Node, ...]


def _json_value(value: object) -> object:
    """A JSON-representable rendering of a data value."""
    if is_null(value):
        return None
    if isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


class Result:
    """A lazy, shape-normalising view of one query's answers on one graph.

    Built by :meth:`GraphSession.run` / :meth:`GraphSession.run_many`;
    not constructed directly by users.
    """

    __slots__ = ("query", "graph", "_materialise", "_answers", "_by_id")

    def __init__(
        self,
        query: Query,
        graph: Optional["DataGraph"],
        materialise: Callable[[], frozenset],
    ):
        self.query = query
        self.graph = graph
        self._materialise = materialise
        self._answers: Optional[frozenset] = None
        # Lazily-built id → Node table for graph-less (remote) results,
        # so .holds() can resolve bare node ids without a graph.
        self._by_id: Optional[dict] = None

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def _force(self) -> frozenset:
        answers = self._answers
        if answers is None:
            answers = self._materialise()
            self._answers = answers
        return answers

    @property
    def is_materialised(self) -> bool:
        """Whether the answers have been computed yet (forcing is one-shot)."""
        return self._answers is not None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def rows(self) -> FrozenSet[NodeTuple]:
        """All answers as node tuples (node-set answers become 1-tuples)."""
        answers = self._force()
        if self.query.kind is QueryKind.GXPATH_NODE:
            return frozenset((node,) for node in answers)
        return answers

    def pairs(self) -> FrozenSet[Tuple[Node, Node]]:
        """The binary answer relation; raises for non-binary queries."""
        if self.query.arity != 2:
            raise EvaluationError(
                f"{self.query} has arity {self.query.arity}; .pairs() needs a binary query"
            )
        return self._force()

    def nodes(self) -> FrozenSet[Node]:
        """The answer node set; raises for queries of arity other than 1."""
        if self.query.arity != 1:
            raise EvaluationError(
                f"{self.query} has arity {self.query.arity}; .nodes() needs a unary query"
            )
        answers = self._force()
        if self.query.kind is QueryKind.GXPATH_NODE:
            return answers
        return frozenset(row[0] for row in answers)  # unary CRPQ heads

    def holds(self, *nodes: object) -> bool:
        """Whether the given answer tuple belongs to the result.

        Arguments may be :class:`~repro.datagraph.node.Node` objects or
        node ids (resolved against the session's graph); their number
        must match the query arity, e.g. ``result.holds(u, v)`` for a
        binary query.
        """
        if len(nodes) != self.query.arity:
            raise EvaluationError(
                f"{self.query} has arity {self.query.arity}, got {len(nodes)} argument(s)"
            )
        resolved = []
        for node in nodes:
            node = node if isinstance(node, Node) else self._resolve_id(node)
            if node is None:
                return False  # id appears in no answer: not a member
            resolved.append(node)
        if self.query.kind is QueryKind.GXPATH_NODE:
            return resolved[0] in self._force()
        return tuple(resolved) in self._force()

    def _resolve_id(self, node_id: object) -> Optional[Node]:
        """A bare id as a :class:`Node` — via the graph when the result has
        one, else against the answers themselves (remote results carry no
        graph; an id no answer mentions resolves to ``None``, which can
        only mean non-membership)."""
        if self.graph is not None:
            return self.graph.node(node_id)
        by_id = self._by_id
        if by_id is None:
            by_id = {}
            for row in self.rows():
                for node in row:
                    by_id[node.id] = node
            self._by_id = by_id
        return by_id.get(node_id)

    def count(self) -> int:
        """Number of answers."""
        return len(self._force())

    def to_json(self, indent: Optional[int] = None) -> str:
        """A deterministic JSON document describing the result."""
        rows = sorted(
            self.rows(), key=lambda row: tuple(node.sort_key() for node in row)
        )
        payload = {
            "query": str(self.query.plan),
            "kind": self.query.kind.value,
            "arity": self.query.arity,
            "count": len(rows),
            "rows": [
                [{"id": _json_value(node.id), "value": _json_value(node.value)} for node in row]
                for row in rows
            ],
        }
        return json.dumps(payload, indent=indent, sort_keys=False)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[NodeTuple]:
        return iter(self.rows())

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return bool(self._force())

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Node):
            return self.holds(item) if self.query.arity == 1 else False
        if isinstance(item, tuple):
            return item in self.rows()
        return False

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Result):
            return self.query == other.query and self.rows() == other.rows()
        if isinstance(other, (set, frozenset)):
            return self._force() == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - results are not meant as keys
        return hash((self.query, self._force()))

    def __repr__(self) -> str:
        state = f"{self.count()} answers" if self.is_materialised else "lazy"
        return f"<Result {self.query} ({state})>"
