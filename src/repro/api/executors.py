"""Pluggable batch executors and the session execution policy.

A :class:`GraphSession` hands every ``run_many`` batch to an *executor*,
whose only job is to turn ``(engine, graph, queries)`` into one answer
set per query:

* :class:`SequentialExecutor` — evaluate in order on the calling thread;
  the default, and the best choice for single queries and small batches.
* :class:`ParallelExecutor` — fan a batch out across workers.  The
  ``"thread"`` backend uses :class:`concurrent.futures.ThreadPoolExecutor`
  (compilation is pre-warmed sequentially so worker threads only read the
  engine's caches); the ``"process"`` backend forks worker processes that
  inherit the graph and compiled automata by copy-on-write, which is the
  backend that actually scales CPU-bound evaluation across cores under
  the GIL.  On platforms without ``fork`` the process backend degrades to
  threads.

Executors never touch the session's result cache — the session resolves
cache hits first and only ships the misses, so executors stay stateless
and trivially pluggable (anything with an ``execute_batch`` method
works).

:class:`ExecutionPolicy` is the declarative knob the session is
constructed with: which executor to use, how many workers, and how the
versioned result cache behaves.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..engine.forkpool import fork_available, run_forked
from ..exceptions import EvaluationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datagraph.graph import DataGraph
    from ..engine.engine import EvaluationEngine
    from .query import Query

__all__ = [
    "ExecutionPolicy",
    "POLICY_PRESETS",
    "STORAGE_BACKENDS",
    "SequentialExecutor",
    "ParallelExecutor",
]


class SequentialExecutor:
    """Evaluate a batch in order on the calling thread.

    *storage_backend* picks the label-index representation each query
    evaluates over (``"auto"`` / ``"compact"`` / ``"dict"``, see
    :attr:`ExecutionPolicy.backend`); it rides on the executor — rather
    than the ``execute_batch`` signature — so custom executor classes
    keep working unchanged.
    """

    name = "sequential"
    #: Class-level default so subclasses with their own ``__init__``
    #: (which may never call ``super().__init__``) still resolve a backend.
    storage_backend = "auto"

    def __init__(self, storage_backend: str = "auto"):
        self.storage_backend = storage_backend

    def execute_batch(
        self,
        engine: "EvaluationEngine",
        graph: "DataGraph",
        queries: Sequence["Query"],
        null_semantics: bool = False,
    ) -> List[frozenset]:
        """One answer set per query, in query order."""
        backend = self.storage_backend
        return [
            query._evaluate(engine, graph, null_semantics, backend=backend)
            for query in queries
        ]

    def __repr__(self) -> str:
        return "SequentialExecutor()"


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------
def _fork_worker(batch, index: int) -> frozenset:
    """Forked worker: one query of the batch (which arrives by copy-on-write
    through :func:`repro.engine.forkpool.run_forked`, fork being the only way
    to ship an unpicklable DataGraph to workers)."""
    engine, graph, queries, null_semantics, backend = batch
    return queries[index]._evaluate(engine, graph, null_semantics, backend=backend)


class ParallelExecutor:
    """Evaluate a batch across a worker pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8.
    backend:
        ``"thread"`` (default) or ``"process"``.  Threads add no
        interpreter-level parallelism for this pure-Python workload but
        keep results immediately shareable; processes (POSIX ``fork``)
        run truly concurrently and pay one pickle of each answer set on
        the way back.
    """

    storage_backend = "auto"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        backend: str = "thread",
        storage_backend: str = "auto",
    ):
        if backend not in {"thread", "process"}:
            raise EvaluationError(f"unknown parallel backend {backend!r}")
        if max_workers is not None and max_workers < 1:
            raise EvaluationError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self.backend = backend
        self.storage_backend = storage_backend

    @property
    def name(self) -> str:
        return f"parallel-{self.backend}"

    def _workers_for(self, batch_size: int) -> int:
        limit = self.max_workers or min(os.cpu_count() or 1, 8)
        return max(1, min(limit, batch_size))

    def execute_batch(
        self,
        engine: "EvaluationEngine",
        graph: "DataGraph",
        queries: Sequence["Query"],
        null_semantics: bool = False,
    ) -> List[frozenset]:
        """One answer set per query, in query order."""
        backend = self.storage_backend
        if len(queries) <= 1:
            return SequentialExecutor(backend).execute_batch(
                engine, graph, queries, null_semantics
            )
        # Compile every automaton and build the label index *before*
        # fanning out: the engine's LRU caches are not thread-safe for
        # concurrent builds, and forked workers inherit the warm caches
        # (including the CSR twin when the storage backend resolves
        # compact for this graph).
        graph.label_index()
        from ..engine.compact import resolve_backend

        if resolve_backend(backend, graph.num_nodes):
            graph.compact_index()
        for query in queries:
            query._warm(engine)
        if self.backend == "process" and fork_available():
            return run_forked(
                (engine, graph, tuple(queries), null_semantics, backend),
                _fork_worker,
                len(queries),
                max_workers=self._workers_for(len(queries)),
            )
        workers = self._workers_for(len(queries))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(
                    lambda query: query._evaluate(
                        engine, graph, null_semantics, backend=backend
                    ),
                    queries,
                )
            )

    def __repr__(self) -> str:
        return f"ParallelExecutor(max_workers={self.max_workers}, backend={self.backend!r})"


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
#: Valid ``ExecutionPolicy.intra_query`` modes.
INTRA_QUERY_MODES = ("off", "blocks", "sharded")

#: Valid ``ExecutionPolicy.backend`` values (the storage/execution
#: representation queries evaluate over).
STORAGE_BACKENDS = ("auto", "compact", "dict", "sql")

#: Valid ``ExecutionPolicy.routing`` values: ``"auto"`` lets the cost
#: router (:func:`repro.planner.route_query`) pick the execution
#: strategy per query, ``"manual"`` restores the pure knob behaviour.
ROUTING_MODES = ("auto", "manual")

#: Sentinel distinguishing "caller never passed this kwarg" from any
#: real value, so only explicit use of the deprecated knobs warns.
_UNSET = object()

#: The named policy presets of :meth:`ExecutionPolicy.preset`.  Each
#: entry overrides the dataclass defaults; everything unnamed keeps the
#: default value.
POLICY_PRESETS = {
    # Sequential evaluation, full caching — single queries, small
    # graphs, notebooks.  Equivalent to the historical no-args policy.
    "local": {},
    # Saturate one machine: batches fork worker processes, single
    # full-relation queries fan their phase-3 propagation out over
    # source blocks (the configuration the CI bench gates pin ≥1×).
    "parallel": {"executor": "process", "intra_query": "blocks"},
    # The repro-serve daemon's shape: single queries route through the
    # edge-cut sharded driver so the server's persistent shard-worker
    # pool (or, standalone, a per-query pool) carries them; batches stay
    # sequential because the daemon already multiplexes clients.
    "server": {"intra_query": "sharded", "sharded_processes": True},
}

_DEPRECATED_KNOBS = ("intra_query", "intra_query_threshold", "num_shards", "sharded_processes")


@dataclass(frozen=True, init=False)
class ExecutionPolicy:
    """How a :class:`GraphSession` executes and caches queries.

    Build policies through :meth:`auto` or :meth:`preset` — the named
    shapes (``"local"``, ``"parallel"``, ``"server"``) bundle the
    partitioning knobs that are easy to mis-combine by hand, and
    keyword overrides stay available for the rare cases that need
    them::

        ExecutionPolicy.auto()                      # pick for this host
        ExecutionPolicy.preset("parallel")          # batch + intra-query fan-out
        ExecutionPolicy.preset("server", num_shards=4)

    Passing the partitioning knobs (``intra_query``,
    ``intra_query_threshold``, ``num_shards``, ``sharded_processes``)
    directly to the constructor is **deprecated** and warns; the
    remaining constructor arguments (``executor``, ``max_workers`` and
    the cache sizing) stay first-class.

    Attributes
    ----------
    executor:
        ``"sequential"``, ``"thread"`` or ``"process"`` — the executor
        ``run_many`` batches are handed to.
    backend:
        The storage backend queries evaluate over: ``"dict"`` keeps the
        hash-table :class:`~repro.datagraph.index.LabelIndex` kernels,
        ``"compact"`` forces the int-id CSR kernels over the graph's
        :class:`~repro.datagraph.compact.CompactLabelIndex`, ``"sql"``
        forces the compiled relational backend of
        :mod:`repro.sqlbackend` (recursive CTEs over the paper's
        ``D_G`` encoding in an embedded sqlite/duckdb database), and
        ``"auto"`` (the default) picks **cost-based** per query: compact
        on graphs large enough for the array kernels to pay, and sql
        when the planner's label statistics estimate a closure-heavy
        relation (see :mod:`repro.sqlbackend.cost`).  Answers are
        bit-identical in every mode; only the representation the
        evaluation walks changes.
    max_workers:
        Worker-pool bound for the parallel executors and for the
        intra-query source-block fan-out.
    cache_results:
        Whether the session memoises answers keyed on
        ``(graph.version, query.key, null_semantics)``.
    result_cache_size:
        LRU bound on the number of cached answer sets.
    intra_query:
        How a *single* full-relation query is evaluated: ``"off"`` (the
        sequential engine), ``"blocks"`` (the phase-3 source propagation
        fanned out over worker processes) or ``"sharded"`` (the edge-cut
        scatter/gather driver).  Every dialect with a product space takes
        the drivers — plain RPQs, data RPQs over the register product,
        and the axis-star closures inside GXPath expressions.  Answers
        are identical in every mode and land in the same versioned
        result cache.
    intra_query_threshold:
        Minimum graph size (nodes) before the partitioned drivers kick
        in; smaller graphs always run sequentially, where the fan-out
        overhead cannot pay off.
    num_shards:
        Shard count for ``intra_query="sharded"`` (default: CPU count
        capped at 8).
    sharded_processes:
        Whether the sharded driver forks its per-invocation worker
        pool: ``True`` forks whenever the platform supports it,
        ``False`` keeps the in-process loop, ``None`` (default) forks
        on graphs large enough to amortise the pool.
    routing:
        ``"auto"`` (the default) lets the session's cost router
        (:func:`repro.planner.route_query`) pick sequential / blocks /
        sharded / compact / SQL execution per query from the graph's
        statistics; the partitioning knobs above then act as
        *overrides* — an explicit ``intra_query`` mode or ``backend``
        wins over the router.  ``"manual"`` disables the router
        entirely and restores the historical knob-driven behaviour.
    point_cache_size:
        LRU bound on the session's single-source (point-workload) cache
        of :meth:`GraphSession.targets` answers.
    delta_repair:
        Whether the session repairs cached full-relation answers across
        insert-only journaled deltas (seeded re-expansion unioned into
        the cached answer) instead of recomputing from scratch after
        every mutation.  Answers are identical either way; disable to
        force the full-recompute executable spec.
    """

    executor: str = "sequential"
    backend: str = "auto"
    max_workers: Optional[int] = None
    cache_results: bool = True
    result_cache_size: int = 1024
    intra_query: str = "off"
    intra_query_threshold: int = 64
    num_shards: Optional[int] = None
    sharded_processes: Optional[bool] = None
    routing: str = "auto"
    point_cache_size: int = 1024
    delta_repair: bool = True

    def __init__(
        self,
        executor: str = "sequential",
        max_workers: Optional[int] = None,
        cache_results: bool = True,
        result_cache_size: int = 1024,
        intra_query=_UNSET,
        intra_query_threshold=_UNSET,
        num_shards=_UNSET,
        sharded_processes=_UNSET,
        point_cache_size: int = 1024,
        delta_repair: bool = True,
        backend: str = "auto",
        routing: str = "auto",
    ):
        passed = {
            "intra_query": intra_query,
            "intra_query_threshold": intra_query_threshold,
            "num_shards": num_shards,
            "sharded_processes": sharded_processes,
        }
        deprecated = sorted(name for name, value in passed.items() if value is not _UNSET)
        if deprecated:
            import warnings

            warnings.warn(
                f"passing {', '.join(deprecated)} to ExecutionPolicy() is deprecated; "
                "use ExecutionPolicy.preset('local'/'parallel'/'server', ...) or "
                "ExecutionPolicy.auto() instead",
                DeprecationWarning,
                stacklevel=2,
            )
        defaults = _POLICY_DEFAULTS
        self._assign(
            executor=executor,
            backend=backend,
            routing=routing,
            max_workers=max_workers,
            cache_results=cache_results,
            result_cache_size=result_cache_size,
            point_cache_size=point_cache_size,
            delta_repair=delta_repair,
            **{
                name: (value if value is not _UNSET else defaults[name])
                for name, value in passed.items()
            },
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _assign(self, **fields) -> None:
        """Set every dataclass field (the class is frozen) and validate."""
        for name, value in fields.items():
            object.__setattr__(self, name, value)
        if self.intra_query not in INTRA_QUERY_MODES:
            raise EvaluationError(
                f"unknown intra_query mode {self.intra_query!r}; "
                f"expected one of {', '.join(INTRA_QUERY_MODES)}"
            )
        if self.backend not in STORAGE_BACKENDS:
            raise EvaluationError(
                f"unknown storage backend {self.backend!r}; "
                f"expected one of {', '.join(STORAGE_BACKENDS)}"
            )
        if self.routing not in ROUTING_MODES:
            raise EvaluationError(
                f"unknown routing mode {self.routing!r}; "
                f"expected one of {', '.join(ROUTING_MODES)}"
            )

    @classmethod
    def _build(cls, **fields) -> "ExecutionPolicy":
        """Construct without the deprecation shim (presets, internal callers)."""
        unknown = sorted(set(fields) - set(_POLICY_DEFAULTS))
        if unknown:
            raise EvaluationError(
                f"unknown ExecutionPolicy field(s): {', '.join(unknown)}"
            )
        policy = object.__new__(cls)
        policy._assign(**{**_POLICY_DEFAULTS, **fields})
        return policy

    @classmethod
    def preset(cls, name: str, **overrides) -> "ExecutionPolicy":
        """A named policy shape, optionally adjusted with field overrides.

        ``"local"`` — sequential, fully cached (the default policy).
        ``"parallel"`` — process-pool batches plus source-block
        intra-query fan-out.  ``"server"`` — the serving shape: sharded
        intra-query evaluation over a persistent worker pool.  Overrides
        are ordinary field values and do **not** warn — this is the
        supported spelling for expert knob access.
        """
        base = POLICY_PRESETS.get(name)
        if base is None:
            raise EvaluationError(
                f"unknown policy preset {name!r}; "
                f"expected one of {', '.join(sorted(POLICY_PRESETS))}"
            )
        return cls._build(**{**base, **overrides})

    @classmethod
    def auto(cls, **overrides) -> "ExecutionPolicy":
        """Pick a preset for this host: ``"parallel"`` where forked worker
        pools can pay (POSIX fork, multiple cores), else ``"local"``."""
        name = "parallel" if fork_available() and (os.cpu_count() or 1) >= 2 else "local"
        return cls.preset(name, **overrides)

    # ------------------------------------------------------------------
    def build_executor(self):
        """Instantiate the executor this policy names."""
        if self.executor == "sequential":
            return SequentialExecutor(storage_backend=self.backend)
        if self.executor in {"thread", "process"}:
            return ParallelExecutor(
                max_workers=self.max_workers,
                backend=self.executor,
                storage_backend=self.backend,
            )
        raise EvaluationError(
            f"unknown executor {self.executor!r}; expected 'sequential', 'thread' or 'process'"
        )


#: The dataclass defaults, used by both construction paths.
_POLICY_DEFAULTS = {
    field.name: field.default for field in dataclasses.fields(ExecutionPolicy)
}
