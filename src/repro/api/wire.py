"""Structural JSON wire codec for queries, answers and data values.

The remote session (:mod:`repro.api.remote`) and the server
(:mod:`repro.server`) exchange queries and answer sets as JSON frames.
Rendering a plan back to text is **not** a faithful transport — the
pretty-printers use symbols the parsers do not all accept (``·``, ``↓``,
``⟨⟩``) and CRPQ atoms lose their dialect tags — so the codec here walks
the plan ASTs *structurally* instead: every plan node is a frozen
dataclass with a unique class name, and a document of the shape
``{"%": "ClassName", "f": {field: ...}}`` round-trips it exactly.  The
decoder only instantiates classes from the fixed registry below, so a
hostile frame can name no other constructor (this is why the protocol is
JSON and not pickle).

Data values and node ids travel as JSON scalars; tuples (the
property-graph id encoding) are tagged ``{"%": "tuple", ...}``; the SQL
null maps to JSON ``null``.  Non-scalar ids or values raise
:class:`~repro.exceptions.SerializationError`, matching the graph
serialiser's contract.

Answer sets are encoded in their natural shape — bare node sets for
GXPath node expressions, node-tuple rows for everything else — and
decoded against the query's kind, reconstructing real
:class:`~repro.datagraph.node.Node` objects so a remote
:class:`~repro.api.result.Result` behaves exactly like a local one.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, FrozenSet, Tuple

from ..datagraph.node import Node
from ..datagraph.values import NULL, is_null
from ..datapaths import conditions as _conditions
from ..datapaths import ree as _ree
from ..datapaths import rem as _rem
from ..exceptions import SerializationError
from ..gxpath import ast as _gxpath
from ..query.crpq import Atom, ConjunctiveRPQ
from ..query.data_rpq import DataRPQ
from ..query.rpq import RPQ
from ..regular import ast as _regular
from .query import Query, QueryKind

__all__ = [
    "encode_query",
    "decode_query",
    "encode_answers",
    "decode_answers",
    "encode_value",
    "decode_value",
    "encode_node",
    "decode_node",
    "encode_delta",
    "decode_delta",
]

#: Every plan-AST class a wire document may instantiate.  Class names are
#: the wire tags, so they must stay unique across languages (checked at
#: import time below).
_PLAN_CLASSES = (
    # query wrappers
    RPQ,
    DataRPQ,
    Atom,
    ConjunctiveRPQ,
    # plain regular expressions
    _regular.Epsilon,
    _regular.Letter,
    _regular.Concat,
    _regular.Union,
    _regular.Star,
    _regular.Plus,
    # regular expressions with equality
    _ree.ReeEpsilon,
    _ree.ReeLetter,
    _ree.ReeConcat,
    _ree.ReeUnion,
    _ree.ReePlus,
    _ree.ReeEqualTest,
    _ree.ReeNotEqualTest,
    # regular expressions with memory + register conditions
    _rem.RemEpsilon,
    _rem.RemLetter,
    _rem.RemConcat,
    _rem.RemUnion,
    _rem.RemPlus,
    _rem.RemTest,
    _rem.RemBind,
    _conditions.TrueCondition,
    _conditions.Equal,
    _conditions.NotEqual,
    _conditions.And,
    _conditions.Or,
    # GXPath path and node expressions
    _gxpath.PathEpsilon,
    _gxpath.Axis,
    _gxpath.AxisStar,
    _gxpath.PathConcat,
    _gxpath.PathUnion,
    _gxpath.PathEqual,
    _gxpath.PathNotEqual,
    _gxpath.NodeTest,
    _gxpath.NodeNot,
    _gxpath.NodeAnd,
    _gxpath.NodeOr,
    _gxpath.NodeExists,
)

_REGISTRY: Dict[str, type] = {cls.__name__: cls for cls in _PLAN_CLASSES}
if len(_REGISTRY) != len(_PLAN_CLASSES):  # pragma: no cover - import-time invariant
    raise AssertionError("wire registry requires unique plan class names")

_SCALARS = (str, int, float, bool)


# ----------------------------------------------------------------------
# Plan documents
# ----------------------------------------------------------------------
def _encode_plan(obj: Any) -> Any:
    if obj is None or isinstance(obj, _SCALARS):
        return obj
    if isinstance(obj, tuple):
        return {"%": "tuple", "items": [_encode_plan(item) for item in obj]}
    name = type(obj).__name__
    if name in _REGISTRY and dataclasses.is_dataclass(obj):
        return {
            "%": name,
            "f": {
                field.name: _encode_plan(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    raise SerializationError(f"cannot encode plan node {obj!r} for the wire")


def _decode_plan(doc: Any) -> Any:
    if doc is None or isinstance(doc, _SCALARS):
        return doc
    if not isinstance(doc, dict) or "%" not in doc:
        raise SerializationError(f"malformed plan document {doc!r}")
    tag = doc["%"]
    if tag == "tuple":
        items = doc.get("items")
        if not isinstance(items, list):
            raise SerializationError(f"malformed tuple document {doc!r}")
        return tuple(_decode_plan(item) for item in items)
    cls = _REGISTRY.get(tag)
    if cls is None:
        raise SerializationError(f"unknown plan class {tag!r} in wire document")
    fields = doc.get("f")
    if not isinstance(fields, dict):
        raise SerializationError(f"malformed plan document for {tag!r}")
    expected = {field.name for field in dataclasses.fields(cls)}
    if set(fields) != expected:
        raise SerializationError(
            f"plan document for {tag!r} has fields {sorted(fields)}, expected {sorted(expected)}"
        )
    try:
        return cls(**{name: _decode_plan(value) for name, value in fields.items()})
    except SerializationError:
        raise
    except Exception as error:
        raise SerializationError(f"cannot rebuild plan node {tag!r}: {error}") from error


def encode_query(query: Query) -> Dict[str, Any]:
    """A JSON-compatible document for one :class:`~repro.api.query.Query`."""
    return {"kind": query.kind.value, "plan": _encode_plan(query.plan)}


def decode_query(doc: Any) -> Query:
    """Rebuild a :class:`Query` from :func:`encode_query` output.

    The plan is re-tagged through :meth:`Query.of`, so the declared kind
    is cross-checked against the decoded plan's actual language — a
    document claiming an RPQ kind over a GXPath plan is rejected.
    """
    if not isinstance(doc, dict):
        raise SerializationError(f"malformed query document {doc!r}")
    try:
        kind = QueryKind(doc.get("kind"))
    except ValueError:
        raise SerializationError(f"unknown query kind {doc.get('kind')!r}") from None
    from ..exceptions import UnsupportedQueryError

    try:
        query = Query.of(_decode_plan(doc.get("plan")))
    except UnsupportedQueryError as error:
        # A scalar or missing plan decodes to a non-plan object Query.of
        # cannot tag — a malformed document, not an unsupported query.
        raise SerializationError(f"malformed query document {doc!r}: {error}") from None
    if query.kind is not kind:
        raise SerializationError(
            f"query document declares kind {kind.value!r} but the plan is {query.kind.value!r}"
        )
    return query


# ----------------------------------------------------------------------
# Values, nodes, answers
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """A data value or node id as a JSON-compatible document.

    ``None`` normalises to the SQL null on the way through, matching the
    graph serialiser (:mod:`repro.datagraph.serialization`).
    """
    if value is None or is_null(value):
        return None
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, tuple):
        return {"%": "tuple", "items": [encode_value(item) for item in value]}
    raise SerializationError(f"value {value!r} is not wire-encodable")


def decode_value(doc: Any) -> Any:
    """The inverse of :func:`encode_value` (JSON ``null`` is the SQL null)."""
    if doc is None:
        return NULL
    if isinstance(doc, _SCALARS):
        return doc
    if isinstance(doc, dict) and doc.get("%") == "tuple":
        items = doc.get("items")
        if isinstance(items, list):
            return tuple(decode_value(item) for item in items)
    raise SerializationError(f"malformed value document {doc!r}")


def encode_node(node: Node) -> Any:
    """One graph node as a ``[id, value]`` pair."""
    return [encode_value(node.id), encode_value(node.value)]


def decode_node(doc: Any) -> Node:
    if not isinstance(doc, list) or len(doc) != 2:
        raise SerializationError(f"malformed node document {doc!r}")
    return Node(decode_value(doc[0]), decode_value(doc[1]))


def encode_answers(query: Query, answers: frozenset) -> Dict[str, Any]:
    """One query's raw answer set in its natural shape, deterministically ordered."""
    if query.kind is QueryKind.GXPATH_NODE:
        return {
            "shape": "nodes",
            "nodes": [encode_node(node) for node in sorted(answers, key=Node.sort_key)],
        }
    return {
        "shape": "rows",
        "rows": [
            [encode_node(node) for node in row]
            for row in sorted(answers, key=lambda row: tuple(node.sort_key() for node in row))
        ],
    }


def decode_answers(query: Query, doc: Any) -> FrozenSet:
    """Rebuild the raw answer set :func:`encode_answers` described.

    The shape is driven by *query*'s kind (node sets for GXPath node
    expressions, node tuples otherwise), so the result is exactly what a
    local evaluation would have produced.
    """
    if not isinstance(doc, dict):
        raise SerializationError(f"malformed answers document {doc!r}")
    if query.kind is QueryKind.GXPATH_NODE:
        nodes = doc.get("nodes")
        if not isinstance(nodes, list):
            raise SerializationError(f"malformed node-set answers {doc!r}")
        return frozenset(decode_node(node) for node in nodes)
    rows = doc.get("rows")
    if not isinstance(rows, list):
        raise SerializationError(f"malformed row answers {doc!r}")
    decoded: set = set()
    for row in rows:
        if not isinstance(row, list):
            raise SerializationError(f"malformed answer row {row!r}")
        decoded.add(tuple(decode_node(node) for node in row))
    return frozenset(decoded)


# ----------------------------------------------------------------------
# Graph deltas
# ----------------------------------------------------------------------
#: Wire tag for delta documents; bump on incompatible shape changes.
DELTA_FORMAT = "repro-delta/1"


def encode_delta(delta) -> Dict[str, Any]:
    """One :class:`~repro.deltas.delta.GraphDelta` as a JSON document.

    Node ids and values go through :func:`encode_value`, so a decoded
    delta replays to the same graph state on the other end.
    """
    return {
        "format": DELTA_FORMAT,
        "base_version": delta.base_version,
        "new_version": delta.new_version,
        "added_nodes": [[encode_value(i), encode_value(v)] for i, v in delta.added_nodes],
        "removed_nodes": [[encode_value(i), encode_value(v)] for i, v in delta.removed_nodes],
        "added_edges": [
            [encode_value(s), label, encode_value(t)] for s, label, t in delta.added_edges
        ],
        "removed_edges": [
            [encode_value(s), label, encode_value(t)] for s, label, t in delta.removed_edges
        ],
        "value_changes": [
            [encode_value(i), encode_value(old), encode_value(new)]
            for i, old, new in delta.value_changes
        ],
        "added_labels": list(delta.added_labels),
    }


def decode_delta(doc: Any):
    """The inverse of :func:`encode_delta`."""
    from ..deltas.delta import GraphDelta

    if not isinstance(doc, dict) or doc.get("format") != DELTA_FORMAT:
        raise SerializationError(f"malformed delta document {doc!r}")

    def pairs(key):
        rows = doc.get(key)
        if not isinstance(rows, list):
            raise SerializationError(f"malformed delta field {key!r} in {doc!r}")
        return tuple(
            (decode_value(row[0]), decode_value(row[1]))
            for row in rows
            if isinstance(row, list) and len(row) == 2
        )

    def triples(key, labelled: bool):
        rows = doc.get(key)
        if not isinstance(rows, list):
            raise SerializationError(f"malformed delta field {key!r} in {doc!r}")
        out = []
        for row in rows:
            if not isinstance(row, list) or len(row) != 3:
                raise SerializationError(f"malformed delta row {row!r}")
            if labelled:
                out.append((decode_value(row[0]), str(row[1]), decode_value(row[2])))
            else:
                out.append((decode_value(row[0]), decode_value(row[1]), decode_value(row[2])))
        return tuple(out)

    labels = doc.get("added_labels")
    if not isinstance(labels, list):
        raise SerializationError(f"malformed delta field 'added_labels' in {doc!r}")
    return GraphDelta(
        added_nodes=pairs("added_nodes"),
        removed_nodes=pairs("removed_nodes"),
        added_edges=triples("added_edges", labelled=True),
        removed_edges=triples("removed_edges", labelled=True),
        value_changes=triples("value_changes", labelled=False),
        added_labels=tuple(str(label) for label in labels),
        base_version=doc.get("base_version"),
        new_version=doc.get("new_version"),
    )


def decode_nodes(doc: Any) -> FrozenSet[Node]:
    """A bare node set (the ``targets`` reply shape)."""
    if not isinstance(doc, list):
        raise SerializationError(f"malformed node list {doc!r}")
    return frozenset(decode_node(node) for node in doc)


def encode_nodes(nodes: FrozenSet[Node]) -> Tuple[Any, ...]:
    """A bare node set, deterministically ordered."""
    return tuple(encode_node(node) for node in sorted(nodes, key=Node.sort_key))
