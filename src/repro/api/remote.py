"""The client half of the serving protocol: sessions over a socket.

:func:`connect` dials a :class:`~repro.server.daemon.ReproServer` (TCP
``(host, port)`` tuple or Unix-socket path) and returns a
:class:`RemoteSession` — the remote twin of
:class:`~repro.api.session.GraphSession`, implementing the same
:class:`~repro.api.protocol.SessionProtocol` surface:

>>> with connect(("127.0.0.1", 7464)) as session:   # doctest: +SKIP
...     session.run("knows.knows").count()
...     session.targets("knows", "alice")

Answers travel as the structural JSON of :mod:`repro.api.wire` and are
rebuilt into real :class:`~repro.datagraph.node.Node` objects, so the
:class:`~repro.api.result.Result` a remote run returns behaves exactly
like a local one (``rows`` / ``pairs`` / ``nodes`` / ``holds`` /
``to_json``) — it just carries no graph, so ``holds`` resolves bare ids
against the answer set itself.

One session maps to one connection; requests on it are serialised (the
protocol answers in order), so share a session across threads only with
external locking, or open one session per thread — the server isolates
each connection's caches anyway.  Server-side failures come back as
tagged error frames and re-raise here as the matching
:class:`~repro.exceptions.ReproError` subclass; ``busy`` (admission
backpressure) and ``timeout`` (query deadline) raise
:class:`ServerBusyError` / :class:`QueryTimeoutError` so callers can
retry deliberately.  A draining server answers ``shutting_down`` —
raised here as :class:`ServerShuttingDownError`, both for rejected new
requests and for the unsolicited farewell frame a graceful shutdown
sends instead of hard-closing the socket.
"""

from __future__ import annotations

import itertools
import json
import socket
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from ..datagraph.node import Node, NodeId
from ..engine.cache import CacheStats
from ..exceptions import (
    EvaluationError,
    GraphError,
    ParseError,
    ReproError,
    SerializationError,
    UnknownNodeError,
)
from ..server.protocol import MAX_FRAME_BYTES, ProtocolError, recv_frame, send_frame
from . import wire
from .protocol import SessionProtocol
from .query import Query, QueryLike
from .result import Result

__all__ = [
    "connect",
    "RemoteSession",
    "ServerBusyError",
    "QueryTimeoutError",
    "ServerShuttingDownError",
]

Address = Union[str, Tuple[str, int]]


class ServerBusyError(EvaluationError):
    """The server rejected the request for backpressure; retry later."""


class QueryTimeoutError(EvaluationError):
    """The query exceeded its server-side deadline and was cancelled."""


class ServerShuttingDownError(EvaluationError):
    """The server is draining for shutdown and takes no new work."""


#: Exceptions re-raised from wire error tags (the daemon's inverse map).
_ERROR_CLASSES = {
    "busy": ServerBusyError,
    "timeout": QueryTimeoutError,
    "cancelled": QueryTimeoutError,
    "shutting_down": ServerShuttingDownError,
    "parse": ParseError,
    "unknown_node": UnknownNodeError,
    "graph": GraphError,
    "serialization": SerializationError,
    "evaluation": EvaluationError,
    "protocol": ProtocolError,
}


def connect(
    address: Address,
    timeout: Optional[float] = None,
    connect_timeout: float = 10.0,
) -> "RemoteSession":
    """Open a session against a running server.

    *address* is a ``(host, port)`` tuple for TCP or a filesystem path
    (``str`` / ``Path``) for a Unix-domain socket.  *timeout* becomes the
    session's default per-query deadline in seconds, enforced
    server-side (the server's own configured deadline still caps it).
    """
    if isinstance(address, (str, Path)):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(connect_timeout)
        sock.connect(str(address))
    else:
        host, port = address
        sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(None)  # blocking I/O; the server enforces deadlines
    return RemoteSession(sock, address, default_timeout=timeout)


class RemoteSession(SessionProtocol):
    """A :class:`~repro.api.protocol.SessionProtocol` over one connection.

    Built by :func:`connect`; not constructed directly.  ``close`` (or
    the context manager) releases the socket; every method raises
    :class:`~repro.exceptions.EvaluationError` once closed.
    """

    def __init__(
        self,
        sock: socket.socket,
        address: Address,
        default_timeout: Optional[float] = None,
    ):
        self._sock: Optional[socket.socket] = sock
        self.address = address
        self.default_timeout = default_timeout
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _call(self, op: str, **fields: Any) -> Dict[str, Any]:
        sock = self._sock
        if sock is None:
            raise EvaluationError("remote session is closed")
        rid = next(self._request_ids)
        request = {"id": rid, "op": op}
        for key, value in fields.items():
            if value is not None:
                request[key] = value
        try:
            send_frame(sock, request, MAX_FRAME_BYTES)
            response = recv_frame(sock, MAX_FRAME_BYTES)
        except OSError as error:
            self.close()
            raise EvaluationError(f"server connection lost: {error}") from error
        if response is None:
            self.close()
            raise EvaluationError("server closed the connection")
        if not isinstance(response, dict):
            raise ProtocolError(f"malformed response frame {response!r}")
        if response.get("shutting_down") and response.get("id") != rid:
            # The unsolicited farewell frame of a graceful shutdown,
            # arriving in place of (or ahead of) our reply.
            self.close()
            message = (response.get("error") or {}).get("message", "server is shutting down")
            raise ServerShuttingDownError(message)
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        error_type = error.get("type", "error")
        message = error.get("message", "server error")
        raise _ERROR_CLASSES.get(error_type, ReproError)(message)

    def _query_timeout(self, timeout: Optional[float]) -> Optional[float]:
        return self.default_timeout if timeout is None else timeout

    # ------------------------------------------------------------------
    # SessionProtocol surface
    # ------------------------------------------------------------------
    def run(
        self,
        query: QueryLike,
        null_semantics: bool = False,
        timeout: Optional[float] = None,
    ) -> Result:
        """Evaluate one query on the server; an eager graph-less Result."""
        plan = Query.of(query)
        response = self._call(
            "run",
            query=wire.encode_query(plan),
            null_semantics=null_semantics or None,
            timeout=self._query_timeout(timeout),
        )
        answers = wire.decode_answers(plan, response.get("answers"))
        result = Result(plan, None, lambda: answers)
        result._force()
        return result

    def run_many(
        self,
        queries: Sequence[QueryLike],
        null_semantics: bool = False,
        timeout: Optional[float] = None,
    ) -> List[Result]:
        """Evaluate a batch in one round trip; one Result per query."""
        plans = [Query.of(query) for query in queries]
        response = self._call(
            "run_many",
            queries=[wire.encode_query(plan) for plan in plans],
            null_semantics=null_semantics or None,
            timeout=self._query_timeout(timeout),
        )
        documents = response.get("answers")
        if not isinstance(documents, list) or len(documents) != len(plans):
            raise ProtocolError(f"run_many answered {documents!r} for {len(plans)} queries")
        results: List[Result] = []
        for plan, document in zip(plans, documents):
            answers = wire.decode_answers(plan, document)
            result = Result(plan, None, lambda answers=answers: answers)
            result._force()
            results.append(result)
        return results

    def targets(
        self,
        query: QueryLike,
        source: NodeId,
        null_semantics: bool = False,
        timeout: Optional[float] = None,
    ) -> FrozenSet[Node]:
        """Single-source answers, served from the server's point cache."""
        plan = Query.of(query)
        response = self._call(
            "targets",
            query=wire.encode_query(plan),
            source=wire.encode_value(source),
            null_semantics=null_semantics or None,
            timeout=self._query_timeout(timeout),
        )
        return wire.decode_nodes(response.get("nodes"))

    def explain(self, query: QueryLike) -> str:
        """The server-side execution plan as text."""
        return str(self._call("explain", query=wire.encode_query(Query.of(query)))["text"])

    def stats(self) -> Mapping[str, CacheStats]:
        """This connection's server-side cache counters as CacheStats."""
        caches = self._call("stats").get("caches") or {}
        return {
            name: CacheStats(
                hits=view.get("hits", 0),
                misses=view.get("misses", 0),
                evictions=view.get("evictions", 0),
                size=view.get("size", 0),
                maxsize=view.get("maxsize", 0),
            )
            for name, view in caches.items()
        }

    def save_point_cache(
        self, path: Union[str, Path], max_entries: Optional[int] = None
    ) -> int:
        """Fetch the server session's point-cache snapshot, write it locally."""
        response = self._call("point_cache", max_entries=max_entries)
        payload = response.get("payload")
        if not isinstance(payload, dict):
            raise ProtocolError(f"malformed point-cache payload {payload!r}")
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")
        return len(payload.get("entries", {}))

    # ------------------------------------------------------------------
    # Server management (beyond the SessionProtocol surface)
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self._call("ping").get("pong"))

    def load_graph(self, graph_or_document) -> Dict[str, Any]:
        """Install a graph on the server (a DataGraph or its dict form)."""
        from ..server.daemon import graph_document

        document = (
            graph_or_document
            if isinstance(graph_or_document, dict)
            else graph_document(graph_or_document)
        )
        response = self._call("load_graph", graph=document)
        return {key: response[key] for key in ("name", "num_nodes", "num_edges", "version")}

    def mutate(self, actions: Sequence[Sequence[Any]]) -> Dict[str, Any]:
        """Apply graph mutations, e.g. ``[["add_edge", "a", "r", "b"]]``."""
        encoded = []
        for action in actions:
            verb, *args = action
            if verb in ("add_node", "set_value"):
                encoded.append([verb, wire.encode_value(args[0]), wire.encode_value(args[1])])
            elif verb in ("add_edge", "remove_edge"):
                encoded.append(
                    [verb, wire.encode_value(args[0]), str(args[1]), wire.encode_value(args[2])]
                )
            elif verb == "remove_node":
                encoded.append([verb, wire.encode_value(args[0])])
            else:
                raise SerializationError(f"unknown mutate action {verb!r}")
        response = self._call("mutate", actions=encoded)
        summary = {
            key: response[key] for key in ("applied", "version", "num_nodes", "num_edges")
        }
        if "delta" in response:
            summary["delta"] = response["delta"]
        return summary

    def metrics(self) -> Dict[str, Any]:
        """The server's metrics snapshot (counters, latency, utilization)."""
        return dict(self._call("metrics").get("metrics") or {})

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the connection; idempotent."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - double close
                pass

    @property
    def closed(self) -> bool:
        return self._sock is None

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<RemoteSession {self.address!r} ({state})>"
