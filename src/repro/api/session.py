"""Session-scoped query execution: one graph, one engine, one cache.

:class:`GraphSession` is the public execution API of the library.  It
binds together

* a :class:`~repro.datagraph.graph.DataGraph`,
* an :class:`~repro.engine.engine.EvaluationEngine` (shared compiled-
  automaton caches; defaults to the process-wide engine), and
* an :class:`~repro.api.executors.ExecutionPolicy` (executor choice and
  result-cache behaviour),

and evaluates :class:`~repro.api.query.Query` plans of *every* language
through one pair of entry points: :meth:`GraphSession.run` for a single
query and :meth:`GraphSession.run_many` for a batch.  Both return uniform
lazy :class:`~repro.api.result.Result` objects.

The session owns a **versioned result cache**: answers are keyed on
``(graph.version, query.key, null_semantics)``, and since every
structural mutation bumps the graph's monotonic version counter, a
mutation transparently invalidates all cached answers — stale entries
age out of the LRU without any explicit invalidation hook.  A second,
independent **point-workload cache** memoises single-source answers
(:meth:`GraphSession.targets`) under the same versioning scheme.

When the policy enables an ``intra_query`` mode, large full-relation
RPQs are evaluated through the partitioned drivers of
:mod:`repro.engine.partition` (source-block worker fan-out or the
sharded scatter/gather); the answers — and therefore the cache entries
and :class:`Result` objects — are identical to sequential evaluation.

:func:`session_for` keeps one default session per graph (stored on the
graph, so it lives and dies with it); it backs the deprecated
module-level ``evaluate_*`` shims, which is how legacy call sites
transparently gain caching.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..datagraph.graph import DataGraph
from ..datagraph.node import Node, NodeId
from ..engine.cache import CacheStats, LRUCache
from ..engine.engine import EvaluationEngine, default_engine
from ..engine.partition import GraphPartition
from ..exceptions import EvaluationError
from .executors import ExecutionPolicy, SequentialExecutor
from .query import Query, QueryKind, QueryLike
from .result import Result

__all__ = ["GraphSession", "session_for"]

#: Shared default policy: sequential execution, 1024-entry result cache.
_DEFAULT_POLICY = ExecutionPolicy()


class GraphSession:
    """Uniform, cached execution of queries over one data graph.

    Parameters
    ----------
    graph:
        The data graph the session is bound to.  The graph may keep
        mutating; the versioned cache tracks it automatically.
    engine:
        The evaluation engine to route through; defaults to the shared
        process-wide engine so compiled automata are reused across
        sessions.
    policy:
        The :class:`~repro.api.executors.ExecutionPolicy`; defaults to
        sequential execution with a 1024-entry result cache.

    Examples
    --------
    >>> from repro.datagraph import GraphBuilder
    >>> graph = (GraphBuilder().node("a", 1).node("b", 1)
    ...          .edge("a", "r", "b").build())
    >>> session = GraphSession(graph)
    >>> session.run("r").count()
    1
    >>> session.run(Query.parse("(r)=", dialect="ree")).holds("a", "b")
    True
    """

    def __init__(
        self,
        graph: DataGraph,
        engine: Optional[EvaluationEngine] = None,
        policy: Optional[ExecutionPolicy] = None,
    ):
        self.graph = graph
        self.engine = engine if engine is not None else default_engine()
        self.policy = policy if policy is not None else _DEFAULT_POLICY
        self._executor = self.policy.build_executor()
        self._results: LRUCache[frozenset] = LRUCache(self.policy.result_cache_size)
        # Point-workload cache: single-source answers keyed on
        # (graph.version, query.key, source, null_semantics), so repeated
        # "targets of u" questions neither recompute a BFS nor force the
        # full relation.
        self._points: LRUCache[frozenset] = LRUCache(self.policy.point_cache_size)
        # The sharded mode's edge-cut plan, reused across queries until
        # the graph version (or the shard count) moves on.
        self._partition: Optional[GraphPartition] = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, query: QueryLike, null_semantics: bool = False) -> Result:
        """Evaluate one query, returning a lazy :class:`Result`.

        The answer set is computed on first access of the result (and at
        most once per result); it is served from the session cache when
        the same plan was already evaluated at the current graph version.
        """
        plan = Query.of(query)
        return Result(plan, self.graph, lambda: self._answers(plan, null_semantics))

    def run_many(
        self,
        queries: Sequence[QueryLike],
        null_semantics: bool = False,
        executor=None,
    ) -> List[Result]:
        """Evaluate a batch of queries, one :class:`Result` per query.

        Cache hits are resolved up front; only the distinct misses are
        handed to the executor (the policy's, unless *executor* overrides
        it), so a warm cache short-circuits the fan-out entirely.  Batch
        results are materialised eagerly — laziness would serialise the
        parallel backends.
        """
        plans = [Query.of(query) for query in queries]
        chosen = executor if executor is not None else self._executor
        caching = self.policy.cache_results
        version = self.graph.version

        answers: Dict[Tuple, frozenset] = {}
        misses: List[Query] = []
        for plan in plans:
            key = (version, plan.key, null_semantics)
            if key in answers:
                continue
            if caching and key in self._results:
                answers[key] = self._results.get_or_build(key, lambda: None)  # recorded hit
            else:
                answers[key] = None  # placeholder: scheduled for the executor
                misses.append(plan)
        if misses:
            # A sequential batch honours the intra-query mode (one query
            # at a time, each free to fan its own evaluation out); the
            # parallel executors keep per-query sequential evaluation —
            # nesting a fork pool inside every worker would oversubscribe
            # the CPUs the batch fan-out already owns.
            if self.policy.intra_query != "off" and isinstance(chosen, SequentialExecutor):
                computed = [self._evaluate_plan(plan, null_semantics) for plan in misses]
            else:
                computed = chosen.execute_batch(self.engine, self.graph, misses, null_semantics)
            for plan, answer in zip(misses, computed):
                key = (version, plan.key, null_semantics)
                if caching:
                    answer = self._results.get_or_build(key, lambda answer=answer: answer)
                answers[key] = answer

        results: List[Result] = []
        for plan in plans:
            answer = answers[(version, plan.key, null_semantics)]
            result = Result(plan, self.graph, lambda answer=answer: answer)
            result._force()  # already computed; materialise eagerly
            results.append(result)
        return results

    def holds(self, query: QueryLike, *nodes: object, null_semantics: bool = False) -> bool:
        """Membership shortcut: ``session.run(query).holds(*nodes)``.

        For binary RPQs whose full relation is not already cached, the
        question is answered from the point-workload cache (one
        single-source BFS) instead of materialising the whole relation.
        """
        plan = Query.of(query)
        if plan.kind is QueryKind.RPQ and len(nodes) == 2:
            full_key = (self.graph.version, plan.key, null_semantics)
            if not (self.policy.cache_results and full_key in self._results):
                source, target = nodes
                source_node = source if isinstance(source, Node) else self.graph.node(source)
                target_node = target if isinstance(target, Node) else self.graph.node(target)
                if (
                    self.graph.get_node(source_node.id) != source_node
                    or self.graph.get_node(target_node.id) != target_node
                ):
                    return False
                return target_node in self.targets(
                    plan, source_node.id, null_semantics=null_semantics
                )
        return self.run(plan, null_semantics=null_semantics).holds(*nodes)

    def targets(
        self, query: QueryLike, source: NodeId, null_semantics: bool = False
    ) -> FrozenSet[Node]:
        """All nodes ``v`` with ``(source, v)`` in the query's answer relation.

        The point-workload entry point: answers are memoised in their own
        LRU keyed on ``(graph.version, query.key, source)``, so
        single-source questions neither recompute per call nor piggyback
        on (and pay for) full-relation entries.  RPQs run one indexed
        product BFS from *source*; other binary plans filter their
        (session-cached) full relation.
        """
        plan = Query.of(query)
        if plan.arity != 2:
            raise EvaluationError(
                f"{plan} has arity {plan.arity}; .targets() needs a binary query"
            )
        self.graph.node(source)  # raise UnknownNodeError early
        if not self.policy.cache_results:
            return self._targets_of(plan, source, null_semantics)
        key = (self.graph.version, plan.key, source, null_semantics)
        return self._points.get_or_build(
            key, lambda: self._targets_of(plan, source, null_semantics)
        )

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _answers(self, plan: Query, null_semantics: bool) -> frozenset:
        if not self.policy.cache_results:
            return self._evaluate_plan(plan, null_semantics)
        key = (self.graph.version, plan.key, null_semantics)
        return self._results.get_or_build(
            key, lambda: self._evaluate_plan(plan, null_semantics)
        )

    def _evaluate_plan(self, plan: Query, null_semantics: bool) -> frozenset:
        """Evaluate one plan, honouring the policy's intra-query mode.

        Large full-relation RPQs are dispatched through the partitioned
        drivers of :mod:`repro.engine.partition`; every other plan (and
        every graph below the threshold) takes the sequential engine.
        The answers are identical either way, so they share one cache
        entry and the switch is invisible to callers.
        """
        policy = self.policy
        if (
            policy.intra_query != "off"
            and plan.kind is QueryKind.RPQ
            and self.graph.num_nodes >= policy.intra_query_threshold
        ):
            return self.engine.evaluate_rpq_partitioned(
                self.graph,
                plan.plan,
                mode=policy.intra_query,
                workers=policy.max_workers,
                partition=self._shard_partition() if policy.intra_query == "sharded" else None,
            )
        return plan._evaluate(self.engine, self.graph, null_semantics)

    def _shard_partition(self) -> GraphPartition:
        """The session's edge-cut plan, rebuilt only when the graph moves on."""
        index = self.graph.label_index()
        num_shards = self.policy.num_shards or min(os.cpu_count() or 1, 8)
        cached = self._partition
        if cached is None or cached.version != index.version or cached.num_shards != num_shards:
            cached = GraphPartition.build(index, max(1, num_shards))
            self._partition = cached
        return cached

    def _targets_of(self, plan: Query, source: NodeId, null_semantics: bool) -> frozenset:
        full_key = (self.graph.version, plan.key, null_semantics)
        if self.policy.cache_results and full_key in self._results:
            # The full relation is already materialised — filter it
            # rather than running a fresh traversal.
            relation = self._results.get_or_build(full_key, lambda: frozenset())
            return frozenset(target for start, target in relation if start.id == source)
        if plan.kind is QueryKind.RPQ:
            return self.engine.evaluate_rpq_from(self.graph, plan.plan, source)
        answers = self._answers(plan, null_semantics)
        return frozenset(target for start, target in answers if start.id == source)

    def stats(self) -> Mapping[str, CacheStats]:
        """Cache snapshots: the session's ``results`` and ``points`` caches
        plus the engine's caches."""
        stats = {"results": self._results.stats(), "points": self._points.stats()}
        stats.update(self.engine.stats())
        return stats

    def clear_cache(self) -> None:
        """Drop all cached answer sets (compiled automata stay in the engine)."""
        self._results.clear()
        self._points.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self._results.stats()
        return (
            f"<GraphSession graph={self.graph.name or id(self.graph):} "
            f"version={self.graph.version} executor={self._executor.name} "
            f"results={snapshot.size}/{snapshot.maxsize} ({snapshot.hits} hits)>"
        )


# ----------------------------------------------------------------------
# Default sessions (behind the deprecated module-level functions)
# ----------------------------------------------------------------------
def session_for(graph: DataGraph) -> GraphSession:
    """The default (sequential, caching) session of a graph.

    One session is kept per graph, stored on the graph itself, so its
    lifetime is exactly the graph's — there is no global registry to
    extend a graph's lifetime or leak sessions.  The deprecated
    module-level ``evaluate_*`` functions delegate here, which is how
    legacy call sites inherit result caching for free.  A session built
    against a replaced process-wide engine is rebuilt transparently.
    """
    session = graph._api_session
    if session is None or session.engine is not default_engine():
        session = GraphSession(graph)
        graph._api_session = session
    return session
