"""Session-scoped query execution: one graph, one engine, one cache.

:class:`GraphSession` is the public execution API of the library.  It
binds together

* a :class:`~repro.datagraph.graph.DataGraph`,
* an :class:`~repro.engine.engine.EvaluationEngine` (shared compiled-
  automaton caches; defaults to the process-wide engine), and
* an :class:`~repro.api.executors.ExecutionPolicy` (executor choice and
  result-cache behaviour),

and evaluates :class:`~repro.api.query.Query` plans of *every* language
through one pair of entry points: :meth:`GraphSession.run` for a single
query and :meth:`GraphSession.run_many` for a batch.  Both return uniform
lazy :class:`~repro.api.result.Result` objects.

The session owns a **versioned result cache**: answers are keyed on
``(graph.version, query.key, null_semantics)``, and since every
structural mutation bumps the graph's monotonic version counter, a
mutation transparently invalidates all cached answers — stale entries
age out of the LRU without any explicit invalidation hook.  A second,
independent **point-workload cache** memoises single-source answers
(:meth:`GraphSession.targets`) under the same versioning scheme.

When the policy enables an ``intra_query`` mode, large full-relation
RPQs are evaluated through the partitioned drivers of
:mod:`repro.engine.partition` (source-block worker fan-out or the
sharded scatter/gather); the answers — and therefore the cache entries
and :class:`Result` objects — are identical to sequential evaluation.

:func:`session_for` keeps one default session per graph (stored on the
graph, so it lives and dies with it); it backs the deprecated
module-level ``evaluate_*`` shims, which is how legacy call sites
transparently gain caching.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from ..datagraph.graph import DataGraph
from ..datagraph.node import Node, NodeId
from ..engine.cache import CacheStats, LRUCache
from ..engine.engine import EvaluationEngine, default_engine
from ..engine.partition import GraphPartition
from ..exceptions import EvaluationError
from .executors import ExecutionPolicy, SequentialExecutor
from .protocol import SessionProtocol
from .query import Query, QueryKind, QueryLike
from .result import Result

__all__ = ["GraphSession", "session_for"]

#: A server-provided hook evaluating one full-relation plan over a
#: persistent shard-worker pool: ``(plan, null_semantics) -> answers``,
#: or ``None`` to decline (pool busy / unsupported kind), in which case
#: the session falls back to its own drivers.  Runners that additionally
#: accept a ``sources`` keyword (a set of node ids restricting the BFS
#: seeds) advertise it with a truthy ``supports_sources`` attribute —
#: sessions then offer point queries (``.targets``) to the pool as
#: seeded shard rounds instead of materialising the full relation.
ShardRunner = Callable[[Query, bool], Optional[frozenset]]

#: Shared default policy: sequential execution, 1024-entry result cache.
_DEFAULT_POLICY = ExecutionPolicy()


class GraphSession(SessionProtocol):
    """Uniform, cached execution of queries over one data graph.

    The in-process implementation of
    :class:`~repro.api.protocol.SessionProtocol` (its remote twin is
    :class:`~repro.api.remote.RemoteSession`).

    Parameters
    ----------
    graph:
        The data graph the session is bound to.  The graph may keep
        mutating; the versioned cache tracks it automatically.
    engine:
        The evaluation engine to route through; defaults to the shared
        process-wide engine so compiled automata are reused across
        sessions.
    policy:
        The :class:`~repro.api.executors.ExecutionPolicy`; defaults to
        sequential execution with a 1024-entry result cache.
    shard_runner:
        Server hook: when set and the policy's intra-query mode is
        ``"sharded"``, eligible full-relation plans are offered to this
        callable first — the :mod:`repro.server` daemon passes its
        persistent shard-worker pool here so sessions share one pool
        instead of forking their own.  A ``None`` return falls back to
        the session's own drivers; answers are identical either way.

    Examples
    --------
    >>> from repro.datagraph import GraphBuilder
    >>> graph = (GraphBuilder().node("a", 1).node("b", 1)
    ...          .edge("a", "r", "b").build())
    >>> session = GraphSession(graph)
    >>> session.run("r").count()
    1
    >>> session.run(Query.parse("(r)=", dialect="ree")).holds("a", "b")
    True
    """

    def __init__(
        self,
        graph: DataGraph,
        engine: Optional[EvaluationEngine] = None,
        policy: Optional[ExecutionPolicy] = None,
        shard_runner: Optional[ShardRunner] = None,
        repair_listener: Optional[Callable[[str], None]] = None,
    ):
        self.graph = graph
        self.engine = engine if engine is not None else default_engine()
        self.policy = policy if policy is not None else _DEFAULT_POLICY
        self.shard_runner = shard_runner
        # Observer hook for the delta-repair path: called with "repair"
        # or "recompute" whenever a cached answer survives (or fails to
        # survive) a mutation; the server wires its metrics counters here.
        self.repair_listener = repair_listener
        self._executor = self.policy.build_executor()
        self._results: LRUCache[frozenset] = LRUCache(self.policy.result_cache_size)
        # Point-workload cache: single-source answers keyed on
        # (graph.version, query.key, source, null_semantics), so repeated
        # "targets of u" questions neither recompute a BFS nor force the
        # full relation.
        self._points: LRUCache[frozenset] = LRUCache(self.policy.point_cache_size)
        # The sharded mode's edge-cut plan, reused across queries until
        # the graph version (or the shard count) moves on.
        self._partition: Optional[GraphPartition] = None
        # CRPQ logical plans, cached alongside the versioned result
        # cache and keyed the same way ((graph.version, query.key)):
        # replanning is cheap but not free, and a stable plan object
        # also keeps `explain` output consistent with what actually ran.
        self._crpq_plans: LRUCache = LRUCache(self.policy.result_cache_size)
        # Point answers restored from a persistent snapshot
        # (load_point_cache): string key -> target node ids.  Consulted
        # on point-cache misses while the graph stays at the snapshot's
        # version, so a restarted service resumes warm.
        self._point_snapshot: Dict[str, Tuple[NodeId, ...]] = {}
        self._point_snapshot_version: Optional[int] = None
        # Delta-repair lineage: the last graph version each (plan, null)
        # pair was answered at, so a later miss can locate its
        # previous-version cache entry and try to repair it across the
        # journaled deltas instead of recomputing.
        self._result_history: Dict[Tuple, int] = {}
        # Plan-retention lineage: the graph version each CRPQ plan key
        # was last planned (or retained) at, so a plan-cache miss after
        # a delta can look up its previous-version plan and keep it when
        # the delta touched none of the plan's labels.
        self._crpq_plan_history: Dict[str, int] = {}
        # Last adaptive-execution trace per (plan key, null semantics):
        # estimate-vs-observed join cardinalities, re-plan and
        # distributed-join counters, surfaced by `explain`.
        self._plan_traces: Dict[Tuple, object] = {}
        self._maintenance = {"repairs": 0, "recomputes": 0, "plans_retained": 0}
        self._lineage: deque = deque(maxlen=32)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, query: QueryLike, null_semantics: bool = False) -> Result:
        """Evaluate one query, returning a lazy :class:`Result`.

        The answer set is computed on first access of the result (and at
        most once per result); it is served from the session cache when
        the same plan was already evaluated at the current graph version.
        """
        plan = Query.of(query)
        return Result(plan, self.graph, lambda: self._answers(plan, null_semantics))

    def run_many(
        self,
        queries: Sequence[QueryLike],
        null_semantics: bool = False,
        executor=None,
    ) -> List[Result]:
        """Evaluate a batch of queries, one :class:`Result` per query.

        Cache hits are resolved up front; only the distinct misses are
        handed to the executor (the policy's, unless *executor* overrides
        it), so a warm cache short-circuits the fan-out entirely.  Batch
        results are materialised eagerly — laziness would serialise the
        parallel backends.
        """
        plans = [Query.of(query) for query in queries]
        chosen = executor if executor is not None else self._executor
        caching = self.policy.cache_results
        version = self.graph.version

        answers: Dict[Tuple, frozenset] = {}
        misses: List[Query] = []
        for plan in plans:
            key = (version, plan.key, null_semantics)
            if key in answers:
                continue
            if caching and key in self._results:
                answers[key] = self._results.get_or_build(key, lambda: None)  # recorded hit
                continue
            repaired = self._repaired_answer(plan, null_semantics, version) if caching else None
            if repaired is not None:
                self._result_history[(plan.key, null_semantics)] = version
                answers[key] = self._results.get_or_build(key, lambda r=repaired: r)
            else:
                answers[key] = None  # placeholder: scheduled for the executor
                misses.append(plan)
        if misses:
            # A sequential batch honours the intra-query mode (one query
            # at a time, each free to fan its own evaluation out); the
            # parallel executors keep per-query sequential evaluation —
            # nesting a fork pool inside every worker would oversubscribe
            # the CPUs the batch fan-out already owns.
            if self.policy.intra_query != "off" and isinstance(chosen, SequentialExecutor):
                computed = [self._evaluate_plan(plan, null_semantics) for plan in misses]
            else:
                computed = chosen.execute_batch(self.engine, self.graph, misses, null_semantics)
            for plan, answer in zip(misses, computed):
                key = (version, plan.key, null_semantics)
                if caching:
                    answer = self._results.get_or_build(key, lambda answer=answer: answer)
                    self._result_history[(plan.key, null_semantics)] = version
                answers[key] = answer

        results: List[Result] = []
        for plan in plans:
            answer = answers[(version, plan.key, null_semantics)]
            result = Result(plan, self.graph, lambda answer=answer: answer)
            result._force()  # already computed; materialise eagerly
            results.append(result)
        return results

    def holds(self, query: QueryLike, *nodes: object, null_semantics: bool = False) -> bool:
        """Membership shortcut: ``session.run(query).holds(*nodes)``.

        For binary RPQs whose full relation is not already cached, the
        question is answered from the point-workload cache (one
        single-source BFS) instead of materialising the whole relation.
        """
        plan = Query.of(query)
        if plan.kind is QueryKind.RPQ and len(nodes) == 2:
            full_key = (self.graph.version, plan.key, null_semantics)
            if not (self.policy.cache_results and full_key in self._results):
                source, target = nodes
                source_node = source if isinstance(source, Node) else self.graph.node(source)
                target_node = target if isinstance(target, Node) else self.graph.node(target)
                if (
                    self.graph.get_node(source_node.id) != source_node
                    or self.graph.get_node(target_node.id) != target_node
                ):
                    return False
                if (
                    self.policy.intra_query == "sharded"
                    and self.graph.num_nodes >= self.policy.intra_query_threshold
                    and self.shard_runner is not None
                    and getattr(self.shard_runner, "supports_targets", False)
                ):
                    # Point lookup through the persistent worker pool:
                    # the workers decode under a single-target mask, so
                    # only the (at most one) matching pair crosses the
                    # pipes instead of the full relation.  None (pool
                    # busy) falls through to the local point path.
                    answer = self.shard_runner(
                        plan,
                        null_semantics,
                        sources={source_node.id},
                        targets={target_node.id},
                    )
                    if answer is not None:
                        return (source_node, target_node) in answer
                return target_node in self.targets(
                    plan, source_node.id, null_semantics=null_semantics
                )
        return self.run(plan, null_semantics=null_semantics).holds(*nodes)

    def targets(
        self, query: QueryLike, source: NodeId, null_semantics: bool = False
    ) -> FrozenSet[Node]:
        """All nodes ``v`` with ``(source, v)`` in the query's answer relation.

        The point-workload entry point: answers are memoised in their own
        LRU keyed on ``(graph.version, query.key, source)``, so
        single-source questions neither recompute per call nor piggyback
        on (and pay for) full-relation entries.  RPQs run one indexed
        product BFS from *source*; other binary plans filter their
        (session-cached) full relation.
        """
        plan = Query.of(query)
        if plan.arity != 2:
            raise EvaluationError(
                f"{plan} has arity {plan.arity}; .targets() needs a binary query"
            )
        self.graph.node(source)  # raise UnknownNodeError early
        if not self.policy.cache_results:
            return self._targets_of(plan, source, null_semantics)
        key = (self.graph.version, plan.key, source, null_semantics)
        return self._points.get_or_build(
            key, lambda: self._point_answer(plan, source, null_semantics)
        )

    # ------------------------------------------------------------------
    # Persistent point-cache snapshots
    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot_key(plan_key: Tuple, source: NodeId, null_semantics: bool) -> str:
        """The stable textual key a point answer is stored under on disk."""
        kind_value, plan = plan_key
        return f"{kind_value}:{plan}|source={source!r}|null={null_semantics}"

    def _graph_fingerprint(self, exclude=None) -> str:
        """A content digest of the session graph (nodes, values, edges).

        The version counter alone cannot distinguish two different graphs
        that happen to have mutated the same number of times, so
        snapshots carry this digest too.  Node ids and values are
        rendered with ``repr`` — every id the graph accepts is hashable
        and therefore ``repr``-able.

        With *exclude* (an insert-only :class:`GraphDelta`), the nodes
        and edges that delta added are skipped, reproducing the digest of
        the delta's **base** graph — which is how a snapshot taken before
        a journaled insert is verified against the current graph.
        """
        graph = self.graph
        skip_nodes = frozenset()
        skip_edges = frozenset()
        if exclude is not None:
            skip_nodes = frozenset(node_id for node_id, _value in exclude.added_nodes)
            skip_edges = frozenset(exclude.added_edges)
        digest = hashlib.sha256()
        for node in sorted(graph.nodes, key=lambda node: repr(node.id)):
            if node.id in skip_nodes:
                continue
            digest.update(f"n:{node.id!r}={node.value!r};".encode("utf-8"))
        for source, label, target in sorted(
            graph.edges, key=lambda edge: (repr(edge[0].id), edge[1], repr(edge[2].id))
        ):
            if (source.id, label, target.id) in skip_edges:
                continue
            digest.update(f"e:{source.id!r}-{label}->{target.id!r};".encode("utf-8"))
        return digest.hexdigest()

    def _point_answer(self, plan: Query, source: NodeId, null_semantics: bool) -> frozenset:
        """A point-cache miss: served from the loaded snapshot when still
        valid for the current graph version, else computed."""
        if self._point_snapshot and self._point_snapshot_version == self.graph.version:
            ids = self._point_snapshot.get(
                self._snapshot_key(plan.key, source, null_semantics)
            )
            if ids is not None:
                node = self.graph.node
                return frozenset(node(target) for target in ids)
        return self._targets_of(plan, source, null_semantics)

    def save_point_cache(self, path: Union[str, Path], max_entries: Optional[int] = None) -> int:
        """Write the point-workload cache to *path* as a JSON snapshot.

        Entries are keyed on ``(graph.version, query.key, source)``; only
        answers computed at the **current** graph version are saved (plus
        any still-valid entries of a previously loaded snapshot), so the
        file always describes exactly one graph version — stamped with a
        content fingerprint — and :meth:`load_point_cache` can reject
        mismatches outright.  Target node ids are stored as ``repr``
        strings (ids are only required to be hashable, not JSON-native)
        and resolved against the live graph on load.  Returns the number
        of entries written.

        With *max_entries* given the snapshot is **compacted**: only the
        most-recently-used entries are kept, in LRU order — loaded
        snapshot entries that have not been touched this session rank
        oldest, live cache entries rank by the point cache's own
        recency.  Compacted snapshots load like any other; lookups the
        compaction dropped are simply recomputed on demand.
        """
        payload = self.point_cache_payload(max_entries=max_entries)
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")
        return len(payload["entries"])

    def point_cache_payload(self, max_entries: Optional[int] = None) -> Dict:
        """The point-cache snapshot as a JSON-compatible dictionary.

        This is :meth:`save_point_cache` without the file write — the
        server's ``point_cache`` operation ships this payload over the
        wire so a :class:`~repro.api.remote.RemoteSession` can write the
        snapshot client-side.
        """
        if max_entries is not None and max_entries < 0:
            raise EvaluationError(f"max_entries must be non-negative, got {max_entries}")
        version = self.graph.version
        # Ordered oldest-first so compaction can trim from the front.
        entries: Dict[str, List[str]] = {}
        if self._point_snapshot and self._point_snapshot_version == version:
            entries.update(
                {key: [repr(target) for target in ids] for key, ids in self._point_snapshot.items()}
            )
        for key, answer in self._points.items():  # LRU first, MRU last
            entry_version, plan_key, source, null_semantics = key
            if entry_version != version:
                continue  # stale LRU leftovers from before a mutation
            snapshot_key = self._snapshot_key(plan_key, source, null_semantics)
            entries.pop(snapshot_key, None)  # re-rank by live recency
            entries[snapshot_key] = sorted(repr(node.id) for node in answer)
        compacted = max_entries is not None and len(entries) > max_entries
        if compacted:
            keep = list(entries)[len(entries) - max_entries :]
            entries = {key: entries[key] for key in keep}
        return {
            "format": "repro-point-cache/1",
            "graph_version": version,
            "graph_name": self.graph.name,
            "graph_fingerprint": self._graph_fingerprint(),
            "compacted": compacted,
            "entries": entries,
        }

    def load_point_cache(self, path: Union[str, Path]) -> int:
        """Restore a :meth:`save_point_cache` snapshot from *path*.

        The snapshot must describe the session graph: either its
        **current** version (exact match, every entry restored), or an
        **earlier** version reachable through the graph journal's
        insert-only deltas — in which case the snapshot is *repaired* on
        load: entries whose source could reach any touched node (and so
        might have gained targets) are dropped, the rest remain valid
        and are restored.  Any other version mismatch, a lineage with
        removals, or a content-fingerprint mismatch is rejected with an
        :class:`EvaluationError`.  Loaded answers satisfy subsequent
        :meth:`targets` calls without recomputation until the graph
        mutates again.  Compacted snapshots
        (``save_point_cache(..., max_entries=...)``) load the same way —
        they just carry fewer entries, and dropped lookups recompute.
        Returns the number of entries restored.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or payload.get("format") != "repro-point-cache/1":
            raise EvaluationError(f"{path} is not a point-cache snapshot")
        version = payload.get("graph_version")
        current = self.graph.version
        delta = None
        if version != current:
            delta = (
                self.graph.journal.composed(version, current)
                if isinstance(version, int)
                else None
            )
            if delta is None or not delta.insert_only:
                raise EvaluationError(
                    f"point-cache snapshot was taken at graph version {version}, "
                    f"but the session graph is at version {current} and the "
                    f"journal holds no insert-only delta chain between them"
                )
        fingerprint = payload.get("graph_fingerprint")
        if fingerprint != self._graph_fingerprint(exclude=delta):
            raise EvaluationError(
                "point-cache snapshot was taken on a different graph "
                "(content fingerprint mismatch)"
            )
        # Stored ids are repr strings; resolve them against the live
        # graph's ids so int / str / tuple ids all round-trip.
        by_repr = {repr(node_id): node_id for node_id in self.graph.node_ids}
        try:
            entries = {
                key: tuple(by_repr[target] for target in ids)
                for key, ids in payload.get("entries", {}).items()
            }
        except KeyError as error:
            raise EvaluationError(
                f"point-cache snapshot names a node id {error.args[0]} the graph lacks"
            ) from None
        if delta is not None:
            entries = self._surviving_point_entries(entries, delta)
        self._point_snapshot = entries
        self._point_snapshot_version = current
        return len(self._point_snapshot)

    def _surviving_point_entries(
        self, entries: Dict[str, Tuple[NodeId, ...]], delta
    ) -> Dict[str, Tuple[NodeId, ...]]:
        """The snapshot entries still exact after an insert-only *delta*.

        A point answer ``targets(source)`` can only grow if a witness
        path from *source* traverses added structure, i.e. if *source*
        can reach a touched node — so entries whose source lies outside
        the backward closure of the touched nodes are provably unchanged.
        The check is fail-safe: entries of non-monotone kinds, or whose
        key cannot be parsed back to a known node id, are dropped (they
        recompute on demand rather than risk serving a stale answer).
        """
        from ..deltas.repair import REPAIRABLE_KINDS, backward_touched_closure

        index = self.graph.label_index()
        stale = backward_touched_closure(index, delta.touched_nodes)
        stale_reprs = {repr(node_id) for node_id in stale}
        known_reprs = {repr(node_id) for node_id in self.graph.node_ids}
        survivors: Dict[str, Tuple[NodeId, ...]] = {}
        for key, ids in entries.items():
            kind = key.split(":", 1)[0]
            if kind not in REPAIRABLE_KINDS:
                continue
            head, separator, _null = key.rpartition("|null=")
            if not separator or "|source=" not in head:
                continue
            source_repr = head.rsplit("|source=", 1)[1]
            if source_repr not in known_reprs or source_repr in stale_reprs:
                continue
            survivors[key] = ids
        return survivors

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _answers(self, plan: Query, null_semantics: bool) -> frozenset:
        if not self.policy.cache_results:
            return self._evaluate_plan(plan, null_semantics)
        version = self.graph.version
        key = (version, plan.key, null_semantics)
        if key in self._results:
            return self._results.get_or_build(key, frozenset)  # recorded hit
        answer = self._repaired_answer(plan, null_semantics, version)
        if answer is None:
            answer = self._evaluate_plan(plan, null_semantics)
        self._result_history[(plan.key, null_semantics)] = version
        return self._results.get_or_build(key, lambda: answer)

    def _repaired_answer(
        self, plan: Query, null_semantics: bool, version: int
    ) -> Optional[frozenset]:
        """Repair the previous version's cached answer across journaled
        deltas, or ``None`` when the session must evaluate afresh.

        Repair applies when (a) the policy enables it, (b) this plan was
        answered at an earlier version whose entry is still in the LRU,
        (c) the journal holds an unbroken delta chain from that version
        to the current one, and (d) the composed delta is insert-only on
        a per-source-monotone dialect with a small touched closure
        (:func:`repro.deltas.repair.repair_full_relation`).  Failures of
        (d) with a known lineage count as recomputes; the listener and
        counters let servers report repair effectiveness.
        """
        if not self.policy.delta_repair:
            return None
        history_key = (plan.key, null_semantics)
        previous = self._result_history.get(history_key)
        if previous is None or previous >= version:
            return None
        cached = self._results.peek((previous, plan.key, null_semantics))
        if cached is None:
            return None
        composed = self.graph.journal.composed(previous, version)
        if composed is None:
            # Broken lineage: a single-op mutation or journal eviction.
            self._record_maintenance("recompute")
            return None
        from ..deltas.repair import repair_full_relation

        repaired = repair_full_relation(
            self.engine, self.graph, plan, null_semantics, cached, composed
        )
        if repaired is None:
            self._record_maintenance("recompute")
            return None
        self._record_maintenance("repair")
        kind_value, plan_text = plan.key
        self._lineage.append(
            {
                "plan": f"{kind_value}:{plan_text}",
                "base_version": previous,
                "new_version": version,
                "delta_digest": composed.digest,
                "delta_size": composed.size,
            }
        )
        return repaired

    def _record_maintenance(self, event: str) -> None:
        self._maintenance["repairs" if event == "repair" else "recomputes"] += 1
        listener = self.repair_listener
        if listener is not None:
            listener(event)

    def maintenance_stats(self) -> Dict:
        """Delta-repair effectiveness: repair/recompute counts and the
        most recent repair lineages ``(base → new, delta digest)``."""
        return {
            "repairs": self._maintenance["repairs"],
            "recomputes": self._maintenance["recomputes"],
            "plans_retained": self._maintenance["plans_retained"],
            "lineage": list(self._lineage),
        }

    def _crpq_plan(self, plan: Query):
        """The cached planner output for a CRPQ plan at the current version.

        Plan-cache entries are version-keyed, so a graph mutation is an
        implicit miss — but a logical plan only depends on the statistics
        of the labels it scans.  On a miss at the current version, when
        the journal holds a delta chain from the version this query was
        last planned at and that composed delta **touches none of the
        plan's labels**, the previous plan is retained under the new
        version instead of replanning (counted by ``plans_retained`` in
        :meth:`maintenance_stats`).  An insert-only delta on label ``a``
        therefore no longer evicts the plans of queries that never scan
        ``a``.
        """
        from ..planner import plan_crpq

        version = self.graph.version
        key = (version, plan.key)
        if key not in self._crpq_plans:
            retained = self._retained_plan(plan, version)
            if retained is not None:
                self._crpq_plan_history[plan.key] = version
                return self._crpq_plans.get_or_build(key, lambda: retained)
        planned = self._crpq_plans.get_or_build(
            key,
            lambda: plan_crpq(
                plan.plan, self.graph.label_index(), self._statistics()
            ),
        )
        self._crpq_plan_history[plan.key] = version
        return planned

    def _retained_plan(self, plan: Query, version: int):
        """The previous version's plan when the deltas since cannot have
        changed it, else ``None``."""
        previous = self._crpq_plan_history.get(plan.key)
        if previous is None or previous == version:
            return None
        cached = self._crpq_plans.peek((previous, plan.key))
        if cached is None:
            return None
        composed = self.graph.journal.composed(previous, version)
        if composed is None:
            return None
        if not composed.touched_labels.isdisjoint(plan.labels()):
            return None
        self._maintenance["plans_retained"] += 1
        return cached

    def _statistics(self):
        """The graph's planner-v2 statistics catalogue (cached on the
        graph, invalidated per touched label from the delta journal)."""
        from ..planner import graph_statistics

        return graph_statistics(self.graph)

    def _route(self, plan: Query):
        """The cost router's decision for *plan* under this session's
        policy (knobs act as overrides, see
        :func:`repro.planner.route_query`)."""
        from ..planner import route_query

        planned = self._crpq_plan(plan) if plan.kind is QueryKind.CRPQ else None
        return route_query(
            plan,
            self.graph,
            policy=self.policy,
            stats=self._statistics(),
            pooled=self.shard_runner is not None,
            planned=planned,
        )

    def explain(self, query: QueryLike) -> str:
        """The execution plan of *query* on this session's graph.

        The first line is the cost router's chosen route (strategy,
        estimate, reason).  For CRPQs the body is the planner's
        cost-ordered join plan — the exact (cached) plan object
        :meth:`run` executes at the current graph version — followed,
        once the query has run, by the adaptive executor's
        estimate-vs-observed trace; other kinds describe their fixed
        strategy.  See :meth:`repro.api.query.Query.explain`.
        """
        plan = Query.of(query)
        header = self._route(plan).describe()
        if plan.kind is QueryKind.CRPQ:
            body = self._crpq_plan(plan).explain()
            trace = self._plan_traces.get((plan.key, False))
            if trace is None:
                trace = self._plan_traces.get((plan.key, True))
            if trace is not None:
                body += "\n" + trace.describe()
            return header + "\n" + body
        return header + "\n" + plan.explain(self.graph)

    def _evaluate_plan(self, plan: Query, null_semantics: bool) -> frozenset:
        """Evaluate one plan, honouring the policy's intra-query mode.

        CRPQs always take the planner (parse → plan → execute, with the
        plan cached per graph version); when the intra-query mode is on
        and the graph is big enough, each atom scan additionally runs
        through the partitioned drivers.  Large full-relation queries of
        the other kinds are dispatched through the same drivers of
        :mod:`repro.engine.partition`: plain RPQs over the NFA product,
        data RPQs (REE/REM) over the register product, and GXPath
        expressions route their axis-star closures through the drivers.
        Every other plan (and every graph below the threshold) takes the
        sequential engine.  The answers are identical either way, so
        they share one cache entry and the switch is invisible to
        callers.
        """
        policy = self.policy
        route = self._route(plan)
        mode = route.mode
        intra_query = mode != "off"
        if plan.kind is QueryKind.CRPQ:
            from ..planner import PlanTrace, execute_plan

            atom_mode = mode
            trace = PlanTrace()
            answer = execute_plan(
                self._crpq_plan(plan),
                self.graph,
                engine=self.engine,
                null_semantics=null_semantics,
                mode=atom_mode,
                workers=policy.max_workers,
                shards=policy.num_shards,
                partition=self._shard_partition() if atom_mode == "sharded" else None,
                processes=policy.sharded_processes,
                backend=policy.backend,
                relation_cache=self._cached_relation_lookup(null_semantics),
                join_runner=getattr(self.shard_runner, "hash_join", None),
                trace=trace,
            )
            if len(self._plan_traces) >= 128:  # bounded like the LRU caches
                self._plan_traces.clear()
            self._plan_traces[(plan.key, null_semantics)] = trace
            return answer
        if intra_query:
            if (
                mode == "sharded"
                and self.shard_runner is not None
                and plan.kind in (QueryKind.RPQ, QueryKind.DATA_RPQ)
            ):
                # Offer the plan to the server's persistent worker pool
                # first; a None return (pool busy, pool gone) falls
                # through to the session's own sharded driver.
                answer = self.shard_runner(plan, null_semantics)
                if answer is not None:
                    return answer
            partition = self._shard_partition() if mode == "sharded" else None
            if plan.kind is QueryKind.RPQ:
                return self.engine.evaluate_rpq_partitioned(
                    self.graph,
                    plan.plan,
                    mode=mode,
                    workers=policy.max_workers,
                    partition=partition,
                    processes=policy.sharded_processes,
                )
            if plan.kind is QueryKind.DATA_RPQ:
                return self.engine.evaluate_data_rpq_partitioned(
                    self.graph,
                    plan.plan,
                    mode=mode,
                    null_semantics=null_semantics,
                    workers=policy.max_workers,
                    partition=partition,
                    processes=policy.sharded_processes,
                )
            if plan.kind in (QueryKind.GXPATH_NODE, QueryKind.GXPATH_PATH):
                from ..gxpath import evaluation as gxpath_evaluation

                evaluate = (
                    gxpath_evaluation.evaluate_node
                    if plan.kind is QueryKind.GXPATH_NODE
                    else gxpath_evaluation.evaluate_path
                )
                return evaluate(
                    self.graph,
                    plan.plan,
                    null_semantics,
                    closure_mode=mode,
                    num_workers=policy.max_workers,
                    num_shards=policy.num_shards,
                    partition=partition,
                    processes=policy.sharded_processes,
                )
        if policy.backend != "auto":
            # Only pass the knob when it deviates from the default, so
            # Query subclasses (and tests) overriding the historical
            # 4-argument ``_evaluate`` keep working under default policies.
            return plan._evaluate(
                self.engine, self.graph, null_semantics, backend=policy.backend
            )
        return plan._evaluate(self.engine, self.graph, null_semantics)

    def _cached_relation_lookup(self, null_semantics: bool):
        """A relation-cache hook for the adaptive executor: map a CRPQ
        atom to its previously materialised full relation (the versioned
        result cache) as raw id pairs, or ``None`` on a miss — scans
        then reuse the cached relation instead of re-walking the graph."""
        if not self.policy.cache_results:
            return None
        version = self.graph.version

        def lookup(atom):
            query = Query.of(atom.query)
            null = null_semantics if query.kind is QueryKind.DATA_RPQ else False
            cached = self._results.peek((version, query.key, null))
            if cached is None:
                return None
            return {(source.id, target.id) for source, target in cached}

        return lookup

    def _shard_partition(self) -> GraphPartition:
        """The session's edge-cut plan, rebuilt only when the graph moves on."""
        index = self.graph.label_index()
        num_shards = self.policy.num_shards or min(os.cpu_count() or 1, 8)
        cached = self._partition
        if cached is None or cached.version != index.version or cached.num_shards != num_shards:
            cached = GraphPartition.build(index, max(1, num_shards))
            self._partition = cached
        return cached

    def _targets_of(self, plan: Query, source: NodeId, null_semantics: bool) -> frozenset:
        full_key = (self.graph.version, plan.key, null_semantics)
        if self.policy.cache_results and full_key in self._results:
            # The full relation is already materialised — filter it
            # rather than running a fresh traversal.
            relation = self._results.get_or_build(full_key, lambda: frozenset())
            return frozenset(target for start, target in relation if start.id == source)
        policy = self.policy
        if (
            policy.intra_query == "sharded"
            and self.graph.num_nodes >= policy.intra_query_threshold
            and self.shard_runner is not None
            and getattr(self.shard_runner, "supports_sources", False)
            and plan.kind in (QueryKind.RPQ, QueryKind.DATA_RPQ)
        ):
            # Offer the point query to the server's persistent worker
            # pool as a seeded shard round: only the single-source
            # frontier crosses the pipes, not the full relation.  A None
            # return (pool busy, pool gone) falls through to the
            # session's own single-source path.
            answer = self.shard_runner(plan, null_semantics, sources={source})
            if answer is not None:
                return frozenset(target for start, target in answer if start.id == source)
        if plan.kind is QueryKind.RPQ:
            return self.engine.evaluate_rpq_from(
                self.graph, plan.plan, source, backend=self.policy.backend
            )
        answers = self._answers(plan, null_semantics)
        return frozenset(target for start, target in answers if start.id == source)

    def stats(self) -> Mapping[str, CacheStats]:
        """Cache snapshots: the session's ``results`` and ``points`` caches
        plus the engine's caches."""
        stats = {"results": self._results.stats(), "points": self._points.stats()}
        stats.update(self.engine.stats())
        return stats

    def clear_cache(self) -> None:
        """Drop all cached answer sets, including any loaded point-cache
        snapshot and cached CRPQ plans (compiled automata stay in the
        engine)."""
        self._results.clear()
        self._points.clear()
        self._crpq_plans.clear()
        self._point_snapshot = {}
        self._point_snapshot_version = None
        self._result_history.clear()
        self._crpq_plan_history.clear()
        self._plan_traces.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self._results.stats()
        return (
            f"<GraphSession graph={self.graph.name or id(self.graph):} "
            f"version={self.graph.version} executor={self._executor.name} "
            f"results={snapshot.size}/{snapshot.maxsize} ({snapshot.hits} hits)>"
        )


# ----------------------------------------------------------------------
# Default sessions (behind the deprecated module-level functions)
# ----------------------------------------------------------------------
def session_for(graph: DataGraph) -> GraphSession:
    """The default (sequential, caching) session of a graph.

    One session is kept per graph, stored on the graph itself, so its
    lifetime is exactly the graph's — there is no global registry to
    extend a graph's lifetime or leak sessions.  The deprecated
    module-level ``evaluate_*`` functions delegate here, which is how
    legacy call sites inherit result caching for free.  A session built
    against a replaced process-wide engine is rebuilt transparently.
    """
    session = graph._api_session
    if session is None or session.engine is not default_engine():
        session = GraphSession(graph)
        graph._api_session = session
    return session
