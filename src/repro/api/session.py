"""Session-scoped query execution: one graph, one engine, one cache.

:class:`GraphSession` is the public execution API of the library.  It
binds together

* a :class:`~repro.datagraph.graph.DataGraph`,
* an :class:`~repro.engine.engine.EvaluationEngine` (shared compiled-
  automaton caches; defaults to the process-wide engine), and
* an :class:`~repro.api.executors.ExecutionPolicy` (executor choice and
  result-cache behaviour),

and evaluates :class:`~repro.api.query.Query` plans of *every* language
through one pair of entry points: :meth:`GraphSession.run` for a single
query and :meth:`GraphSession.run_many` for a batch.  Both return uniform
lazy :class:`~repro.api.result.Result` objects.

The session owns a **versioned result cache**: answers are keyed on
``(graph.version, query.key, null_semantics)``, and since every
structural mutation bumps the graph's monotonic version counter, a
mutation transparently invalidates all cached answers — stale entries
age out of the LRU without any explicit invalidation hook.

:func:`session_for` keeps one default session per graph (stored on the
graph, so it lives and dies with it); it backs the deprecated
module-level ``evaluate_*`` shims, which is how legacy call sites
transparently gain caching.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..datagraph.graph import DataGraph
from ..engine.cache import CacheStats, LRUCache
from ..engine.engine import EvaluationEngine, default_engine
from .executors import ExecutionPolicy
from .query import Query, QueryLike
from .result import Result

__all__ = ["GraphSession", "session_for"]

#: Shared default policy: sequential execution, 1024-entry result cache.
_DEFAULT_POLICY = ExecutionPolicy()


class GraphSession:
    """Uniform, cached execution of queries over one data graph.

    Parameters
    ----------
    graph:
        The data graph the session is bound to.  The graph may keep
        mutating; the versioned cache tracks it automatically.
    engine:
        The evaluation engine to route through; defaults to the shared
        process-wide engine so compiled automata are reused across
        sessions.
    policy:
        The :class:`~repro.api.executors.ExecutionPolicy`; defaults to
        sequential execution with a 1024-entry result cache.

    Examples
    --------
    >>> from repro.datagraph import GraphBuilder
    >>> graph = (GraphBuilder().node("a", 1).node("b", 1)
    ...          .edge("a", "r", "b").build())
    >>> session = GraphSession(graph)
    >>> session.run("r").count()
    1
    >>> session.run(Query.parse("(r)=", dialect="ree")).holds("a", "b")
    True
    """

    def __init__(
        self,
        graph: DataGraph,
        engine: Optional[EvaluationEngine] = None,
        policy: Optional[ExecutionPolicy] = None,
    ):
        self.graph = graph
        self.engine = engine if engine is not None else default_engine()
        self.policy = policy if policy is not None else _DEFAULT_POLICY
        self._executor = self.policy.build_executor()
        self._results: LRUCache[frozenset] = LRUCache(self.policy.result_cache_size)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, query: QueryLike, null_semantics: bool = False) -> Result:
        """Evaluate one query, returning a lazy :class:`Result`.

        The answer set is computed on first access of the result (and at
        most once per result); it is served from the session cache when
        the same plan was already evaluated at the current graph version.
        """
        plan = Query.of(query)
        return Result(plan, self.graph, lambda: self._answers(plan, null_semantics))

    def run_many(
        self,
        queries: Sequence[QueryLike],
        null_semantics: bool = False,
        executor=None,
    ) -> List[Result]:
        """Evaluate a batch of queries, one :class:`Result` per query.

        Cache hits are resolved up front; only the distinct misses are
        handed to the executor (the policy's, unless *executor* overrides
        it), so a warm cache short-circuits the fan-out entirely.  Batch
        results are materialised eagerly — laziness would serialise the
        parallel backends.
        """
        plans = [Query.of(query) for query in queries]
        chosen = executor if executor is not None else self._executor
        caching = self.policy.cache_results
        version = self.graph.version

        answers: Dict[Tuple, frozenset] = {}
        misses: List[Query] = []
        for plan in plans:
            key = (version, plan.key, null_semantics)
            if key in answers:
                continue
            if caching and key in self._results:
                answers[key] = self._results.get_or_build(key, lambda: None)  # recorded hit
            else:
                answers[key] = None  # placeholder: scheduled for the executor
                misses.append(plan)
        if misses:
            computed = chosen.execute_batch(self.engine, self.graph, misses, null_semantics)
            for plan, answer in zip(misses, computed):
                key = (version, plan.key, null_semantics)
                if caching:
                    answer = self._results.get_or_build(key, lambda answer=answer: answer)
                answers[key] = answer

        results: List[Result] = []
        for plan in plans:
            answer = answers[(version, plan.key, null_semantics)]
            result = Result(plan, self.graph, lambda answer=answer: answer)
            result._force()  # already computed; materialise eagerly
            results.append(result)
        return results

    def holds(self, query: QueryLike, *nodes: object, null_semantics: bool = False) -> bool:
        """Membership shortcut: ``session.run(query).holds(*nodes)``."""
        return self.run(query, null_semantics=null_semantics).holds(*nodes)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _answers(self, plan: Query, null_semantics: bool) -> frozenset:
        if not self.policy.cache_results:
            return plan._evaluate(self.engine, self.graph, null_semantics)
        key = (self.graph.version, plan.key, null_semantics)
        return self._results.get_or_build(
            key, lambda: plan._evaluate(self.engine, self.graph, null_semantics)
        )

    def stats(self) -> Mapping[str, CacheStats]:
        """Cache snapshots: the session's ``results`` cache plus the engine's caches."""
        stats = {"results": self._results.stats()}
        stats.update(self.engine.stats())
        return stats

    def clear_cache(self) -> None:
        """Drop all cached answer sets (compiled automata stay in the engine)."""
        self._results.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self._results.stats()
        return (
            f"<GraphSession graph={self.graph.name or id(self.graph):} "
            f"version={self.graph.version} executor={self._executor.name} "
            f"results={snapshot.size}/{snapshot.maxsize} ({snapshot.hits} hits)>"
        )


# ----------------------------------------------------------------------
# Default sessions (behind the deprecated module-level functions)
# ----------------------------------------------------------------------
def session_for(graph: DataGraph) -> GraphSession:
    """The default (sequential, caching) session of a graph.

    One session is kept per graph, stored on the graph itself, so its
    lifetime is exactly the graph's — there is no global registry to
    extend a graph's lifetime or leak sessions.  The deprecated
    module-level ``evaluate_*`` functions delegate here, which is how
    legacy call sites inherit result caching for free.  A session built
    against a replaced process-wide engine is rebuilt transparently.
    """
    session = graph._api_session
    if session is None or session.engine is not default_engine():
        session = GraphSession(graph)
        graph._api_session = session
    return session
