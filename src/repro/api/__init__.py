"""The unified public execution API: query IR, sessions, executors.

This sub-package is the one front door to query evaluation.  Every
language of the paper — RPQs, data RPQs (REE/REM), conjunctive RPQs and
GXPath node/path expressions — normalises into a single tagged, hashable
:class:`Query` plan, and every plan executes through a
:class:`GraphSession` that binds a graph, a shared evaluation engine and
an :class:`ExecutionPolicy`:

.. code-block:: python

    from repro.api import ExecutionPolicy, GraphSession, Query

    session = GraphSession(graph)
    session.run(Query.rpq("knows.knows")).pairs()
    session.run(Query.parse("(knows)=", dialect="ree")).holds("ann", "ben")
    session.run(Query.gxpath("<a.[<b>]>")).nodes()

    batch = [Query.rpq(text) for text in workload]
    parallel = GraphSession(graph, policy=ExecutionPolicy.preset("parallel"))
    results = parallel.run_many(batch)          # worker-pool fan-out

Sessions memoise answers keyed on the graph's mutation counter
(``graph.version``), so results are never stale and mutations never need
explicit invalidation.  The deprecated module-level ``evaluate_*``
functions delegate to per-graph default sessions (:func:`session_for`).

The same surface is served remotely: :func:`connect` dials a
``repro serve`` daemon and returns a :class:`RemoteSession` — the other
implementation of :class:`SessionProtocol`, so library code written
against the protocol runs unchanged in-process or against a server:

.. code-block:: python

    from repro.api import connect

    with connect(("127.0.0.1", 7464)) as session:
        session.run("knows.knows").count()
"""

from .executors import POLICY_PRESETS, ExecutionPolicy, ParallelExecutor, SequentialExecutor
from .protocol import SessionProtocol
from .query import Query, QueryKind, QueryLike
from .remote import (
    QueryTimeoutError,
    RemoteSession,
    ServerBusyError,
    ServerShuttingDownError,
    connect,
)
from .result import Result
from .session import GraphSession, session_for

__all__ = [
    "Query",
    "QueryKind",
    "QueryLike",
    "Result",
    "SessionProtocol",
    "GraphSession",
    "RemoteSession",
    "connect",
    "ServerBusyError",
    "QueryTimeoutError",
    "ServerShuttingDownError",
    "session_for",
    "ExecutionPolicy",
    "POLICY_PRESETS",
    "SequentialExecutor",
    "ParallelExecutor",
]
