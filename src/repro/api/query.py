"""The unified query IR: one tagged, hashable plan for every language.

The paper studies one semantic family — RPQs, data RPQs (REE/REM), data
path queries, conjunctive RPQs and GXPath — but the library historically
exposed each language through its own ad-hoc entry point with its own
return shape.  :class:`Query` normalises all of them into a single
immutable value:

* :meth:`Query.rpq`, :meth:`Query.data_rpq`, :meth:`Query.crpq` and
  :meth:`Query.gxpath` wrap the language-specific ASTs;
* :meth:`Query.parse` builds a query from text in any supported dialect;
* :meth:`Query.of` coerces "whatever the caller already has" (a wrapper,
  an AST, a string, or another :class:`Query`) into the IR.

A :class:`Query` is a frozen dataclass over structurally hashable plans,
so it can key caches: two queries parsed from different texts but with
equal ASTs share one :attr:`key`, one compiled automaton and one cached
result.  Evaluation is dispatched by :meth:`Query._evaluate`, which is
the single seam the :class:`~repro.api.session.GraphSession` executors
drive; everything routes through the shared
:class:`~repro.engine.engine.EvaluationEngine`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Iterable, Optional, Sequence, Tuple, Union

from ..datapaths import RegexWithEquality, RegexWithMemory, parse_ree, parse_rem
from ..exceptions import EvaluationError, ParseError, UnsupportedQueryError
from ..gxpath.ast import NodeExpression, PathExpression
from ..gxpath.parser import parse_gxpath_node, parse_gxpath_path
from ..query.crpq import Atom, ConjunctiveRPQ, parse_crpq
from ..query.data_rpq import DataRPQ
from ..query.rpq import RPQ
from ..regular import Regex, parse_regex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datagraph.graph import DataGraph
    from ..engine.engine import EvaluationEngine

__all__ = ["QueryKind", "Query", "QueryLike"]


class QueryKind(enum.Enum):
    """The language a :class:`Query` plan belongs to."""

    RPQ = "rpq"
    DATA_RPQ = "data_rpq"
    CRPQ = "crpq"
    GXPATH_NODE = "gxpath_node"
    GXPATH_PATH = "gxpath_path"


#: Plans are the existing per-language wrappers / ASTs; all are frozen,
#: structurally hashable dataclasses.
QueryPlan = Union[RPQ, DataRPQ, ConjunctiveRPQ, NodeExpression, PathExpression]

#: Anything :meth:`Query.of` can coerce into the IR.
QueryLike = Union["Query", QueryPlan, Regex, RegexWithEquality, RegexWithMemory, str]

#: Textual dialects understood by :meth:`Query.parse`.
DIALECTS = ("rpq", "ree", "rem", "crpq", "gxpath-node", "gxpath-path")


@dataclass(frozen=True)
class Query:
    """A tagged, hashable query plan consumed by :class:`GraphSession`.

    Attributes
    ----------
    kind:
        The :class:`QueryKind` tag identifying the language.
    plan:
        The underlying wrapper/AST (an :class:`~repro.query.rpq.RPQ`,
        :class:`~repro.query.data_rpq.DataRPQ`,
        :class:`~repro.query.crpq.ConjunctiveRPQ`, or a GXPath node/path
        expression).
    """

    kind: QueryKind
    plan: QueryPlan

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def rpq(cls, expression: Union[RPQ, Regex, str]) -> "Query":
        """An ordinary regular path query (Section 2)."""
        if isinstance(expression, str):
            expression = parse_regex(expression)
        if isinstance(expression, Regex):
            expression = RPQ(expression)
        if not isinstance(expression, RPQ):
            raise UnsupportedQueryError(f"cannot build an RPQ plan from {expression!r}")
        return cls(QueryKind.RPQ, expression)

    @classmethod
    def data_rpq(
        cls, expression: Union[DataRPQ, RegexWithEquality, RegexWithMemory, str]
    ) -> "Query":
        """A data RPQ over a REE or REM expression (Section 3).

        Textual input is parsed as REE first and as REM on failure; use
        :meth:`parse` with an explicit ``"ree"`` / ``"rem"`` dialect to
        pin the sub-language.
        """
        if isinstance(expression, str):
            try:
                expression = parse_ree(expression)
            except ParseError:
                expression = parse_rem(expression)
        if isinstance(expression, (RegexWithEquality, RegexWithMemory)):
            expression = DataRPQ(expression)
        if not isinstance(expression, DataRPQ):
            raise UnsupportedQueryError(f"cannot build a data RPQ plan from {expression!r}")
        return cls(QueryKind.DATA_RPQ, expression)

    @classmethod
    def crpq(
        cls,
        query_or_head: Union[ConjunctiveRPQ, Sequence[str]],
        atoms: Optional[Iterable[Union[Atom, Tuple[str, object, str]]]] = None,
    ) -> "Query":
        """A conjunctive (data) RPQ (Section 5).

        Accepts an existing :class:`~repro.query.crpq.ConjunctiveRPQ`, or
        a head (sequence of output variables) plus atoms given either as
        :class:`~repro.query.crpq.Atom` objects or ``(source, query,
        target)`` triples whose query part may be an RPQ/data-RPQ wrapper
        or RPQ text.
        """
        if isinstance(query_or_head, ConjunctiveRPQ):
            return cls(QueryKind.CRPQ, query_or_head)
        if atoms is None:
            raise UnsupportedQueryError("Query.crpq needs a ConjunctiveRPQ or a head plus atoms")
        built = []
        for atom in atoms:
            if isinstance(atom, Atom):
                built.append(atom)
                continue
            source, inner, target = atom
            if isinstance(inner, str):
                inner = RPQ(parse_regex(inner))
            elif isinstance(inner, Regex):
                inner = RPQ(inner)
            elif isinstance(inner, (RegexWithEquality, RegexWithMemory)):
                inner = DataRPQ(inner)
            if not isinstance(inner, (RPQ, DataRPQ)):
                raise UnsupportedQueryError(f"unsupported CRPQ atom query {inner!r}")
            built.append(Atom(source, inner, target))
        return cls(QueryKind.CRPQ, ConjunctiveRPQ(tuple(query_or_head), tuple(built)))

    @classmethod
    def gxpath(
        cls, expression: Union[NodeExpression, PathExpression, str], kind: str = "auto"
    ) -> "Query":
        """A GXPath-core node or path expression (Section 9).

        ``kind`` is ``"node"``, ``"path"``, or ``"auto"`` — for ASTs the
        shape is detected; textual input is parsed as a node expression
        first and as a path expression on failure.
        """
        if kind not in {"auto", "node", "path"}:
            raise UnsupportedQueryError(f"unknown GXPath expression kind {kind!r}")
        if isinstance(expression, str):
            if kind == "node":
                expression = parse_gxpath_node(expression)
            elif kind == "path":
                expression = parse_gxpath_path(expression)
            else:
                try:
                    expression = parse_gxpath_node(expression)
                except ParseError:
                    expression = parse_gxpath_path(expression)
        if isinstance(expression, NodeExpression):
            if kind == "path":
                raise UnsupportedQueryError(f"{expression} is a GXPath node expression, not a path")
            return cls(QueryKind.GXPATH_NODE, expression)
        if isinstance(expression, PathExpression):
            if kind == "node":
                raise UnsupportedQueryError(f"{expression} is a GXPath path expression, not a node")
            return cls(QueryKind.GXPATH_PATH, expression)
        raise UnsupportedQueryError(f"cannot build a GXPath plan from {expression!r}")

    @classmethod
    def parse(cls, text: str, dialect: str = "rpq") -> "Query":
        """Parse *text* in the given dialect into a :class:`Query`.

        Supported dialects: ``"rpq"`` (plain regular expressions),
        ``"ree"`` (regular expressions with equality), ``"rem"`` (regular
        expressions with memory), ``"crpq"`` (conjunctions, e.g.
        ``"x,y :- (x, a.b, z), (z, ree:(c)=, y)"``), ``"gxpath-node"``
        and ``"gxpath-path"``.
        """
        if dialect == "rpq":
            return cls.rpq(text)
        if dialect == "ree":
            return cls.data_rpq(parse_ree(text))
        if dialect == "rem":
            return cls.data_rpq(parse_rem(text))
        if dialect == "crpq":
            return cls(QueryKind.CRPQ, parse_crpq(text))
        if dialect == "gxpath-node":
            return cls.gxpath(text, kind="node")
        if dialect == "gxpath-path":
            return cls.gxpath(text, kind="path")
        raise UnsupportedQueryError(
            f"unknown query dialect {dialect!r}; expected one of {', '.join(DIALECTS)}"
        )

    @classmethod
    def of(cls, query: QueryLike) -> "Query":
        """Coerce *query* into the IR.

        Accepts an existing :class:`Query` (returned unchanged), any
        per-language wrapper or AST, or a string (treated as RPQ text —
        use :meth:`parse` for other dialects).
        """
        if isinstance(query, Query):
            return query
        if isinstance(query, (RPQ, Regex, str)):
            return cls.rpq(query)
        if isinstance(query, (DataRPQ, RegexWithEquality, RegexWithMemory)):
            return cls.data_rpq(query)
        if isinstance(query, ConjunctiveRPQ):
            return cls(QueryKind.CRPQ, query)
        if isinstance(query, (NodeExpression, PathExpression)):
            return cls.gxpath(query)
        raise UnsupportedQueryError(f"cannot interpret {query!r} as a query")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def key(self) -> Tuple[str, QueryPlan]:
        """A hashable cache key identifying the plan across construction paths."""
        return (self.kind.value, self.plan)

    @property
    def arity(self) -> int:
        """Number of output positions: 1 for node sets, 2 for relations, the head arity for CRPQs."""
        if self.kind is QueryKind.GXPATH_NODE:
            return 1
        if self.kind is QueryKind.CRPQ:
            return self.plan.arity
        return 2

    def labels(self) -> FrozenSet[str]:
        """Edge labels mentioned by the plan."""
        if self.kind is QueryKind.RPQ:
            return self.plan.letters()
        if self.kind is QueryKind.CRPQ:
            result: FrozenSet[str] = frozenset()
            for atom in self.plan.atoms:
                result |= (
                    atom.query.letters() if isinstance(atom.query, RPQ) else atom.query.labels()
                )
            return result
        return self.plan.labels()

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.plan}"

    def explain(self, graph: Optional["DataGraph"] = None) -> str:
        """A human-readable account of how this query will be evaluated.

        For CRPQs this is the planner's chosen plan — join order,
        seeded scans, hash joins and cardinality estimates — costed
        against *graph*'s label-index statistics when a graph is given
        (without one, estimates collapse and the plan follows the
        written atom order).  The other kinds have a fixed execution
        strategy and explain to a one-line description.  Sessions expose
        the same text (with plan caching) via
        :meth:`~repro.api.session.GraphSession.explain`; the CLI prints
        it under ``--explain``.
        """
        kind = self.kind
        if kind is QueryKind.CRPQ:
            from ..planner import plan_crpq

            index = graph.label_index() if graph is not None else None
            return plan_crpq(self.plan, index).explain()
        if kind is QueryKind.RPQ:
            return (
                "rpq: compiled ε-free NFA × graph product; full-relation phases "
                "forward-expand → backward-prune → mask-propagate → decode"
            )
        if kind is QueryKind.DATA_RPQ:
            return (
                "data_rpq: register-automaton × graph product, one full-relation "
                "mask pass (REE expressions translate to REM first)"
            )
        return (
            f"{kind.value}: recursive GXPath evaluation over the label index; "
            "axis closures (a*) route through the ClosureSpace kernels"
        )

    # ------------------------------------------------------------------
    # Execution seam (driven by GraphSession / executors)
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        engine: "EvaluationEngine",
        graph: "DataGraph",
        null_semantics: bool,
        backend: str = "auto",
    ):
        """Evaluate the plan on *graph* through *engine*.

        Returns the raw answer set in the plan's natural shape: a
        frozenset of node pairs for binary queries, of nodes for GXPath
        node expressions, and of head tuples for CRPQs.  The
        :class:`~repro.api.result.Result` wrapper normalises access.
        *backend* picks the storage representation the kernels walk
        (``"auto"`` / ``"compact"`` / ``"dict"``); answers are
        bit-identical in every mode.
        """
        kind = self.kind
        if kind is QueryKind.RPQ:
            return engine.evaluate_rpq(graph, self.plan, backend=backend)
        if kind is QueryKind.DATA_RPQ:
            return engine.evaluate_data_rpq(
                graph, self.plan, null_semantics=null_semantics, backend=backend
            )
        if kind is QueryKind.CRPQ:
            from ..query.crpq import evaluate_crpq_with_engine

            return evaluate_crpq_with_engine(
                graph,
                self.plan,
                null_semantics=null_semantics,
                engine=engine,
                backend=backend,
            )
        from ..gxpath import evaluation as gxpath_evaluation

        if kind is QueryKind.GXPATH_NODE:
            return gxpath_evaluation.evaluate_node(
                graph, self.plan, null_semantics, backend=backend
            )
        if kind is QueryKind.GXPATH_PATH:
            return gxpath_evaluation.evaluate_path(
                graph, self.plan, null_semantics, backend=backend
            )
        raise EvaluationError(f"unknown query kind {kind!r}")  # pragma: no cover - defensive

    def _warm(self, engine: "EvaluationEngine") -> None:
        """Compile the plan's automata into *engine*'s caches.

        Called sequentially before a parallel fan-out so worker threads
        race neither the LRU caches nor each other on compilation.
        """
        kind = self.kind
        if kind is QueryKind.RPQ:
            engine.compile_rpq(self.plan)
        elif kind is QueryKind.DATA_RPQ:
            if isinstance(self.plan.expression, RegexWithMemory):
                engine.compile_data_rpq(self.plan.expression)
        elif kind is QueryKind.CRPQ:
            for atom in self.plan.atoms:
                if isinstance(atom.query, RPQ):
                    engine.compile_rpq(atom.query)
                elif isinstance(atom.query.expression, RegexWithMemory):
                    engine.compile_data_rpq(atom.query.expression)
        # GXPath plans have no compiled artefacts: each evaluation builds
        # its own memo tables over the shared label index.
