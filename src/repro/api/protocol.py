"""The session protocol: one execution surface, local or remote.

:class:`SessionProtocol` is the abstract surface shared by
:class:`~repro.api.session.GraphSession` (in-process evaluation) and
:class:`~repro.api.remote.RemoteSession` (evaluation inside a
:mod:`repro.server` daemon).  Client code written against this protocol
is agnostic to where the work happens::

    def audit(session: SessionProtocol) -> int:
        return session.run("knows.knows").count()

    audit(GraphSession(graph))          # local
    audit(connect("127.0.0.1:7687"))    # remote

The contract mirrors the session semantics established in PRs 1–5:
``run``/``run_many`` return lazy, shape-normalising
:class:`~repro.api.result.Result` objects; ``targets`` answers
single-source (point) workloads; ``explain`` describes the plan that
would run; ``stats`` reports cache behaviour; ``save_point_cache``
persists the point-workload cache as a snapshot file (written client
side for remote sessions).  Sessions are context managers — ``close``
releases whatever the implementation holds (a no-op locally, the socket
remotely).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import TYPE_CHECKING, FrozenSet, List, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datagraph.node import Node, NodeId
    from ..engine.cache import CacheStats
    from .query import QueryLike
    from .result import Result

__all__ = ["SessionProtocol"]


class SessionProtocol(ABC):
    """Abstract base of every query-session implementation."""

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @abstractmethod
    def run(self, query: "QueryLike", null_semantics: bool = False) -> "Result":
        """Evaluate one query, returning a :class:`~repro.api.result.Result`."""

    @abstractmethod
    def run_many(
        self, queries: Sequence["QueryLike"], null_semantics: bool = False
    ) -> List["Result"]:
        """Evaluate a batch of queries, one result per query, in order."""

    @abstractmethod
    def targets(
        self, query: "QueryLike", source: "NodeId", null_semantics: bool = False
    ) -> FrozenSet["Node"]:
        """All nodes ``v`` with ``(source, v)`` in a binary query's answers."""

    def holds(self, query: "QueryLike", *nodes: object, null_semantics: bool = False) -> bool:
        """Membership shortcut; implementations may answer from point caches."""
        return self.run(query, null_semantics=null_semantics).holds(*nodes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @abstractmethod
    def explain(self, query: "QueryLike") -> str:
        """The execution plan of *query* on this session's graph."""

    @abstractmethod
    def stats(self) -> Mapping[str, "CacheStats"]:
        """Cache snapshots (result / point caches plus engine caches)."""

    # ------------------------------------------------------------------
    # Persistence and lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def save_point_cache(
        self, path: Union[str, Path], max_entries: Optional[int] = None
    ) -> int:
        """Write the point-workload cache to *path*; returns the entry count."""

    def close(self) -> None:
        """Release whatever the session holds (idempotent; no-op by default)."""

    def __enter__(self) -> "SessionProtocol":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
