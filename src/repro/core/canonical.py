"""Canonical target-graph skeletons shared by the solution builders.

Both kinds of canonical solutions in the paper — *universal solutions*
populated with SQL nulls (Section 7) and *least informative solutions*
populated with fresh distinct values (Section 8) — share the same
skeleton: the nodes of ``dom(M, G_s)`` plus, for every relational rule
``(q, w)`` and every pair ``(v, v') ∈ q(G_s)``, a fresh path labelled
``w`` from ``v`` to ``v'``.  The naive exact certain-answer algorithm
additionally needs to enumerate *all* ways an adversarial solution could
instantiate that skeleton: which word of a finite-union rule to use and
which data values to give the invented nodes.

:class:`Skeleton` captures the requirement list; :func:`materialise`
turns one concrete choice (word per requirement + value per invented
node) into a target data graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from ..datagraph.graph import DataGraph
from ..datagraph.node import Node
from ..datagraph.values import NULL, DataValue
from ..exceptions import SolutionError, UnsupportedQueryError
from .gsm import GraphSchemaMapping, MappingRule
from .solutions import mapping_domain, source_requirements

__all__ = ["Requirement", "Skeleton", "build_skeleton", "materialise"]


@dataclass(frozen=True)
class Requirement:
    """One path obligation: connect *source* to *target* by some word of *words*."""

    rule_index: int
    rule: MappingRule
    source: Node
    target: Node
    words: Tuple[Tuple[str, ...], ...]

    def shortest_word(self) -> Tuple[str, ...]:
        """The canonical word choice (shortest, ties broken lexicographically)."""
        return min(self.words, key=lambda word: (len(word), word))


@dataclass(frozen=True)
class Skeleton:
    """The canonical-solution skeleton of a relational GSM on a source graph."""

    mapping: GraphSchemaMapping
    domain: FrozenSet[Node]
    requirements: Tuple[Requirement, ...]
    target_alphabet: FrozenSet[str]

    def invented_node_count(self, word_choice: Optional[Sequence[int]] = None) -> int:
        """Number of fresh nodes needed for a given word choice (default: shortest words)."""
        total = 0
        for index, requirement in enumerate(self.requirements):
            word = (
                requirement.words[word_choice[index]]
                if word_choice is not None
                else requirement.shortest_word()
            )
            total += max(len(word) - 1, 0)
        return total


def build_skeleton(mapping: GraphSchemaMapping, source: DataGraph) -> Skeleton:
    """Compute the skeleton of canonical solutions for a relational mapping.

    Raises
    ------
    UnsupportedQueryError
        If some rule's target query is not relational (word / finite union).
    SolutionError
        If some rule with an empty-word-only target is violated in a way no
        target graph can fix (an ε-rule relating two distinct nodes).
    """
    requirements: List[Requirement] = []
    for rule_index, (rule, pairs) in enumerate(source_requirements(mapping, source).items()):
        language = rule.target.finite_language()
        if language is None:
            raise UnsupportedQueryError(
                f"rule [{rule}] is not relational: its target query denotes an infinite language"
            )
        words = tuple(sorted(language, key=lambda word: (len(word), word)))
        for left, right in sorted(pairs, key=lambda pair: (pair[0].sort_key(), pair[1].sort_key())):
            if all(len(word) == 0 for word in words) and left != right:
                raise SolutionError(
                    f"rule [{rule}] requires the empty path between distinct nodes "
                    f"{left} and {right}: no solution exists"
                )
            usable = tuple(word for word in words if len(word) > 0 or left == right)
            requirements.append(Requirement(rule_index, rule, left, right, usable))
    return Skeleton(
        mapping=mapping,
        domain=mapping_domain(mapping, source),
        requirements=tuple(requirements),
        target_alphabet=mapping.target_alphabet,
    )


def materialise(
    skeleton: Skeleton,
    value_for: Callable[[int], DataValue],
    word_choice: Optional[Sequence[int]] = None,
    name: str = "canonical-solution",
) -> DataGraph:
    """Build a concrete target graph from the skeleton.

    Parameters
    ----------
    skeleton:
        The skeleton produced by :func:`build_skeleton`.
    value_for:
        A function from the running index of an invented node to its data
        value — constant ``NULL`` for universal solutions, a fresh-value
        factory for least informative solutions, or an explicit assignment
        for the naive certain-answer enumeration.
    word_choice:
        For each requirement, the index of the word to use from its
        ``words`` tuple; defaults to the shortest word everywhere.
    name:
        Name for the produced graph.
    """
    target = DataGraph(alphabet=skeleton.target_alphabet, name=name)
    for node in sorted(skeleton.domain, key=lambda node: node.sort_key()):
        target.add_node(node.id, node.value)
    fresh_counter = 0
    for index, requirement in enumerate(skeleton.requirements):
        word = (
            requirement.words[word_choice[index]]
            if word_choice is not None
            else requirement.shortest_word()
        )
        previous = requirement.source.id
        for position, label in enumerate(word):
            if position == len(word) - 1:
                target.add_edge(previous, label, requirement.target.id)
            else:
                invented_id = ("_fresh", index, position)
                target.add_node(invented_id, value_for(fresh_counter))
                fresh_counter += 1
                target.add_edge(previous, label, invented_id)
                previous = invented_id
    return target
