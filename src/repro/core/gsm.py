"""Graph schema mappings (Definition 1) and their sub-classes.

A *graph schema mapping* (GSM) is a set of pairs of RPQs ``(q, q')``
where ``q`` is over the source alphabet Σ_s and ``q'`` over the target
alphabet Σ_t.  A target graph ``G_t`` is a *solution* for a source graph
``G_s`` when ``q(G_s) ⊆ q'(G_t)`` for every pair — note that since nodes
are (id, data value) pairs, both the ids and the data values of the
source answers must appear in the target.

The paper studies several syntactic sub-classes:

* **LAV** — every source query is atomic (a single letter);
* **GAV** — every target query is atomic;
* **relational** (Definition 3) — every target query is a word RPQ (and,
  per the remark after Proposition 2, finite unions ``w1 + ... + wm`` are
  equally harmless);
* **relational/reachability** — target queries are words or the
  unconstrained reachability query ``Σ_t*``;
* **LAV/GAV relational/reachability** — the minimal class for which
  Theorem 1 already proves undecidability: rules are ``(a, b)`` or
  ``(a, Σ_t*)``.

This module provides the rule and mapping classes, classification
predicates and convenience constructors (copy mappings, LAV mappings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from ..exceptions import InvalidMappingError
from ..query.rpq import RPQ, atomic_rpq, rpq
from ..regular import Regex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datagraph.graph import DataGraph
    from ..datagraph.node import Node

__all__ = ["MappingRule", "GraphSchemaMapping", "lav_mapping", "copy_mapping", "gav_mapping"]

QueryLike = "RPQ | Regex | str"


def _coerce_rpq(query: RPQ | Regex | str) -> RPQ:
    if isinstance(query, RPQ):
        return query
    return rpq(query)


@dataclass(frozen=True)
class MappingRule:
    """One pair ``(q, q')`` of a graph schema mapping.

    Attributes
    ----------
    source:
        The RPQ over the source alphabet.
    target:
        The RPQ over the target alphabet.
    name:
        Optional label used in explanations and error messages.
    """

    source: RPQ
    target: RPQ
    name: str = ""

    def is_lav(self) -> bool:
        """Whether the source query is atomic (a single letter)."""
        return self.source.is_atomic()

    def is_gav(self) -> bool:
        """Whether the target query is atomic."""
        return self.target.is_atomic()

    def is_relational(self) -> bool:
        """Whether the target query is a word RPQ or a finite union of words."""
        return self.target.is_finite()

    def is_reachability_rule(self, target_alphabet: Optional[Sequence[str]] = None) -> bool:
        """Whether the target query is the unconstrained reachability query ``Σ_t*``."""
        return self.target.is_reachability(target_alphabet)

    def max_target_word_length(self) -> Optional[int]:
        """Length of the longest word the target query can produce (``None`` if unbounded)."""
        language = self.target.finite_language()
        if language is None:
            return None
        if not language:
            return 0
        return max(len(word) for word in language)

    # ------------------------------------------------------------------
    # Satisfaction checks (engine-routed)
    # ------------------------------------------------------------------
    def source_answers(self, source: "DataGraph") -> FrozenSet[Tuple["Node", "Node"]]:
        """``q(G_s)``: the pairs this rule obliges every solution to provide."""
        from ..engine import default_engine

        return default_engine().evaluate_rpq(source, self.source)

    def target_answers(self, target: "DataGraph") -> FrozenSet[Tuple["Node", "Node"]]:
        """``q'(G_t)``: the pairs the target query produces on a candidate solution."""
        from ..engine import default_engine

        return default_engine().evaluate_rpq(target, self.target)

    def satisfied_by(self, source: "DataGraph", target: "DataGraph") -> bool:
        """Whether ``q(G_s) ⊆ q'(G_t)`` — this rule's half of ``(G_s, G_t) ⊨ M``.

        Both evaluations go through the shared engine, so checking many
        candidate targets against one source compiles each query once.
        """
        obligations = self.source_answers(source)
        if not obligations:
            return True
        return obligations <= self.target_answers(target)

    def __str__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.source} ⟶ {self.target}"


class GraphSchemaMapping:
    """A graph schema mapping: a finite set of :class:`MappingRule` pairs.

    Parameters
    ----------
    rules:
        The mapping rules, given as :class:`MappingRule` objects or as
        ``(source, target)`` pairs of RPQ-like values (RPQ objects, regex
        ASTs or textual regular expressions).
    source_alphabet, target_alphabet:
        Optional explicit alphabets; otherwise inferred from the rules.
    name:
        Optional mapping name for display purposes.
    """

    def __init__(
        self,
        rules: Iterable[MappingRule | Tuple[object, object]],
        source_alphabet: Iterable[str] = (),
        target_alphabet: Iterable[str] = (),
        name: str = "",
    ):
        normalised = []
        for index, rule in enumerate(rules):
            if isinstance(rule, MappingRule):
                normalised.append(rule)
            else:
                try:
                    source, target = rule
                except (TypeError, ValueError):
                    raise InvalidMappingError(
                        f"rule #{index} must be a MappingRule or a (source, target) pair, got {rule!r}"
                    ) from None
                normalised.append(MappingRule(_coerce_rpq(source), _coerce_rpq(target)))
        if not normalised:
            raise InvalidMappingError("a graph schema mapping needs at least one rule")
        self._rules: Tuple[MappingRule, ...] = tuple(normalised)
        self._source_alphabet = frozenset(source_alphabet) | frozenset(
            letter for rule in self._rules for letter in rule.source.letters()
        )
        self._target_alphabet = frozenset(target_alphabet) | frozenset(
            letter for rule in self._rules for letter in rule.target.letters()
        )
        self.name = name

    # ------------------------------------------------------------------
    @property
    def rules(self) -> Tuple[MappingRule, ...]:
        """The mapping rules."""
        return self._rules

    @property
    def source_alphabet(self) -> FrozenSet[str]:
        """Σ_s: the source edge alphabet."""
        return self._source_alphabet

    @property
    def target_alphabet(self) -> FrozenSet[str]:
        """Σ_t: the target edge alphabet."""
        return self._target_alphabet

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def size(self) -> int:
        """``|M|``: the number of rules (used by the Proposition 2 bound)."""
        return len(self._rules)

    # ------------------------------------------------------------------
    # Classification (Definition 3 and Section 5)
    # ------------------------------------------------------------------
    def is_lav(self) -> bool:
        """Whether every source query is atomic."""
        return all(rule.is_lav() for rule in self._rules)

    def is_gav(self) -> bool:
        """Whether every target query is atomic."""
        return all(rule.is_gav() for rule in self._rules)

    def is_relational(self) -> bool:
        """Whether every target query is a word RPQ (or finite union of words)."""
        return all(rule.is_relational() for rule in self._rules)

    def is_relational_reachability(self) -> bool:
        """Whether every target query is a word RPQ or the reachability query ``Σ_t*``."""
        return all(
            rule.is_relational() or rule.is_reachability_rule(sorted(self._target_alphabet))
            for rule in self._rules
        )

    def is_lav_gav_relational_reachability(self) -> bool:
        """The Theorem 1 class: every rule is ``(a, b)`` or ``(a, Σ_t*)``."""
        if not self.is_lav():
            return False
        return all(
            rule.is_gav() or rule.is_reachability_rule(sorted(self._target_alphabet))
            for rule in self._rules
        )

    def max_rule_word_length(self) -> Optional[int]:
        """The bound ``k`` with ``L(q') ⊆ Σ_t^{≤k}`` for all rules, or ``None``.

        This is the quantity used by the bounded-solution argument of
        Proposition 2; it is defined only for relational mappings.
        """
        lengths = []
        for rule in self._rules:
            length = rule.max_target_word_length()
            if length is None:
                return None
            lengths.append(length)
        return max(lengths) if lengths else 0

    def is_satisfied_by(self, source: "DataGraph", target: "DataGraph") -> bool:
        """Whether ``(source, target) ⊨ M`` (Definition 1).

        Delegates to :func:`repro.core.solutions.is_solution`, which
        batches all source-query evaluations through the shared engine.
        """
        from .solutions import is_solution

        return is_solution(self, source, target)

    def relational_rules(self) -> Tuple[MappingRule, ...]:
        """The subset of rules whose target query is relational."""
        return tuple(rule for rule in self._rules if rule.is_relational())

    def restrict_to_relational(self) -> "GraphSchemaMapping":
        """The sub-mapping consisting of the relational rules only."""
        relational = self.relational_rules()
        if not relational:
            raise InvalidMappingError("the mapping has no relational rules")
        return GraphSchemaMapping(
            relational,
            source_alphabet=self._source_alphabet,
            target_alphabet=self._target_alphabet,
            name=f"{self.name}|relational" if self.name else "",
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<GraphSchemaMapping{label}: {len(self._rules)} rules>"

    def pretty(self) -> str:
        """A multi-line rendering of the mapping rules."""
        lines = [repr(self)]
        lines.extend(f"  {rule}" for rule in self._rules)
        return "\n".join(lines)


def lav_mapping(
    rules: Mapping[str, object] | Iterable[Tuple[str, object]],
    target_alphabet: Iterable[str] = (),
    name: str = "",
) -> GraphSchemaMapping:
    """Build a LAV mapping from ``{source letter: target query}`` bindings.

    The same source letter may be mapped by several rules by passing an
    iterable of pairs instead of a dict.
    """
    pairs = rules.items() if isinstance(rules, Mapping) else rules
    mapping_rules = [
        MappingRule(atomic_rpq(letter), _coerce_rpq(target)) for letter, target in pairs
    ]
    mapping = GraphSchemaMapping(mapping_rules, target_alphabet=target_alphabet, name=name)
    if not mapping.is_lav():
        raise InvalidMappingError("lav_mapping produced a non-LAV mapping (internal error)")
    return mapping


def gav_mapping(
    rules: Iterable[Tuple[object, str]],
    source_alphabet: Iterable[str] = (),
    name: str = "",
) -> GraphSchemaMapping:
    """Build a GAV mapping from ``(source query, target letter)`` pairs."""
    mapping_rules = [
        MappingRule(_coerce_rpq(source), atomic_rpq(letter)) for source, letter in rules
    ]
    mapping = GraphSchemaMapping(mapping_rules, source_alphabet=source_alphabet, name=name)
    if not mapping.is_gav():
        raise InvalidMappingError("gav_mapping produced a non-GAV mapping (internal error)")
    return mapping


def copy_mapping(alphabet: Iterable[str], name: str = "copy") -> GraphSchemaMapping:
    """The identity mapping ``{(a, a) | a ∈ Σ}`` used by Theorem 6 (both LAV and GAV)."""
    letters = sorted(set(alphabet))
    if not letters:
        raise InvalidMappingError("copy_mapping needs a non-empty alphabet")
    return GraphSchemaMapping(
        [MappingRule(atomic_rpq(letter), atomic_rpq(letter)) for letter in letters], name=name
    )
